"""Exception hierarchy for the :mod:`repro` package.

All exceptions raised deliberately by this library derive from
:class:`ReproError`, so callers can catch library errors without
accidentally swallowing programming mistakes such as :class:`TypeError`.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all errors raised by the repro library."""


class ValidationError(ReproError, ValueError):
    """An instance, assignment, or parameter failed validation.

    Raised, for example, when a stream cost exceeds its budget cap
    (the paper assumes ``c_i(S) <= B_i`` for every measure ``i``), when
    a utility is negative, or when identifiers are duplicated.
    """


class InfeasibleError(ReproError):
    """An operation would produce or requires an infeasible assignment."""


class SolverError(ReproError):
    """An exact solver (MILP / LP) failed to produce a solution."""


class SimulationError(ReproError):
    """The discrete-event simulation reached an inconsistent state."""


class NotNormalizedError(ReproError):
    """An operation requires a skew-normalized instance (see paper §3)."""
