"""Random instance families with controlled parameters.

Every generator takes a ``seed`` and is fully deterministic given it.
The families are chosen to exercise specific paper regimes:

- :func:`random_unit_skew_smd` — the §2 setting (experiments E1–E3);
- :func:`random_smd` — bounded local skew ``α`` (experiment E4);
- :func:`random_mmd` — general ``m × m_c`` instances (experiment E5);
- :func:`small_streams_mmd` — the Theorem 1.2 precondition (E7);
- :func:`tightness_instance` — the explicit §4.2 family (E6);
- :func:`knapsack_instance` / :func:`max_coverage_instance` — the
  classical special cases the paper cites as hardness sources (§1).

The four random families take an ``engine`` argument:

- ``"loop"`` (the default here) — the original per-(user, stream)
  Python RNG loops, kept **seed-compatible** so existing fixtures
  reproduce bit-exactly;
- ``"vectorized"`` — delegate to the batched array path of
  :mod:`repro.instances.vectorized` and lift the result (different,
  equally distributed draws for the same seed; ~10–100× faster at
  scale).

``$REPRO_GEN_ENGINE`` overrides the default.  :func:`sweep_instances`
defaults to the vectorized engine and then yields **array-native**
:class:`~repro.core.indexed.IndexedInstance` objects, which every
solver entry point accepts directly.

Degenerate-draw edges (``density <= 0``) take a deterministic
round-robin fallback — user ``j`` wants exactly stream ``j mod |S|`` —
instead of burning per-pair draws that can never succeed.  The loop and
vectorized engines then agree bit-exactly for the SMD families (and for
``random_mmd`` when the draw ranges are degenerate too); see
:mod:`repro.instances.vectorized` for the full agreement contract.
"""

from __future__ import annotations

import itertools
import math
from typing import Iterator, Sequence

import numpy as np

from repro.core.allocate import global_skew_parameters
from repro.core.indexed import IndexedInstance
from repro.core.instance import MMDInstance, Stream, User
from repro.exceptions import ValidationError
from repro.util.rng import ensure_rng


def _draw(rng: np.random.Generator, low: float, high: float) -> float:
    return float(rng.uniform(low, high))


def random_unit_skew_smd(
    num_streams: int,
    num_users: int,
    seed: "int | np.random.Generator | None" = None,
    cost_range: "tuple[float, float]" = (1.0, 10.0),
    utility_range: "tuple[float, float]" = (1.0, 10.0),
    density: float = 0.6,
    budget_fraction: float = 0.3,
    cap_fraction: float = 0.5,
    engine: "str | None" = None,
) -> MMDInstance:
    """A §2-setting instance: one server budget, loads equal utilities,
    capacities equal to utility caps.

    Parameters
    ----------
    density:
        Probability that a given user wants a given stream.  ``<= 0``
        takes the deterministic round-robin fallback (user ``j`` wants
        stream ``j mod |S|`` only).
    budget_fraction:
        Server budget as a fraction of the total stream cost (smaller
        means a tighter knapsack).
    cap_fraction:
        Each user's utility cap as a fraction of his total utility
        (``1.0`` effectively removes the cap's bite).
    engine:
        ``"loop"`` (default; seed-compatible) or ``"vectorized"``
        (batched draws via :mod:`repro.instances.vectorized`, lifted).
    """
    from repro.instances.vectorized import generate_unit_skew_smd, resolve_gen_engine

    if resolve_gen_engine(engine, default="loop") == "vectorized":
        return generate_unit_skew_smd(
            num_streams,
            num_users,
            seed=seed,
            cost_range=cost_range,
            utility_range=utility_range,
            density=density,
            budget_fraction=budget_fraction,
            cap_fraction=cap_fraction,
            engine="vectorized",
        ).lift()
    rng = ensure_rng(seed)
    streams = [
        Stream(f"s{i:03d}", (_draw(rng, *cost_range),)) for i in range(num_streams)
    ]
    budget = max(
        budget_fraction * sum(s.costs[0] for s in streams),
        max((s.costs[0] for s in streams), default=0.0),
    )
    users = []
    for j in range(num_users):
        utilities: dict[str, float] = {}
        if density <= 0.0 and streams:
            utilities[streams[j % len(streams)].stream_id] = _draw(rng, *utility_range)
        else:
            for s in streams:
                if rng.random() < density:
                    utilities[s.stream_id] = _draw(rng, *utility_range)
        if not utilities and streams:
            sid = streams[int(rng.integers(0, len(streams)))].stream_id
            utilities[sid] = _draw(rng, *utility_range)
        total = sum(utilities.values())
        cap = max(cap_fraction * total, max(utilities.values(), default=1.0))
        users.append(
            User(
                user_id=f"u{j:03d}",
                utility_cap=cap,
                capacities=(cap,),
                utilities=utilities,
                loads={sid: (w,) for sid, w in utilities.items()},
            )
        )
    return MMDInstance(streams, users, (budget,), name="random-unit-skew-smd")


def random_smd(
    num_streams: int,
    num_users: int,
    skew: float,
    seed: "int | np.random.Generator | None" = None,
    cost_range: "tuple[float, float]" = (1.0, 10.0),
    utility_range: "tuple[float, float]" = (1.0, 10.0),
    density: float = 0.6,
    budget_fraction: float = 0.3,
    capacity_fraction: float = 0.5,
    engine: "str | None" = None,
) -> MMDInstance:
    """A single-budget instance with local skew at most ``skew``.

    Loads are ``k_u(S) = w_u(S) / r`` with per-pair cost-benefit ratios
    ``r`` drawn log-uniformly from ``[1, skew]``; utility caps are
    infinite (the §3 setting), the single capacity constraint binds.
    ``engine`` selects the loop (default, seed-compatible) or the
    vectorized draw path.
    """
    if skew < 1.0:
        raise ValidationError(f"skew must be >= 1, got {skew}")
    from repro.instances.vectorized import generate_smd, resolve_gen_engine

    if resolve_gen_engine(engine, default="loop") == "vectorized":
        return generate_smd(
            num_streams,
            num_users,
            skew,
            seed=seed,
            cost_range=cost_range,
            utility_range=utility_range,
            density=density,
            budget_fraction=budget_fraction,
            capacity_fraction=capacity_fraction,
            engine="vectorized",
        ).lift()
    rng = ensure_rng(seed)
    streams = [
        Stream(f"s{i:03d}", (_draw(rng, *cost_range),)) for i in range(num_streams)
    ]
    budget = max(
        budget_fraction * sum(s.costs[0] for s in streams),
        max((s.costs[0] for s in streams), default=0.0),
    )
    users = []
    for j in range(num_users):
        utilities: dict[str, float] = {}
        loads: dict[str, tuple[float, ...]] = {}
        if density <= 0.0 and streams:
            sid = streams[j % len(streams)].stream_id
            w = _draw(rng, *utility_range)
            utilities[sid] = w
            loads[sid] = (w,)
        else:
            for s in streams:
                if rng.random() < density:
                    w = _draw(rng, *utility_range)
                    ratio = float(np.exp(rng.uniform(0.0, math.log(skew)))) if skew > 1 else 1.0
                    utilities[s.stream_id] = w
                    loads[s.stream_id] = (w / ratio,)
        if not utilities and streams:
            sid = streams[int(rng.integers(0, len(streams)))].stream_id
            w = _draw(rng, *utility_range)
            utilities[sid] = w
            loads[sid] = (w,)
        total_load = sum(vec[0] for vec in loads.values())
        max_load = max((vec[0] for vec in loads.values()), default=1.0)
        capacity = max(capacity_fraction * total_load, max_load)
        users.append(
            User(
                user_id=f"u{j:03d}",
                utility_cap=math.inf,
                capacities=(capacity,),
                utilities=utilities,
                loads=loads,
            )
        )
    return MMDInstance(streams, users, (budget,), name=f"random-smd-skew{skew:g}")


def random_mmd(
    num_streams: int,
    num_users: int,
    m: int,
    mc: int,
    seed: "int | np.random.Generator | None" = None,
    cost_range: "tuple[float, float]" = (1.0, 10.0),
    utility_range: "tuple[float, float]" = (1.0, 10.0),
    density: float = 0.6,
    budget_fraction: float = 0.35,
    capacity_fraction: float = 0.5,
    engine: "str | None" = None,
) -> MMDInstance:
    """A general MMD instance with ``m`` server budgets and ``mc``
    capacity measures per user; utility caps are infinite (the formal
    §1.1 model).  ``engine`` selects the loop (default, seed-compatible)
    or the vectorized draw path."""
    if m < 1 or mc < 0:
        raise ValidationError(f"need m >= 1 and mc >= 0, got m={m}, mc={mc}")
    from repro.instances.vectorized import generate_mmd, resolve_gen_engine

    if resolve_gen_engine(engine, default="loop") == "vectorized":
        return generate_mmd(
            num_streams,
            num_users,
            m,
            mc,
            seed=seed,
            cost_range=cost_range,
            utility_range=utility_range,
            density=density,
            budget_fraction=budget_fraction,
            capacity_fraction=capacity_fraction,
            engine="vectorized",
        ).lift()
    rng = ensure_rng(seed)
    streams = []
    for i in range(num_streams):
        costs = tuple(_draw(rng, *cost_range) for _ in range(m))
        streams.append(Stream(f"s{i:03d}", costs))
    budgets = []
    for i in range(m):
        total = sum(s.costs[i] for s in streams)
        biggest = max((s.costs[i] for s in streams), default=0.0)
        budgets.append(max(budget_fraction * total, biggest))
    users = []
    for j in range(num_users):
        utilities: dict[str, float] = {}
        loads: dict[str, tuple[float, ...]] = {}
        if density <= 0.0 and streams:
            sid = streams[j % len(streams)].stream_id
            utilities[sid] = _draw(rng, *utility_range)
            loads[sid] = tuple(_draw(rng, *cost_range) for _ in range(mc))
        else:
            for s in streams:
                if rng.random() < density:
                    utilities[s.stream_id] = _draw(rng, *utility_range)
                    loads[s.stream_id] = tuple(
                        _draw(rng, *cost_range) for _ in range(mc)
                    )
        if not utilities and streams:
            sid = streams[int(rng.integers(0, len(streams)))].stream_id
            utilities[sid] = _draw(rng, *utility_range)
            loads[sid] = tuple(_draw(rng, *cost_range) for _ in range(mc))
        capacities = []
        for jj in range(mc):
            total = sum(vec[jj] for vec in loads.values())
            biggest = max((vec[jj] for vec in loads.values()), default=0.0)
            capacities.append(max(capacity_fraction * total, biggest))
        users.append(
            User(
                user_id=f"u{j:03d}",
                utility_cap=math.inf,
                capacities=tuple(capacities),
                utilities=utilities,
                loads=loads,
            )
        )
    return MMDInstance(streams, users, tuple(budgets), name=f"random-mmd-{m}x{mc}")


def small_streams_mmd(
    num_streams: int,
    num_users: int,
    m: int = 1,
    mc: int = 1,
    seed: "int | np.random.Generator | None" = None,
    headroom: float = 1.5,
    density: float = 0.6,
    engine: "str | None" = None,
) -> MMDInstance:
    """An instance satisfying the Theorem 1.2 small-streams precondition.

    Costs and loads are drawn first; ``γ`` (and hence ``µ``) is
    scale-invariant in the budgets, so the budgets are then set to
    ``headroom · log₂(µ) · max cost`` per measure, which makes
    ``c_i(S) ≤ B_i / log₂ µ`` hold with ``headroom`` to spare.
    ``engine`` selects the loop (default, seed-compatible) or the
    vectorized draw path.
    """
    if headroom < 1.0:
        raise ValidationError(f"headroom must be >= 1, got {headroom}")
    from repro.instances.vectorized import generate_small_streams_mmd, resolve_gen_engine

    if resolve_gen_engine(engine, default="loop") == "vectorized":
        return generate_small_streams_mmd(
            num_streams,
            num_users,
            m=m,
            mc=mc,
            seed=seed,
            headroom=headroom,
            density=density,
            engine="vectorized",
        ).lift()
    rng = ensure_rng(seed)
    base = random_mmd(
        num_streams,
        num_users,
        m,
        mc,
        seed=rng,
        cost_range=(0.5, 2.0),
        utility_range=(1.0, 4.0),
        density=density,
        budget_fraction=1.0,  # placeholder; budgets replaced below
        capacity_fraction=1.0,
        engine="loop",
    )
    _gamma, mu, _d = global_skew_parameters(base)
    log_mu = math.log2(mu)
    budgets = []
    for i in range(m):
        biggest = max((s.costs[i] for s in base.streams), default=0.0)
        budgets.append(headroom * log_mu * biggest)
    users = []
    for u in base.users:
        capacities = []
        for j in range(mc):
            biggest = max((vec[j] for vec in u.loads.values()), default=1.0)
            capacities.append(headroom * log_mu * biggest)
        users.append(
            User(
                user_id=u.user_id,
                utility_cap=math.inf,
                capacities=tuple(capacities),
                utilities=dict(u.utilities),
                loads=dict(u.loads),
            )
        )
    return MMDInstance(base.streams, users, tuple(budgets), name="small-streams-mmd")


def sweep_cell(
    num_streams: int,
    num_users: int,
    skew: float,
    seed: int,
    density: float = 0.05,
    budget_fraction: float = 0.3,
    engine: "str | None" = None,
) -> "MMDInstance | IndexedInstance":
    """Build one grid cell of a sweep: the §2 unit-skew family for
    ``skew <= 1``, the bounded-skew family otherwise.

    The shared producer of :func:`sweep_instances` and the experiment
    runner (:mod:`repro.experiments.runner`, family ``"sweep"``) — both
    paths materialize cells through this function, so a spec-driven
    ``repro sweep`` and a hand-rolled `sweep_instances` loop produce the
    same instances given the same per-cell seeds.  The vectorized
    engine (the sweep default) returns an array-native
    :class:`~repro.core.indexed.IndexedInstance`; ``engine="loop"``
    returns a dict-model :class:`MMDInstance`.
    """
    from repro.instances.vectorized import (
        generate_smd,
        generate_unit_skew_smd,
        resolve_gen_engine,
    )

    if resolve_gen_engine(engine, default="vectorized") == "vectorized":
        if skew <= 1.0:
            inst: "MMDInstance | IndexedInstance" = generate_unit_skew_smd(
                num_streams, num_users, seed=seed, density=density,
                budget_fraction=budget_fraction, engine="vectorized",
            )
        else:
            inst = generate_smd(
                num_streams, num_users, skew, seed=seed, density=density,
                budget_fraction=budget_fraction, engine="vectorized",
            )
    elif skew <= 1.0:
        inst = random_unit_skew_smd(
            num_streams, num_users, seed=seed, density=density,
            budget_fraction=budget_fraction, engine="loop",
        )
    else:
        inst = random_smd(
            num_streams, num_users, skew, seed=seed, density=density,
            budget_fraction=budget_fraction, engine="loop",
        )
    inst.name = f"sweep[s={num_streams},u={num_users},a={skew:g},seed={seed}]"
    return inst


def sweep_instances(
    stream_counts: Sequence[int],
    user_counts: Sequence[int],
    skews: Sequence[float] = (1.0,),
    seed: int = 0,
    density: float = 0.05,
    budget_fraction: float = 0.3,
    engine: "str | None" = None,
) -> "Iterator[MMDInstance | IndexedInstance]":
    """Stream a catalog × population × skew grid of SMD instances.

    A generator (constant memory): each instance is built only when the
    consumer asks for it, so million-user sweeps can be piped straight
    into :func:`repro.core.solver.iter_solve_many` or serialized line by
    line (``repro solve-many --sweep-...`` / ``repro generate --count``)
    without materializing the whole grid.

    Instances are deterministic given ``seed``: grid cell ``t`` draws
    with :func:`repro.util.rng.derive_seed` ``(seed, t)`` — the per-cell
    seed depends only on the cell's position in the full grid, never on
    how many cells ran before it, so shard ``(i, n)`` of a sweep (every
    ``n``-th cell) reproduces exactly the unsharded run's instances.
    ``skew == 1`` cells use the §2 unit-skew family, other cells the
    bounded-skew family.

    With ``engine="vectorized"`` (the default here — sweeps are exactly
    the workload the batched path exists for) the yielded items are
    **array-native** :class:`~repro.core.indexed.IndexedInstance`
    objects; every solver entry point (:func:`~repro.core.solver.solve_mmd`,
    :func:`~repro.core.solver.solve_many`, the CLI) accepts them
    directly and lifts the dict model only if something needs it.
    ``engine="loop"`` yields :class:`MMDInstance` objects drawn by the
    seed-compatible loop families.
    """
    from repro.util.rng import derive_seed

    grid = itertools.product(stream_counts, user_counts, skews)
    for t, (num_streams, num_users, skew) in enumerate(grid):
        yield sweep_cell(
            num_streams,
            num_users,
            skew,
            seed=derive_seed(seed, t),
            density=density,
            budget_fraction=budget_fraction,
            engine=engine,
        )


def tightness_instance(m: int, mc: int) -> MMDInstance:
    """The explicit §4.2 family showing Theorem 4.3's ``Θ(m·m_c)`` loss.

    ``m`` server budgets (all 1), one user with ``mc`` capacity measures
    (all 1), and ``m + mc - 1`` streams:

    - streams ``S_1..S_{m-1}`` each cost ``1/2 + ε`` in their own server
      measure, have utility 1 and zero user load;
    - streams ``S_m..S_{m+mc-1}`` each cost ``(1/2+ε)/m_c`` in server
      measure ``m``, load their own user measure by ``1/2 + ε'`` and
      have utility ``1/m_c``.

    Transmitting everything is feasible, so ``OPT = m``; the §4
    decomposition's candidate set contains a candidate worth only
    ``OPT/(m·m_c)``.
    """
    if m < 1 or mc < 1:
        raise ValidationError(f"need m, mc >= 1, got m={m}, mc={mc}")
    eps = 1.0 / (m * m) if m > 1 else 0.01
    eps_prime = 1.0 / (mc * mc) if mc > 1 else 0.01
    streams = []
    num_streams = m + mc - 1
    for j in range(1, num_streams + 1):
        costs = [0.0] * m
        if j < m:
            costs[j - 1] = 0.5 + eps
        else:
            costs[m - 1] = (0.5 + eps) / mc
        streams.append(Stream(f"s{j:03d}", tuple(costs)))
    utilities = {}
    loads = {}
    for j in range(1, num_streams + 1):
        sid = f"s{j:03d}"
        if j < m:
            utilities[sid] = 1.0
            loads[sid] = (0.0,) * mc
        else:
            utilities[sid] = 1.0 / mc
            vec = [0.0] * mc
            vec[j - m] = 0.5 + eps_prime
            loads[sid] = tuple(vec)
    user = User(
        user_id="u000",
        utility_cap=math.inf,
        capacities=(1.0,) * mc,
        utilities=utilities,
        loads=loads,
    )
    return MMDInstance(streams, [user], (1.0,) * m, name=f"tightness-{m}x{mc}")


def knapsack_instance(
    values: Sequence[float],
    weights: Sequence[float],
    capacity: float,
) -> MMDInstance:
    """Embed a 0/1 knapsack: one user, utility = value, cost = weight.

    The paper notes MMD strictly generalizes Knapsack even with a single
    user (§1); this embedding lets knapsack instances with known optima
    serve as ground truth.
    """
    if len(values) != len(weights):
        raise ValidationError("values and weights must have equal length")
    big = max(weights, default=0.0)
    streams = [
        Stream(f"s{i:03d}", (float(w),)) for i, w in enumerate(weights)
    ]
    utilities = {
        f"s{i:03d}": float(v) for i, v in enumerate(values) if v > 0
    }
    user = User(
        user_id="u000",
        utility_cap=math.inf,
        capacities=(math.inf,),
        utilities=utilities,
        loads={sid: (0.0,) for sid in utilities},
    )
    return MMDInstance(streams, [user], (max(capacity, big),), name="knapsack")


def group_budget_instance(
    groups: "Sequence[Sequence[Sequence[str]]]",
    num_picks: float,
    element_weights: "dict[str, float] | None" = None,
) -> MMDInstance:
    """Embed maximum coverage with *group budget constraints* [6].

    ``groups[g]`` is a list of sets (each a list of element ids); at most
    one set may be chosen per group, and at most ``num_picks`` sets in
    total.  The paper (§1.2) notes MMD strictly generalizes this
    problem: each group becomes one server budget measure with cap 1 in
    which exactly its own sets cost 1, and one extra measure with unit
    costs and cap ``num_picks`` enforces the global cardinality budget.

    Elements become users with utility caps equal to their weights
    (covering twice adds nothing), as in :func:`max_coverage_instance`.
    """
    num_groups = len(groups)
    if num_groups == 0:
        raise ValidationError("need at least one group")
    streams = []
    membership: "dict[str, Sequence[str]]" = {}
    for g, group_sets in enumerate(groups):
        for k, members in enumerate(group_sets):
            sid = f"g{g:02d}-set{k:02d}"
            costs = [0.0] * (num_groups + 1)
            costs[g] = 1.0  # group-g budget: at most one set from this group
            costs[num_groups] = 1.0  # global cardinality budget
            streams.append(Stream(sid, tuple(costs)))
            membership[sid] = members
    budgets = tuple([1.0] * num_groups + [max(float(num_picks), 1.0)])
    elements = sorted({e for members in membership.values() for e in members})
    weights = element_weights or {}
    users = []
    for e in elements:
        weight = float(weights.get(e, 1.0))
        utilities = {
            sid: weight for sid, members in membership.items() if e in members
        }
        users.append(
            User(
                user_id=f"elem-{e}",
                utility_cap=weight,
                capacities=(math.inf,),
                utilities=utilities,
                loads={sid: (0.0,) for sid in utilities},
            )
        )
    return MMDInstance(streams, users, budgets, name="group-budget-coverage")


def max_coverage_instance(
    sets: "Sequence[Sequence[str]]",
    budget: float,
    costs: "Sequence[float] | None" = None,
    element_weights: "dict[str, float] | None" = None,
) -> MMDInstance:
    """Embed (budgeted) maximum coverage: elements are users with unit
    utility caps; set ``i`` is a stream giving utility ``weight(e)`` to
    each element it covers.

    With unit costs and integer budget this is Maximum Coverage; with
    general costs it is Khuller–Moss–Naor budgeted coverage — both of
    which the paper cites as special cases (§1.2).
    """
    if costs is not None and len(costs) != len(sets):
        raise ValidationError("costs must match sets in length")
    streams = []
    usable: "set[str]" = set()
    for i in range(len(sets)):
        cost = float(costs[i]) if costs is not None else 1.0
        if cost > budget:
            continue  # can never be chosen; validation requires c(S) <= B
        streams.append(Stream(f"set{i:03d}", (cost,)))
        usable.add(f"set{i:03d}")
    elements = sorted({e for members in sets for e in members})
    weights = element_weights or {}
    users = []
    for e in elements:
        weight = float(weights.get(e, 1.0))
        utilities = {
            f"set{i:03d}": weight
            for i, members in enumerate(sets)
            if e in members and f"set{i:03d}" in usable
        }
        users.append(
            User(
                user_id=f"elem-{e}",
                utility_cap=weight,  # covering an element twice adds nothing
                capacities=(math.inf,),
                utilities=utilities,
                loads={sid: (0.0,) for sid in utilities},
            )
        )
    return MMDInstance(streams, users, (budget,), name="max-coverage")
