"""Named end-to-end workload scenarios.

Each function assembles a catalog and a population into an
:class:`~repro.core.instance.MMDInstance` mirroring one of the paper's
deployment stories (Fig. 1):

- :func:`cable_headend_workload` — a cable head-end serving
  neighborhood video gateways, with egress-bandwidth, processing and
  input-port budgets (``m = 3``);
- :func:`iptv_neighborhood_workload` — a video gateway serving
  households over a single shared link (``m = 1``);
- :func:`small_streams_workload` — a large SD-only catalog against
  generous budgets, landing in the Theorem 1.2 small-streams regime.
"""

from __future__ import annotations

import math

import numpy as np

from repro.core.instance import MMDInstance
from repro.instances.catalog import CatalogConfig, build_catalog
from repro.instances.population import (
    PopulationConfig,
    aggregate_gateway,
    build_population,
)
from repro.util.rng import ensure_rng, spawn_rngs


def cable_headend_workload(
    num_channels: int = 60,
    num_gateways: int = 8,
    households_per_gateway: int = 12,
    seed: "int | np.random.Generator | None" = 0,
    egress_fraction: float = 0.35,
    processing_fraction: float = 0.4,
    port_fraction: float = 0.5,
) -> MMDInstance:
    """Cable head-end scenario: ``m = 3`` budgets, gateway clients.

    Budgets are set as fractions of the catalog's total demands, so the
    knapsack is tight in every measure.  Gateways aggregate household
    utilities; their capacity is a shared uplink sized to carry roughly
    half the catalog.
    """
    rng = ensure_rng(seed)
    catalog_rng, pop_rng, uplink_rng = spawn_rngs(rng, 3)
    catalog = build_catalog(
        num_channels,
        seed=catalog_rng,
        measures=("egress", "processing", "ports"),
    )
    total_egress = sum(s.costs[0] for s in catalog)
    total_processing = sum(s.costs[1] for s in catalog)
    budgets = (
        max(egress_fraction * total_egress, max(s.costs[0] for s in catalog)),
        max(processing_fraction * total_processing, max(s.costs[1] for s in catalog)),
        max(1.0, round(port_fraction * num_channels)),
    )
    gateways = []
    pop_children = spawn_rngs(pop_rng, num_gateways)
    for g in range(num_gateways):
        homes = build_population(
            households_per_gateway,
            catalog,
            seed=pop_children[g],
            config=PopulationConfig(downlink_range=(30.0, 80.0)),
            user_prefix=f"gw{g:02d}-home",
        )
        uplink = float(uplink_rng.uniform(0.4, 0.7)) * total_egress / 2.0
        gateways.append(aggregate_gateway(homes, f"gw{g:02d}", uplink))
    return MMDInstance(catalog, gateways, budgets, name="cable-headend")


def iptv_neighborhood_workload(
    num_channels: int = 40,
    num_households: int = 30,
    seed: "int | np.random.Generator | None" = 0,
    egress_fraction: float = 0.3,
    utility_cap_fraction: float = math.inf,
) -> MMDInstance:
    """Video-gateway scenario: one egress budget, household clients.

    The single budget is the gateway's outgoing link; each household is
    capacity-limited by its downlink.  ``utility_cap_fraction`` can
    impose finite per-household utility caps (the §2 flavor).
    """
    rng = ensure_rng(seed)
    catalog_rng, pop_rng = spawn_rngs(rng, 2)
    catalog = build_catalog(num_channels, seed=catalog_rng, measures=("egress",))
    total_egress = sum(s.costs[0] for s in catalog)
    budget = max(egress_fraction * total_egress, max(s.costs[0] for s in catalog))
    households = build_population(
        num_households,
        catalog,
        seed=pop_rng,
        config=PopulationConfig(utility_cap_fraction=utility_cap_fraction),
    )
    return MMDInstance(catalog, households, (budget,), name="iptv-neighborhood")


def small_streams_workload(
    num_channels: int = 80,
    num_households: int = 20,
    seed: "int | np.random.Generator | None" = 0,
) -> MMDInstance:
    """A Theorem 1.2 regime workload: a large SD-only catalog (uniform
    2.5 Mbit/s streams) against budgets at least ``log₂ µ`` times any
    single stream."""
    rng = ensure_rng(seed)
    catalog_rng, pop_rng = spawn_rngs(rng, 2)
    catalog = build_catalog(
        num_channels,
        seed=catalog_rng,
        config=CatalogConfig(tier_mix={"sd": 1.0}),
        measures=("egress",),
    )
    households = build_population(
        num_households,
        catalog,
        seed=pop_rng,
        config=PopulationConfig(downlink_range=(100.0, 200.0)),
    )
    # All streams cost 2.5; γ is scale-invariant in the budget, so size
    # the budget after the fact exactly like small_streams_mmd does.
    from repro.core.allocate import global_skew_parameters
    from repro.core.instance import User

    draft = MMDInstance(catalog, households, (math.inf,), name="small-streams-draft")
    _gamma, mu, _d = global_skew_parameters(draft)
    log_mu = math.log2(mu)
    budget = 1.5 * log_mu * max(s.costs[0] for s in catalog)
    users = []
    for u in households:
        biggest = max((vec[0] for vec in u.loads.values()), default=2.5)
        capacity = max(u.capacities[0], 1.5 * log_mu * biggest)
        users.append(
            User(
                user_id=u.user_id,
                utility_cap=u.utility_cap,
                capacities=(capacity,),
                utilities=dict(u.utilities),
                loads=dict(u.loads),
                attrs=u.attrs,
            )
        )
    return MMDInstance(catalog, users, (budget,), name="small-streams")
