"""Vectorized instance generation: whole instances from batched RNG calls.

The loop generators in :mod:`repro.instances.generators` build instances
through per-(user, stream) Python RNG calls — O(users × streams) trips
through the interpreter per instance, which after the compiled solver
layer (PR 1) left *generation* as the wall-clock bottleneck of large
sweeps.  The ``generate_*`` functions here draw the same random families
with a handful of batched :class:`numpy.random.Generator` calls — one
sparsity mask, one utility draw, one cost draw per instance — and
produce an :class:`~repro.core.indexed.IndexedInstance` **directly**
(no dict detour).  ``IndexedInstance.lift()`` materializes the
string-keyed :class:`~repro.core.instance.MMDInstance` lazily when a
consumer needs it.

Engines
-------

Every generator takes ``engine``:

- ``"vectorized"`` (default) — the batched array path.  Deterministic
  given ``seed``, but a *different* (equally distributed) draw sequence
  from the loop engine: the two engines produce different instances for
  the same seed except in the degenerate regimes below.
- ``"loop"`` — delegates to the seed-compatible loop generator and
  lowers the result, reproducing existing fixtures bit-exactly.

``$REPRO_GEN_ENGINE`` overrides the default (see
:func:`resolve_gen_engine`).

Canonical vectorized draw order (per instance): stream costs, the
(users × streams) sparsity mask in fixed row blocks of
:data:`CHUNK_CELLS` cells, fallback stream indices for users the mask
left empty, per-pair utilities in user-major order, then family-specific
extras (skew ratios, load matrices).

Degenerate regimes where both engines agree **exactly** (regression
tests in ``tests/test_generators.py`` / ``tests/test_vectorized.py``):

- ``density <= 0`` with the **SMD families** — no pair randomness is
  consumed; every user gets the round-robin fallback stream
  ``j mod |S|`` with one utility draw per user, so the engines draw
  identical values in identical order.  (``random_mmd`` additionally
  needs degenerate draw ranges here: its loop engine interleaves the
  per-user utility and load draws while the vectorized engine batches
  them, so non-constant draws land on different RNG positions.)
- degenerate ranges (``cost_range=(c, c)``, ``utility_range=(w, w)``)
  with ``density >= 1`` or ``density <= 0`` — every draw is a constant;
- zero-stream catalogs — no draws at all.
"""

from __future__ import annotations

import math
from dataclasses import replace
from typing import Iterator

import numpy as np

from repro.config import ENGINE_SETTINGS, resolve_engine_setting
from repro.core.indexed import (
    IndexedInstance,
    build_indexed,
    global_skew_indexed,
    index_instance,
)
from repro.exceptions import ValidationError
from repro.util.rng import ensure_rng

#: Environment variable selecting the default generation engine.
GEN_ENGINE_ENV = ENGINE_SETTINGS["generation"].env

_GEN_ENGINES = ENGINE_SETTINGS["generation"].choices

#: Sparsity-mask draws are chunked into row blocks of at most this many
#: (user, stream) cells, bounding transient memory at ~32 MiB per block
#: while keeping the drawn bit stream independent of the block size a
#: given catalog width implies.
CHUNK_CELLS = 1 << 22


def resolve_gen_engine(engine: "str | None" = None, default: str = "vectorized") -> str:
    """Resolve a generation engine: explicit argument > $REPRO_GEN_ENGINE > default.

    Delegates to the shared :mod:`repro.config` resolver (kind
    ``"generation"``); ``default`` lets the dict-returning ``random_*``
    families keep their seed-compatible loop default.
    """
    return resolve_engine_setting("generation", engine, default=default)


def _ids(prefix: str, count: int) -> "list[str]":
    """Id table ``[prefix000, prefix001, ...]`` (the loop generators' scheme)."""
    return [f"{prefix}{i:03d}" for i in range(count)]


def _support(
    rng: np.random.Generator, num_users: int, num_streams: int, density: float
) -> "tuple[np.ndarray, np.ndarray, np.ndarray]":
    """Draw the sparse interest pattern of a random family.

    Returns ``(u_indptr, u_stream, fallback)``: the user-major CSR
    pointers, the per-pair stream indices (ascending within each row,
    matching the loop engines' dict insertion order), and a boolean mask
    over pairs marking entries created by the everyone-wants-something
    fallback (the loop families guarantee each user at least one
    positive utility).

    ``density <= 0`` takes the deterministic path: user ``j`` wants
    exactly stream ``j mod num_streams`` and **no pair randomness is
    consumed**, so the loop and vectorized engines agree bit-exactly
    there (the loop engines implement the same rule).
    """
    if num_users == 0 or num_streams == 0:
        return (
            np.zeros(num_users + 1, dtype=np.int64),
            np.empty(0, dtype=np.int64),
            np.empty(0, dtype=bool),
        )
    if density <= 0.0:
        u_indptr = np.arange(num_users + 1, dtype=np.int64)
        u_stream = np.arange(num_users, dtype=np.int64) % num_streams
        return u_indptr, u_stream, np.ones(num_users, dtype=bool)

    counts = np.empty(num_users, dtype=np.int64)
    chunks: "list[np.ndarray]" = []
    rows_per_chunk = max(1, CHUNK_CELLS // num_streams)
    for start in range(0, num_users, rows_per_chunk):
        stop = min(start + rows_per_chunk, num_users)
        mask = rng.random((stop - start, num_streams)) < density
        counts[start:stop] = mask.sum(axis=1)
        # np.nonzero is row-major: ascending stream index within each row.
        chunks.append(mask.nonzero()[1].astype(np.int64, copy=False))
    drawn = np.concatenate(chunks) if chunks else np.empty(0, dtype=np.int64)

    empty = counts == 0
    num_empty = int(empty.sum())
    if num_empty == 0:
        u_indptr = np.zeros(num_users + 1, dtype=np.int64)
        np.cumsum(counts, out=u_indptr[1:])
        return u_indptr, drawn, np.zeros(drawn.shape[0], dtype=bool)

    fallback_cols = rng.integers(0, num_streams, size=num_empty)
    counts[empty] = 1
    u_indptr = np.zeros(num_users + 1, dtype=np.int64)
    np.cumsum(counts, out=u_indptr[1:])
    slot_user = np.repeat(np.arange(num_users, dtype=np.int64), counts)
    is_fallback = empty[slot_user]
    u_stream = np.empty(int(u_indptr[-1]), dtype=np.int64)
    u_stream[~is_fallback] = drawn
    u_stream[is_fallback] = fallback_cols
    return u_indptr, u_stream, is_fallback


def _row_stats(
    values: np.ndarray, u_indptr: np.ndarray, empty_max: float
) -> "tuple[np.ndarray, np.ndarray]":
    """Per-user ``(sum, max)`` of a per-pair column.

    ``values`` may be 1-D (one number per pair) or 2-D ``(nnz, mc)``;
    the reductions run along the pair axis.  Users with no pairs get sum
    ``0`` and max ``empty_max`` (the loop generators' ``default=``
    argument to ``max``).
    """
    num_users = u_indptr.shape[0] - 1
    tail_shape = values.shape[1:]
    if num_users == 0:
        return np.zeros((0, *tail_shape)), np.zeros((0, *tail_shape))
    sums = np.zeros((num_users, *tail_shape))
    maxs = np.full((num_users, *tail_shape), float(empty_max))
    nonempty = np.diff(u_indptr) > 0
    if nonempty.any():
        # reduceat over the non-empty rows only: consecutive non-empty
        # rows have strictly increasing starts (empty rows contribute
        # nothing to the pointer gaps), so segment boundaries are exact.
        starts = u_indptr[:-1][nonempty]
        sums[nonempty] = np.add.reduceat(values, starts, axis=0)
        maxs[nonempty] = np.maximum.reduceat(values, starts, axis=0)
    return sums, maxs


def _budget_from_costs(costs: np.ndarray, budget_fraction: float) -> np.ndarray:
    """Per-measure budgets ``max(fraction · Σ c_i, max c_i)`` (0 if no streams)."""
    if costs.shape[0] == 0:
        return np.zeros(costs.shape[1])
    return np.maximum(budget_fraction * costs.sum(axis=0), costs.max(axis=0))


def generate_unit_skew_smd(
    num_streams: int,
    num_users: int,
    seed: "int | np.random.Generator | None" = None,
    cost_range: "tuple[float, float]" = (1.0, 10.0),
    utility_range: "tuple[float, float]" = (1.0, 10.0),
    density: float = 0.6,
    budget_fraction: float = 0.3,
    cap_fraction: float = 0.5,
    engine: "str | None" = None,
) -> IndexedInstance:
    """Array-native :func:`repro.instances.generators.random_unit_skew_smd`.

    Same family and parameters as the loop generator (the §2 setting:
    one budget, loads equal utilities, capacities equal utility caps),
    drawn with batched RNG calls and returned as an
    :class:`IndexedInstance` with no dict model built.
    """
    if resolve_gen_engine(engine) == "loop":
        from repro.instances.generators import random_unit_skew_smd

        return index_instance(
            random_unit_skew_smd(
                num_streams,
                num_users,
                seed=seed,
                cost_range=cost_range,
                utility_range=utility_range,
                density=density,
                budget_fraction=budget_fraction,
                cap_fraction=cap_fraction,
                engine="loop",
            )
        )
    rng = ensure_rng(seed)
    costs = rng.uniform(*cost_range, num_streams)
    budgets = _budget_from_costs(costs.reshape(-1, 1), budget_fraction)
    u_indptr, u_stream, _ = _support(rng, num_users, num_streams, density)
    u_w = rng.uniform(*utility_range, u_stream.shape[0])
    row_sum, row_max = _row_stats(u_w, u_indptr, empty_max=1.0)
    cap = np.maximum(cap_fraction * row_sum, row_max)
    return build_indexed(
        stream_ids=_ids("s", num_streams),
        user_ids=_ids("u", num_users),
        stream_costs=costs.reshape(-1, 1),
        budgets=budgets,
        utility_caps=cap,
        capacities=cap.reshape(-1, 1),
        u_indptr=u_indptr,
        u_stream=u_stream,
        u_w=u_w,
        u_loads=u_w.reshape(-1, 1).copy(),
        name="random-unit-skew-smd",
    )


def generate_smd(
    num_streams: int,
    num_users: int,
    skew: float,
    seed: "int | np.random.Generator | None" = None,
    cost_range: "tuple[float, float]" = (1.0, 10.0),
    utility_range: "tuple[float, float]" = (1.0, 10.0),
    density: float = 0.6,
    budget_fraction: float = 0.3,
    capacity_fraction: float = 0.5,
    engine: "str | None" = None,
) -> IndexedInstance:
    """Array-native :func:`repro.instances.generators.random_smd`.

    Bounded local skew ``α ≤ skew``: per-pair cost-benefit ratios are
    drawn log-uniformly from ``[1, skew]`` in one batched call (fallback
    pairs keep ratio 1, as in the loop engine); utility caps are
    infinite and the single capacity constraint binds.
    """
    if skew < 1.0:
        raise ValidationError(f"skew must be >= 1, got {skew}")
    if resolve_gen_engine(engine) == "loop":
        from repro.instances.generators import random_smd

        return index_instance(
            random_smd(
                num_streams,
                num_users,
                skew,
                seed=seed,
                cost_range=cost_range,
                utility_range=utility_range,
                density=density,
                budget_fraction=budget_fraction,
                capacity_fraction=capacity_fraction,
                engine="loop",
            )
        )
    rng = ensure_rng(seed)
    costs = rng.uniform(*cost_range, num_streams)
    budgets = _budget_from_costs(costs.reshape(-1, 1), budget_fraction)
    u_indptr, u_stream, fallback = _support(rng, num_users, num_streams, density)
    nnz = u_stream.shape[0]
    u_w = rng.uniform(*utility_range, nnz)
    if skew > 1.0:
        ratio = np.exp(rng.uniform(0.0, math.log(skew), nnz))
        ratio[fallback] = 1.0
    else:
        ratio = np.ones(nnz)
    u_loads = (u_w / ratio).reshape(-1, 1)
    row_sum, row_max = _row_stats(u_loads[:, 0], u_indptr, empty_max=1.0)
    capacity = np.maximum(capacity_fraction * row_sum, row_max)
    return build_indexed(
        stream_ids=_ids("s", num_streams),
        user_ids=_ids("u", num_users),
        stream_costs=costs.reshape(-1, 1),
        budgets=budgets,
        utility_caps=np.full(num_users, math.inf),
        capacities=capacity.reshape(-1, 1),
        u_indptr=u_indptr,
        u_stream=u_stream,
        u_w=u_w,
        u_loads=u_loads,
        name=f"random-smd-skew{skew:g}",
    )


def generate_mmd(
    num_streams: int,
    num_users: int,
    m: int,
    mc: int,
    seed: "int | np.random.Generator | None" = None,
    cost_range: "tuple[float, float]" = (1.0, 10.0),
    utility_range: "tuple[float, float]" = (1.0, 10.0),
    density: float = 0.6,
    budget_fraction: float = 0.35,
    capacity_fraction: float = 0.5,
    engine: "str | None" = None,
) -> IndexedInstance:
    """Array-native :func:`repro.instances.generators.random_mmd`.

    General ``m × m_c`` instances: the ``(|S|, m)`` cost matrix, the
    sparsity mask, the utilities and the ``(nnz, m_c)`` load matrix are
    each one batched draw.
    """
    if m < 1 or mc < 0:
        raise ValidationError(f"need m >= 1 and mc >= 0, got m={m}, mc={mc}")
    if resolve_gen_engine(engine) == "loop":
        from repro.instances.generators import random_mmd

        return index_instance(
            random_mmd(
                num_streams,
                num_users,
                m,
                mc,
                seed=seed,
                cost_range=cost_range,
                utility_range=utility_range,
                density=density,
                budget_fraction=budget_fraction,
                capacity_fraction=capacity_fraction,
                engine="loop",
            )
        )
    rng = ensure_rng(seed)
    costs = rng.uniform(*cost_range, (num_streams, m))
    budgets = _budget_from_costs(costs, budget_fraction)
    u_indptr, u_stream, _ = _support(rng, num_users, num_streams, density)
    nnz = u_stream.shape[0]
    u_w = rng.uniform(*utility_range, nnz)
    u_loads = rng.uniform(*cost_range, (nnz, mc))
    col_sum, col_max = _row_stats(u_loads, u_indptr, empty_max=0.0)
    capacities = np.maximum(capacity_fraction * col_sum, col_max)
    return build_indexed(
        stream_ids=_ids("s", num_streams),
        user_ids=_ids("u", num_users),
        stream_costs=costs,
        budgets=budgets,
        utility_caps=np.full(num_users, math.inf),
        capacities=capacities.reshape(num_users, mc),
        u_indptr=u_indptr,
        u_stream=u_stream,
        u_w=u_w,
        u_loads=u_loads,
        name=f"random-mmd-{m}x{mc}",
    )


def generate_small_streams_mmd(
    num_streams: int,
    num_users: int,
    m: int = 1,
    mc: int = 1,
    seed: "int | np.random.Generator | None" = None,
    headroom: float = 1.5,
    density: float = 0.6,
    engine: "str | None" = None,
) -> IndexedInstance:
    """Array-native :func:`repro.instances.generators.small_streams_mmd`.

    Draws a base ``m × m_c`` instance, computes ``γ`` (and hence ``µ``)
    with the vectorized global-skew kernel, then rescales budgets and
    capacities to ``headroom · log₂(µ) · max cost`` per measure so the
    Theorem 1.2 small-streams precondition holds with room to spare.
    """
    if headroom < 1.0:
        raise ValidationError(f"headroom must be >= 1, got {headroom}")
    if resolve_gen_engine(engine) == "loop":
        from repro.instances.generators import small_streams_mmd

        return index_instance(
            small_streams_mmd(
                num_streams,
                num_users,
                m=m,
                mc=mc,
                seed=seed,
                headroom=headroom,
                density=density,
                engine="loop",
            )
        )
    rng = ensure_rng(seed)
    base = generate_mmd(
        num_streams,
        num_users,
        m,
        mc,
        seed=rng,
        cost_range=(0.5, 2.0),
        utility_range=(1.0, 4.0),
        density=density,
        budget_fraction=1.0,  # placeholder; budgets replaced below
        capacity_fraction=1.0,
        engine="vectorized",
    )
    # γ is scale-invariant in the budgets, so it can be computed on the
    # placeholder instance; D counts the finite budgets and capacities.
    gamma = global_skew_indexed(base)
    d = sum(1 for b in base.budgets if not math.isinf(b))
    d += int(np.isfinite(base.capacities).sum())
    d = max(d, 1)
    log_mu = math.log2(2.0 * gamma * d + 2.0)
    if num_streams:
        budgets = headroom * log_mu * base.stream_costs.max(axis=0)
    else:
        budgets = np.zeros(m)
    _, max_load = _row_stats(base.u_loads, base.u_indptr, empty_max=1.0)
    capacities = headroom * log_mu * max_load.reshape(num_users, mc)
    return replace(
        base,
        budgets=budgets,
        capacities=capacities,
        name="small-streams-mmd",
        _derived={},
    )


def sweep_indexed_instances(
    stream_counts: "list[int] | tuple[int, ...]",
    user_counts: "list[int] | tuple[int, ...]",
    skews: "list[float] | tuple[float, ...]" = (1.0,),
    seed: int = 0,
    density: float = 0.05,
    budget_fraction: float = 0.3,
) -> "Iterator[IndexedInstance]":
    """Stream a catalog × population × skew grid as array-native instances.

    The always-vectorized form of
    :func:`repro.instances.generators.sweep_instances`: grid cell ``t``
    draws with :func:`repro.util.rng.derive_seed` ``(seed, t)`` (seeds
    depend only on grid position, so sharded runs match unsharded
    ones); ``skew <= 1`` cells draw the §2 unit-skew family, other
    cells the bounded-skew family.  Constant memory — each instance is
    built only when the consumer asks for it.
    """
    import itertools

    from repro.instances.generators import sweep_cell
    from repro.util.rng import derive_seed

    grid = itertools.product(stream_counts, user_counts, skews)
    for t, (num_streams, num_users, skew) in enumerate(grid):
        yield sweep_cell(
            num_streams,
            num_users,
            skew,
            seed=derive_seed(seed, t),
            density=density,
            budget_fraction=budget_fraction,
            engine="vectorized",
        )
