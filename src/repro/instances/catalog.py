"""Synthetic channel catalogs with a server cost model.

The paper's Fig. 1 server is constrained in outgoing communication
bandwidth, processing bandwidth and number of input ports.  The catalog
model prices each channel in those three measures:

- **egress bandwidth** (Mbit/s): the stream's bitrate — SD/HD/UHD tiers;
- **processing** (normalized transcode units): bitrate times a codec
  factor (legacy MPEG-2 channels cost more to process per bit);
- **input ports**: one unit per channel.

Channels carry genre and popularity-rank attributes that the population
model (:mod:`repro.instances.population`) turns into user utilities.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Sequence

import numpy as np

from repro.core.instance import Stream
from repro.exceptions import ValidationError
from repro.util.rng import ensure_rng

#: Bitrates per tier in Mbit/s (typical broadcast values).
TIER_BITRATES = {"sd": 2.5, "hd": 8.0, "uhd": 16.0}

#: Default genre mix (weights sum to 1 after normalization).
DEFAULT_GENRES = {
    "news": 0.15,
    "sports": 0.15,
    "movies": 0.2,
    "kids": 0.1,
    "music": 0.1,
    "documentary": 0.1,
    "general": 0.2,
}


@dataclass
class CatalogConfig:
    """Knobs for :func:`build_catalog`.

    Attributes
    ----------
    tier_mix:
        Fractions of SD/HD/UHD channels (normalized internally).
    genres:
        Genre weights for random genre labels.
    codec_legacy_fraction:
        Fraction of channels using a legacy codec (doubled processing
        cost per bit).
    """

    tier_mix: "dict[str, float]" = field(
        default_factory=lambda: {"sd": 0.4, "hd": 0.5, "uhd": 0.1}
    )
    genres: "dict[str, float]" = field(default_factory=lambda: dict(DEFAULT_GENRES))
    codec_legacy_fraction: float = 0.3
    processing_per_mbit: float = 1.0
    legacy_processing_factor: float = 2.0


def _normalized(weights: "dict[str, float]") -> "tuple[list[str], np.ndarray]":
    keys = sorted(weights)
    values = np.array([weights[k] for k in keys], dtype=float)
    if values.sum() <= 0:
        raise ValidationError("weights must have positive sum")
    return keys, values / values.sum()


def build_catalog(
    num_channels: int,
    seed: "int | np.random.Generator | None" = None,
    config: "CatalogConfig | None" = None,
    measures: Sequence[str] = ("egress", "processing", "ports"),
) -> "list[Stream]":
    """Build ``num_channels`` streams priced in the requested measures.

    ``measures`` selects which server cost measures exist and their
    order; any subset of ``("egress", "processing", "ports")``.
    Channels are ranked by popularity: ``rank`` 0 is the most popular
    (the population model assigns Zipf utility by rank).
    """
    cfg = config or CatalogConfig()
    rng = ensure_rng(seed)
    known = {"egress", "processing", "ports"}
    unknown = set(measures) - known
    if unknown:
        raise ValidationError(f"unknown measures {sorted(unknown)!r}")
    tiers, tier_probs = _normalized(cfg.tier_mix)
    genres, genre_probs = _normalized(cfg.genres)
    streams = []
    for rank in range(num_channels):
        tier = tiers[int(rng.choice(len(tiers), p=tier_probs))]
        genre = genres[int(rng.choice(len(genres), p=genre_probs))]
        bitrate = TIER_BITRATES[tier]
        legacy = bool(rng.random() < cfg.codec_legacy_fraction)
        processing = bitrate * cfg.processing_per_mbit * (
            cfg.legacy_processing_factor if legacy else 1.0
        )
        by_name = {"egress": bitrate, "processing": processing, "ports": 1.0}
        costs = tuple(by_name[name] for name in measures)
        streams.append(
            Stream(
                stream_id=f"ch{rank:03d}",
                costs=costs,
                name=f"{genre.title()} {tier.upper()} #{rank}",
                attrs={
                    "genre": genre,
                    "tier": tier,
                    "bitrate": bitrate,
                    "legacy_codec": legacy,
                    "rank": rank,
                },
            )
        )
    return streams
