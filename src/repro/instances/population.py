"""Synthetic user populations with Zipf channel preferences.

A user's utility for a channel combines:

- global popularity: Zipf in the channel's popularity rank (TV viewing
  is famously heavy-tailed);
- genre affinity: each user has a preferred-genre multiplier;
- idiosyncratic noise.

Users come in two flavors matching the paper's Fig. 1: *households*
(modest downlink, modest utility) and neighborhood *video gateways*
(large downlink, utilities aggregated over many homes).  The single
capacity measure is downlink bandwidth, loaded by each stream's bitrate
— utilities and loads are deliberately *not* proportional, which is what
gives realistic workloads their nontrivial local skew.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Sequence

import numpy as np

from repro.core.instance import Stream, User
from repro.exceptions import ValidationError
from repro.util.rng import ensure_rng


@dataclass
class PopulationConfig:
    """Knobs for :func:`build_population`.

    Attributes
    ----------
    zipf_exponent:
        Popularity decay ``s``: utility base ``∝ 1/(rank+1)^s``.
    interest_probability:
        Chance a user cares about a channel at all (sparsity).
    genre_affinity:
        Multiplier applied to channels of the user's favorite genre.
    downlink_range:
        Downlink capacity (Mbit/s) drawn uniformly from this range.
    utility_scale:
        Scales all utilities (e.g. revenue units per household).
    utility_cap_fraction:
        ``W_u`` as a fraction of the user's total utility
        (``math.inf`` disables the cap — the formal §1.1 model).
    """

    zipf_exponent: float = 1.0
    interest_probability: float = 0.7
    genre_affinity: float = 3.0
    downlink_range: "tuple[float, float]" = (20.0, 60.0)
    utility_scale: float = 10.0
    utility_cap_fraction: float = math.inf


def build_population(
    num_users: int,
    catalog: Sequence[Stream],
    seed: "int | np.random.Generator | None" = None,
    config: "PopulationConfig | None" = None,
    user_prefix: str = "home",
) -> "list[User]":
    """Build ``num_users`` users over the given catalog.

    Each user's loads are the channel bitrates on his single downlink
    capacity measure; his capacity is sized to fit at least the largest
    single channel (the paper's ``w_u(S) = 0 if k_u(S) > K_u``
    convention would otherwise zero the utility).
    """
    if not catalog:
        raise ValidationError("catalog must not be empty")
    cfg = config or PopulationConfig()
    rng = ensure_rng(seed)
    genres = sorted({str(s.attrs.get("genre", "general")) for s in catalog})
    users = []
    for j in range(num_users):
        favorite = genres[int(rng.integers(0, len(genres)))]
        downlink = float(rng.uniform(*cfg.downlink_range))
        utilities: dict[str, float] = {}
        loads: dict[str, tuple[float, ...]] = {}
        for s in catalog:
            if rng.random() >= cfg.interest_probability:
                continue
            rank = int(s.attrs.get("rank", 0))
            bitrate = float(s.attrs.get("bitrate", s.costs[0]))
            base = 1.0 / (rank + 1.0) ** cfg.zipf_exponent
            affinity = cfg.genre_affinity if s.attrs.get("genre") == favorite else 1.0
            noise = float(rng.uniform(0.5, 1.5))
            utility = cfg.utility_scale * base * affinity * noise
            if bitrate > downlink:
                continue  # w_u(S) = 0 when a single stream exceeds capacity
            utilities[s.stream_id] = utility
            loads[s.stream_id] = (bitrate,)
        if not utilities:
            # Guarantee at least one interest: the cheapest channel.
            cheapest = min(catalog, key=lambda s: float(s.attrs.get("bitrate", s.costs[0])))
            bitrate = float(cheapest.attrs.get("bitrate", cheapest.costs[0]))
            downlink = max(downlink, bitrate)
            utilities[cheapest.stream_id] = cfg.utility_scale * 0.1
            loads[cheapest.stream_id] = (bitrate,)
        total = sum(utilities.values())
        if math.isinf(cfg.utility_cap_fraction):
            cap = math.inf
        else:
            cap = max(
                cfg.utility_cap_fraction * total, max(utilities.values())
            )
        users.append(
            User(
                user_id=f"{user_prefix}{j:03d}",
                utility_cap=cap,
                capacities=(downlink,),
                utilities=utilities,
                loads=loads,
                attrs={"favorite_genre": favorite, "downlink": downlink},
            )
        )
    return users


def aggregate_gateway(
    households: Sequence[User],
    gateway_id: str,
    uplink: float,
) -> User:
    """Aggregate households into one neighborhood gateway user.

    The gateway's utility for a channel is the sum over its households;
    its single capacity measure is the shared uplink, loaded once per
    channel (multicast within the neighborhood).
    """
    if not households:
        raise ValidationError("a gateway needs at least one household")
    utilities: dict[str, float] = {}
    loads: dict[str, tuple[float, ...]] = {}
    for home in households:
        for sid, w in home.utilities.items():
            utilities[sid] = utilities.get(sid, 0.0) + w
            loads[sid] = home.loads.get(sid, (0.0,))
    # Drop channels whose single-stream load exceeds the uplink.
    keep = {sid for sid in utilities if loads.get(sid, (0.0,))[0] <= uplink}
    return User(
        user_id=gateway_id,
        utility_cap=math.inf,
        capacities=(uplink,),
        utilities={sid: utilities[sid] for sid in keep},
        loads={sid: loads[sid] for sid in keep},
        attrs={"kind": "gateway", "households": len(households)},
    )
