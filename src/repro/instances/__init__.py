"""Instance generators and realistic video-distribution workloads.

- :mod:`repro.instances.generators` — random instance families with
  controlled parameters (skew, budget tightness, small-streams
  precondition), embeddings of classical problems (knapsack, budgeted
  maximum coverage), and the paper's §4.2 tightness family.
- :mod:`repro.instances.vectorized` — the same random families drawn
  with batched numpy calls, producing array-native
  :class:`~repro.core.indexed.IndexedInstance` objects directly (the
  fast path for large sweeps).
- :mod:`repro.instances.catalog` — synthetic channel catalogs (genres,
  bitrate tiers, server cost models).
- :mod:`repro.instances.population` — synthetic user populations with
  Zipf channel preferences.
- :mod:`repro.instances.workloads` — named end-to-end scenarios
  combining a catalog and a population into an MMD instance.
"""

from repro.instances.catalog import CatalogConfig, build_catalog
from repro.instances.generators import (
    knapsack_instance,
    max_coverage_instance,
    random_mmd,
    random_smd,
    random_unit_skew_smd,
    small_streams_mmd,
    sweep_instances,
    tightness_instance,
)
from repro.instances.population import PopulationConfig, build_population
from repro.instances.vectorized import (
    generate_mmd,
    generate_small_streams_mmd,
    generate_smd,
    generate_unit_skew_smd,
    resolve_gen_engine,
    sweep_indexed_instances,
)
from repro.instances.workloads import (
    cable_headend_workload,
    iptv_neighborhood_workload,
    small_streams_workload,
)

__all__ = [
    "CatalogConfig",
    "build_catalog",
    "knapsack_instance",
    "max_coverage_instance",
    "random_mmd",
    "random_smd",
    "random_unit_skew_smd",
    "small_streams_mmd",
    "sweep_instances",
    "tightness_instance",
    "generate_unit_skew_smd",
    "generate_smd",
    "generate_mmd",
    "generate_small_streams_mmd",
    "sweep_indexed_instances",
    "resolve_gen_engine",
    "PopulationConfig",
    "build_population",
    "cable_headend_workload",
    "iptv_neighborhood_workload",
    "small_streams_workload",
]
