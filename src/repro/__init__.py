"""repro — Video Distribution Under Multiple Constraints.

A reproduction of Patt-Shamir & Rawitz (ICDCS 2008 / TCS 2011): the
Multi-budget Multi-client Distribution (MMD) problem, its approximation
algorithms, the online small-streams algorithm, exact reference solvers,
workload generators, and a discrete-event video-distribution simulator.

Quickstart::

    from repro import unit_skew_instance, solve_smd

    instance = unit_skew_instance(
        stream_costs={"news": 4.0, "sports": 8.0, "movies": 6.0},
        budget=10.0,
        utilities={
            "home-a": {"news": 3.0, "sports": 9.0},
            "home-b": {"movies": 5.0, "news": 2.0},
        },
        utility_caps={"home-a": 10.0, "home-b": 6.0},
    )
    result = solve_smd(instance)
    print(result.utility, result.assignment.as_dict())

See DESIGN.md for the paper-to-module map and EXPERIMENTS.md for the
reproduced results.
"""

from repro.core.allocate import (
    AllocateResult,
    OnlineAllocator,
    allocate,
    small_streams_condition,
)
from repro.core.assignment import Assignment, best_assignment, saturating_assignment
from repro.core.baselines import (
    density_greedy,
    random_admission,
    threshold_admission,
    utility_greedy,
)
from repro.core.dynamic import TimedAllocator, TimedGrant
from repro.core.enumeration import partial_enumeration, partial_enumeration_feasible
from repro.core.localsearch import local_search
from repro.core.rounding import lp_rounding
from repro.core.greedy import (
    GreedyTrace,
    best_single_stream_assignment,
    greedy,
    greedy_feasible,
    greedy_lazy,
    greedy_with_best_stream,
)
from repro.core.instance import (
    MMDInstance,
    Stream,
    User,
    sanitize_utilities,
    smd_instance,
    unit_skew_instance,
)
from repro.core.optimal import (
    ExactSolution,
    lp_upper_bound,
    solve_exact_bruteforce,
    solve_exact_milp,
)
from repro.core.reduction import (
    SingleBudgetReduction,
    reduce_to_single_budget,
    solve_by_reduction,
    unit_interval_decomposition,
    utility_cap_as_capacity,
)
from repro.core.indexed import (
    IndexedAssignment,
    IndexedInstance,
    build_indexed,
    ensure_indexed,
    ensure_instance,
    index_instance,
    resolve_engine,
)
from repro.core.skew import SkewClass, classify_and_select, classify_by_skew
from repro.core.solver import (
    SolveResult,
    best_single_stream_mmd,
    greedy_fill,
    iter_solve_many,
    solve_many,
    solve_mmd,
    solve_smd,
    theorem_1_1_bound,
)
from repro.core.utility import CoverageUtility
from repro.experiments import (
    ExperimentRun,
    ScenarioSpec,
    SpecError,
    WorkUnit,
    builtin_specs,
    load_spec,
    run_experiment,
)
from repro.exceptions import (
    InfeasibleError,
    ReproError,
    SimulationError,
    SolverError,
    ValidationError,
)

__version__ = "1.0.0"

__all__ = [
    # data model
    "MMDInstance",
    "Stream",
    "User",
    "Assignment",
    "smd_instance",
    "unit_skew_instance",
    "sanitize_utilities",
    "best_assignment",
    "saturating_assignment",
    "CoverageUtility",
    # §2 algorithms
    "greedy",
    "greedy_lazy",
    "greedy_feasible",
    "greedy_with_best_stream",
    "best_single_stream_assignment",
    "GreedyTrace",
    "partial_enumeration",
    "partial_enumeration_feasible",
    # §3 / §4 reductions
    "classify_by_skew",
    "classify_and_select",
    "SkewClass",
    "reduce_to_single_budget",
    "solve_by_reduction",
    "unit_interval_decomposition",
    "utility_cap_as_capacity",
    "SingleBudgetReduction",
    # §5 online (+ footnote-1 finite-duration extension)
    "OnlineAllocator",
    "allocate",
    "AllocateResult",
    "small_streams_condition",
    "TimedAllocator",
    "TimedGrant",
    # compiled indexed-instance layer
    "IndexedInstance",
    "IndexedAssignment",
    "index_instance",
    "build_indexed",
    "ensure_instance",
    "ensure_indexed",
    "resolve_engine",
    # experiment orchestration
    "ScenarioSpec",
    "SpecError",
    "WorkUnit",
    "ExperimentRun",
    "builtin_specs",
    "load_spec",
    "run_experiment",
    # end-to-end solvers and heuristics
    "solve_smd",
    "solve_mmd",
    "solve_many",
    "iter_solve_many",
    "SolveResult",
    "best_single_stream_mmd",
    "greedy_fill",
    "theorem_1_1_bound",
    "local_search",
    "lp_rounding",
    # exact reference
    "solve_exact_milp",
    "solve_exact_bruteforce",
    "lp_upper_bound",
    "ExactSolution",
    # baselines
    "threshold_admission",
    "utility_greedy",
    "density_greedy",
    "random_admission",
    # exceptions
    "ReproError",
    "ValidationError",
    "InfeasibleError",
    "SolverError",
    "SimulationError",
    "__version__",
]
