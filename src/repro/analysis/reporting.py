"""EXPERIMENTS.md rendering.

Every benchmark prints its table to stdout and (optionally, when
``REPRO_WRITE_EXPERIMENTS`` is set) appends the same table to a staging
area consumed by :func:`write_experiments_md`, so the recorded report is
exactly what the harness measured.
"""

from __future__ import annotations

import os
from pathlib import Path
from typing import Any, Iterable, Sequence

from repro.util.tables import Table

#: Staging directory for experiment sections (one file per experiment id).
STAGING_ENV = "REPRO_EXPERIMENTS_DIR"


def experiment_section(
    experiment_id: str,
    title: str,
    paper_claim: str,
    columns: Sequence[str],
    rows: Iterable[Iterable[Any]],
    notes: str = "",
) -> str:
    """Render one experiment's markdown section (also returned for stdout)."""
    table = Table(list(columns))
    for row in rows:
        table.add_row(row)
    parts = [
        f"## {experiment_id} — {title}",
        "",
        f"**Paper claim.** {paper_claim}",
        "",
        table.render_markdown(),
    ]
    if notes:
        parts.extend(["", notes])
    section = "\n".join(parts) + "\n"
    staging = os.environ.get(STAGING_ENV)
    if staging:
        path = Path(staging)
        path.mkdir(parents=True, exist_ok=True)
        (path / f"{experiment_id}.md").write_text(section)
    return section


def _experiment_sort_key(path: Path) -> "tuple[int, int, str]":
    """Natural ordering: theorem experiments (E1..E10) first, figure
    reproductions (F*) next, ablations (A*) last; numeric ids sorted
    numerically so E10 follows E9."""
    stem = path.stem
    category = {"E": 0, "F": 1, "A": 2}.get(stem[:1], 3)
    digits = "".join(ch for ch in stem[1:] if ch.isdigit())
    return (category, int(digits) if digits else 0, stem)


def write_experiments_md(
    staging_dir: str,
    output_path: str,
    header: str,
) -> str:
    """Assemble staged sections (naturally ordered by experiment id)."""
    staging = Path(staging_dir)
    sections = []
    for section_file in sorted(staging.glob("*.md"), key=_experiment_sort_key):
        sections.append(section_file.read_text())
    document = header.rstrip() + "\n\n" + "\n".join(sections)
    Path(output_path).write_text(document)
    return document
