"""Terminal plotting for benchmark and CLI output (no matplotlib offline).

Two primitives cover the harness's needs:

- :func:`bar_chart` — horizontal labeled bars (policy comparisons);
- :func:`line_plot` — a braille-free, character-grid XY plot (scaling
  curves, load traces).
"""

from __future__ import annotations

from typing import Sequence


def bar_chart(
    labels: Sequence[str],
    values: Sequence[float],
    width: int = 50,
    unit: str = "",
) -> str:
    """Horizontal bar chart.

    >>> print(bar_chart(["a", "b"], [10, 5], width=10))
    a | ██████████ 10
    b | █████ 5
    """
    if len(labels) != len(values):
        raise ValueError("labels and values must have equal length")
    if not labels:
        return "(no data)"
    peak = max(max(values), 1e-12)
    label_width = max(len(label) for label in labels)
    lines = []
    for label, value in zip(labels, values):
        bar = "█" * max(0, int(round(width * value / peak)))
        shown = f"{value:g}{unit}"
        lines.append(f"{label.ljust(label_width)} | {bar} {shown}")
    return "\n".join(lines)


def line_plot(
    xs: Sequence[float],
    ys: Sequence[float],
    width: int = 60,
    height: int = 12,
    x_label: str = "",
    y_label: str = "",
) -> str:
    """Character-grid XY plot with axis annotations."""
    if len(xs) != len(ys):
        raise ValueError("xs and ys must have equal length")
    if not xs:
        return "(no data)"
    x_min, x_max = min(xs), max(xs)
    y_min, y_max = min(ys), max(ys)
    x_span = max(x_max - x_min, 1e-12)
    y_span = max(y_max - y_min, 1e-12)
    grid = [[" "] * width for _ in range(height)]
    for x, y in zip(xs, ys):
        col = int(round((x - x_min) / x_span * (width - 1)))
        row = int(round((y - y_min) / y_span * (height - 1)))
        grid[height - 1 - row][col] = "*"
    lines = []
    for r, row in enumerate(grid):
        if r == 0:
            prefix = f"{y_max:>10.3g} ┤"
        elif r == height - 1:
            prefix = f"{y_min:>10.3g} ┤"
        else:
            prefix = " " * 10 + " │"
        lines.append(prefix + "".join(row))
    lines.append(" " * 11 + "└" + "─" * width)
    lines.append(
        " " * 12 + f"{x_min:<12.3g}" + " " * max(0, width - 24) + f"{x_max:>12.3g}"
    )
    if x_label or y_label:
        lines.append(" " * 12 + f"x: {x_label}   y: {y_label}".rstrip())
    return "\n".join(lines)


def sparkline(values: Sequence[float]) -> str:
    """One-line trend: ▁▂▃▄▅▆▇█ buckets."""
    blocks = "▁▂▃▄▅▆▇█"
    if not values:
        return ""
    low, high = min(values), max(values)
    span = max(high - low, 1e-12)
    return "".join(
        blocks[min(int((v - low) / span * (len(blocks) - 1)), len(blocks) - 1)]
        for v in values
    )
