"""Empirical approximation-ratio measurement.

The paper's results are worst-case bounds; the reproduction checks them
by measuring ``OPT / ALG`` over instance ensembles, where OPT comes
from the exact MILP (or the LP relaxation as an upper bound when exact
solving is too slow — this yields a *pessimistic* ratio estimate, so a
bound that holds against the LP holds against OPT too).
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Callable, Iterable

from repro.core.assignment import Assignment
from repro.core.instance import MMDInstance
from repro.core.optimal import lp_upper_bound, solve_exact_milp

Algorithm = Callable[[MMDInstance], Assignment]


@dataclass
class RatioStats:
    """Summary of measured ratios for one algorithm over an ensemble.

    Ratios are ``reference / achieved`` (1.0 = optimal); ``worst`` is
    what must stay below the paper's bound.
    """

    algorithm: str
    ratios: "list[float]" = field(default_factory=list)
    infeasible_count: int = 0

    @property
    def count(self) -> int:
        return len(self.ratios)

    @property
    def worst(self) -> float:
        return max(self.ratios) if self.ratios else math.nan

    @property
    def best(self) -> float:
        return min(self.ratios) if self.ratios else math.nan

    @property
    def mean(self) -> float:
        return sum(self.ratios) / len(self.ratios) if self.ratios else math.nan

    def record(self, reference: float, achieved: float, feasible: bool) -> None:
        if not feasible:
            self.infeasible_count += 1
        if achieved <= 0:
            if reference <= 0:
                self.ratios.append(1.0)
            else:
                self.ratios.append(math.inf)
            return
        self.ratios.append(reference / achieved)

    def row(self, bound: float) -> "list[object]":
        """A report row: [algorithm, n, mean, worst, paper bound, ok?]."""
        ok = self.worst <= bound * (1 + 1e-9) and self.infeasible_count == 0
        return [self.algorithm, self.count, self.mean, self.worst, bound, "yes" if ok else "NO"]


def measure_ratios(
    algorithms: "dict[str, Algorithm]",
    instances: Iterable[MMDInstance],
    reference: str = "milp",
) -> "dict[str, RatioStats]":
    """Run every algorithm on every instance against the reference optimum.

    ``reference`` is ``"milp"`` (exact) or ``"lp"`` (upper bound; the
    measured ratios then over-estimate the true ones).
    """
    if reference not in ("milp", "lp"):
        raise ValueError(f"unknown reference {reference!r}")
    stats = {name: RatioStats(name) for name in algorithms}
    for instance in instances:
        if reference == "milp":
            ref_value = solve_exact_milp(instance).utility
        else:
            ref_value = lp_upper_bound(instance)
        for name, algorithm in algorithms.items():
            solution = algorithm(instance)
            stats[name].record(ref_value, solution.utility(), solution.is_feasible())
    return stats
