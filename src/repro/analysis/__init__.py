"""Experiment harness: empirical ratios, sweeps, and report formatting."""

from repro.analysis.experiments import ExperimentResult, run_sweep
from repro.analysis.ratios import RatioStats, measure_ratios
from repro.analysis.reporting import experiment_section, write_experiments_md

__all__ = [
    "ExperimentResult",
    "run_sweep",
    "RatioStats",
    "measure_ratios",
    "experiment_section",
    "write_experiments_md",
]
