"""Parameter-sweep plumbing shared by the benchmark harness."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Callable, Iterable, Mapping


@dataclass
class ExperimentResult:
    """One sweep point: the parameters and whatever the runner measured."""

    params: "dict[str, Any]"
    metrics: "dict[str, Any]" = field(default_factory=dict)

    def row(self, param_keys: "list[str]", metric_keys: "list[str]") -> "list[Any]":
        return [self.params.get(k) for k in param_keys] + [
            self.metrics.get(k) for k in metric_keys
        ]


def run_sweep(
    runner: "Callable[..., Mapping[str, Any]]",
    grid: "Iterable[Mapping[str, Any]]",
) -> "list[ExperimentResult]":
    """Call ``runner(**params)`` for every parameter dict in ``grid``.

    The runner returns a metrics mapping; results preserve grid order.
    """
    results = []
    for params in grid:
        metrics = dict(runner(**params))
        results.append(ExperimentResult(params=dict(params), metrics=metrics))
    return results


def grid(**axes: "Iterable[Any]") -> "list[dict[str, Any]]":
    """Cartesian product of named axes, e.g. ``grid(m=[1,2], mc=[1,2])``."""
    points: "list[dict[str, Any]]" = [{}]
    for name, values in axes.items():
        points = [dict(p, **{name: v}) for p in points for v in values]
    return points
