"""Arrival-trace persistence: save and replay simulation traces.

Saving the exact arrival trace lets experiments be replayed bit-for-bit
later (or against new policies) without re-seeding: the trace *is* the
workload, the policy is the variable.

This JSON form is the small, human-readable one — an array of
``SessionEvent`` objects, loaded fully into RAM.  For production-scale
traces (10⁶ events and beyond) use the out-of-core columnar store
instead (:mod:`repro.sim.store`, ``repro trace write`` on the CLI):
one ``.npy`` per column, opened zero-copy via mmap and replayable in
bounded memory.  :func:`store_events` bridges the two — it streams a
``SessionEvent`` iterable into a store without materializing arrays
for the whole trace.
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import Iterable

from repro.exceptions import ValidationError
from repro.sim.simulation import SessionEvent


def trace_to_json(trace: Iterable[SessionEvent]) -> str:
    """Serialize a trace to a JSON array."""
    return json.dumps(
        [
            {"time": e.time, "stream_id": e.stream_id, "duration": e.duration}
            for e in trace
        ]
    )


def trace_from_json(text: str) -> "list[SessionEvent]":
    """Inverse of :func:`trace_to_json`; validates monotone times."""
    try:
        raw = json.loads(text)
    except json.JSONDecodeError as exc:
        raise ValidationError(f"invalid trace JSON: {exc}") from exc
    events = []
    last_time = float("-inf")
    for item in raw:
        event = SessionEvent(
            time=float(item["time"]),
            stream_id=str(item["stream_id"]),
            duration=float(item["duration"]),
        )
        if event.time < last_time:
            raise ValidationError("trace times must be nondecreasing")
        if event.duration <= 0:
            raise ValidationError("trace durations must be positive")
        last_time = event.time
        events.append(event)
    return events


def store_events(
    instance,
    events: Iterable[SessionEvent],
    path: "str | Path",
    *,
    chunk: "int | None" = None,
    meta: "dict[str, object] | None" = None,
):
    """Stream a ``SessionEvent`` iterable into a columnar trace store.

    The bridge from the JSON/object trace form to the out-of-core
    store: stream ids are lowered to indices against ``instance`` (an
    unknown id raises the canonical
    :class:`~repro.exceptions.ValidationError`), and events are
    buffered in :func:`~repro.config.resolve_store_chunk`-sized chunks,
    so an arbitrarily long iterable never materializes whole-trace
    arrays.  Returns the reopened
    :class:`~repro.sim.store.TraceStore`.
    """
    from repro.config import resolve_store_chunk
    from repro.core.indexed import ensure_indexed
    from repro.sim.store import TraceStore, TraceStoreWriter

    idx = ensure_indexed(instance)
    stream_index = idx.stream_index
    step = resolve_store_chunk(chunk)
    buffer: "list[tuple[float, int, float]]" = []
    with TraceStoreWriter(path, meta=meta) as writer:
        for event in events:
            index = stream_index.get(event.stream_id)
            if index is None:
                raise ValidationError(f"unknown stream id {event.stream_id!r}")
            buffer.append((event.time, index, event.duration))
            if len(buffer) >= step:
                times, streams, durations = zip(*buffer)
                writer.append(times, streams, durations)
                buffer.clear()
        if buffer:
            times, streams, durations = zip(*buffer)
            writer.append(times, streams, durations)
    return TraceStore.open(path)


def save_trace(trace: Iterable[SessionEvent], path: "str | Path") -> None:
    """Write a trace to disk."""
    Path(path).write_text(trace_to_json(trace))


def load_trace(path: "str | Path") -> "list[SessionEvent]":
    """Read a trace from disk."""
    return trace_from_json(Path(path).read_text())
