"""Arrival-trace persistence: save and replay simulation traces.

Saving the exact arrival trace lets experiments be replayed bit-for-bit
later (or against new policies) without re-seeding: the trace *is* the
workload, the policy is the variable.
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import Iterable

from repro.exceptions import ValidationError
from repro.sim.simulation import SessionEvent


def trace_to_json(trace: Iterable[SessionEvent]) -> str:
    """Serialize a trace to a JSON array."""
    return json.dumps(
        [
            {"time": e.time, "stream_id": e.stream_id, "duration": e.duration}
            for e in trace
        ]
    )


def trace_from_json(text: str) -> "list[SessionEvent]":
    """Inverse of :func:`trace_to_json`; validates monotone times."""
    try:
        raw = json.loads(text)
    except json.JSONDecodeError as exc:
        raise ValidationError(f"invalid trace JSON: {exc}") from exc
    events = []
    last_time = float("-inf")
    for item in raw:
        event = SessionEvent(
            time=float(item["time"]),
            stream_id=str(item["stream_id"]),
            duration=float(item["duration"]),
        )
        if event.time < last_time:
            raise ValidationError("trace times must be nondecreasing")
        if event.duration <= 0:
            raise ValidationError("trace durations must be positive")
        last_time = event.time
        events.append(event)
    return events


def save_trace(trace: Iterable[SessionEvent], path: "str | Path") -> None:
    """Write a trace to disk."""
    Path(path).write_text(trace_to_json(trace))


def load_trace(path: "str | Path") -> "list[SessionEvent]":
    """Read a trace from disk."""
    return trace_from_json(Path(path).read_text())
