"""The video-distribution simulation (the paper's Fig. 1, animated).

Stream sessions arrive as a Poisson process; each session proposes one
catalog stream (drawn Zipf-by-rank among streams not currently carried)
and lives for an exponential duration.  The bound admission policy
decides the receiver set; while a session is active, each receiving
user accrues ``w_u(S)`` utility per unit time.  The simulator owns
resource accounting, hard-enforces feasibility (policy answers are
clipped, and clips are counted as violations), and integrates metrics
exactly via :class:`repro.sim.metrics.TimeWeightedValue`.

This is the substrate for experiment E9: the same arrival trace is
replayed under every policy (common random numbers), so differences in
collected utility are attributable to the policies alone.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

import numpy as np

from repro.core.instance import MMDInstance
from repro.exceptions import SimulationError
from repro.sim.engine import Engine, Timeout
from repro.sim.metrics import SimulationReport, TimeWeightedValue
from repro.sim.policies import AdmissionPolicy, ResourceView
from repro.util.rng import ensure_rng


@dataclass
class ArrivalModel:
    """Session arrival statistics.

    Attributes
    ----------
    rate:
        Poisson arrival rate of session proposals (per time unit).
    mean_duration:
        Exponential mean session length.
    popularity_exponent:
        Zipf exponent over catalog rank when sampling which stream a
        session proposes (0 = uniform).
    """

    rate: float = 1.0
    mean_duration: float = 10.0
    popularity_exponent: float = 1.0


@dataclass(frozen=True)
class SessionEvent:
    """One entry of a pre-drawn arrival trace: at ``time``, stream
    ``stream_id`` is proposed with lifetime ``duration``."""

    time: float
    stream_id: str
    duration: float


def draw_trace(
    instance: MMDInstance,
    model: ArrivalModel,
    horizon: float,
    seed: "int | np.random.Generator | None" = None,
) -> "list[SessionEvent]":
    """Pre-draw an arrival trace (for common-random-number comparisons).

    Streams currently active are *not* excluded here — the trace is
    policy-independent; the simulator skips proposals for streams it
    already carries (a multicast system gets no new decision from a
    second request for a carried stream).
    """
    rng = ensure_rng(seed)
    ranks = np.arange(1, instance.num_streams + 1, dtype=float)
    weights = ranks ** (-model.popularity_exponent)
    weights /= weights.sum()
    sids = instance.stream_ids()
    events = []
    t = 0.0
    while True:
        t += float(rng.exponential(1.0 / model.rate))
        if t > horizon:
            break
        idx = int(rng.choice(len(sids), p=weights))
        duration = float(rng.exponential(model.mean_duration))
        events.append(SessionEvent(time=t, stream_id=sids[idx], duration=duration))
    return events


class VideoDistributionSim:
    """Drives one policy over one arrival trace.

    Parameters
    ----------
    instance:
        The static instance: catalog, users (with capacities), budgets.
    policy:
        The admission policy under test; ``bind`` is called here.
    """

    def __init__(self, instance: MMDInstance, policy: AdmissionPolicy) -> None:
        self.instance = instance
        self.policy = policy
        self.policy.bind(instance)
        self.view = ResourceView(instance)
        self.engine = Engine()
        self._utility_rate = TimeWeightedValue()
        self._user_rate = {u.user_id: TimeWeightedValue() for u in instance.users}
        self._server_load = {
            i: TimeWeightedValue()
            for i, b in enumerate(instance.budgets)
            if not math.isinf(b)
        }
        self._active_receivers: "dict[str, list[str]]" = {}
        self.offered = 0
        self.admitted = 0
        self.deliveries = 0
        self.policy_violations = 0

    # ------------------------------------------------------------------
    # Event handlers
    # ------------------------------------------------------------------

    def _clip_to_feasible(self, stream_id: str, receivers: "list[str]") -> "list[str]":
        """Hard feasibility guard: drop the stream on server overflow,
        drop individual users on capacity overflow; count violations."""
        if receivers and not self.view.fits_server(stream_id):
            self.policy_violations += 1
            return []
        kept = []
        for uid in receivers:
            if self.instance.user(uid).utility(stream_id) <= 0:
                self.policy_violations += 1
                continue
            if self.view.fits_user(uid, stream_id):
                kept.append(uid)
            else:
                self.policy_violations += 1
        return kept

    def _on_arrival(self, event: SessionEvent) -> None:
        if event.stream_id in self.view.active_streams:
            return  # already multicast; no new decision
        self.offered += 1
        receivers = self.policy.on_offer(event.stream_id, self.view)
        receivers = self._clip_to_feasible(event.stream_id, list(receivers))
        if not receivers:
            return
        self.admitted += 1
        self.deliveries += len(receivers)
        now = self.engine.now
        stream = self.instance.stream(event.stream_id)
        self.view.active_streams.add(event.stream_id)
        self._active_receivers[event.stream_id] = receivers
        for i in range(self.instance.m):
            self.view.server_used[i] += stream.costs[i]
            if i in self._server_load:
                self._server_load[i].set(
                    now, self.view.server_used[i] / self.instance.budgets[i]
                )
        rate_gain = 0.0
        for uid in receivers:
            user = self.instance.user(uid)
            loads = user.load_vector(event.stream_id)
            for j in range(self.instance.mc):
                self.view.user_used[uid][j] += loads[j]
            rate_gain += user.utilities[event.stream_id]
            self._user_rate[uid].add(now, user.utilities[event.stream_id])
        self._utility_rate.add(now, rate_gain)
        self.engine.schedule(event.duration, lambda: self._on_departure(event.stream_id))

    def _on_departure(self, stream_id: str) -> None:
        if stream_id not in self.view.active_streams:
            raise SimulationError(f"departure of inactive stream {stream_id!r}")
        now = self.engine.now
        stream = self.instance.stream(stream_id)
        receivers = self._active_receivers.pop(stream_id)
        self.view.active_streams.discard(stream_id)
        for i in range(self.instance.m):
            self.view.server_used[i] -= stream.costs[i]
            if i in self._server_load:
                self._server_load[i].set(
                    now, self.view.server_used[i] / self.instance.budgets[i]
                )
        rate_loss = 0.0
        for uid in receivers:
            user = self.instance.user(uid)
            loads = user.load_vector(stream_id)
            for j in range(self.instance.mc):
                self.view.user_used[uid][j] -= loads[j]
            rate_loss += user.utilities[stream_id]
            self._user_rate[uid].add(now, -user.utilities[stream_id])
        self._utility_rate.add(now, -rate_loss)
        self.policy.on_release(stream_id)

    # ------------------------------------------------------------------
    # Driving
    # ------------------------------------------------------------------

    def run_trace(self, trace: "list[SessionEvent]", horizon: float) -> SimulationReport:
        """Replay a pre-drawn trace up to ``horizon`` and report."""
        for event in trace:
            if event.time > horizon:
                continue
            self.engine.schedule_at(event.time, lambda e=event: self._on_arrival(e))
        self.engine.run_until(horizon)
        report = SimulationReport(
            policy_name=self.policy.name,
            horizon=horizon,
            utility_time=self._utility_rate.integral(horizon),
            offered=self.offered,
            admitted=self.admitted,
            deliveries=self.deliveries,
        )
        for i, stat in self._server_load.items():
            report.server_utilization[i] = stat.mean(horizon)
            report.peak_server_utilization[i] = stat.peak
        for uid, stat in self._user_rate.items():
            report.per_user_utility[uid] = stat.integral(horizon)
        return report

    def run(
        self,
        horizon: float,
        model: "ArrivalModel | None" = None,
        seed: "int | np.random.Generator | None" = None,
    ) -> SimulationReport:
        """Draw a trace and replay it (one-policy convenience)."""
        trace = draw_trace(self.instance, model or ArrivalModel(), horizon, seed)
        return self.run_trace(trace, horizon)


def compare_policies(
    instance: MMDInstance,
    policies: "list[AdmissionPolicy]",
    horizon: float,
    model: "ArrivalModel | None" = None,
    seed: "int | np.random.Generator | None" = 0,
) -> "list[SimulationReport]":
    """Run every policy over the *same* arrival trace (common random
    numbers) and return their reports, in the given policy order."""
    trace = draw_trace(instance, model or ArrivalModel(), horizon, seed)
    reports = []
    for policy in policies:
        sim = VideoDistributionSim(instance, policy)
        reports.append(sim.run_trace(trace, horizon))
    return reports
