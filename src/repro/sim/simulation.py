"""The video-distribution simulation (the paper's Fig. 1, animated).

Stream sessions arrive as a Poisson process; each session proposes one
catalog stream (drawn Zipf-by-rank among streams not currently carried)
and lives for an exponential duration.  The bound admission policy
decides the receiver set; while a session is active, each receiving
user accrues ``w_u(S)`` utility per unit time.  The simulator owns
resource accounting, hard-enforces feasibility (policy answers are
clipped, and clips are counted as violations), and integrates metrics
exactly via :class:`repro.sim.metrics.TimeWeightedValue`.

This is the substrate for experiment E9: the same arrival trace is
replayed under every policy (common random numbers), so differences in
collected utility are attributable to the policies alone.

Three replay engines implement the identical semantics:

- ``engine="dict"`` — :class:`VideoDistributionSim`, the original
  string-keyed event-loop implementation (heap calendar, per-user
  Python loops);
- ``engine="indexed"`` (default; ``$REPRO_SIM_ENGINE`` overrides) —
  :class:`repro.sim.indexed.IndexedVideoSim`, the array-native engine,
  which reproduces the dict engine's reports float-for-float on any
  common trace (``tests/test_sim_indexed.py``);
- ``engine="chunked"`` — :class:`repro.sim.kernel.ChunkedVideoSim`,
  the chunked event-dispatch kernel for 10⁶-event traces: no-decision
  event runs are skipped wholesale, Python fires only at policy
  decisions and live departures, and reports stay float-identical;
- ``engine="batched"`` — :class:`repro.sim.kernel.BatchedVideoSim`,
  the chunked kernel with batched policy decisions: departure-free
  arrival groups are answered by one vectorized ``on_offer_batch``
  call, still float-identical.

:func:`simulate_trace` and :func:`compare_policies` are the
engine-dispatching front doors; :func:`compare_policies` additionally
fans policies out over a process pool with ``parallel=N``.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from pathlib import Path

import numpy as np

from repro.config import resolve_store_window
from repro.core.indexed import IndexedInstance, ensure_indexed, ensure_instance
from repro.core.instance import MMDInstance
from repro.exceptions import SimulationError, ValidationError
from repro.sim.engine import Engine
from repro.sim.indexed import (
    IndexedTrace,
    IndexedVideoSim,
    draw_trace_arrays,
    resolve_sim_engine,
)
from repro.sim.metrics import SimulationReport, TimeWeightedValue
from repro.sim.policies import AdmissionPolicy, ResourceView
from repro.util.rng import ensure_rng

__all__ = [
    "ArrivalModel",
    "SessionEvent",
    "draw_trace",
    "VideoDistributionSim",
    "simulate_trace",
    "compare_policies",
]


@dataclass
class ArrivalModel:
    """Session arrival statistics.

    Attributes
    ----------
    rate:
        Poisson arrival rate of session proposals (per time unit).
    mean_duration:
        Exponential mean session length.
    popularity_exponent:
        Zipf exponent over catalog rank when sampling which stream a
        session proposes (0 = uniform).
    """

    rate: float = 1.0
    mean_duration: float = 10.0
    popularity_exponent: float = 1.0


@dataclass(frozen=True)
class SessionEvent:
    """One entry of a pre-drawn arrival trace: at ``time``, stream
    ``stream_id`` is proposed with lifetime ``duration``."""

    time: float
    stream_id: str
    duration: float


def draw_trace(
    instance: "MMDInstance | IndexedInstance",
    model: ArrivalModel,
    horizon: float,
    seed: "int | np.random.Generator | None" = None,
    engine: "str | None" = None,
) -> "list[SessionEvent]":
    """Pre-draw an arrival trace (for common-random-number comparisons).

    Streams currently active are *not* excluded here — the trace is
    policy-independent; the simulator skips proposals for streams it
    already carries (a multicast system gets no new decision from a
    second request for a carried stream).

    ``engine="indexed"`` (the default) and ``engine="chunked"`` draw
    the whole trace with batched numpy calls
    (:func:`repro.sim.indexed.draw_trace_arrays`); ``engine="dict"``
    keeps the original per-event loop.  All are deterministic under
    ``seed``, but the array draw consumes randomness in a different
    order than the loop draw, so the dict engine produces a different
    (equally distributed) trace for the same seed.

    Degenerate inputs — a zero arrival rate or an empty catalog — yield
    an empty trace under every engine (the rate formerly divided by
    zero, and an empty catalog produced NaN Zipf weights).
    """
    idx = ensure_indexed(instance)
    if resolve_sim_engine(engine) != "dict":
        return draw_trace_arrays(idx, model, horizon, seed).to_events(idx)
    if model.rate <= 0 or idx.num_streams == 0 or horizon <= 0:
        return []
    rng = ensure_rng(seed)
    ranks = np.arange(1, idx.num_streams + 1, dtype=float)
    weights = ranks ** (-model.popularity_exponent)
    weights /= weights.sum()
    sids = idx.stream_ids
    events = []
    t = 0.0
    while True:
        t += float(rng.exponential(1.0 / model.rate))
        if t > horizon:
            break
        idx_choice = int(rng.choice(len(sids), p=weights))
        duration = float(rng.exponential(model.mean_duration))
        events.append(SessionEvent(time=t, stream_id=sids[idx_choice], duration=duration))
    return events


class VideoDistributionSim:
    """Drives one policy over one arrival trace (the ``dict`` engine).

    Parameters
    ----------
    instance:
        The static instance: catalog, users (with capacities), budgets.
        Array-native instances are lifted to the string-keyed model.
    policy:
        The admission policy under test; ``bind`` is called here.
    """

    def __init__(
        self,
        instance: "MMDInstance | IndexedInstance",
        policy: AdmissionPolicy,
    ) -> None:
        self.instance = ensure_instance(instance)
        self.policy = policy
        self.policy.bind(self.instance)
        self.view = ResourceView(self.instance)
        self.engine = Engine()
        self._utility_rate = TimeWeightedValue()
        # Sparse: a user's integrator is created on first delivery, so a
        # run touching few users never materializes O(n) objects.
        self._user_rate: "dict[str, TimeWeightedValue]" = {}
        self._server_load = {
            i: TimeWeightedValue()
            for i, b in enumerate(self.instance.budgets)
            if not math.isinf(b)
        }
        self._active_receivers: "dict[str, list[str]]" = {}
        self.offered = 0
        self.admitted = 0
        self.deliveries = 0
        self.policy_violations = 0

    # ------------------------------------------------------------------
    # Event handlers
    # ------------------------------------------------------------------

    def _user_stat(self, user_id: str) -> TimeWeightedValue:
        stat = self._user_rate.get(user_id)
        if stat is None:
            stat = self._user_rate[user_id] = TimeWeightedValue()
        return stat

    def _clip_to_feasible(self, stream_id: str, receivers: "list[str]") -> "list[str]":
        """Hard feasibility guard: drop the stream on server overflow,
        drop individual users on capacity overflow; count violations.
        Duplicate receivers (a buggy policy answering the same user
        twice) are collapsed to the first occurrence — a multicast
        delivery has no double-receive."""
        if receivers and not self.view.fits_server(stream_id):
            self.policy_violations += 1
            return []
        kept = []
        seen: set[str] = set()
        for uid in receivers:
            if uid in seen:
                continue
            seen.add(uid)
            if self.instance.user(uid).utility(stream_id) <= 0:
                self.policy_violations += 1
                continue
            if self.view.fits_user(uid, stream_id):
                kept.append(uid)
            else:
                self.policy_violations += 1
        return kept

    def _on_arrival(self, event: SessionEvent) -> None:
        if event.stream_id in self.view.active_streams:
            return  # already multicast; no new decision
        self.offered += 1
        receivers = self.policy.on_offer(event.stream_id, self.view)
        receivers = self._clip_to_feasible(event.stream_id, list(receivers))
        if not receivers:
            return
        self.admitted += 1
        self.deliveries += len(receivers)
        now = self.engine.now
        stream = self.instance.stream(event.stream_id)
        self.view.activate(event.stream_id)
        self._active_receivers[event.stream_id] = receivers
        for i in range(self.instance.m):
            self.view.server_used[i] += stream.costs[i]
            if i in self._server_load:
                self._server_load[i].set(
                    now, self.view.server_used[i] / self.instance.budgets[i]
                )
        rate_gain = 0.0
        for uid in receivers:
            user = self.instance.user(uid)
            loads = user.load_vector(event.stream_id)
            for j in range(self.instance.mc):
                self.view.user_used[uid][j] += loads[j]
            rate_gain += user.utilities[event.stream_id]
            self._user_stat(uid).add(now, user.utilities[event.stream_id])
        self._utility_rate.add(now, rate_gain)
        self.engine.schedule(event.duration, lambda: self._on_departure(event.stream_id))

    def _on_departure(self, stream_id: str) -> None:
        if stream_id not in self.view.active_streams:
            raise SimulationError(f"departure of inactive stream {stream_id!r}")
        now = self.engine.now
        stream = self.instance.stream(stream_id)
        receivers = self._active_receivers.pop(stream_id)
        self.view.deactivate(stream_id)
        for i in range(self.instance.m):
            self.view.server_used[i] -= stream.costs[i]
            if i in self._server_load:
                self._server_load[i].set(
                    now, self.view.server_used[i] / self.instance.budgets[i]
                )
        rate_loss = 0.0
        for uid in receivers:
            user = self.instance.user(uid)
            loads = user.load_vector(stream_id)
            for j in range(self.instance.mc):
                self.view.user_used[uid][j] -= loads[j]
            rate_loss += user.utilities[stream_id]
            self._user_stat(uid).add(now, -user.utilities[stream_id])
        self._utility_rate.add(now, -rate_loss)
        self.policy.on_release(stream_id)

    # ------------------------------------------------------------------
    # Driving
    # ------------------------------------------------------------------

    def run_trace(
        self, trace: "list[SessionEvent] | IndexedTrace", horizon: float
    ) -> SimulationReport:
        """Replay a pre-drawn trace up to ``horizon`` and report.

        An event naming a stream the instance does not carry raises the
        canonical unknown-stream :class:`ValidationError` up front (the
        array engines reject it while lowering the trace), rather than
        a mid-replay ``KeyError`` from the first policy lookup.
        """
        if isinstance(trace, IndexedTrace):
            trace = trace.to_events(ensure_indexed(self.instance))
        for event in trace:
            self.instance.stream(event.stream_id)  # canonical unknown-stream error
            if event.time > horizon:
                continue
            self.engine.schedule_at(event.time, lambda e=event: self._on_arrival(e))
        self.engine.run_until(horizon)
        report = SimulationReport(
            policy_name=self.policy.name,
            horizon=horizon,
            utility_time=self._utility_rate.integral(horizon),
            offered=self.offered,
            admitted=self.admitted,
            deliveries=self.deliveries,
            policy_violations=self.policy_violations,
            num_users=self.instance.num_users,
        )
        for i, stat in self._server_load.items():
            report.server_utilization[i] = stat.mean(horizon)
            report.peak_server_utilization[i] = stat.peak
        for uid, stat in self._user_rate.items():
            report.per_user_utility[uid] = stat.integral(horizon)
        return report

    def run(
        self,
        horizon: float,
        model: "ArrivalModel | None" = None,
        seed: "int | np.random.Generator | None" = None,
    ) -> SimulationReport:
        """Draw a trace and replay it (one-policy convenience)."""
        trace = draw_trace(
            self.instance, model or ArrivalModel(), horizon, seed, engine="dict"
        )
        return self.run_trace(trace, horizon)


def simulate_trace(
    instance: "MMDInstance | IndexedInstance",
    policy: AdmissionPolicy,
    trace: "list[SessionEvent] | IndexedTrace",
    horizon: float,
    engine: "str | None" = None,
) -> SimulationReport:
    """Replay one trace under one policy with the chosen engine.

    The engine-dispatching front door: ``engine="indexed"`` (default)
    runs :class:`repro.sim.indexed.IndexedVideoSim`,
    ``engine="chunked"`` the decision-point kernel
    :class:`repro.sim.kernel.ChunkedVideoSim`, ``engine="batched"``
    the group-decision kernel :class:`repro.sim.kernel.BatchedVideoSim`
    (chunked replay answering arrival groups through the policies'
    vectorized ``on_offer_batch``), ``engine="dict"`` the original
    :class:`VideoDistributionSim`; all accept either trace
    representation and produce identical reports on the same trace.
    """
    engine = resolve_sim_engine(engine)
    if engine == "chunked":
        from repro.sim.kernel import ChunkedVideoSim

        return ChunkedVideoSim(instance, policy).run_trace(trace, horizon)
    if engine == "batched":
        from repro.sim.kernel import BatchedVideoSim

        return BatchedVideoSim(instance, policy).run_trace(trace, horizon)
    if engine == "indexed":
        return IndexedVideoSim(instance, policy).run_trace(trace, horizon)
    return VideoDistributionSim(instance, policy).run_trace(trace, horizon)


def simulate_store(
    instance: "MMDInstance | IndexedInstance",
    policy: AdmissionPolicy,
    store,
    horizon: float,
    engine: "str | None" = None,
    window: "float | None" = None,
) -> SimulationReport:
    """Replay an on-disk :class:`~repro.sim.store.TraceStore` under one policy.

    The out-of-core counterpart of :func:`simulate_trace`, and
    report-identical to it on the same events: a store *is* an
    :class:`~repro.sim.indexed.IndexedTrace` (mmap-backed columns), so
    every engine accepts it.  With a ``window`` (explicit or
    ``$REPRO_STORE_WINDOW``), the ``chunked`` and ``batched`` kernels
    stream the store ``window`` time units at a time in bounded memory
    via :meth:`~repro.sim.kernel.ChunkedVideoSim.run_store` — live
    sessions are stitched across boundaries, so the report stays
    **float-identical** to monolithic replay.  The per-event ``indexed``
    and ``dict`` engines have no streaming driver; for them the window
    is a performance hint with nothing to hint, and the store replays
    monolithically (same report either way, by the stitching contract).

    ``store`` may be a :class:`~repro.sim.store.TraceStore`, a path to
    one (opened here), or any in-RAM trace when windowing is not
    requested.
    """
    from repro.sim.store import TraceStore

    engine = resolve_sim_engine(engine)
    if isinstance(store, (str, Path)):
        store = TraceStore.open(store)
    if engine in ("chunked", "batched"):
        from repro.sim.kernel import BatchedVideoSim, ChunkedVideoSim

        cls = BatchedVideoSim if engine == "batched" else ChunkedVideoSim
        return cls(instance, policy).run_store(store, horizon, window=window)
    resolve_store_window(window)  # validate loudly even where ignored
    return simulate_trace(instance, policy, store, horizon, engine=engine)


def _simulate_one(args) -> SimulationReport:
    """Process-pool worker for :func:`compare_policies` (top level: picklable)."""
    instance, policy, trace, horizon, engine = args
    return simulate_trace(instance, policy, trace, horizon, engine=engine)


def compare_policies(
    instance: "MMDInstance | IndexedInstance",
    policies: "list[AdmissionPolicy]",
    horizon: float,
    model: "ArrivalModel | None" = None,
    seed: "int | np.random.Generator | None" = 0,
    *,
    engine: "str | None" = None,
    parallel: int = 1,
    trace: "list[SessionEvent] | IndexedTrace | None" = None,
) -> "list[SimulationReport]":
    """Run every policy over the *same* arrival trace (common random
    numbers) and return their reports, in the given policy order.

    Parameters
    ----------
    instance / policies / horizon / model / seed:
        As before; ``seed`` feeds the trace draw only.
    engine:
        Simulation engine for the trace draw and every replay
        (``indexed`` default, ``chunked`` for the decision-point
        kernel, ``dict`` for the original path, ``$REPRO_SIM_ENGINE``
        overrides).
    parallel:
        Number of worker processes.  ``1`` (default) replays in-process;
        ``N > 1`` fans the policies out over a process pool via the
        shared work-unit pipeline
        (:func:`repro.experiments.pipeline.map_ordered`; each worker
        replays the identical trace, so reports are unchanged).
    trace:
        Replay this pre-drawn trace instead of drawing one.
    """
    engine = resolve_sim_engine(engine)
    if parallel < 1:
        raise ValidationError(f"parallel must be >= 1, got {parallel}")
    if trace is None:
        if engine != "dict":
            trace = draw_trace_arrays(instance, model or ArrivalModel(), horizon, seed)
        else:
            trace = draw_trace(
                instance, model or ArrivalModel(), horizon, seed, engine="dict"
            )
    from repro.experiments.pipeline import map_ordered

    items = ((instance, policy, trace, horizon, engine) for policy in policies)
    return list(map_ordered(_simulate_one, items, workers=parallel))
