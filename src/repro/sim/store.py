"""Out-of-core columnar trace store: 10⁸-event workloads on disk.

A day of traffic at millions of users is tens of GB of
``(time, stream, duration)`` events — beyond the in-RAM
:class:`~repro.sim.indexed.IndexedTrace` arrays.  This module gives the
trace a memory-mapped columnar on-disk form:

- :class:`TraceStoreWriter` — an **append-friendly writer**: one
  ``.npy`` file per column (``times``, ``streams``, ``durations``, plus
  an optional ``users`` column so per-class schemas have somewhere to
  live), appended chunk by chunk with a fixed-size header that is
  rewritten on every commit, and a JSON ``manifest.json`` carrying the
  dtypes, the committed row count, a sortedness flag and a
  **torn-tail-safe footer** (the row count echoed with a checksum,
  written atomically *after* the column data, so the manifest always
  names rows whose bytes are fully on disk);
- :class:`TraceStore` — a **zero-copy reader**: :meth:`TraceStore.open`
  hands back mmap-backed column arrays behind the existing
  :class:`~repro.sim.indexed.IndexedTrace` API (it *is* an
  ``IndexedTrace``, so every simulation engine replays it unchanged),
  plus windowed access — :meth:`TraceStore.window` slices one
  ``[t0, t1)`` span and :meth:`TraceStore.iter_windows` streams
  consecutive spans, both via ``searchsorted`` on the time column so a
  window touches only its own pages;
- :func:`draw_trace_to_store` — the bounded-memory counterpart of
  :func:`~repro.sim.indexed.draw_trace_arrays`: events are drawn and
  appended in chunks of :func:`~repro.config.resolve_store_chunk`
  events, so drawing a 10⁸-event trace holds a few MB of arrays, never
  the whole trace;
- :func:`write_trace` — persist an in-RAM trace (chunked appends).

**Crash safety.**  Column bytes are written first, the manifest last
(atomically, via a sibling temp file and ``os.replace``), so a kill at
any instant leaves a manifest that points at fully-written rows.  A
torn column tail — a partial record from a mid-write kill, or an
externally truncated file — is repaired on reopen to the **last
complete row** present in every column
(:meth:`TraceStore.open` maps the repaired count without touching the
files; ``TraceStoreWriter(path, resume=True)`` truncates the files to
it and appends from there, producing a store byte-identical to an
uninterrupted write).

Windowed *replay* of a store — float-identical stitching at window
boundaries — lives in :meth:`repro.sim.kernel.ChunkedVideoSim.run_store`
and the :func:`repro.sim.simulation.simulate_store` front door; this
module only owns the bytes.
"""

from __future__ import annotations

import os
from pathlib import Path
from typing import Iterator

import numpy as np

from repro.config import resolve_store_chunk
from repro.exceptions import ValidationError
from repro.sim.indexed import IndexedTrace
from repro.util.atomic import (
    json_checksum,
    read_checked_manifest,
    write_checked_manifest,
)

#: Fixed byte size of every column file's ``.npy`` header.  The header
#: is written once with the current row count and rewritten in place on
#: each commit; reserving a constant size keeps the data offset stable
#: so appends never move bytes.
HEADER_BYTES = 128

#: Manifest schema tag and revision.
STORE_FORMAT = "repro-trace-store"
STORE_VERSION = 1

#: The mandatory columns and their canonical dtypes, in file order.
CORE_COLUMNS = (("times", "<f8"), ("streams", "<i8"), ("durations", "<f8"))

#: The optional per-event user column (per-class schemas; unused by the
#: replay engines, round-tripped byte-identically by the store).
USERS_COLUMN = ("users", "<i8")


def _npy_header(dtype: str, rows: int) -> bytes:
    """The fixed-size ``.npy`` v1 header bytes for a 1-D column.

    Handcrafted so its total size is exactly :data:`HEADER_BYTES`
    regardless of ``rows`` — ``np.load`` parses it like any other
    ``.npy`` file, and the writer can rewrite it in place on commit.
    """
    body = "{'descr': '%s', 'fortran_order': False, 'shape': (%d,), }" % (
        dtype, rows,
    )
    pad = HEADER_BYTES - 10 - 1 - len(body)
    if pad < 0:  # pragma: no cover - 128 bytes fit any 64-bit row count
        raise ValidationError(f"npy header overflow for {rows} rows")
    header = body + " " * pad + "\n"
    return (
        b"\x93NUMPY\x01\x00"
        + len(header).to_bytes(2, "little")
        + header.encode("latin1")
    )


def _manifest_check(body: "dict[str, object]") -> str:
    """CRC of the manifest body (delegates to the shared helper)."""
    return json_checksum(body)


def _write_manifest(path: Path, body: "dict[str, object]") -> None:
    """Atomically replace ``manifest.json`` with ``body`` + footer.

    Delegates to :func:`repro.util.atomic.write_checked_manifest` —
    the sibling-temp-file + ``os.replace`` dance means a kill mid-write
    can never leave a half-written manifest: readers see either the old
    commit or the new one, both internally consistent.
    """
    write_checked_manifest(path, body)


def _read_manifest(root: Path) -> "dict[str, object]":
    """Read and structurally validate a store manifest."""
    path = root / "manifest.json"
    if not path.exists():
        raise ValidationError(f"no trace store at {str(root)!r} (manifest.json missing)")
    try:
        body = read_checked_manifest(path, "store manifest")
    except ValidationError as exc:
        if "torn or tampered" in str(exc):
            raise ValidationError(
                f"store manifest {str(path)!r} has a torn or tampered footer; "
                "rewrite it with TraceStoreWriter(path, resume=True)"
            ) from None
        raise
    if body.get("format") != STORE_FORMAT:
        raise ValidationError(
            f"{str(path)!r} is not a {STORE_FORMAT} manifest"
        )
    if body.get("version") != STORE_VERSION:
        raise ValidationError(
            f"unsupported store version {body.get('version')!r} "
            f"(this build reads version {STORE_VERSION})"
        )
    return body


def _column_path(root: Path, name: str) -> Path:
    """The ``.npy`` file of one column."""
    return root / f"{name}.npy"


def _available_rows(root: Path, columns: "dict[str, str]") -> int:
    """Complete rows actually on disk: the min over columns of fully
    written records (a torn tail's partial record floors away)."""
    counts = []
    for name, dtype in columns.items():
        path = _column_path(root, name)
        if not path.exists():
            raise ValidationError(f"store column file missing: {str(path)!r}")
        data_bytes = max(path.stat().st_size - HEADER_BYTES, 0)
        counts.append(data_bytes // np.dtype(dtype).itemsize)
    return int(min(counts)) if counts else 0


def _validate_chunk(
    times: np.ndarray, streams: np.ndarray, durations: np.ndarray
) -> None:
    """Reject events no replay engine would accept, at write time.

    The same loudness contract as
    :meth:`~repro.sim.indexed.IndexedVideoSim._prepare_trace`: NaN times
    or durations and negative durations fail here instead of corrupting
    a store that every later replay would refuse.
    """
    if times.shape != streams.shape or times.shape != durations.shape:
        raise ValidationError(
            f"column chunks disagree on length: times {times.shape}, "
            f"streams {streams.shape}, durations {durations.shape}"
        )
    if np.isnan(times).any() or np.isnan(durations).any():
        raise ValidationError("NaN event time or duration in trace chunk")
    if durations.size and float(durations.min()) < 0.0:
        raise ValidationError(
            f"negative session duration in trace chunk: {float(durations.min())}"
        )
    if streams.size and int(streams.min()) < 0:
        raise ValidationError(
            f"negative stream index in trace chunk: {int(streams.min())}"
        )


class TraceStoreWriter:
    """Append-friendly writer of one on-disk columnar trace store.

    Parameters
    ----------
    path:
        Store directory (created if fresh; must hold an existing store
        when ``resume=True``).
    users:
        Also carry the optional per-event ``users`` column; every
        :meth:`append` must then pass ``users``.
    meta:
        Free-form JSON-able context recorded in the manifest (workload
        name, arrival model, catalog size…).  Deterministic inputs give
        byte-identical manifests — no timestamps are recorded.
    resume:
        Continue an existing store: the torn-tail repair runs first
        (column files truncate to the last complete row, manifest
        rewritten), then appends pick up where the last commit ended.

    Every :meth:`append` is one commit: column bytes first, then the
    in-place header rewrite, then the atomic manifest replace — so a
    kill between any two steps loses at most the uncommitted tail.
    Use as a context manager or call :meth:`close`.
    """

    def __init__(
        self,
        path: "str | Path",
        *,
        users: bool = False,
        meta: "dict[str, object] | None" = None,
        resume: bool = False,
    ) -> None:
        self.path = Path(path)
        self._closed = False
        if resume:
            body = _read_manifest(self.path)
            self.columns = dict(body["columns"])
            self.meta = dict(body.get("meta", {}))
            if users and USERS_COLUMN[0] not in self.columns:
                raise ValidationError(
                    "resume=True with users=True, but the store has no users column"
                )
            self._users = USERS_COLUMN[0] in self.columns
            self.rows = min(int(body["rows"]), _available_rows(self.path, self.columns))
            self.sorted = bool(body["sorted"])
            self._truncate_to(self.rows)
            self._last_time = self._read_last_time()
        else:
            self.columns = dict(CORE_COLUMNS)
            self._users = bool(users)
            if self._users:
                self.columns[USERS_COLUMN[0]] = USERS_COLUMN[1]
            self.meta = dict(meta or {})
            self.rows = 0
            self.sorted = True
            self._last_time = float("-inf")
            self.path.mkdir(parents=True, exist_ok=True)
            for name, dtype in self.columns.items():
                _column_path(self.path, name).write_bytes(_npy_header(dtype, 0))
        self._handles = {
            name: _column_path(self.path, name).open("r+b")
            for name in self.columns
        }
        for name, handle in self._handles.items():
            handle.seek(0, os.SEEK_END)
        self._commit_manifest()

    # ------------------------------------------------------------------
    # Resume plumbing
    # ------------------------------------------------------------------

    def _truncate_to(self, rows: int) -> None:
        """Drop torn tails: cut every column file at ``rows`` records."""
        for name, dtype in self.columns.items():
            path = _column_path(self.path, name)
            with path.open("r+b") as handle:
                handle.truncate(HEADER_BYTES + rows * np.dtype(dtype).itemsize)
                handle.seek(0)
                handle.write(_npy_header(dtype, rows))

    def _read_last_time(self) -> float:
        """Last committed arrival time (−inf for an empty store)."""
        if self.rows == 0:
            return float("-inf")
        dtype = np.dtype(self.columns["times"])
        with _column_path(self.path, "times").open("rb") as handle:
            handle.seek(HEADER_BYTES + (self.rows - 1) * dtype.itemsize)
            return float(np.frombuffer(handle.read(dtype.itemsize), dtype=dtype)[0])

    # ------------------------------------------------------------------
    # Appending
    # ------------------------------------------------------------------

    def append(
        self,
        times,
        streams,
        durations,
        users=None,
    ) -> int:
        """Append one chunk of events; returns the new committed row count.

        Chunks are validated loudly (NaN times/durations, negative
        durations or stream indices) before any byte is written;
        non-monotone times are legal but clear the manifest's sortedness
        flag, steering replay to the monolithic path.
        """
        if self._closed:
            raise ValidationError("append on a closed TraceStoreWriter")
        chunk = {
            "times": np.ascontiguousarray(times, dtype=self.columns["times"]),
            "streams": np.ascontiguousarray(streams, dtype=self.columns["streams"]),
            "durations": np.ascontiguousarray(
                durations, dtype=self.columns["durations"]
            ),
        }
        _validate_chunk(chunk["times"], chunk["streams"], chunk["durations"])
        if self._users:
            if users is None:
                raise ValidationError("this store has a users column; pass users=")
            chunk["users"] = np.ascontiguousarray(
                users, dtype=self.columns[USERS_COLUMN[0]]
            )
            if chunk["users"].shape != chunk["times"].shape:
                raise ValidationError(
                    f"users chunk length {chunk['users'].shape} != "
                    f"times {chunk['times'].shape}"
                )
        elif users is not None:
            raise ValidationError(
                "store was opened without a users column; pass users=True "
                "to TraceStoreWriter to record one"
            )
        count = int(chunk["times"].shape[0])
        if count == 0:
            return self.rows
        if self.sorted:
            first = float(chunk["times"][0])
            within = count < 2 or bool(
                np.all(chunk["times"][1:] >= chunk["times"][:-1])
            )
            self.sorted = within and (
                self.rows == 0 or first >= self._last_time
            )
        self._last_time = float(chunk["times"][-1])
        # Commit order: data bytes, then headers, then the manifest —
        # the manifest only ever names rows that are fully on disk.
        for name, handle in self._handles.items():
            handle.write(chunk[name].tobytes())
            handle.flush()
        self.rows += count
        self._rewrite_headers()
        self._commit_manifest()
        return self.rows

    def append_trace(self, trace: IndexedTrace, chunk: "int | None" = None) -> int:
        """Append an in-RAM :class:`IndexedTrace` in bounded chunks."""
        step = resolve_store_chunk(chunk)
        for lo in range(0, len(trace), step):
            hi = lo + step
            self.append(
                trace.times[lo:hi], trace.streams[lo:hi], trace.durations[lo:hi]
            )
        return self.rows

    def _rewrite_headers(self) -> None:
        """Refresh every column's in-place header with the row count."""
        for name, handle in self._handles.items():
            handle.seek(0)
            handle.write(_npy_header(self.columns[name], self.rows))
            handle.seek(0, os.SEEK_END)
            handle.flush()

    def _manifest_body(self) -> "dict[str, object]":
        return {
            "format": STORE_FORMAT,
            "version": STORE_VERSION,
            "columns": dict(self.columns),
            "rows": self.rows,
            "sorted": self.sorted,
            "meta": self.meta,
        }

    def _commit_manifest(self) -> None:
        _write_manifest(self.path / "manifest.json", self._manifest_body())

    # ------------------------------------------------------------------
    # Lifecycle
    # ------------------------------------------------------------------

    def close(self) -> None:
        """Flush, commit the final manifest and release the file handles."""
        if self._closed:
            return
        self._rewrite_headers()
        self._commit_manifest()
        for handle in self._handles.values():
            handle.close()
        self._closed = True

    def __enter__(self) -> "TraceStoreWriter":
        """Context-manager entry (returns self)."""
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        """Context-manager exit: always :meth:`close`."""
        self.close()


class TraceStore(IndexedTrace):
    """A read-only, mmap-backed on-disk trace (an :class:`IndexedTrace`).

    Constructed via :meth:`open`; the ``times`` / ``streams`` /
    ``durations`` attributes are memory-mapped column views sized to the
    committed row count, so the whole store satisfies the in-RAM trace
    API — every simulation engine replays it unchanged — while a replay
    only faults in the pages it touches.

    Attributes
    ----------
    path:
        The store directory.
    sorted:
        The manifest's sortedness flag; windowed access requires it.
    users:
        The optional per-event user column (``None`` when absent).
    repaired_rows:
        Rows dropped on open because a torn column tail made them
        incomplete (``0`` for a cleanly closed store).
    """

    def __init__(
        self,
        times: np.ndarray,
        streams: np.ndarray,
        durations: np.ndarray,
        *,
        path: Path,
        manifest: "dict[str, object]",
        users: "np.ndarray | None" = None,
        repaired_rows: int = 0,
    ) -> None:
        super().__init__(times=times, streams=streams, durations=durations)
        self.path = path
        self.manifest = manifest
        self.sorted = bool(manifest["sorted"])
        self.meta = dict(manifest.get("meta", {}))
        self.users = users
        self.repaired_rows = repaired_rows

    @classmethod
    def open(cls, path: "str | Path") -> "TraceStore":
        """Map a store's committed rows without copying a byte.

        The committed row count is the *smaller* of the manifest's count
        and the complete rows actually present in every column file, so
        a torn tail (kill mid-append, external truncation) silently
        shrinks to the last complete row — ``repaired_rows`` records how
        many rows were dropped.  The files are not modified; appending
        through ``TraceStoreWriter(path, resume=True)`` makes the repair
        durable.
        """
        root = Path(path)
        body = _read_manifest(root)
        columns: "dict[str, str]" = dict(body["columns"])
        for name, _ in CORE_COLUMNS:
            if name not in columns:
                raise ValidationError(f"store manifest lacks core column {name!r}")
        rows = min(int(body["rows"]), _available_rows(root, columns))
        repaired = int(body["rows"]) - rows
        mapped: "dict[str, np.ndarray]" = {}
        for name, dtype in columns.items():
            if rows:
                mapped[name] = np.memmap(
                    _column_path(root, name),
                    dtype=np.dtype(dtype),
                    mode="r",
                    offset=HEADER_BYTES,
                    shape=(rows,),
                )
            else:
                mapped[name] = np.empty(0, dtype=np.dtype(dtype))
        return cls(
            times=mapped["times"],
            streams=mapped["streams"],
            durations=mapped["durations"],
            path=root,
            manifest=body,
            users=mapped.get(USERS_COLUMN[0]),
            repaired_rows=repaired,
        )

    # ------------------------------------------------------------------
    # Windowed access
    # ------------------------------------------------------------------

    def _require_sorted(self, what: str) -> None:
        if not self.sorted:
            raise ValidationError(
                f"{what} needs a time-sorted store, but "
                f"{str(self.path)!r} is flagged unsorted; rewrite it sorted "
                "or replay monolithically"
            )

    def window(self, t0: float, t1: float) -> IndexedTrace:
        """The events with ``t0 <= time < t1`` as zero-copy column views.

        Two ``searchsorted`` probes on the mmap'd time column; the
        returned :class:`IndexedTrace` holds slices of the maps, so no
        bytes are read until the caller touches them.
        """
        self._require_sorted("window()")
        lo = int(np.searchsorted(self.times, t0, side="left"))
        hi = int(np.searchsorted(self.times, t1, side="left"))
        return IndexedTrace(
            times=self.times[lo:hi],
            streams=self.streams[lo:hi],
            durations=self.durations[lo:hi],
        )

    def iter_windows(
        self,
        window: float,
        start: float = 0.0,
        stop: "float | None" = None,
    ) -> "Iterator[tuple[float, float, IndexedTrace]]":
        """Stream consecutive ``[w0, w1)`` spans of ``window`` time units.

        Yields ``(w0, w1, trace)`` triples from ``start`` until every
        event at time < ``stop`` (default: just past the last event) has
        been covered; empty spans are skipped.  Each trace is a
        zero-copy :meth:`window` slice.
        """
        self._require_sorted("iter_windows()")
        if window <= 0:
            raise ValidationError(f"window must be positive, got {window}")
        if len(self) == 0:
            return
        if stop is None:
            stop = float(self.times[-1]) + 1.0
        w0 = start
        while w0 < stop:
            w1 = w0 + window
            piece = self.window(w0, min(w1, stop))
            if len(piece):
                yield w0, w1, piece
            w0 = w1

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------

    def info(self) -> "dict[str, object]":
        """Manifest + on-disk facts for ``repro trace info``."""
        per_column = {
            name: {
                "dtype": dtype,
                "bytes": int(_column_path(self.path, name).stat().st_size),
            }
            for name, dtype in dict(self.manifest["columns"]).items()
        }
        return {
            "path": str(self.path),
            "rows": len(self),
            "sorted": self.sorted,
            "repaired_rows": self.repaired_rows,
            "columns": per_column,
            "data_bytes": sum(c["bytes"] - HEADER_BYTES for c in per_column.values()),
            "meta": self.meta,
        }


def write_trace(
    trace: IndexedTrace,
    path: "str | Path",
    *,
    meta: "dict[str, object] | None" = None,
    chunk: "int | None" = None,
) -> TraceStore:
    """Persist an in-RAM trace to a store (bounded chunked appends)."""
    with TraceStoreWriter(path, meta=meta) as writer:
        writer.append_trace(trace, chunk=chunk)
    return TraceStore.open(path)


def draw_trace_to_store(
    instance,
    model,
    horizon: float,
    path: "str | Path",
    seed: "int | np.random.Generator | None" = None,
    *,
    chunk: "int | None" = None,
    meta: "dict[str, object] | None" = None,
) -> TraceStore:
    """Draw a Poisson/Zipf arrival trace straight into a store.

    The bounded-memory fix for very large event counts: where
    :func:`~repro.sim.indexed.draw_trace_arrays` materializes the whole
    trace (every arrival time in one concatenated array), this draws and
    appends :func:`~repro.config.resolve_store_chunk`-sized chunks — gap
    batch, cumulative sum, Zipf ``searchsorted``, duration batch, one
    :meth:`TraceStoreWriter.append` — so peak memory is a few chunk-sized
    arrays regardless of the trace length
    (``tests/test_store.py`` pins this with :mod:`tracemalloc`).

    Deterministic under a fixed ``(seed, chunk)`` pair; the chunk size
    shapes RNG consumption, so it is part of the determinism contract
    (unlike the in-RAM draw, whose batch sizes adapt to the expected
    event count).  Degenerate inputs — zero rate, empty catalog,
    nonpositive horizon — produce a valid empty store.
    """
    from repro.core.indexed import ensure_indexed
    from repro.util.rng import ensure_rng

    idx = ensure_indexed(instance)
    step = resolve_store_chunk(chunk)
    base_meta = {
        "num_streams": idx.num_streams,
        "num_users": idx.num_users,
        "rate": model.rate,
        "mean_duration": model.mean_duration,
        "popularity_exponent": model.popularity_exponent,
        "horizon": horizon,
        "chunk": step,
    }
    base_meta.update(meta or {})
    with TraceStoreWriter(path, meta=base_meta) as writer:
        if model.rate > 0 and idx.num_streams > 0 and horizon > 0:
            rng = ensure_rng(seed)
            num_streams = idx.num_streams
            ranks = np.arange(1, num_streams + 1, dtype=float)
            cumweights = np.cumsum(ranks ** (-model.popularity_exponent))
            cumweights /= cumweights[-1]
            scale = 1.0 / model.rate
            last = 0.0
            while True:
                block = last + np.cumsum(rng.exponential(scale, size=step))
                count = int(np.searchsorted(block, horizon, side="right"))
                if count:
                    streams = np.minimum(
                        np.searchsorted(
                            cumweights, rng.random(count), side="right"
                        ),
                        num_streams - 1,
                    ).astype(np.int64)
                    durations = rng.exponential(model.mean_duration, size=count)
                    writer.append(block[:count], streams, durations)
                if count < step:  # the block crossed the horizon
                    break
                last = float(block[-1])
    return TraceStore.open(path)
