"""Time-weighted metrics and simulation reports.

Utility in the dynamic setting accrues per unit time: a stream assigned
to a user earns ``w_u(S)`` per time unit while active.  The metrics
here integrate such piecewise-constant signals exactly (no sampling):
:class:`TimeWeightedValue` records value changes and integrates on
read, and :class:`ColumnarTimeWeighted` is its array-of-integrators
form — one slot per user — so the indexed simulation engine updates a
whole receiver set with a handful of numpy operations instead of one
Python object call per user.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np


class TimeWeightedValue:
    """Exact integrator for a piecewise-constant signal.

    >>> v = TimeWeightedValue()
    >>> v.set(0.0, 2.0)   # value 2 from t=0
    >>> v.set(5.0, 0.0)   # value 0 from t=5
    >>> v.integral(10.0)
    10.0
    >>> v.mean(10.0)
    1.0
    """

    def __init__(self, initial: float = 0.0) -> None:
        self._value = initial
        self._last_time = 0.0
        self._area = 0.0
        self.peak = initial

    @property
    def value(self) -> float:
        return self._value

    def set(self, time: float, value: float) -> None:
        """Record that the signal becomes ``value`` at ``time``."""
        if time < self._last_time:
            raise ValueError(f"time went backwards: {time} < {self._last_time}")
        self._area += self._value * (time - self._last_time)
        self._last_time = time
        self._value = value
        self.peak = max(self.peak, value)

    def add(self, time: float, delta: float) -> None:
        """Record a step change of ``delta`` at ``time``."""
        self.set(time, self._value + delta)

    def integral(self, until: float) -> float:
        """∫ signal dt from 0 to ``until``."""
        if until < self._last_time:
            raise ValueError(f"until={until} precedes last update {self._last_time}")
        return self._area + self._value * (until - self._last_time)

    def mean(self, until: float) -> float:
        """Time average over [0, until]."""
        if until <= 0:
            return 0.0
        return self.integral(until) / until


class ColumnarTimeWeighted:
    """A column of :class:`TimeWeightedValue` integrators as parallel arrays.

    Slot ``i`` carries the same state triple (``last_time``, ``value``,
    ``area``) a :class:`TimeWeightedValue` would, and :meth:`add_at`
    applies the exact float operations of :meth:`TimeWeightedValue.add`
    to every given slot at once, so integrals are bit-identical to a
    dict of per-slot objects while one event costs O(receivers) numpy
    work instead of O(receivers) Python method calls — and idle slots
    cost nothing at report time (``touched`` records which slots ever
    received a step).

    >>> col = ColumnarTimeWeighted(3)
    >>> col.add_at(np.array([1]), 0.0, np.array([2.0]))   # slot 1: value 2
    >>> col.add_at(np.array([1]), 5.0, np.array([-2.0]))  # back to 0 at t=5
    >>> float(col.integral(10.0)[1])
    10.0
    >>> [bool(t) for t in col.touched]
    [False, True, False]
    """

    def __init__(self, size: int) -> None:
        self.last_time = np.zeros(size)
        self.value = np.zeros(size)
        self.area = np.zeros(size)
        self.touched = np.zeros(size, dtype=bool)

    def add_at(self, slots: np.ndarray, time: float, delta: np.ndarray) -> None:
        """Step the given slots' signals by ``delta`` at ``time``.

        ``slots`` must be unique (each receiver appears once per event —
        guaranteed by the CSR row layout).
        """
        self.area[slots] += self.value[slots] * (time - self.last_time[slots])
        self.last_time[slots] = time
        self.value[slots] += delta
        self.touched[slots] = True

    def integral(self, until: float) -> np.ndarray:
        """Per-slot ``∫ signal dt`` from 0 to ``until`` (all slots)."""
        return self.area + self.value * (until - self.last_time)


@dataclass
class SimulationReport:
    """Outcome of one simulation run under one policy.

    Attributes
    ----------
    policy_name:
        The admission policy that produced this run.
    horizon:
        Simulated time span.
    utility_time:
        ∫ (instantaneous total utility rate) dt — the headline metric.
    offered / admitted:
        Stream session counts.
    mean_utility_rate:
        ``utility_time / horizon``.
    server_utilization:
        Per-measure time-averaged normalized load.
    peak_server_utilization:
        Per-measure peak normalized load (must stay at most 1 for a
        feasible policy).
    deliveries:
        Total (stream, user) deliveries over the run.
    policy_violations:
        Infeasible policy answers the simulator clipped (0 for a
        well-behaved policy).
    num_users:
        Population size of the simulated instance.  ``per_user_utility``
        is *sparse* — it records only users that ever received a stream
        — so fairness metrics use ``num_users`` to account for the
        implicit zeros without materializing an O(n) dict per run.
    """

    policy_name: str
    horizon: float
    utility_time: float = 0.0
    offered: int = 0
    admitted: int = 0
    deliveries: int = 0
    policy_violations: int = 0
    num_users: int = 0
    server_utilization: "dict[int, float]" = field(default_factory=dict)
    peak_server_utilization: "dict[int, float]" = field(default_factory=dict)
    per_user_utility: "dict[str, float]" = field(default_factory=dict)

    @property
    def acceptance_rate(self) -> float:
        return self.admitted / self.offered if self.offered else 0.0

    @property
    def jain_fairness(self) -> float:
        """Jain's fairness index over per-user collected utility·time:
        ``(Σx)² / (n·Σx²)`` — 1.0 is perfectly even, ``1/n`` is one user
        taking everything.  Utility-maximizing policies are *not*
        fairness-maximizing; this metric quantifies the trade.

        ``per_user_utility`` is sparse (zero-utility users are not
        recorded), so ``n`` is ``num_users`` when set; the implicit
        zeros contribute nothing to either sum."""
        values = list(self.per_user_utility.values())
        if not values:
            return 1.0
        total = sum(values)
        squares = sum(v * v for v in values)
        if squares == 0:
            return 1.0
        population = max(self.num_users, len(values))
        return total * total / (population * squares)

    @property
    def mean_utility_rate(self) -> float:
        return self.utility_time / self.horizon if self.horizon > 0 else 0.0

    def summary_row(self) -> "list[object]":
        """Row for the E9 benchmark table."""
        max_util = max(self.peak_server_utilization.values(), default=0.0)
        return [
            self.policy_name,
            self.utility_time,
            self.mean_utility_rate,
            self.acceptance_rate,
            max_util,
        ]
