"""Discrete-event simulation substrate for video distribution.

The paper evaluates nothing empirically; its deployment story (Fig. 1 —
a head-end or gateway admitting multicast streams under bandwidth,
processing and port budgets) is what this substrate simulates, so that
the *online* algorithm of §5 and the threshold baseline of §1 can be
compared in a dynamic setting with stream arrivals and departures.

- :mod:`repro.sim.engine` — a minimal generator-based discrete-event
  engine (simpy is not available offline; this is self-contained and
  unit-tested on its own).
- :mod:`repro.sim.policies` — online admission policies: threshold,
  exponential-cost (Algorithm *Allocate*), static density, random.
- :mod:`repro.sim.simulation` — the video-distribution simulation:
  Poisson stream arrivals with exponential lifetimes, utility accrual
  per receiving user per unit time.
- :mod:`repro.sim.metrics` — time-weighted statistics and reports.
"""

from repro.sim.engine import Engine, Process, Timeout
from repro.sim.metrics import SimulationReport, TimeWeightedValue
from repro.sim.policies import (
    AdmissionPolicy,
    AllocatePolicy,
    DensityPolicy,
    RandomPolicy,
    ThresholdPolicy,
)
from repro.sim.simulation import ArrivalModel, VideoDistributionSim

__all__ = [
    "Engine",
    "Process",
    "Timeout",
    "SimulationReport",
    "TimeWeightedValue",
    "AdmissionPolicy",
    "AllocatePolicy",
    "DensityPolicy",
    "RandomPolicy",
    "ThresholdPolicy",
    "ArrivalModel",
    "VideoDistributionSim",
]
