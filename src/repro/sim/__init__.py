"""Discrete-event simulation substrate for video distribution.

The paper evaluates nothing empirically; its deployment story (Fig. 1 —
a head-end or gateway admitting multicast streams under bandwidth,
processing and port budgets) is what this substrate simulates, so that
the *online* algorithm of §5 and the threshold baseline of §1 can be
compared in a dynamic setting with stream arrivals and departures.

- :mod:`repro.sim.engine` — a minimal generator-based discrete-event
  engine (simpy is not available offline; this is self-contained and
  unit-tested on its own), plus the calendar-light replay order for
  pre-drawn traces.
- :mod:`repro.sim.policies` — online admission policies: threshold,
  exponential-cost (Algorithm *Allocate*), static density, random.
- :mod:`repro.sim.simulation` — the video-distribution simulation:
  Poisson stream arrivals with exponential lifetimes, utility accrual
  per receiving user per unit time; the engine-dispatching front doors
  (:func:`~repro.sim.simulation.simulate_trace`,
  :func:`~repro.sim.simulation.compare_policies`).
- :mod:`repro.sim.indexed` — the array-native simulation engine:
  vectorized trace drawing and CSR-row replay on the
  :class:`~repro.core.indexed.IndexedInstance` arrays (the default;
  ``engine="dict"`` or ``$REPRO_SIM_ENGINE`` selects the original).
- :mod:`repro.sim.kernel` — the chunked event-dispatch kernel
  (``engine="chunked"``): skips no-decision event runs wholesale so
  10⁶-event traces replay in Python time proportional to the number of
  policy decisions, with float-identical reports.
- :mod:`repro.sim.store` — the out-of-core columnar trace store:
  append-friendly one-``.npy``-per-column writer with a torn-tail-safe
  manifest, zero-copy mmap reopen behind the
  :class:`~repro.sim.indexed.IndexedTrace` API, and windowed streaming
  replay (:func:`~repro.sim.simulation.simulate_store`) that stitches
  live sessions across window edges float-identically, so 10⁸-event
  traces replay in bounded memory.
- :mod:`repro.sim.metrics` — time-weighted statistics and reports.
"""

from repro.sim.engine import Engine, Process, Timeout
from repro.sim.indexed import (
    IndexedTrace,
    IndexedVideoSim,
    draw_trace_arrays,
    resolve_sim_engine,
)
from repro.sim.kernel import ChunkedVideoSim
from repro.sim.metrics import ColumnarTimeWeighted, SimulationReport, TimeWeightedValue
from repro.sim.policies import (
    AdmissionPolicy,
    AllocatePolicy,
    DensityPolicy,
    RandomPolicy,
    ThresholdPolicy,
)
from repro.sim.simulation import (
    ArrivalModel,
    VideoDistributionSim,
    compare_policies,
    draw_trace,
    simulate_store,
    simulate_trace,
)
from repro.sim.store import (
    TraceStore,
    TraceStoreWriter,
    draw_trace_to_store,
    write_trace,
)

__all__ = [
    "Engine",
    "Process",
    "Timeout",
    "SimulationReport",
    "TimeWeightedValue",
    "ColumnarTimeWeighted",
    "AdmissionPolicy",
    "AllocatePolicy",
    "DensityPolicy",
    "RandomPolicy",
    "ThresholdPolicy",
    "ArrivalModel",
    "VideoDistributionSim",
    "IndexedTrace",
    "IndexedVideoSim",
    "ChunkedVideoSim",
    "TraceStore",
    "TraceStoreWriter",
    "draw_trace",
    "draw_trace_arrays",
    "draw_trace_to_store",
    "write_trace",
    "simulate_trace",
    "simulate_store",
    "compare_policies",
    "resolve_sim_engine",
]
