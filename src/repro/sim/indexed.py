"""Array-native dynamic simulation engine (the E9 setting, compiled).

The string-keyed :class:`~repro.sim.simulation.VideoDistributionSim`
pays Python overhead per event: an O(S) ``rng.choice`` per arrival when
drawing the trace, heap churn per event, per-user inner loops over
``load_vector`` when admitting, and one
:class:`~repro.sim.metrics.TimeWeightedValue` object per user.  This
module runs the whole simulation on the
:class:`~repro.core.indexed.IndexedInstance` arrays instead:

- :func:`draw_trace_arrays` — batched exponential gap draws plus one
  cumulative-weight ``searchsorted`` for the Zipf stream choices,
  producing an :class:`IndexedTrace` (three parallel arrays, no event
  objects);
- :class:`IndexedVideoSim` — calendar-light replay
  (:func:`~repro.sim.engine.merged_replay_order` instead of the heap),
  vectorized admission/departure accounting over each stream's CSR row
  (``np`` fancy-index scatter updates on the dense usage matrix), and
  columnar per-user utility integration
  (:class:`~repro.sim.metrics.ColumnarTimeWeighted`).

**Parity contract.**  Given the same trace and a fresh policy, the
indexed engine reproduces the dict engine's
:class:`~repro.sim.metrics.SimulationReport` exactly — same utility
integral, admits, violations, per-user utilities and utilization floats
— because every accumulation happens in the same IEEE order the dict
code uses (``tests/test_sim_indexed.py`` asserts this with ``==``).
The engine is selected per call (``engine="dict"``) or globally via
``$REPRO_SIM_ENGINE``; the default is ``indexed``.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

import numpy as np

from repro.config import ENGINE_SETTINGS, resolve_engine_setting
from repro.core.indexed import IndexedInstance, ensure_indexed
from repro.exceptions import SimulationError, ValidationError
from repro.sim.engine import merged_replay_order
from repro.sim.metrics import ColumnarTimeWeighted, SimulationReport, TimeWeightedValue
from repro.sim.policies import AdmissionPolicy, ResourceView
from repro.util.rng import ensure_rng

#: Environment variable selecting the default simulation engine.
SIM_ENGINE_ENV = ENGINE_SETTINGS["simulation"].env

_SIM_ENGINES = ENGINE_SETTINGS["simulation"].choices


def resolve_sim_engine(engine: "str | None" = None) -> str:
    """Resolve a sim engine name: argument > ``$REPRO_SIM_ENGINE`` > indexed.

    Delegates to the shared :mod:`repro.config` resolver (kind
    ``"simulation"``); kept as the historical front door.
    """
    return resolve_engine_setting("simulation", engine)


@dataclass
class IndexedTrace:
    """A pre-drawn arrival trace as three parallel arrays.

    ``streams`` holds stream *indices* (not ids), so a trace at
    millions of events is three dense arrays rather than millions of
    :class:`~repro.sim.simulation.SessionEvent` objects.

    Attributes
    ----------
    times:
        ``(E,)`` nondecreasing arrival times.
    streams:
        ``(E,)`` proposed stream indices.
    durations:
        ``(E,)`` session lifetimes.
    """

    times: np.ndarray
    streams: np.ndarray
    durations: np.ndarray

    def __len__(self) -> int:
        """Number of events in the trace."""
        return int(self.times.shape[0])

    def to_events(self, idx: IndexedInstance) -> list:
        """Materialize the string-id :class:`SessionEvent` list."""
        from repro.sim.simulation import SessionEvent

        ids = idx.stream_ids
        return [
            SessionEvent(time=float(t), stream_id=ids[int(k)], duration=float(d))
            for t, k, d in zip(self.times, self.streams, self.durations)
        ]

    @classmethod
    def from_events(cls, idx: IndexedInstance, events) -> "IndexedTrace":
        """Lower a :class:`SessionEvent` list onto index arrays.

        An event naming a stream absent from the instance raises the
        canonical unknown-stream :class:`ValidationError` (the same
        error the dict engine's replay gives), not a raw ``KeyError``.
        """
        count = len(events)
        times = np.empty(count)
        streams = np.empty(count, dtype=np.int64)
        durations = np.empty(count)
        stream_index = idx.stream_index
        for i, event in enumerate(events):
            times[i] = event.time
            index = stream_index.get(event.stream_id)
            if index is None:
                raise ValidationError(f"unknown stream id {event.stream_id!r}")
            streams[i] = index
            durations[i] = event.duration
        return cls(times=times, streams=streams, durations=durations)


def _empty_trace() -> IndexedTrace:
    """A fresh zero-event trace."""
    return IndexedTrace(
        times=np.empty(0),
        streams=np.empty(0, dtype=np.int64),
        durations=np.empty(0),
    )


def draw_trace_arrays(
    instance: "IndexedInstance",
    model,
    horizon: float,
    seed: "int | np.random.Generator | None" = None,
) -> IndexedTrace:
    """Vectorized trace draw: batched gaps, one searchsorted for streams.

    The per-event loop of the dict engine pays one
    ``rng.exponential`` + one O(S) ``rng.choice(p=weights)`` + one
    ``rng.exponential`` per event; here arrival times come from batched
    exponential draws (cumulative-summed, topped up until the horizon is
    crossed), stream choices from a single ``searchsorted`` of uniform
    draws into the cumulative Zipf weights, and durations from one
    batched draw.  Deterministic under ``seed`` (but a *different*
    stream than the dict draw for the same seed — the two engines
    consume randomness in different orders).

    Degenerate inputs yield an empty trace instead of crashing: a zero
    arrival rate, an empty catalog (whose Zipf weights would be NaN) or
    a nonpositive horizon.
    """
    idx = ensure_indexed(instance)
    num_streams = idx.num_streams
    if model.rate <= 0 or num_streams == 0 or horizon <= 0:
        return _empty_trace()
    rng = ensure_rng(seed)

    # Arrival times: draw gap batches sized ~E[count] and top up until
    # the cumulative time crosses the horizon.
    scale = 1.0 / model.rate
    expected = model.rate * horizon
    chunk = max(64, int(expected + 4.0 * math.sqrt(expected)) + 16)
    last = 0.0
    blocks: "list[np.ndarray]" = []
    while True:
        block = last + np.cumsum(rng.exponential(scale, size=chunk))
        blocks.append(block)
        if block[-1] > horizon:
            break
        last = float(block[-1])
        chunk = max(chunk // 2, 64)
    times = np.concatenate(blocks) if len(blocks) > 1 else blocks[0]
    times = times[times <= horizon]
    count = int(times.shape[0])
    if count == 0:
        return _empty_trace()

    # Zipf-by-rank stream choices: one searchsorted into the cumulative
    # weights replaces a per-event rng.choice(p=weights).
    ranks = np.arange(1, num_streams + 1, dtype=float)
    cumweights = np.cumsum(ranks ** (-model.popularity_exponent))
    cumweights /= cumweights[-1]
    streams = np.searchsorted(cumweights, rng.random(count), side="right")
    streams = np.minimum(streams, num_streams - 1).astype(np.int64)

    durations = rng.exponential(model.mean_duration, size=count)
    return IndexedTrace(times=times, streams=streams, durations=durations)


class IndexedVideoSim:
    """Array-native counterpart of :class:`VideoDistributionSim`.

    Drives one policy over one trace entirely on the indexed arrays:
    admissions and departures are CSR-row operations, per-user utility
    integrates columnar, and replay walks one pre-sorted event array.
    Reports are float-identical to the dict engine's (see module
    docstring).

    Parameters
    ----------
    instance:
        The static instance, as either representation (array-native
        instances are **not** lifted unless the policy's
        ``bind_indexed`` needs the dict model).
    policy:
        The admission policy under test; ``bind_indexed`` is called
        here.
    """

    def __init__(
        self,
        instance: "IndexedInstance",
        policy: AdmissionPolicy,
    ) -> None:
        idx = ensure_indexed(instance)
        self.idx = idx
        self.policy = policy
        policy.bind_indexed(idx)
        self.view = ResourceView(idx)
        self._finite_budget = [
            i for i in range(idx.m) if not math.isinf(idx.budgets[i])
        ]
        self._utility_rate = TimeWeightedValue()
        self._server_load = {i: TimeWeightedValue() for i in self._finite_budget}
        self._user_stats = ColumnarTimeWeighted(idx.num_users)
        #: event position -> (kept user indices, their pair rows, their w).
        self._sessions: "dict[int, tuple[np.ndarray, np.ndarray, np.ndarray]]" = {}
        self.offered = 0
        self.admitted = 0
        self.deliveries = 0
        self.policy_violations = 0

    # ------------------------------------------------------------------
    # Event handlers (mirror VideoDistributionSim exactly)
    # ------------------------------------------------------------------

    def _clip_to_feasible(
        self, k: int, receivers: np.ndarray
    ) -> "tuple[np.ndarray, np.ndarray]":
        """Hard feasibility guard over index arrays; counts violations
        exactly as the dict engine's per-user loop does.  Duplicate
        receivers collapse to the first occurrence (like the dict
        engine), so the scatter updates stay one-write-per-user."""
        idx = self.idx
        if receivers.size and not self.view.fits_server_index(k):
            self.policy_violations += 1
            return receivers[:0], receivers[:0]
        if receivers.size == 0:
            return receivers, receivers
        unique, first = np.unique(receivers, return_index=True)
        if unique.size != receivers.size:
            receivers = receivers[np.sort(first)]
        lo, hi = int(idx.s_indptr[k]), int(idx.s_indptr[k + 1])
        row = idx.s_user[lo:hi]  # ascending user indices
        if row.size:
            position = np.searchsorted(row, receivers)
            clipped = np.minimum(position, row.size - 1)
            present = row[clipped] == receivers
            pairs = lo + clipped
        else:
            present = np.zeros(receivers.size, dtype=bool)
            pairs = np.zeros(receivers.size, dtype=np.int64)
        w = np.zeros(receivers.size)
        w[present] = idx.s_w[pairs[present]]
        positive = w > 0.0
        # Zero/absent utility pairs are violations (w_u(S) <= 0), exactly
        # like the dict loop; capacity checks run only on the survivors.
        self.policy_violations += int(np.count_nonzero(~positive))
        users = receivers[positive]
        user_pairs = pairs[positive]
        fits = self.view.fits_pairs(users, user_pairs)
        self.policy_violations += int(np.count_nonzero(~fits))
        return users[fits], user_pairs[fits]

    def _on_arrival(self, position: int, k: int, now: float) -> None:
        view = self.view
        if view.active_mask[k]:
            return  # already multicast; no new decision
        self.offered += 1
        receivers = np.asarray(self.policy.on_offer_indexed(k, view), dtype=np.int64)
        self._admit(position, k, now, receivers)

    def _admit(
        self, position: int, k: int, now: float, receivers: np.ndarray
    ) -> bool:
        """Commit one policy answer; returns whether sim state changed.

        Everything after the policy call of :meth:`_on_arrival`, split
        out so the batched replay kernel can apply precomputed group
        answers (:class:`~repro.sim.kernel.BatchedVideoSim`) through the
        exact same guard + accounting sequence.
        """
        view = self.view
        users, pairs = self._clip_to_feasible(k, receivers)
        if users.size == 0:
            return False
        self.admitted += 1
        self.deliveries += int(users.size)
        idx = self.idx
        view.activate_index(k)
        view.server_used += idx.stream_costs[k]
        for i in self._finite_budget:
            self._server_load[i].set(
                now, view.server_used[i] / idx.budgets[i]
            )
        weights = idx.s_w[pairs]
        view.user_used_array[users] += idx.s_loads[pairs]
        self._user_stats.add_at(users, now, weights)
        # cumsum accumulates sequentially — the dict loop's exact sum.
        self._utility_rate.add(now, float(np.cumsum(weights)[-1]))
        self._sessions[position] = (users, pairs, weights)
        return True

    def _on_departure(self, position: int, k: int, now: float) -> None:
        session = self._sessions.pop(position, None)
        if session is None:
            return  # proposal was rejected or skipped: nothing departs
        users, pairs, weights = session
        idx = self.idx
        view = self.view
        view.deactivate_index(k)
        view.server_used -= idx.stream_costs[k]
        for i in self._finite_budget:
            self._server_load[i].set(
                now, view.server_used[i] / idx.budgets[i]
            )
        view.user_used_array[users] -= idx.s_loads[pairs]
        self._user_stats.add_at(users, now, -weights)
        self._utility_rate.add(now, -float(np.cumsum(weights)[-1]))
        self.policy.on_release_indexed(k, view)

    # ------------------------------------------------------------------
    # Driving
    # ------------------------------------------------------------------

    def _prepare_trace(
        self, trace: "IndexedTrace | list", horizon: float
    ) -> "tuple[np.ndarray, np.ndarray, np.ndarray, np.ndarray]":
        """Lower, horizon-filter and sanity-check a trace.

        Returns ``(times, streams, durations, departures)`` with arrival
        times at most ``horizon``.  Rejects NaN times/durations and
        negative durations loudly (the dict engine refuses to schedule
        them; silently dropping or never departing would diverge).
        """
        idx = self.idx
        if not isinstance(trace, IndexedTrace):
            trace = IndexedTrace.from_events(idx, trace)
        if np.isnan(trace.times).any() or np.isnan(trace.durations).any():
            raise SimulationError("NaN event time or duration in trace")
        keep = trace.times <= horizon
        times = trace.times[keep]
        streams = trace.streams[keep]
        durations = trace.durations[keep]
        if durations.size and float(durations.min()) < 0.0:
            # The dict engine refuses to schedule into the past; fail as
            # loudly here instead of silently never departing the session.
            raise SimulationError(
                f"negative session duration in trace: {float(durations.min())}"
            )
        return times, streams, durations, times + durations

    def run_trace(
        self, trace: "IndexedTrace | list", horizon: float
    ) -> SimulationReport:
        """Replay a pre-drawn trace up to ``horizon`` and report.

        Accepts an :class:`IndexedTrace` or a ``SessionEvent`` list
        (lowered on entry).
        """
        times, streams, durations, departures = self._prepare_trace(trace, horizon)
        count = int(times.shape[0])
        for code in merged_replay_order(times, departures, horizon):
            position = int(code)
            if position < count:
                self._on_arrival(
                    position, int(streams[position]), float(times[position])
                )
            else:
                position -= count
                self._on_departure(
                    position, int(streams[position]), float(departures[position])
                )
        return self._build_report(horizon)

    def _build_report(self, horizon: float) -> SimulationReport:
        """Assemble the :class:`SimulationReport` from the run's state."""
        idx = self.idx
        report = SimulationReport(
            policy_name=self.policy.name,
            horizon=horizon,
            utility_time=self._utility_rate.integral(horizon),
            offered=self.offered,
            admitted=self.admitted,
            deliveries=self.deliveries,
            policy_violations=self.policy_violations,
            num_users=idx.num_users,
        )
        for i, stat in self._server_load.items():
            report.server_utilization[i] = stat.mean(horizon)
            report.peak_server_utilization[i] = stat.peak
        integrals = self._user_stats.integral(horizon)
        user_ids = idx.user_ids
        for u in np.flatnonzero(self._user_stats.touched):
            report.per_user_utility[user_ids[int(u)]] = float(integrals[int(u)])
        return report

    def run(
        self,
        horizon: float,
        model=None,
        seed: "int | np.random.Generator | None" = None,
    ) -> SimulationReport:
        """Draw an array trace and replay it (one-policy convenience)."""
        from repro.sim.simulation import ArrivalModel

        trace = draw_trace_arrays(self.idx, model or ArrivalModel(), horizon, seed)
        return self.run_trace(trace, horizon)
