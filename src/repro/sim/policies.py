"""Online admission policies for the video-distribution simulator.

A policy answers one question per stream-session arrival: *carry this
stream, and deliver it to which users?*  The simulator owns the ground
truth of resource usage and exposes it through :class:`ResourceView`;
it also hard-enforces feasibility after the policy answers, so a buggy
policy cannot oversubscribe the plant (violations are counted and
reported instead).

Policies:

- :class:`ThresholdPolicy` — the deployed baseline of the paper's
  introduction: admit while every resource stays within a safety
  margin, utility-blind.
- :class:`AllocatePolicy` — the paper's §5 exponential-cost algorithm
  (:class:`repro.core.allocate.OnlineAllocator`) with the
  finite-duration extension: departures return their load.
- :class:`DensityPolicy` — admit only streams whose static
  utility-per-cost density clears a quantile of the catalog (a smarter
  utility-aware heuristic that still ignores load state).
- :class:`RandomPolicy` — admit with probability ``p``, deliver to all
  fitting users (a noise floor).
"""

from __future__ import annotations

import math
from abc import ABC, abstractmethod
from collections.abc import Mapping

import numpy as np

from repro.core.allocate import OnlineAllocator
from repro.core.indexed import (
    IndexedInstance,
    _concat_ranges,
    ensure_indexed,
    index_instance,
)
from repro.core.instance import FEASIBILITY_RTOL, MMDInstance
from repro.util.rng import ensure_rng

#: Shared empty receiver answer (index form).
EMPTY_USERS = np.empty(0, dtype=np.int64)


class _UserUsage(Mapping):
    """Mapping facade over the dense ``(num_users, mc)`` usage matrix.

    ``view.user_used[uid]`` returns the user's *live row* of the backing
    array (mutations write through), preserving the dict-of-lists
    interface the string-keyed simulator and existing callers use while
    the actual accounting runs on one contiguous matrix.
    """

    def __init__(self, idx: IndexedInstance, array: np.ndarray) -> None:
        self._idx = idx
        self._array = array

    def __getitem__(self, user_id: str) -> np.ndarray:
        return self._array[self._idx.user_index[user_id]]

    def __iter__(self):
        return iter(self._idx.user_ids)

    def __len__(self) -> int:
        return self._idx.num_users


class ResourceView:
    """Usage snapshot handed to policies, backed by dense arrays.

    Attributes
    ----------
    indexed:
        The :class:`~repro.core.indexed.IndexedInstance` lowering all
        accounting runs on.
    server_used:
        ``(m,)`` per-measure server usage vector.
    user_used:
        Mapping view (``user_id -> (mc,) row``) over
        :attr:`user_used_array`, the dense ``(num_users, mc)`` matrix.
    active_streams / active_mask:
        Streams currently carried, as a string-id set and as a boolean
        vector over stream indices (kept in sync by the
        :meth:`activate_index` / :meth:`deactivate_index` mutators).
    """

    def __init__(self, instance: "MMDInstance | IndexedInstance") -> None:
        self.indexed = ensure_indexed(instance)
        idx = self.indexed
        self._idx = idx
        self.server_used = np.zeros(idx.m)
        self.user_used_array = np.zeros((idx.num_users, idx.mc))
        self.user_used = _UserUsage(idx, self.user_used_array)
        self.active_streams: set[str] = set()
        self.active_mask = np.zeros(idx.num_streams, dtype=bool)

    @property
    def instance(self) -> MMDInstance:
        """The string-keyed instance (lifted lazily for array-native input)."""
        return self.indexed.lift()

    # -- mutation (the simulator owns the ground truth) ----------------

    def activate_index(self, k: int) -> None:
        """Mark stream index ``k`` as carried (mask and id set together)."""
        self.active_mask[k] = True
        self.active_streams.add(self.indexed.stream_ids[k])

    def deactivate_index(self, k: int) -> None:
        """Mark stream index ``k`` as no longer carried."""
        self.active_mask[k] = False
        self.active_streams.discard(self.indexed.stream_ids[k])

    def activate(self, stream_id: str) -> None:
        """String-id form of :meth:`activate_index`."""
        self.activate_index(self.indexed.stream_index[stream_id])

    def deactivate(self, stream_id: str) -> None:
        """String-id form of :meth:`deactivate_index`."""
        self.deactivate_index(self.indexed.stream_index[stream_id])

    # -- feasibility probes --------------------------------------------

    def fits_server_index(self, k: int, margin: float = 1.0) -> bool:
        """Would carrying stream index ``k`` keep all server budgets
        within ``margin`` of their caps?"""
        idx = self.indexed
        for i in range(idx.m):
            budget = idx.budgets[i]
            if math.isinf(budget):
                continue
            if self.server_used[i] + idx.stream_costs[k, i] > margin * budget * (
                1 + FEASIBILITY_RTOL
            ):
                return False
        return True

    def fits_server(self, stream_id: str, margin: float = 1.0) -> bool:
        """Would carrying the stream keep all server budgets within
        ``margin`` of their caps?"""
        return self.fits_server_index(self.indexed.stream_index[stream_id], margin)

    def fits_pairs(self, users: np.ndarray, pairs: np.ndarray, margin: float = 1.0) -> np.ndarray:
        """Vectorized per-user capacity check for stream-major pairs.

        ``users[i]`` with pair row ``pairs[i]`` (an index into the
        ``s_*`` arrays) fits iff delivering that pair keeps every finite
        capacity within ``margin`` of its cap.  Returns a boolean mask.
        """
        idx = self.indexed
        ok = np.ones(users.shape[0], dtype=bool)
        for j in range(idx.mc):
            cap = idx.capacities[users, j]
            finite = np.isfinite(cap)
            with np.errstate(invalid="ignore"):
                over = self.user_used_array[users, j] + idx.s_loads[pairs, j] > (
                    margin * cap * (1 + FEASIBILITY_RTOL)
                )
            ok &= ~(finite & over)
        return ok

    def row_fit_mask(self, k: int, margin: float = 1.0) -> np.ndarray:
        """Capacity-fit mask over stream ``k``'s interested-user row."""
        idx = self.indexed
        lo, hi = int(idx.s_indptr[k]), int(idx.s_indptr[k + 1])
        return self.fits_pairs(idx.s_user[lo:hi], np.arange(lo, hi, dtype=np.int64), margin)

    def fits_user(self, user_id: str, stream_id: str, margin: float = 1.0) -> bool:
        """Would delivering the stream keep this user's capacities within
        ``margin`` of their caps?"""
        idx = self.indexed
        u = idx.user_index[user_id]
        k = idx.stream_index[stream_id]
        lo, hi = int(idx.u_indptr[u]), int(idx.u_indptr[u + 1])
        position = np.flatnonzero(idx.u_stream[lo:hi] == k)
        if position.size:
            loads = idx.u_loads[lo + int(position[0])]
        else:
            loads = np.zeros(idx.mc)  # zero-utility pair: loads are zero
        for j in range(idx.mc):
            cap = idx.capacities[u, j]
            if math.isinf(cap):
                continue
            if self.user_used_array[u, j] + loads[j] > margin * cap * (1 + FEASIBILITY_RTOL):
                return False
        return True

    def fits_server_many(self, ks: np.ndarray, margin: float = 1.0) -> np.ndarray:
        """Vectorized :meth:`fits_server_index` over a stream-index batch.

        Same per-measure float expression as the scalar probe (scalar
        used + cost column, compared against the scalar margin product),
        so the mask equals one scalar call per stream exactly.
        """
        idx = self.indexed
        ok = np.ones(ks.shape[0], dtype=bool)
        for i in range(idx.m):
            budget = idx.budgets[i]
            if math.isinf(budget):
                continue
            ok &= ~(
                self.server_used[i] + idx.stream_costs[ks, i]
                > margin * budget * (1 + FEASIBILITY_RTOL)
            )
        return ok

    def interested_row(self, k: int) -> np.ndarray:
        """Stream ``k``'s interested users (ascending user indices)."""
        idx = self.indexed
        return idx.s_user[idx.s_indptr[k]:idx.s_indptr[k + 1]]

    def interested_users(self, stream_id: str) -> "list[str]":
        """Interested users of a stream as string ids (instance order)."""
        # Stream-major CSR row lookup (users in instance order) instead
        # of a full population scan per offer.
        idx = self.indexed
        k = idx.stream_index.get(stream_id)
        if k is None:
            return []
        return idx.user_ids_of(self.interested_row(k))


class AdmissionPolicy(ABC):
    """Interface the simulator drives.

    The string-id methods (:meth:`bind`, :meth:`on_offer`,
    :meth:`on_release`) are the original API and remain the only thing a
    custom policy must implement.  The ``*_indexed`` variants are what
    the array-native engine calls; their default implementations adapt
    through the string API (so any existing policy runs under either
    engine), and the built-in policies override them with vectorized
    answers that never touch string ids.
    """

    name = "policy"

    #: True for policies whose answers are pure functions of the current
    #: resource state — no RNG, no per-offer memory, no observable call
    #: order.  The batched replay engine exploits this: between state
    #: changes a rejected stream's repeat arrivals provably get the same
    #: (empty) answer, so whole rejection runs are replayed from one
    #: batched answer without further policy calls.  Leave False (the
    #: default) for stateful or randomized policies; a wrong True breaks
    #: cross-engine report parity.
    batch_order_free = False

    def bind(self, instance: MMDInstance) -> None:
        """Called once before the run with the full instance (catalog
        known, arrival order unknown — the §5 online model)."""

    def bind_indexed(self, idx: IndexedInstance) -> None:
        """Indexed-engine bind; the default lifts and calls :meth:`bind`."""
        self.bind(idx.lift())

    @abstractmethod
    def on_offer(self, stream_id: str, view: ResourceView) -> "list[str]":
        """Decide the receiver set for an arriving stream session
        (empty = reject)."""

    def on_offer_indexed(self, k: int, view: ResourceView) -> np.ndarray:
        """Receiver *user indices* for stream index ``k``.

        Default adapter: round-trip through :meth:`on_offer` with string
        ids, preserving third-party policies under the indexed engine.
        """
        idx = view.indexed
        receivers = self.on_offer(idx.stream_ids[k], view)
        if not receivers:
            return EMPTY_USERS
        user_index = idx.user_index
        return np.array([user_index[uid] for uid in receivers], dtype=np.int64)

    def on_offer_batch(
        self, ks: np.ndarray, view: ResourceView
    ) -> "list[np.ndarray]":
        """Answer a group of arrivals at once; used by ``engine="batched"``.

        The batched replay kernel guarantees the group's streams are
        distinct, inactive, and separated by no departure, and that the
        answers' effects cannot interact until one is *admitted*.
        Returns receiver arrays for a **prefix** of ``ks`` (at least one
        entry when ``ks`` is nonempty); the caller consumes them in
        order and, as soon as one changes simulator state, discards the
        rest and re-offers the unconsumed arrivals.

        The default implementation answers sequentially through
        :meth:`on_offer_indexed` and stops after its first nonempty
        answer, so stateful policies (RNG draws, allocator charges) and
        third-party string-id policies consume offers in the exact
        order and count the per-event engines would — every answer it
        computes is always consumed.  Stateless built-ins override this
        with fully vectorized group answers.
        """
        answers: "list[np.ndarray]" = []
        for k in ks:
            answer = self.on_offer_indexed(int(k), view)
            answers.append(answer)
            if len(answer):
                break
        return answers

    def on_release(self, stream_id: str) -> None:
        """Called when an admitted session departs."""

    def on_release_indexed(self, k: int, view: ResourceView) -> None:
        """Index form of :meth:`on_release` (default: string adapter)."""
        self.on_release(view.indexed.stream_ids[k])


def _batch_row_answers(
    view: ResourceView, ks: np.ndarray, server_ok: np.ndarray, margin: float
) -> "list[np.ndarray]":
    """Vectorized ``interested_row[row_fit_mask]`` answers for a group.

    One concatenated :meth:`ResourceView.fits_pairs` call over every
    server-fitting stream's interest row replaces the per-stream calls;
    the per-measure checks are elementwise, so each split answer equals
    the scalar path's floats exactly.
    """
    idx = view.indexed
    answers: "list[np.ndarray]" = [EMPTY_USERS] * len(ks)
    fitting = np.flatnonzero(server_ok)
    if fitting.size == 0:
        return answers
    starts = idx.s_indptr[ks[fitting]]
    counts = idx.s_indptr[ks[fitting] + 1] - starts
    nz = counts > 0
    if not nz.any():
        return answers
    pairs = _concat_ranges(starts[nz], counts[nz])
    users = idx.s_user[pairs]
    ok = view.fits_pairs(users, pairs, margin)
    boundaries = np.cumsum(counts[nz])[:-1]
    for position, users_k, ok_k in zip(
        fitting[nz], np.split(users, boundaries), np.split(ok, boundaries)
    ):
        answers[int(position)] = users_k[ok_k]
    return answers


class ThresholdPolicy(AdmissionPolicy):
    """The paper-motivating baseline: admit within safety margins,
    deliver to every interested user whose margins fit; first come,
    first served, utility-blind."""

    batch_order_free = True  # pure function of the resource state

    def __init__(self, margin: float = 1.0) -> None:
        self.margin = margin
        self.name = f"threshold(m={margin:g})"

    def bind_indexed(self, idx: IndexedInstance) -> None:
        """No state to build: the threshold rule is stateless."""

    def on_offer(self, stream_id: str, view: ResourceView) -> "list[str]":
        if not view.fits_server(stream_id, self.margin):
            return []
        receivers = [
            uid
            for uid in view.interested_users(stream_id)
            if view.fits_user(uid, stream_id, self.margin)
        ]
        return receivers

    def on_offer_indexed(self, k: int, view: ResourceView) -> np.ndarray:
        if not view.fits_server_index(k, self.margin):
            return EMPTY_USERS
        return view.interested_row(k)[view.row_fit_mask(k, self.margin)]

    def on_offer_batch(
        self, ks: np.ndarray, view: ResourceView
    ) -> "list[np.ndarray]":
        # Stateless rule: answer the whole group in one vectorized pass.
        return _batch_row_answers(
            view, ks, view.fits_server_many(ks, self.margin), self.margin
        )


class AllocatePolicy(AdmissionPolicy):
    """Algorithm *Allocate* (§5) as a live admission policy.

    Keeps its own :class:`OnlineAllocator`; departures call
    :meth:`OnlineAllocator.release`, the paper-footnote extension for
    streams of finite duration.
    """

    def __init__(self, mu: "float | None" = None) -> None:
        self._mu = mu
        self._allocator: "OnlineAllocator | None" = None
        self.name = "allocate"

    def bind(self, instance: MMDInstance) -> None:
        self._allocator = OnlineAllocator(instance, mu=self._mu, enforce_budgets=True)
        self.name = f"allocate(mu={self._allocator.mu:.3g})"

    def on_offer(self, stream_id: str, view: ResourceView) -> "list[str]":
        assert self._allocator is not None, "bind() was not called"
        return self._allocator.offer(stream_id)

    def on_offer_indexed(self, k: int, view: ResourceView) -> np.ndarray:
        assert self._allocator is not None, "bind() was not called"
        return self._allocator.offer_indexed(k)

    def on_offer_batch(
        self, ks: np.ndarray, view: ResourceView
    ) -> "list[np.ndarray]":
        assert self._allocator is not None, "bind() was not called"
        return self._allocator.offer_batch(ks)

    def on_release(self, stream_id: str) -> None:
        assert self._allocator is not None
        self._allocator.release(stream_id)

    def on_release_indexed(self, k: int, view: ResourceView) -> None:
        assert self._allocator is not None
        self._allocator.release_indexed(k)


class DensityPolicy(AdmissionPolicy):
    """Admit streams whose static density ``w(S)/c(S)`` is in the top
    ``quantile`` of the catalog and that currently fit; utility-aware
    but state-blind (no exponential costs, no residual utilities)."""

    batch_order_free = True  # static densities + current resource state

    def __init__(self, quantile: float = 0.5) -> None:
        if not 0.0 <= quantile <= 1.0:
            raise ValueError(f"quantile must be in [0,1], got {quantile}")
        self.quantile = quantile
        self._cutoff = 0.0
        self.name = f"density(q={quantile:g})"

    def bind(self, instance: MMDInstance) -> None:
        self.bind_indexed(index_instance(instance))

    def bind_indexed(self, idx: IndexedInstance) -> None:
        # Vectorized over the indexed lowering: normalized catalog costs
        # (finite positive budgets only — zero budgets are vacuous) and
        # per-stream utilities via one segmented sum, the same floats as
        # the per-stream dict loops.
        cost = idx.normalized_costs()
        totals = idx.total_utilities()
        densities = np.divide(
            totals, cost, out=np.full(idx.num_streams, math.inf), where=cost > 0
        )
        if densities.size:
            self._cutoff = float(np.quantile(densities, self.quantile))
        self._idx = idx
        self._densities = densities

    def on_offer(self, stream_id: str, view: ResourceView) -> "list[str]":
        density = float(self._densities[self._idx.stream_index[stream_id]])
        if density < self._cutoff:
            return []
        if not view.fits_server(stream_id):
            return []
        return [
            uid
            for uid in view.interested_users(stream_id)
            if view.fits_user(uid, stream_id)
        ]

    def on_offer_indexed(self, k: int, view: ResourceView) -> np.ndarray:
        if float(self._densities[k]) < self._cutoff:
            return EMPTY_USERS
        if not view.fits_server_index(k):
            return EMPTY_USERS
        return view.interested_row(k)[view.row_fit_mask(k)]

    def on_offer_batch(
        self, ks: np.ndarray, view: ResourceView
    ) -> "list[np.ndarray]":
        # ~(d < cutoff), not >=: keeps the scalar path's exact NaN
        # behaviour should a density ever be non-finite.
        ok = ~(self._densities[ks] < self._cutoff)
        ok &= view.fits_server_many(ks)
        return _batch_row_answers(view, ks, ok, 1.0)


class RandomPolicy(AdmissionPolicy):
    """Admit with probability ``p`` (then fit-check); the noise floor."""

    def __init__(self, p: float = 0.5, seed: "int | None" = 0) -> None:
        self.p = p
        self._rng = ensure_rng(seed)
        self.name = f"random(p={p:g})"

    def bind_indexed(self, idx: IndexedInstance) -> None:
        """Stateless apart from the RNG: nothing to build."""

    def on_offer(self, stream_id: str, view: ResourceView) -> "list[str]":
        if self._rng.random() >= self.p:
            return []
        if not view.fits_server(stream_id):
            return []
        return [
            uid
            for uid in view.interested_users(stream_id)
            if view.fits_user(uid, stream_id)
        ]

    def on_offer_indexed(self, k: int, view: ResourceView) -> np.ndarray:
        # Same single RNG draw per offer as the string path, so both
        # engines consume the random stream identically.
        if self._rng.random() >= self.p:
            return EMPTY_USERS
        if not view.fits_server_index(k):
            return EMPTY_USERS
        return view.interested_row(k)[view.row_fit_mask(k)]
