"""Online admission policies for the video-distribution simulator.

A policy answers one question per stream-session arrival: *carry this
stream, and deliver it to which users?*  The simulator owns the ground
truth of resource usage and exposes it through :class:`ResourceView`;
it also hard-enforces feasibility after the policy answers, so a buggy
policy cannot oversubscribe the plant (violations are counted and
reported instead).

Policies:

- :class:`ThresholdPolicy` — the deployed baseline of the paper's
  introduction: admit while every resource stays within a safety
  margin, utility-blind.
- :class:`AllocatePolicy` — the paper's §5 exponential-cost algorithm
  (:class:`repro.core.allocate.OnlineAllocator`) with the
  finite-duration extension: departures return their load.
- :class:`DensityPolicy` — admit only streams whose static
  utility-per-cost density clears a quantile of the catalog (a smarter
  utility-aware heuristic that still ignores load state).
- :class:`RandomPolicy` — admit with probability ``p``, deliver to all
  fitting users (a noise floor).
"""

from __future__ import annotations

import math
from abc import ABC, abstractmethod

import numpy as np

from repro.core.allocate import OnlineAllocator
from repro.core.indexed import index_instance
from repro.core.instance import FEASIBILITY_RTOL, MMDInstance
from repro.util.rng import ensure_rng


class ResourceView:
    """Read-only usage snapshot handed to policies.

    Attributes
    ----------
    instance:
        The static instance (catalog, users, budgets).
    server_used:
        Current per-measure server usage.
    user_used:
        Current per-user, per-measure usage.
    active_streams:
        Streams currently carried.
    """

    def __init__(self, instance: MMDInstance) -> None:
        self.instance = instance
        self._idx = index_instance(instance)
        self.server_used: "list[float]" = [0.0] * instance.m
        self.user_used: "dict[str, list[float]]" = {
            u.user_id: [0.0] * instance.mc for u in instance.users
        }
        self.active_streams: set[str] = set()

    def fits_server(self, stream_id: str, margin: float = 1.0) -> bool:
        """Would carrying the stream keep all server budgets within
        ``margin`` of their caps?"""
        stream = self.instance.stream(stream_id)
        for i, budget in enumerate(self.instance.budgets):
            if math.isinf(budget):
                continue
            if self.server_used[i] + stream.costs[i] > margin * budget * (1 + FEASIBILITY_RTOL):
                return False
        return True

    def fits_user(self, user_id: str, stream_id: str, margin: float = 1.0) -> bool:
        """Would delivering the stream keep this user's capacities within
        ``margin`` of their caps?"""
        user = self.instance.user(user_id)
        loads = user.load_vector(stream_id)
        for j, cap in enumerate(user.capacities):
            if math.isinf(cap):
                continue
            if self.user_used[user_id][j] + loads[j] > margin * cap * (1 + FEASIBILITY_RTOL):
                return False
        return True

    def interested_users(self, stream_id: str) -> "list[str]":
        # Stream-major CSR row lookup (users in instance order) instead
        # of a full population scan per offer.
        idx = self._idx
        k = idx.stream_index.get(stream_id)
        if k is None:
            return []
        return idx.user_ids_of(idx.s_user[idx.s_indptr[k]:idx.s_indptr[k + 1]])


class AdmissionPolicy(ABC):
    """Interface the simulator drives."""

    name = "policy"

    def bind(self, instance: MMDInstance) -> None:
        """Called once before the run with the full instance (catalog
        known, arrival order unknown — the §5 online model)."""

    @abstractmethod
    def on_offer(self, stream_id: str, view: ResourceView) -> "list[str]":
        """Decide the receiver set for an arriving stream session
        (empty = reject)."""

    def on_release(self, stream_id: str) -> None:
        """Called when an admitted session departs."""


class ThresholdPolicy(AdmissionPolicy):
    """The paper-motivating baseline: admit within safety margins,
    deliver to every interested user whose margins fit; first come,
    first served, utility-blind."""

    def __init__(self, margin: float = 1.0) -> None:
        self.margin = margin
        self.name = f"threshold(m={margin:g})"

    def on_offer(self, stream_id: str, view: ResourceView) -> "list[str]":
        if not view.fits_server(stream_id, self.margin):
            return []
        receivers = [
            uid
            for uid in view.interested_users(stream_id)
            if view.fits_user(uid, stream_id, self.margin)
        ]
        return receivers


class AllocatePolicy(AdmissionPolicy):
    """Algorithm *Allocate* (§5) as a live admission policy.

    Keeps its own :class:`OnlineAllocator`; departures call
    :meth:`OnlineAllocator.release`, the paper-footnote extension for
    streams of finite duration.
    """

    def __init__(self, mu: "float | None" = None) -> None:
        self._mu = mu
        self._allocator: "OnlineAllocator | None" = None
        self.name = "allocate"

    def bind(self, instance: MMDInstance) -> None:
        self._allocator = OnlineAllocator(instance, mu=self._mu, enforce_budgets=True)
        self.name = f"allocate(mu={self._allocator.mu:.3g})"

    def on_offer(self, stream_id: str, view: ResourceView) -> "list[str]":
        assert self._allocator is not None, "bind() was not called"
        return self._allocator.offer(stream_id)

    def on_release(self, stream_id: str) -> None:
        assert self._allocator is not None
        self._allocator.release(stream_id)


class DensityPolicy(AdmissionPolicy):
    """Admit streams whose static density ``w(S)/c(S)`` is in the top
    ``quantile`` of the catalog and that currently fit; utility-aware
    but state-blind (no exponential costs, no residual utilities)."""

    def __init__(self, quantile: float = 0.5) -> None:
        if not 0.0 <= quantile <= 1.0:
            raise ValueError(f"quantile must be in [0,1], got {quantile}")
        self.quantile = quantile
        self._cutoff = 0.0
        self.name = f"density(q={quantile:g})"

    def bind(self, instance: MMDInstance) -> None:
        # Vectorized over the indexed lowering: normalized catalog costs
        # (finite positive budgets only — zero budgets are vacuous) and
        # per-stream utilities via one segmented sum, the same floats as
        # the per-stream dict loops.
        idx = index_instance(instance)
        cost = idx.normalized_costs()
        totals = idx.total_utilities()
        densities = np.divide(
            totals, cost, out=np.full(idx.num_streams, math.inf), where=cost > 0
        )
        if densities.size:
            self._cutoff = float(np.quantile(densities, self.quantile))
        self._idx = idx
        self._densities = densities

    def on_offer(self, stream_id: str, view: ResourceView) -> "list[str]":
        density = float(self._densities[self._idx.stream_index[stream_id]])
        if density < self._cutoff:
            return []
        if not view.fits_server(stream_id):
            return []
        return [
            uid
            for uid in view.interested_users(stream_id)
            if view.fits_user(uid, stream_id)
        ]


class RandomPolicy(AdmissionPolicy):
    """Admit with probability ``p`` (then fit-check); the noise floor."""

    def __init__(self, p: float = 0.5, seed: "int | None" = 0) -> None:
        self.p = p
        self._rng = ensure_rng(seed)
        self.name = f"random(p={p:g})"

    def on_offer(self, stream_id: str, view: ResourceView) -> "list[str]":
        if self._rng.random() >= self.p:
            return []
        if not view.fits_server(stream_id):
            return []
        return [
            uid
            for uid in view.interested_users(stream_id)
            if view.fits_user(uid, stream_id)
        ]
