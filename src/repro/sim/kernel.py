"""Chunked event-dispatch kernel: trace replay at 10⁶-event scale.

:class:`~repro.sim.indexed.IndexedVideoSim` already replays a pre-drawn
trace on arrays, but its driver still pays one Python method call per
event — two million dispatches for a million-session trace, most of
which do nothing: an arrival proposing a stream that is already
multicast is skipped, and the departure of a proposal that was never
admitted departs nothing.  This module replays the same
:class:`~repro.sim.indexed.IndexedTrace` by segmenting the replay order
into maximal no-decision runs that are skipped wholesale, touching
Python only at the events that can change state:

- **decision points** — arrivals whose stream is not currently carried
  (the policy is offered the stream; this is the only place policy code
  runs, exactly as in the per-event engines);
- **live departures** — the departure of an *admitted* session (resource
  returns and utility-integration steps).

The replay order itself is the one
:func:`~repro.sim.engine.merged_replay_order` defines — ascending
``(time, kind, schedule order)`` with arrivals (kind 0) before
departures (kind 1) at the same instant and same-instant departures in
admission order — but the kernel never
materializes it: a 10⁶-event trace would spend more time in that
2·E-element multi-key lexsort than in the decisions themselves.
Instead one vectorized pass groups each stream's arrivals in CSR layout
(sorted by ``(time, position)``), and a heap of *next-interesting* keys
— one candidate arrival per stream plus the departures of live
sessions, ordered by the same ``(time, kind, arrival_time,
position)`` tuples —
yields interesting events directly in replay order.  When a decision
*admits* a stream, every arrival of that stream up to the session's
departure time is a no-op by construction, so the kernel advances the
stream's cursor past the whole run with one ``searchsorted`` instead of
walking it event by event; when it *rejects*, the very next arrival of
the stream is the next candidate.  Replay cost is therefore one
``O(E log E)`` numpy grouping pass plus Python work proportional to the
number of *interesting* events — for production-scale traces (catalog
≪ events, sessions spanning many inter-arrival times) that is orders of
magnitude below ``2·E``.

**Parity contract.**  Interesting events fire in exactly the replay
order the per-event engines use, through the *inherited*
:meth:`~repro.sim.indexed.IndexedVideoSim._on_arrival` /
:meth:`~repro.sim.indexed.IndexedVideoSim._on_departure` handlers with
identical arguments, so every float accumulates in the same IEEE order
and the :class:`~repro.sim.metrics.SimulationReport` is bit-identical
to the ``dict`` and ``indexed`` engines on any common trace
(``tests/test_sim_indexed.py`` asserts this with ``==``).  Skipped
events touch no counter and no integrator in any engine, which is what
makes skipping them exact rather than approximate.

Select it per call (``engine="chunked"`` on
:func:`~repro.sim.simulation.simulate_trace` /
:func:`~repro.sim.simulation.compare_policies`, ``--engine chunked`` on
the CLI) or globally via ``$REPRO_SIM_ENGINE``; the default engine
stays ``indexed``.  ``benchmarks/bench_e15_kernel.py`` asserts the ≥ 5×
floor over the per-event indexed engine at 10⁶ events.

**Windowed replay of on-disk stores.**  Both kernels also replay a
time-sorted :class:`~repro.sim.store.TraceStore` window by window
(:meth:`ChunkedVideoSim.run_store`): the driver is parameterized over a
``[w0, w1)`` span of the replay order, and the only state crossing a
boundary is the carried heap of scheduled live departures plus a
*resident* map ``stream -> departure time`` of the sessions spanning
the edge.  At each window start the resident map advances every live
stream's arrival cursor past the arrivals its session already covers —
restoring the invariant that a candidate arrival's stream is inactive —
and the heap keys use *global* trace positions, so each window pops
events in exactly the order the monolithic heap would and every handler
fires with identical arguments: windowed replay is **float-identical**
to monolithic replay (``tests/test_store.py`` asserts ``==`` across
window sizes and engines).  Peak memory is a few window-sized arrays —
the mmap'd store pages stream through — which is what makes 10⁸-event
traces replayable in bounded RSS (``benchmarks/bench_e17_store.py``).
"""

from __future__ import annotations

import heapq

import numpy as np

from repro.config import resolve_store_window
from repro.exceptions import SimulationError, ValidationError
from repro.sim.indexed import IndexedTrace, IndexedVideoSim
from repro.sim.metrics import SimulationReport

#: Event-kind key component: arrivals tie-break before departures at
#: the same instant, exactly like the heap calendar and
#: :func:`~repro.sim.engine.merged_replay_order`.
_ARRIVAL, _DEPARTURE = 0, 1

#: Resident-map departure time of a session that outlives the horizon:
#: no departure is scheduled (matching the per-event engines), but every
#: later arrival of the stream must still be skipped.
_BEYOND_HORIZON = float("inf")


class ChunkedVideoSim(IndexedVideoSim):
    """Chunked-dispatch replay of a pre-drawn trace (see module docstring).

    A drop-in :class:`~repro.sim.indexed.IndexedVideoSim`: construction,
    policy binding, event handlers and reporting are inherited
    unchanged; only :meth:`run_trace`'s driver differs.  Worst case
    (every arrival a decision — tiny sessions or a catalog larger than
    the trace) degrades gracefully to per-decision heap work comparable
    to the indexed engine's per-event cost, never asymptotically worse.
    """

    def run_trace(
        self, trace: "IndexedTrace | list", horizon: float
    ) -> SimulationReport:
        """Replay a pre-drawn trace up to ``horizon`` and report.

        Accepts an :class:`~repro.sim.indexed.IndexedTrace` or a
        ``SessionEvent`` list (lowered on entry), like the parent.
        """
        times, streams, durations, departures = self._prepare_trace(trace, horizon)
        if times.shape[0]:
            self._replay_chunked(times, streams, departures, horizon)
        return self._build_report(horizon)

    def _replay_chunked(
        self,
        times: np.ndarray,
        streams: np.ndarray,
        departures: np.ndarray,
        horizon: float,
    ) -> None:
        """Monolithic replay: one window spanning the whole trace."""
        self._replay_window(times, streams, departures, horizon, [], {}, 0, None)

    def _window_setup(
        self,
        times: np.ndarray,
        streams: np.ndarray,
        heap: list,
        resident: "dict[int, float]",
        offset: int,
    ) -> "tuple[np.ndarray, np.ndarray, list, list]":
        """Group one window's arrivals and seed its heap candidates.

        Per-stream arrival groups in CSR layout: stream k's arrivals are
        ``sorter[indptr[k]:indptr[k + 1]]`` (window-local positions),
        sorted by ``(time, position)`` — the sorts are stable, so equal
        times keep trace order, reproducing the calendar's FIFO
        tie-breaking.  Drawn traces arrive time-sorted already, where
        grouping needs only the cheaper single-key radix argsort.

        The heap holds only next-interesting events, keyed by the
        replay-order tuple ``(time, kind, arrival_time, global trace
        position)`` — the third key orders same-instant departures by
        *admission*, exactly like the calendar's sequence numbers — with
        one candidate arrival per stream, plus the departure of each
        live session.  The trailing stream field is payload, never
        compared (global positions are unique within a kind).

        Window stitching happens here: each stream in ``resident`` has a
        live session (admitted in an earlier window), so its arrivals up
        to the session's departure time are no-ops by construction — its
        cursor starts past them, restoring the invariant that every
        candidate arrival's stream is inactive when it pops.  Carried
        departure entries stay in ``heap`` (re-heapified with the new
        candidates) and their global positions key the same session
        records :meth:`~repro.sim.indexed.IndexedVideoSim._admit` wrote,
        so a boundary never reorders or re-fires anything.

        Returns ``(sorter, times_by_stream, cursor, bounds)``.
        """
        num_streams = self.idx.num_streams
        if times.shape[0] < 2 or bool(np.all(times[1:] >= times[:-1])):
            sorter = np.argsort(streams, kind="stable")
        else:
            sorter = np.lexsort((times, streams))
        times_by_stream = times[sorter]
        indptr = np.zeros(num_streams + 1, dtype=np.int64)
        np.cumsum(np.bincount(streams, minlength=num_streams), out=indptr[1:])
        starts = indptr[:-1].copy()
        for k, depart in resident.items():
            lo, hi = int(starts[k]), int(indptr[k + 1])
            if lo < hi:
                starts[k] = lo + int(
                    np.searchsorted(times_by_stream[lo:hi], depart, side="right")
                )
        heads = np.flatnonzero(starts < indptr[1:])
        head_positions = sorter[starts[heads]]
        head_times = times[head_positions].tolist()
        heap.extend(
            zip(
                head_times,
                (_ARRIVAL,) * heads.shape[0],
                head_times,
                (head_positions + offset).tolist(),
                heads.tolist(),
            )
        )
        heapq.heapify(heap)
        return sorter, times_by_stream, starts.tolist(), indptr[1:].tolist()

    def _replay_window(
        self,
        times: np.ndarray,
        streams: np.ndarray,
        departures: np.ndarray,
        horizon: float,
        heap: list,
        resident: "dict[int, float]",
        offset: int,
        boundary: "float | None",
    ) -> None:
        """Drive the decision-point loop over one window of the replay order.

        ``times``/``streams``/``departures`` are the window's slice of
        the horizon-filtered trace, whose global positions are
        ``offset + local``; monolithic replay is the single-window case
        (``offset=0``, ``boundary=None``, empty carried state).  Events
        with key time ``>= boundary`` stay in ``heap`` for the next
        window — a departure landing *exactly* on the boundary defers,
        which preserves the monolithic order because arrivals sort
        before departures at a tie instant.  ``resident`` maps each live
        stream to its scheduled departure time
        (:data:`_BEYOND_HORIZON` when the session outlives the horizon)
        and is maintained here for :meth:`_window_setup` to stitch the
        next window.
        """
        sorter, times_by_stream, cursor, bounds = self._window_setup(
            times, streams, heap, resident, offset
        )
        push, pop = heapq.heappush, heapq.heappop
        active = self.view.active_mask
        on_arrival, on_departure = self._on_arrival, self._on_departure
        while heap and (boundary is None or heap[0][0] < boundary):
            time, kind, _scheduled, position, k = pop(heap)
            if kind:
                on_departure(position, k, time)
                del resident[k]
                continue
            on_arrival(position, k, time)
            lo = cursor[k] + 1
            hi = bounds[k]
            if active[k]:
                departure_time = float(departures[position - offset])
                if departure_time <= horizon:
                    resident[k] = departure_time
                    push(heap, (departure_time, _DEPARTURE, time, position, k))
                    # Admitted: every arrival of k at a time <= the
                    # departure fires while the stream is still carried
                    # (arrivals precede the departure at the tie instant)
                    # — skip the whole no-op run with one searchsorted.
                    lo += int(
                        np.searchsorted(
                            times_by_stream[lo:hi], departure_time, side="right"
                        )
                    )
                else:  # departs beyond the horizon: carried to the end
                    resident[k] = _BEYOND_HORIZON
                    lo = hi
            cursor[k] = lo
            if lo < hi:
                local = int(sorter[lo])
                arrival_time = float(times[local])
                push(heap, (arrival_time, _ARRIVAL, arrival_time, local + offset, k))

    @staticmethod
    def _check_window(times: np.ndarray, durations: np.ndarray) -> None:
        """Per-window loudness checks mirroring ``_prepare_trace``.

        Windowed store replay never materializes the full columns, so
        the NaN/negative-duration rejection runs on each streamed window
        instead (the store writer already refuses such events at append
        time; this guards hand-built column files).
        """
        if np.isnan(times).any() or np.isnan(durations).any():
            raise SimulationError("NaN event time or duration in trace")
        if durations.size and float(durations.min()) < 0.0:
            raise SimulationError(
                f"negative session duration in trace: {float(durations.min())}"
            )

    def run_store(
        self,
        store,
        horizon: float,
        window: "float | None" = None,
    ) -> SimulationReport:
        """Replay an on-disk :class:`~repro.sim.store.TraceStore` windowed.

        With a ``window`` (explicit argument or ``$REPRO_STORE_WINDOW``
        via :func:`~repro.config.resolve_store_window`), the store's
        horizon prefix is streamed in ``[w0, w1)`` spans of that many
        time units — peak memory is a few window-sized arrays, the
        mmap'd pages stream through — with live sessions handed across
        each boundary as resident state, so the report is
        **float-identical** to :meth:`run_trace` on the same store (or
        on the equivalent in-RAM trace).  Requires a time-sorted store;
        without a window this simply delegates to the monolithic
        :meth:`run_trace`.
        """
        window = resolve_store_window(window)
        if window is None:
            return self.run_trace(store, horizon)
        if not getattr(store, "sorted", False):
            raise ValidationError(
                "windowed replay needs a time-sorted store; this one is "
                "flagged unsorted — rewrite it sorted or replay "
                "monolithically (window=None)"
            )
        times_all = store.times
        streams_all = store.streams
        durations_all = store.durations
        end = int(np.searchsorted(times_all, horizon, side="right"))
        heap: list = []
        resident: "dict[int, float]" = {}
        no_times = np.empty(0)
        no_streams = np.empty(0, dtype=np.int64)
        if end:
            anchor = min(0.0, float(times_all[0]))
            lo = 0
            widx = 0
            while lo < end:
                ahead = int((float(times_all[lo]) - anchor) // window)
                if ahead > widx:
                    # Fast-forward over event-free windows in one step,
                    # still firing the carried departures inside them.
                    self._replay_window(
                        no_times, no_streams, no_times, horizon,
                        heap, resident, lo, anchor + ahead * window,
                    )
                    widx = ahead
                w1 = anchor + (widx + 1) * window
                hi = lo + int(np.searchsorted(times_all[lo:end], w1, side="left"))
                t_w = np.asarray(times_all[lo:hi])
                d_w = np.asarray(durations_all[lo:hi])
                self._check_window(t_w, d_w)
                self._replay_window(
                    t_w, np.asarray(streams_all[lo:hi]), t_w + d_w,
                    horizon, heap, resident, lo, w1,
                )
                lo = hi
                widx += 1
        # Drain: departures at or beyond the last boundary.
        self._replay_window(
            no_times, no_streams, no_times, horizon, heap, resident, end, None
        )
        return self._build_report(horizon)


#: Batched-replay group sizing: first group width, then adaptive
#: between :data:`_MIN_GROUP` and :data:`_MAX_GROUP` (grow ×2 after a
#: fully consumed admit-free group, shrink toward the consumed prefix
#: when an admit cuts a group short).
_INITIAL_GROUP = 16
_MIN_GROUP = 4
_MAX_GROUP = 1024


class BatchedVideoSim(ChunkedVideoSim):
    """Chunked replay with batched policy decisions (``engine="batched"``).

    The chunked kernel already touches Python only at decision points,
    but still answers them one at a time — one
    :meth:`~repro.sim.policies.AdmissionPolicy.on_offer_indexed` call
    per decision.  On rejection-heavy traces those decisions come in
    long departure-free runs, and until one of them *admits*, nothing
    any of them can observe changes: rejections mutate no resource
    state.  This driver therefore pops maximal groups of consecutive
    arrivals off the heap and answers each group with a single
    :meth:`~repro.sim.policies.AdmissionPolicy.on_offer_batch` call,
    consuming the answers in replay order through the per-event engines'
    own admission path (:meth:`~repro.sim.indexed.IndexedVideoSim._admit`)
    and stopping the group at its first admit — the remaining arrivals
    are pushed back and re-grouped against the post-admit state.

    Two invariants make the grouping exact rather than approximate:

    - group members have **distinct, inactive** streams (the heap holds
      one candidate arrival per stream, and an admitted stream's next
      candidate always lies beyond its departure), so the group answers
      are independent of each other until an admit;
    - a member is only added while its event key precedes every already
      popped member's *successor* arrival — a rejection pushes that
      successor, and it must not be able to overtake any arrival the
      batch has already answered — so consumption order equals the
      sequential replay order even for stateful policies (RNG draws,
      allocator charges).

    Policies that declare
    :attr:`~repro.sim.policies.AdmissionPolicy.batch_order_free` (their
    answers are pure functions of the resource state) get a stronger
    driver: the successor cut is unnecessary because call order among
    rejections is unobservable, and one group's answers stay valid for
    *every* later arrival of the same streams until state changes —
    rejections mutate nothing, so a rejected stream's repeat arrival
    provably gets the same empty answer.  The group's answers therefore
    become a decision map that replays whole rejection runs in exact
    event order with no policy calls at all, stopping at the first
    admit, live departure, or unmapped stream.

    Reports stay bit-identical to every other engine on a common trace
    (``tests/test_sim_indexed.py`` asserts ``==``); the group width
    adapts to the trace's admit density.
    ``benchmarks/bench_e16_batched.py`` asserts the ≥ 3× floor over the
    chunked engine on a decision-heavy 10⁶-event trace.
    """

    def _replay_window(
        self,
        times: np.ndarray,
        streams: np.ndarray,
        departures: np.ndarray,
        horizon: float,
        heap: list,
        resident: "dict[int, float]",
        offset: int,
        boundary: "float | None",
    ) -> None:
        """Group-decision driver over one window of the replay order.

        Same windowing contract as the chunked driver's
        :meth:`ChunkedVideoSim._replay_window`; grouping never crosses a
        boundary (every in-window arrival's key precedes it), and
        because :meth:`~repro.sim.policies.AdmissionPolicy.on_offer_batch`
        answers are consumed strictly in replay order — the stateful
        default answers a prefix sequentially, the vectorized overrides
        are pure per-row functions of the resource state — a boundary
        cutting a group short cannot change any decision, only how the
        calls are batched.
        """
        sorter, times_by_stream, cursor, bounds = self._window_setup(
            times, streams, heap, resident, offset
        )
        if self.policy.batch_order_free:
            return self._drive_order_free(
                times, streams, departures, horizon,
                sorter, times_by_stream, heap, cursor, bounds,
                resident, offset, boundary,
            )
        push, pop = heapq.heappush, heapq.heappop
        active = self.view.active_mask
        on_departure = self._on_departure
        on_offer_batch = self.policy.on_offer_batch
        group_cap = _INITIAL_GROUP

        def successor_key(k: int):
            """Heap key of stream ``k``'s next arrival after its current
            candidate (the entry a rejection of the candidate pushes)."""
            nxt = cursor[k] + 1
            if nxt >= bounds[k]:
                return None
            t = float(times_by_stream[nxt])
            return (t, _ARRIVAL, t, int(sorter[nxt]) + offset, k)

        while heap and (boundary is None or heap[0][0] < boundary):
            entry = pop(heap)
            if entry[1]:
                on_departure(entry[3], entry[4], entry[0])
                del resident[entry[4]]
                continue
            # Form the arrival group: consecutive heap arrivals, cut
            # before any member's successor could overtake the batch.
            group = [entry]
            limit = successor_key(entry[4])
            while len(group) < group_cap and heap:
                top = heap[0]
                if top[1] or (limit is not None and not (top < limit)):
                    break
                member = pop(heap)
                group.append(member)
                succ = successor_key(member[4])
                if succ is not None and (limit is None or succ < limit):
                    limit = succ

            ks = np.fromiter(
                (e[4] for e in group), dtype=np.int64, count=len(group)
            )
            answers = on_offer_batch(ks, self.view)
            consumed = 0
            changed = False
            for member, answer in zip(group, answers):
                time, _kind, _scheduled, position, k = member
                consumed += 1
                self.offered += 1
                changed = self._admit(
                    position, k, time, np.asarray(answer, dtype=np.int64)
                )
                lo = cursor[k] + 1
                hi = bounds[k]
                if active[k]:
                    departure_time = float(departures[position - offset])
                    if departure_time <= horizon:
                        resident[k] = departure_time
                        push(heap, (departure_time, _DEPARTURE, time, position, k))
                        lo += int(
                            np.searchsorted(
                                times_by_stream[lo:hi], departure_time, side="right"
                            )
                        )
                    else:  # departs beyond the horizon: carried to the end
                        resident[k] = _BEYOND_HORIZON
                        lo = hi
                cursor[k] = lo
                if lo < hi:
                    local = int(sorter[lo])
                    arrival_time = float(times[local])
                    push(
                        heap,
                        (arrival_time, _ARRIVAL, arrival_time, local + offset, k),
                    )
                if changed:
                    break  # answers past an admit were precomputed blind
            for member in group[consumed:]:
                push(heap, member)
            if changed:
                group_cap = max(_MIN_GROUP, min(group_cap, 2 * consumed))
            elif consumed == len(group):
                group_cap = min(group_cap * 2, _MAX_GROUP)

    def _drive_order_free(
        self,
        times: np.ndarray,
        streams: np.ndarray,
        departures: np.ndarray,
        horizon: float,
        sorter: np.ndarray,
        times_by_stream: np.ndarray,
        heap: list,
        cursor: list,
        bounds: list,
        resident: "dict[int, float]",
        offset: int,
        boundary: "float | None",
    ) -> None:
        """Decision-map driver for ``batch_order_free`` policies.

        One batched answer per *state epoch*: between state changes the
        policy's answers depend only on the (unchanging) resource state,
        so the group's answers form a map ``stream -> answer`` that also
        decides every repeat arrival of the same streams.  Events still
        leave the heap in exact replay order; the map merely replaces
        per-arrival policy calls, so rejection runs replay with no
        policy work at all.  The epoch ends at the first admit or live
        departure (state changes) or at an unmapped stream (the next
        group answers it first).

        Window boundaries compose freely with the epochs: answers are
        pure functions of the resource state, so a map cut short by the
        boundary is simply recomputed — identically — from the next
        window's first group, and the all-reject cursor jump stops at
        the window's own arrivals, whose skipped repeats are counted
        exactly once either way.
        """
        push, pop = heapq.heappush, heapq.heappop
        on_departure = self._on_departure
        on_offer_batch = self.policy.on_offer_batch
        admit = self._admit
        # The hot (auto-reject) path below runs once per trace event with
        # no numpy state to read, so index plain Python lists.
        sorter_list = sorter.tolist()
        times_list = times.tolist()
        empty = ()  # sentinel: mapped-and-rejected (None = unmapped)
        group_cap = _INITIAL_GROUP
        while heap and (boundary is None or heap[0][0] < boundary):
            top = heap[0]
            if top[1]:
                pop(heap)
                on_departure(top[3], top[4], top[0])
                del resident[top[4]]
                continue
            # Answer the distinct pending streams in one policy call.
            group = [pop(heap)]
            while len(group) < group_cap and heap and not heap[0][1]:
                group.append(pop(heap))
            ks = np.fromiter(
                (e[4] for e in group), dtype=np.int64, count=len(group)
            )
            answers = on_offer_batch(ks, self.view)
            if (
                (not heap or heap[0][1])
                and len(answers) == len(group)
                and all(len(a) == 0 for a in answers)
            ):
                # All-reject fast path: the group covered *every* pending
                # arrival (formation stopped at a departure or drained
                # the heap) and rejected them all, so every arrival up to
                # the next departure — which sorts after same-instant
                # arrivals — is an identical rejection.  Jump each
                # stream's cursor there with one searchsorted; no heap
                # traffic, no per-event work.
                limit_time = heap[0][0] if heap else None
                offered = 0
                for member in group:
                    k = member[4]
                    lo, hi = cursor[k], bounds[k]
                    if limit_time is None:
                        jump = hi
                    else:
                        jump = lo + int(
                            np.searchsorted(
                                times_by_stream[lo:hi],
                                limit_time,
                                side="right",
                            )
                        )
                    offered += jump - lo
                    cursor[k] = jump
                    if jump < hi:
                        local = sorter_list[jump]
                        arrival_time = times_list[local]
                        push(
                            heap,
                            (arrival_time, _ARRIVAL, arrival_time,
                             local + offset, k),
                        )
                self.offered += offered
                continue
            decisions = {
                e[4]: np.asarray(a, dtype=np.int64) if len(a) else empty
                for e, a in zip(group, answers)
            }
            for member in group:  # the map drives them back out in order
                push(heap, member)
            reason = "drained"
            offered = 0
            while heap:
                top = heap[0]
                if top[1]:
                    reason = "departure"  # state epoch ends regardless
                    break
                answer = decisions.get(top[4])
                if answer is None:
                    reason = "unmapped"  # next group answers it first
                    break
                entry = pop(heap)
                k = entry[4]
                offered += 1
                if answer is empty:
                    # Rejections commit nothing and touch no counter:
                    # advance straight to the stream's next arrival (the
                    # hot case — every repeat of a rejected stream).
                    lo = cursor[k] + 1
                    cursor[k] = lo
                    if lo < bounds[k]:
                        local = sorter_list[lo]
                        arrival_time = times_list[local]
                        push(
                            heap,
                            (arrival_time, _ARRIVAL, arrival_time,
                             local + offset, k),
                        )
                    continue
                time, position = entry[0], entry[3]
                changed = admit(position, k, time, answer)
                lo = cursor[k] + 1
                hi = bounds[k]
                if changed:  # a popped candidate's stream was inactive,
                    # so the stream is active now iff this admit took
                    departure_time = float(departures[position - offset])
                    if departure_time <= horizon:
                        resident[k] = departure_time
                        push(
                            heap,
                            (departure_time, _DEPARTURE, time, position, k),
                        )
                        lo += int(
                            np.searchsorted(
                                times_by_stream[lo:hi],
                                departure_time,
                                side="right",
                            )
                        )
                    else:  # departs beyond the horizon: carried to the end
                        resident[k] = _BEYOND_HORIZON
                        lo = hi
                cursor[k] = lo
                if lo < hi:
                    local = sorter_list[lo]
                    arrival_time = times_list[local]
                    push(
                        heap,
                        (arrival_time, _ARRIVAL, arrival_time,
                         local + offset, k),
                    )
                if changed:
                    reason = "admit"  # post-admit answers would be stale
                    break
            self.offered += offered
            if reason == "unmapped":
                # A wider group would have answered that stream already.
                group_cap = min(group_cap * 2, _MAX_GROUP)
            elif reason == "admit":
                group_cap = max(_MIN_GROUP, group_cap // 2)
