"""Chunked event-dispatch kernel: trace replay at 10⁶-event scale.

:class:`~repro.sim.indexed.IndexedVideoSim` already replays a pre-drawn
trace on arrays, but its driver still pays one Python method call per
event — two million dispatches for a million-session trace, most of
which do nothing: an arrival proposing a stream that is already
multicast is skipped, and the departure of a proposal that was never
admitted departs nothing.  This module replays the same
:class:`~repro.sim.indexed.IndexedTrace` by segmenting the replay order
into maximal no-decision runs that are skipped wholesale, touching
Python only at the events that can change state:

- **decision points** — arrivals whose stream is not currently carried
  (the policy is offered the stream; this is the only place policy code
  runs, exactly as in the per-event engines);
- **live departures** — the departure of an *admitted* session (resource
  returns and utility-integration steps).

The replay order itself is the one
:func:`~repro.sim.engine.merged_replay_order` defines — ascending
``(time, kind, schedule order)`` with arrivals (kind 0) before
departures (kind 1) at the same instant and same-instant departures in
admission order — but the kernel never
materializes it: a 10⁶-event trace would spend more time in that
2·E-element multi-key lexsort than in the decisions themselves.
Instead one vectorized pass groups each stream's arrivals in CSR layout
(sorted by ``(time, position)``), and a heap of *next-interesting* keys
— one candidate arrival per stream plus the departures of live
sessions, ordered by the same ``(time, kind, arrival_time,
position)`` tuples —
yields interesting events directly in replay order.  When a decision
*admits* a stream, every arrival of that stream up to the session's
departure time is a no-op by construction, so the kernel advances the
stream's cursor past the whole run with one ``searchsorted`` instead of
walking it event by event; when it *rejects*, the very next arrival of
the stream is the next candidate.  Replay cost is therefore one
``O(E log E)`` numpy grouping pass plus Python work proportional to the
number of *interesting* events — for production-scale traces (catalog
≪ events, sessions spanning many inter-arrival times) that is orders of
magnitude below ``2·E``.

**Parity contract.**  Interesting events fire in exactly the replay
order the per-event engines use, through the *inherited*
:meth:`~repro.sim.indexed.IndexedVideoSim._on_arrival` /
:meth:`~repro.sim.indexed.IndexedVideoSim._on_departure` handlers with
identical arguments, so every float accumulates in the same IEEE order
and the :class:`~repro.sim.metrics.SimulationReport` is bit-identical
to the ``dict`` and ``indexed`` engines on any common trace
(``tests/test_sim_indexed.py`` asserts this with ``==``).  Skipped
events touch no counter and no integrator in any engine, which is what
makes skipping them exact rather than approximate.

Select it per call (``engine="chunked"`` on
:func:`~repro.sim.simulation.simulate_trace` /
:func:`~repro.sim.simulation.compare_policies`, ``--engine chunked`` on
the CLI) or globally via ``$REPRO_SIM_ENGINE``; the default engine
stays ``indexed``.  ``benchmarks/bench_e15_kernel.py`` asserts the ≥ 5×
floor over the per-event indexed engine at 10⁶ events.
"""

from __future__ import annotations

import heapq

import numpy as np

from repro.sim.indexed import IndexedTrace, IndexedVideoSim
from repro.sim.metrics import SimulationReport

#: Event-kind key component: arrivals tie-break before departures at
#: the same instant, exactly like the heap calendar and
#: :func:`~repro.sim.engine.merged_replay_order`.
_ARRIVAL, _DEPARTURE = 0, 1


class ChunkedVideoSim(IndexedVideoSim):
    """Chunked-dispatch replay of a pre-drawn trace (see module docstring).

    A drop-in :class:`~repro.sim.indexed.IndexedVideoSim`: construction,
    policy binding, event handlers and reporting are inherited
    unchanged; only :meth:`run_trace`'s driver differs.  Worst case
    (every arrival a decision — tiny sessions or a catalog larger than
    the trace) degrades gracefully to per-decision heap work comparable
    to the indexed engine's per-event cost, never asymptotically worse.
    """

    def run_trace(
        self, trace: "IndexedTrace | list", horizon: float
    ) -> SimulationReport:
        """Replay a pre-drawn trace up to ``horizon`` and report.

        Accepts an :class:`~repro.sim.indexed.IndexedTrace` or a
        ``SessionEvent`` list (lowered on entry), like the parent.
        """
        times, streams, durations, departures = self._prepare_trace(trace, horizon)
        if times.shape[0]:
            self._replay_chunked(times, streams, departures, horizon)
        return self._build_report(horizon)

    def _replay_chunked(
        self,
        times: np.ndarray,
        streams: np.ndarray,
        departures: np.ndarray,
        horizon: float,
    ) -> None:
        """Drive the decision-point loop over the implicit replay order."""
        num_streams = self.idx.num_streams
        # Per-stream arrival groups in CSR layout: stream k's arrivals
        # are sorter[indptr[k]:indptr[k + 1]] (trace positions), sorted
        # by (time, position) — the sorts are stable, so equal times keep
        # trace order, reproducing the calendar's FIFO tie-breaking.
        # Drawn traces arrive time-sorted already, where grouping needs
        # only the cheaper single-key radix argsort.
        if times.shape[0] < 2 or bool(np.all(times[1:] >= times[:-1])):
            sorter = np.argsort(streams, kind="stable")
        else:
            sorter = np.lexsort((times, streams))
        times_by_stream = times[sorter]
        indptr = np.zeros(num_streams + 1, dtype=np.int64)
        np.cumsum(np.bincount(streams, minlength=num_streams), out=indptr[1:])

        # The heap holds only next-interesting events, keyed by the
        # replay-order tuple (time, kind, arrival_time, trace position)
        # — the third key orders same-instant departures by *admission*,
        # exactly like the calendar's sequence numbers — with one
        # candidate arrival per stream, plus the departure of each live
        # session.  The trailing stream field is payload, never compared
        # (positions are unique within a kind).
        heads = np.flatnonzero(np.diff(indptr) > 0)
        head_positions = sorter[indptr[heads]]
        head_times = times[head_positions].tolist()
        heap = list(
            zip(
                head_times,
                (_ARRIVAL,) * heads.shape[0],
                head_times,
                head_positions.tolist(),
                heads.tolist(),
            )
        )
        heapq.heapify(heap)
        cursor = indptr[:-1].tolist()
        bounds = indptr[1:].tolist()
        push, pop = heapq.heappush, heapq.heappop
        active = self.view.active_mask
        on_arrival, on_departure = self._on_arrival, self._on_departure
        while heap:
            time, kind, _scheduled, position, k = pop(heap)
            if kind:
                on_departure(position, int(streams[position]), time)
                continue
            on_arrival(position, k, time)
            lo = cursor[k] + 1
            hi = bounds[k]
            if active[k]:
                departure_time = float(departures[position])
                if departure_time <= horizon:
                    push(heap, (departure_time, _DEPARTURE, time, position, -1))
                    # Admitted: every arrival of k at a time <= the
                    # departure fires while the stream is still carried
                    # (arrivals precede the departure at the tie instant)
                    # — skip the whole no-op run with one searchsorted.
                    lo += int(
                        np.searchsorted(
                            times_by_stream[lo:hi], departure_time, side="right"
                        )
                    )
                else:  # departs beyond the horizon: carried to the end
                    lo = hi
            cursor[k] = lo
            if lo < hi:
                position = int(sorter[lo])
                arrival_time = float(times[position])
                push(heap, (arrival_time, _ARRIVAL, arrival_time, position, k))
