"""A minimal generator-based discrete-event engine.

Offline environments lack simpy, so the simulation substrate ships its
own engine with the small simpy-like core the simulator needs:

- :class:`Engine` — the event loop: a binary-heap calendar of timed
  callbacks with deterministic FIFO tie-breaking;
- :class:`Process` — a generator-based process: ``yield Timeout(d)``
  suspends for ``d`` time units, ``yield other_process`` suspends until
  that process finishes;
- :class:`Timeout` — the delay request object;
- :func:`merged_replay_order` — the calendar-light path for pre-drawn
  traces: when all events are known up front, one vectorized sort
  replaces the heap while reproducing its exact tie-breaking.

Determinism matters for reproducible experiments: events scheduled for
the same instant fire in scheduling order (a strictly increasing
sequence number breaks heap ties), and the engine never consults a
clock other than its own.

>>> engine = Engine()
>>> log = []
>>> def worker(name, delay):
...     yield Timeout(delay)
...     log.append((engine.now, name))
>>> _ = engine.process(worker("a", 2.0))
>>> _ = engine.process(worker("b", 1.0))
>>> engine.run()
>>> log
[(1.0, 'b'), (2.0, 'a')]
"""

from __future__ import annotations

import heapq
import math
from typing import Callable, Generator, Iterator

import numpy as np

from repro.exceptions import SimulationError


class Timeout:
    """A delay request yielded by process generators."""

    __slots__ = ("duration",)

    def __init__(self, duration: float) -> None:
        # NaN fails every comparison, so `duration < 0` alone would let a
        # NaN delay slip into the calendar and corrupt the heap order.
        if math.isnan(duration):
            raise SimulationError("NaN timeout duration")
        if duration < 0:
            raise SimulationError(f"negative timeout: {duration}")
        self.duration = float(duration)

    def __repr__(self) -> str:
        return f"Timeout({self.duration})"


class Process:
    """A running generator-based process.

    Created via :meth:`Engine.process`; do not instantiate directly.
    ``yield Timeout(d)`` sleeps; ``yield process`` joins another
    process (resumes when it completes).
    """

    def __init__(self, engine: "Engine", generator: Generator) -> None:
        self._engine = engine
        self._generator = generator
        self.finished = False
        self._waiters: "list[Process]" = []

    def _resume(self) -> None:
        try:
            request = next(self._generator)
        except StopIteration:
            self._finish()
            return
        if isinstance(request, Timeout):
            self._engine.schedule(request.duration, self._resume)
        elif isinstance(request, Process):
            if request.finished:
                self._engine.schedule(0.0, self._resume)
            else:
                request._waiters.append(self)
        else:
            raise SimulationError(
                f"process yielded {request!r}; expected Timeout or Process"
            )

    def _finish(self) -> None:
        self.finished = True
        for waiter in self._waiters:
            self._engine.schedule(0.0, waiter._resume)
        self._waiters.clear()


class Engine:
    """The discrete-event loop.

    Use :meth:`schedule` for plain timed callbacks and :meth:`process`
    for generator-based processes; then :meth:`run` (until the calendar
    empties) or :meth:`run_until` (until a horizon).
    """

    def __init__(self) -> None:
        self.now = 0.0
        self._heap: "list[tuple[float, int, Callable[[], None]]]" = []
        self._sequence = 0
        self.events_processed = 0

    def schedule(self, delay: float, callback: "Callable[[], None]") -> None:
        """Run ``callback`` after ``delay`` time units."""
        if math.isnan(delay):
            # `delay < 0` is False for NaN: without this check a NaN event
            # time would enter the heap and break the calendar's ordering.
            raise SimulationError("cannot schedule at a NaN delay")
        if delay < 0:
            raise SimulationError(f"cannot schedule into the past (delay={delay})")
        heapq.heappush(self._heap, (self.now + delay, self._sequence, callback))
        self._sequence += 1

    def schedule_at(self, time: float, callback: "Callable[[], None]") -> None:
        """Run ``callback`` at absolute time ``time`` (must not precede now)."""
        self.schedule(time - self.now, callback)

    def process(self, generator: Generator) -> Process:
        """Start a generator-based process immediately (at the current time)."""
        proc = Process(self, generator)
        self.schedule(0.0, proc._resume)
        return proc

    def _step(self) -> None:
        time, _seq, callback = heapq.heappop(self._heap)
        if time < self.now:
            raise SimulationError("event calendar went backwards")
        self.now = time
        self.events_processed += 1
        callback()

    def run(self, max_events: "int | None" = None) -> None:
        """Drain the calendar (optionally capped at ``max_events``)."""
        count = 0
        while self._heap:
            if max_events is not None and count >= max_events:
                return
            self._step()
            count += 1

    def run_until(self, horizon: float) -> None:
        """Process events with time at most ``horizon``, then set
        ``now = horizon``."""
        if horizon < self.now:
            raise SimulationError(f"horizon {horizon} precedes now={self.now}")
        while self._heap and self._heap[0][0] <= horizon:
            self._step()
        self.now = horizon

    def empty(self) -> bool:
        return not self._heap


def merged_replay_order(
    arrival_times: np.ndarray,
    departure_times: np.ndarray,
    horizon: "float | None" = None,
) -> np.ndarray:
    """Calendar-light replay order for a pre-drawn trace.

    Trace replay never needs the general heap calendar: every event is
    known up front (arrival ``i`` at ``arrival_times[i]``, its potential
    departure at ``departure_times[i]``), so one sort replaces ~2·E heap
    operations.  Returns event *codes* in firing order — code ``i < E``
    is arrival ``i``, code ``E + i`` is departure ``i`` — reproducing
    the :class:`Engine` heap's deterministic tie-breaking exactly:

    - equal-time events fire arrivals first (arrivals are scheduled at
      setup, so they hold lower sequence numbers than any departure);
    - equal-time arrivals fire in trace order (FIFO);
    - equal-time departures fire in *admission* order — ascending
      ``(arrival_time, position)`` — because the heap assigns a
      departure its sequence number when the arrival is processed, not
      at its trace position (for a time-sorted trace the two orders
      coincide; they differ on hand-built unsorted event lists).

    Events after ``horizon`` (if given) are dropped, matching
    :meth:`Engine.run_until`.

    >>> import numpy as np
    >>> order = merged_replay_order(np.array([1.0, 2.0]), np.array([2.0, 5.0]), 4.0)
    >>> [int(c) for c in order]   # arrival 0, arrival 1 (tie: before dep 0), dep 0
    [0, 1, 2]
    """
    count = int(arrival_times.shape[0])
    times = np.concatenate([arrival_times, departure_times])
    if np.isnan(times).any():
        # A NaN sort key makes np.lexsort's order undefined; refuse loudly
        # (mirroring Engine.schedule) instead of replaying garbage.
        raise SimulationError("NaN event time in trace (arrival or departure)")
    kind = np.repeat(np.array([0, 1], dtype=np.int64), count)
    position = np.concatenate([np.arange(count), np.arange(count)])
    # Scheduling-order key: an event's (potential) admission instant —
    # its own time for arrivals, the arrival's time for departures.
    scheduled = np.concatenate([arrival_times, arrival_times])
    codes = position + kind * count
    if horizon is not None:
        keep = times <= horizon
        times, kind, codes = times[keep], kind[keep], codes[keep]
        position, scheduled = position[keep], scheduled[keep]
    return codes[np.lexsort((position, scheduled, kind, times))]


def poisson_arrivals(
    engine: Engine,
    rate: float,
    on_arrival: "Callable[[], None]",
    rng,
    horizon: float,
) -> Iterator:
    """A process generating Poisson arrivals until ``horizon``.

    Usage: ``engine.process(poisson_arrivals(engine, lam, fn, rng, T))``.
    """
    if rate < 0:
        raise SimulationError(f"negative rate: {rate}")
    if rate == 0:
        return
    while True:
        gap = float(rng.exponential(1.0 / rate))
        if engine.now + gap > horizon:
            return
        yield Timeout(gap)
        on_arrival()
