"""Runtime configuration: one resolver for every engine switch.

The repo grew three pluggable-engine seams, each with its own
environment override:

==========  =======================  ====================  ==========
kind        selects                  env override          default
==========  =======================  ====================  ==========
solver      solver hot paths         ``$REPRO_ENGINE``     indexed
generation  instance draw path       ``$REPRO_GEN_ENGINE`` vectorized
simulation  trace draw and replay    ``$REPRO_SIM_ENGINE`` indexed
==========  =======================  ====================  ==========

The solver seam has four engines: ``dict`` (the original string-keyed
implementations), ``indexed`` (vectorized single-pick kernels, the
default), ``batched`` (:mod:`repro.core.batched`, multi-pick greedy
rounds) and ``numba`` (optional JIT of the single-pick loop; requires
the ``numba`` extra and raises a clear error without it).  All four
produce bit-identical traces.

The simulation seam has four engines: ``dict`` (the original
string-keyed event loop), ``indexed`` (array-native per-event replay,
the default), ``chunked`` (:mod:`repro.sim.kernel`, which skips
no-decision event runs wholesale for 10⁶-event traces) and ``batched``
(chunked replay answering grouped arrivals through the policies'
vectorized ``on_offer_batch``); all four produce float-identical
reports on a common trace.

Before this module each seam duplicated the same resolution logic
(explicit argument > environment variable > default) in its own file.
:func:`resolve_engine_setting` is now the single implementation; the
historical front doors (:func:`repro.core.indexed.resolve_engine`,
:func:`repro.instances.vectorized.resolve_gen_engine`,
:func:`repro.sim.indexed.resolve_sim_engine`) delegate here, and the
old environment variable names are honored unchanged.
"""

from __future__ import annotations

import os
from dataclasses import dataclass

from repro.exceptions import ValidationError


@dataclass(frozen=True)
class EngineSetting:
    """One pluggable-engine seam: its env override, default and choices.

    Attributes
    ----------
    kind:
        The registry key (``"solver"``, ``"generation"``,
        ``"simulation"``).
    label:
        Human-readable name used in error messages (kept identical to
        the pre-consolidation resolvers so existing matches hold).
    env:
        Environment variable consulted when no explicit value is given.
    default:
        Engine used when neither an argument nor the env var is set.
    choices:
        Valid engine names for this seam.
    """

    kind: str
    label: str
    env: str
    default: str
    choices: "tuple[str, ...]"


#: Every pluggable-engine seam in the repo, by kind.
ENGINE_SETTINGS: "dict[str, EngineSetting]" = {
    "solver": EngineSetting(
        kind="solver",
        label="engine",
        env="REPRO_ENGINE",
        default="indexed",
        choices=("indexed", "dict", "batched", "numba"),
    ),
    "generation": EngineSetting(
        kind="generation",
        label="generation engine",
        env="REPRO_GEN_ENGINE",
        default="vectorized",
        choices=("vectorized", "loop"),
    ),
    "simulation": EngineSetting(
        kind="simulation",
        label="simulation engine",
        env="REPRO_SIM_ENGINE",
        default="indexed",
        choices=("indexed", "dict", "chunked", "batched"),
    ),
}


def resolve_engine_setting(
    kind: str, value: "str | None" = None, default: "str | None" = None
) -> str:
    """Resolve an engine choice with the shared precedence.

    Precedence: explicit ``value`` argument > the seam's environment
    variable > ``default`` (the per-call default override some seams
    use, e.g. the dict-returning ``random_*`` families defaulting to the
    seed-compatible loop engine) > the seam's registered default.

    Raises :class:`~repro.exceptions.ValidationError` for unknown kinds
    and for engine names outside the seam's choices (including invalid
    values smuggled in through the environment variable).
    """
    setting = ENGINE_SETTINGS.get(kind)
    if setting is None:
        raise ValidationError(
            f"unknown engine kind {kind!r}; pick one of {tuple(ENGINE_SETTINGS)}"
        )
    chosen = value
    if chosen is None:
        chosen = os.environ.get(setting.env, default or setting.default)
    if chosen not in setting.choices:
        raise ValidationError(
            f"unknown {setting.label} {chosen!r}; pick one of {setting.choices}"
        )
    return chosen
