"""Runtime configuration: one resolver for every engine switch.

The repo grew three pluggable-engine seams, each with its own
environment override:

==========  =======================  ====================  ==========
kind        selects                  env override          default
==========  =======================  ====================  ==========
solver      solver hot paths         ``$REPRO_ENGINE``     indexed
generation  instance draw path       ``$REPRO_GEN_ENGINE`` vectorized
simulation  trace draw and replay    ``$REPRO_SIM_ENGINE`` indexed
==========  =======================  ====================  ==========

The solver seam has four engines: ``dict`` (the original string-keyed
implementations), ``indexed`` (vectorized single-pick kernels, the
default), ``batched`` (:mod:`repro.core.batched`, multi-pick greedy
rounds) and ``numba`` (optional JIT of the single-pick loop; requires
the ``numba`` extra and raises a clear error without it).  All four
produce bit-identical traces.

The simulation seam has four engines: ``dict`` (the original
string-keyed event loop), ``indexed`` (array-native per-event replay,
the default), ``chunked`` (:mod:`repro.sim.kernel`, which skips
no-decision event runs wholesale for 10⁶-event traces) and ``batched``
(chunked replay answering grouped arrivals through the policies'
vectorized ``on_offer_batch``); all four produce float-identical
reports on a common trace.

Before this module each seam duplicated the same resolution logic
(explicit argument > environment variable > default) in its own file.
:func:`resolve_engine_setting` is now the single implementation; the
historical front doors (:func:`repro.core.indexed.resolve_engine`,
:func:`repro.instances.vectorized.resolve_gen_engine`,
:func:`repro.sim.indexed.resolve_sim_engine`) delegate here, and the
old environment variable names are honored unchanged.
"""

from __future__ import annotations

import math
import os
from dataclasses import dataclass

from repro.exceptions import ValidationError


@dataclass(frozen=True)
class EngineSetting:
    """One pluggable-engine seam: its env override, default and choices.

    Attributes
    ----------
    kind:
        The registry key (``"solver"``, ``"generation"``,
        ``"simulation"``).
    label:
        Human-readable name used in error messages (kept identical to
        the pre-consolidation resolvers so existing matches hold).
    env:
        Environment variable consulted when no explicit value is given.
    default:
        Engine used when neither an argument nor the env var is set.
    choices:
        Valid engine names for this seam.
    """

    kind: str
    label: str
    env: str
    default: str
    choices: "tuple[str, ...]"


#: Every pluggable-engine seam in the repo, by kind.
ENGINE_SETTINGS: "dict[str, EngineSetting]" = {
    "solver": EngineSetting(
        kind="solver",
        label="engine",
        env="REPRO_ENGINE",
        default="indexed",
        choices=("indexed", "dict", "batched", "numba"),
    ),
    "generation": EngineSetting(
        kind="generation",
        label="generation engine",
        env="REPRO_GEN_ENGINE",
        default="vectorized",
        choices=("vectorized", "loop"),
    ),
    "simulation": EngineSetting(
        kind="simulation",
        label="simulation engine",
        env="REPRO_SIM_ENGINE",
        default="indexed",
        choices=("indexed", "dict", "chunked", "batched"),
    ),
}


#: Environment variable naming the default trace-store replay window
#: (simulated time units per streamed window; unset = monolithic replay).
STORE_WINDOW_ENV = "REPRO_STORE_WINDOW"

#: Environment variable naming the default store-writer chunk size
#: (events drawn/appended per batch by the bounded-memory writers).
STORE_CHUNK_ENV = "REPRO_STORE_CHUNK"

#: Events per append chunk when nothing overrides it: large enough that
#: per-chunk numpy overhead vanishes, small enough that a draw holds a
#: few MB of arrays rather than the whole trace.
DEFAULT_STORE_CHUNK = 262_144


def resolve_store_window(value: "float | None" = None) -> "float | None":
    """Resolve the trace-store replay window (time units per window).

    Precedence: explicit ``value`` > ``$REPRO_STORE_WINDOW`` > ``None``
    (no windowing — the store replays monolithically).  A window must be
    a positive finite number; anything else — including junk smuggled in
    through the environment variable — raises
    :class:`~repro.exceptions.ValidationError` loudly.
    """
    raw: "float | str | None" = value
    if raw is None:
        raw = os.environ.get(STORE_WINDOW_ENV)
        if raw is None:
            return None
    try:
        window = float(raw)
    except (TypeError, ValueError):
        raise ValidationError(
            f"bad store window {raw!r}; need a positive number of time units"
        ) from None
    if not math.isfinite(window) or window <= 0:
        raise ValidationError(
            f"bad store window {window!r}; need a positive finite number"
        )
    return window


def resolve_store_chunk(value: "int | None" = None) -> int:
    """Resolve the store-writer chunk size (events per append batch).

    Precedence: explicit ``value`` > ``$REPRO_STORE_CHUNK`` >
    :data:`DEFAULT_STORE_CHUNK`.  Must be a positive integer.
    """
    raw: "int | str | None" = value
    if raw is None:
        raw = os.environ.get(STORE_CHUNK_ENV)
        if raw is None:
            return DEFAULT_STORE_CHUNK
    try:
        chunk = int(raw)
    except (TypeError, ValueError):
        raise ValidationError(
            f"bad store chunk {raw!r}; need a positive integer event count"
        ) from None
    if chunk < 1:
        raise ValidationError(f"store chunk must be >= 1, got {chunk}")
    return chunk


#: Environment variable naming the commits/releases between defensive
#: full recomputes of :class:`~repro.core.allocate.OnlineAllocator`'s
#: cached exponential charges (the float-drift guard).
CHARGE_RESYNC_ENV = "REPRO_CHARGE_RESYNC"

#: Default resync interval: frequent enough to pin the bit-wise-no-op
#: invariant at runtime, rare enough to vanish in 10⁶-event replays.
DEFAULT_CHARGE_RESYNC = 4096


def resolve_charge_resync(value: "int | None" = None) -> int:
    """Resolve the allocator's charge-resync interval (ops per resync).

    Precedence: explicit ``value`` > ``$REPRO_CHARGE_RESYNC`` >
    :data:`DEFAULT_CHARGE_RESYNC`.  Must be a positive integer;
    anything else — including junk smuggled in through the environment
    variable — raises :class:`~repro.exceptions.ValidationError` loudly
    rather than silently disabling the drift guard.
    """
    raw: "int | str | None" = value
    if raw is None:
        raw = os.environ.get(CHARGE_RESYNC_ENV)
        if raw is None:
            return DEFAULT_CHARGE_RESYNC
    try:
        interval = int(raw)
    except (TypeError, ValueError):
        raise ValidationError(
            f"bad charge resync interval {raw!r}; need a positive integer "
            "number of commits/releases"
        ) from None
    if interval < 1:
        raise ValidationError(
            f"charge resync interval must be >= 1, got {interval}"
        )
    return interval


#: Valid WAL durability levels for the admission service: ``fsync``
#: forces every commit to disk before acknowledging (survives power
#: loss); ``flush`` stops at the OS page cache (survives process death
#: — e.g. SIGKILL — but not the machine losing power).
SERVE_DURABILITIES = ("fsync", "flush")

#: Environment variable naming the admission service's WAL durability
#: level when ``--durability`` is not passed explicitly.
SERVE_DURABILITY_ENV = "REPRO_SERVE_DURABILITY"

#: Environment variable naming the group-commit batch size (decisions
#: per WAL fsync).  1 = today's one-fsync-per-decision behavior.
COMMIT_BATCH_ENV = "REPRO_COMMIT_BATCH"

#: Environment variable naming the group-commit linger (milliseconds a
#: shallow queue waits for company before committing).
COMMIT_LINGER_ENV = "REPRO_COMMIT_LINGER_MS"

#: Environment variable naming the admission-service shard count.
SERVE_SHARDS_ENV = "REPRO_SERVE_SHARDS"

#: Hard ceiling on the group-commit batch size: large enough that the
#: fsync share per decision vanishes, small enough that a torn batch
#: stays a bounded repair.
MAX_COMMIT_BATCH = 4096


def resolve_durability(value: "str | None" = None) -> str:
    """Resolve the service WAL durability level.

    Precedence: explicit ``value`` > ``$REPRO_SERVE_DURABILITY`` >
    ``"fsync"``.  Anything outside :data:`SERVE_DURABILITIES` —
    including junk smuggled in through the environment variable —
    raises :class:`~repro.exceptions.ValidationError` loudly.
    """
    raw = value
    if raw is None:
        raw = os.environ.get(SERVE_DURABILITY_ENV, "fsync")
    if raw not in SERVE_DURABILITIES:
        raise ValidationError(
            f"unknown WAL durability {raw!r}; pick one of {SERVE_DURABILITIES}"
        )
    return raw


def resolve_commit_batch(value: "int | None" = None) -> int:
    """Resolve the group-commit batch size (decisions per WAL fsync).

    Precedence: explicit ``value`` > ``$REPRO_COMMIT_BATCH`` > 1 (the
    degenerate batch — bit-identical to the pre-group-commit service).
    Must be an integer in ``[1, MAX_COMMIT_BATCH]``; junk is loud.
    """
    raw: "int | str | None" = value
    if raw is None:
        raw = os.environ.get(COMMIT_BATCH_ENV)
        if raw is None:
            return 1
    try:
        batch = int(raw)
    except (TypeError, ValueError):
        raise ValidationError(
            f"bad commit batch {raw!r}; need a positive integer decision count"
        ) from None
    if not 1 <= batch <= MAX_COMMIT_BATCH:
        raise ValidationError(
            f"commit batch must be in [1, {MAX_COMMIT_BATCH}], got {batch}"
        )
    return batch


def resolve_commit_linger_ms(value: "float | None" = None) -> float:
    """Resolve the group-commit linger (milliseconds; 0 = never wait).

    Precedence: explicit ``value`` > ``$REPRO_COMMIT_LINGER_MS`` > 0.0.
    Must be a finite number in ``[0, 1000]``; junk is loud.
    """
    raw: "float | str | None" = value
    if raw is None:
        raw = os.environ.get(COMMIT_LINGER_ENV)
        if raw is None:
            return 0.0
    try:
        linger = float(raw)
    except (TypeError, ValueError):
        raise ValidationError(
            f"bad commit linger {raw!r}; need milliseconds in [0, 1000]"
        ) from None
    if not math.isfinite(linger) or not 0 <= linger <= 1000:
        raise ValidationError(
            f"commit linger must be finite milliseconds in [0, 1000], got {linger}"
        )
    return linger


def resolve_serve_shards(value: "int | None" = None) -> int:
    """Resolve the admission-service shard count (worker partitions).

    Precedence: explicit ``value`` > ``$REPRO_SERVE_SHARDS`` > 1 (the
    unsharded single-writer service).  Must be an integer in
    ``[1, 256]``; junk is loud.
    """
    raw: "int | str | None" = value
    if raw is None:
        raw = os.environ.get(SERVE_SHARDS_ENV)
        if raw is None:
            return 1
    try:
        shards = int(raw)
    except (TypeError, ValueError):
        raise ValidationError(
            f"bad shard count {raw!r}; need a positive integer"
        ) from None
    if not 1 <= shards <= 256:
        raise ValidationError(f"shard count must be in [1, 256], got {shards}")
    return shards


#: Sweep execution transports (how `repro sweep` fans units out):
#: ``local`` runs the in-process/pool mapper, ``subprocess`` forks N
#: worker processes on this machine, ``ssh`` runs the same worker
#: protocol on remote hosts.
SWEEP_TRANSPORTS = ("local", "subprocess", "ssh")

#: Environment variable naming the sweep transport when ``--remote`` is
#: not passed explicitly.
SWEEP_TRANSPORT_ENV = "REPRO_SWEEP_TRANSPORT"

#: Environment variable naming the ssh transport's comma-separated host
#: list when ``--hosts`` is not passed explicitly.
SWEEP_HOSTS_ENV = "REPRO_SWEEP_HOSTS"


def resolve_sweep_transport(value: "str | None" = None) -> str:
    """Resolve the sweep execution transport.

    Precedence: explicit ``value`` > ``$REPRO_SWEEP_TRANSPORT`` >
    ``"local"``.  Anything outside :data:`SWEEP_TRANSPORTS` — including
    junk smuggled in through the environment variable — raises
    :class:`~repro.exceptions.ValidationError` loudly.
    """
    raw = value
    if raw is None:
        raw = os.environ.get(SWEEP_TRANSPORT_ENV, "local")
    if raw not in SWEEP_TRANSPORTS:
        raise ValidationError(
            f"unknown sweep transport {raw!r}; pick one of {SWEEP_TRANSPORTS}"
        )
    return raw


def resolve_sweep_hosts(value: "str | None" = None) -> "tuple[str, ...]":
    """Resolve the ssh transport's worker host list.

    Precedence: explicit ``value`` > ``$REPRO_SWEEP_HOSTS`` > empty.
    The value is a comma-separated host list (``"a,b,c"``); blank
    entries — a trailing comma, doubled commas — are junk and raise
    :class:`~repro.exceptions.ValidationError` loudly rather than
    silently dispatching to an empty hostname.
    """
    raw = value
    if raw is None:
        raw = os.environ.get(SWEEP_HOSTS_ENV)
        if raw is None:
            return ()
    hosts = tuple(h.strip() for h in str(raw).split(","))
    if any(not h for h in hosts):
        raise ValidationError(
            f"bad sweep host list {raw!r}; need comma-separated non-empty "
            "host names"
        )
    return hosts


def resolve_engine_setting(
    kind: str, value: "str | None" = None, default: "str | None" = None
) -> str:
    """Resolve an engine choice with the shared precedence.

    Precedence: explicit ``value`` argument > the seam's environment
    variable > ``default`` (the per-call default override some seams
    use, e.g. the dict-returning ``random_*`` families defaulting to the
    seed-compatible loop engine) > the seam's registered default.

    Raises :class:`~repro.exceptions.ValidationError` for unknown kinds
    and for engine names outside the seam's choices (including invalid
    values smuggled in through the environment variable).
    """
    setting = ENGINE_SETTINGS.get(kind)
    if setting is None:
        raise ValidationError(
            f"unknown engine kind {kind!r}; pick one of {tuple(ENGINE_SETTINGS)}"
        )
    chosen = value
    if chosen is None:
        chosen = os.environ.get(setting.env, default or setting.default)
    if chosen not in setting.choices:
        raise ValidationError(
            f"unknown {setting.label} {chosen!r}; pick one of {setting.choices}"
        )
    return chosen
