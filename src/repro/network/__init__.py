"""Multicast distribution-tree substrate.

The paper's model (Fig. 1) constrains two places: the server's egress
and each client's access link — i.e. a **two-level** distribution tree.
Real cable/IPTV plants are deeper: head-end → fiber nodes → service
groups → homes, and *every* intermediate link has finite capacity, with
a stream loading a link iff some receiving user sits below it.

This subpackage models that generalization:

- :mod:`repro.network.topology` — distribution trees (networkx-backed),
  builders for typical plant shapes;
- :mod:`repro.network.multicast` — per-link load accounting for an
  assignment, feasibility checks, and the conservative projection back
  to the paper's two-level MMD model;
- :mod:`repro.network.admission` — tree-aware greedy admission and the
  tree-aware threshold baseline.

The paper's model is recovered exactly by a tree of depth 1 (root =
server, leaves = users): `project_to_mmd` then reproduces the original
instance, which the tests verify.  Deeper trees are *strictly* harder:
a plain-MMD-feasible assignment can overload an interior link — the A3
ablation bench quantifies how often.
"""

from repro.network.admission import tree_greedy, tree_threshold
from repro.network.multicast import MulticastState, link_loads, project_to_mmd
from repro.network.topology import DistributionTree, build_plant, two_level_tree

__all__ = [
    "DistributionTree",
    "build_plant",
    "two_level_tree",
    "MulticastState",
    "link_loads",
    "project_to_mmd",
    "tree_greedy",
    "tree_threshold",
]
