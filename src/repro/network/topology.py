"""Distribution-tree topologies.

A :class:`DistributionTree` is a rooted tree whose root is the server,
whose leaves are users, and whose edges carry bandwidth capacities.  A
multicast stream consumes its bitrate on an edge iff at least one
receiving user lies in the subtree below that edge — the defining
property that makes deeper trees strictly harder than the paper's
two-level model.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterable, Mapping

import networkx as nx

from repro.exceptions import ValidationError
from repro.util.rng import ensure_rng

#: Node id of the server/root in every tree built here.
ROOT = "head-end"


@dataclass
class DistributionTree:
    """A rooted capacitated distribution tree.

    Attributes
    ----------
    graph:
        Directed tree (edges point away from the root); each edge has a
        ``capacity`` attribute (Mbit/s, may be ``inf``).
    root:
        The server node.
    """

    graph: nx.DiGraph
    root: str = ROOT
    _leaf_cache: "tuple[str, ...] | None" = field(default=None, repr=False)

    def __post_init__(self) -> None:
        if self.root not in self.graph:
            raise ValidationError(f"root {self.root!r} not in graph")
        if not nx.is_arborescence(self.graph):
            raise ValidationError("distribution network must be a rooted tree")
        for u, v, data in self.graph.edges(data=True):
            if "capacity" not in data:
                raise ValidationError(f"edge ({u}, {v}) has no capacity")
            if data["capacity"] < 0:
                raise ValidationError(f"edge ({u}, {v}) has negative capacity")

    @property
    def leaves(self) -> "tuple[str, ...]":
        """User nodes (out-degree zero)."""
        if self._leaf_cache is None:
            object.__setattr__(
                self,
                "_leaf_cache",
                tuple(n for n in self.graph.nodes if self.graph.out_degree(n) == 0),
            )
        return self._leaf_cache

    @property
    def edges(self) -> "list[tuple[str, str]]":
        return list(self.graph.edges)

    def capacity(self, edge: "tuple[str, str]") -> float:
        return float(self.graph.edges[edge]["capacity"])

    def path_to(self, leaf: str) -> "list[tuple[str, str]]":
        """Edges from the root down to a leaf."""
        if leaf not in self.graph:
            raise ValidationError(f"unknown node {leaf!r}")
        nodes = nx.shortest_path(self.graph, self.root, leaf)
        return list(zip(nodes, nodes[1:]))

    def subtree_leaves(self, edge: "tuple[str, str]") -> "frozenset[str]":
        """Leaves reachable below an edge (the users an edge can feed)."""
        _parent, child = edge
        below = nx.descendants(self.graph, child) | {child}
        return frozenset(n for n in below if self.graph.out_degree(n) == 0)

    def depth(self) -> int:
        """Longest root-to-leaf edge count."""
        return max(
            (len(self.path_to(leaf)) for leaf in self.leaves), default=0
        )

    def access_edge(self, leaf: str) -> "tuple[str, str]":
        """The last edge into a leaf (the user's access link)."""
        preds = list(self.graph.predecessors(leaf))
        if len(preds) != 1:
            raise ValidationError(f"{leaf!r} is not a leaf with a single parent")
        return (preds[0], leaf)


def two_level_tree(
    user_ids: Iterable[str],
    server_capacity: float,
    access_capacities: "Mapping[str, float]",
) -> DistributionTree:
    """The paper's Fig. 1 shape: root → virtual egress node → users.

    The single root edge is the server's egress budget; each access edge
    is the user's downlink capacity.  ``project_to_mmd`` on this tree
    reproduces the plain MMD model exactly.
    """
    graph = nx.DiGraph()
    egress = "egress"
    graph.add_edge(ROOT, egress, capacity=float(server_capacity))
    for uid in user_ids:
        graph.add_edge(egress, uid, capacity=float(access_capacities[uid]))
    return DistributionTree(graph)


def build_plant(
    num_fiber_nodes: int,
    groups_per_node: int,
    homes_per_group: int,
    seed: "int | None" = None,
    server_capacity: float = 2000.0,
    fiber_capacity_range: "tuple[float, float]" = (300.0, 600.0),
    group_capacity_range: "tuple[float, float]" = (80.0, 160.0),
    access_capacity_range: "tuple[float, float]" = (20.0, 60.0),
) -> DistributionTree:
    """A typical HFC plant: head-end → fiber nodes → service groups → homes.

    Returns a depth-4 tree (root edge counts as level 1).  Home node ids
    are ``fn{i}-sg{j}-home{k}``; they double as user ids for instances
    built over the tree.
    """
    if min(num_fiber_nodes, groups_per_node, homes_per_group) < 1:
        raise ValidationError("plant dimensions must be positive")
    rng = ensure_rng(seed)
    graph = nx.DiGraph()
    backbone = "backbone"
    graph.add_edge(ROOT, backbone, capacity=float(server_capacity))
    for i in range(num_fiber_nodes):
        fn = f"fn{i}"
        graph.add_edge(
            backbone, fn, capacity=float(rng.uniform(*fiber_capacity_range))
        )
        for j in range(groups_per_node):
            sg = f"fn{i}-sg{j}"
            graph.add_edge(
                fn, sg, capacity=float(rng.uniform(*group_capacity_range))
            )
            for k in range(homes_per_group):
                home = f"fn{i}-sg{j}-home{k}"
                graph.add_edge(
                    sg, home, capacity=float(rng.uniform(*access_capacity_range))
                )
    return DistributionTree(graph)
