"""Per-link multicast load accounting over a distribution tree.

The defining rule: a stream loads edge ``e`` by its bitrate iff at least
one user below ``e`` receives it.  This makes interior links *shared*
constraints that the paper's two-budget model cannot express — plain MMD
charges the server once per transmitted stream and each user
individually, which is exactly the depth-1 special case.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Iterable, Mapping

from repro.core.assignment import Assignment
from repro.core.instance import FEASIBILITY_RTOL, MMDInstance, Stream, User
from repro.exceptions import ValidationError
from repro.network.topology import DistributionTree


def _bitrate(instance: MMDInstance, stream_id: str) -> float:
    """A stream's bandwidth demand: its ``bitrate`` attribute, falling
    back to its first cost measure."""
    stream = instance.stream(stream_id)
    return float(stream.attrs.get("bitrate", stream.costs[0]))


def link_loads(
    tree: DistributionTree,
    instance: MMDInstance,
    assignment: Assignment,
) -> "dict[tuple[str, str], float]":
    """Bandwidth on every edge under the multicast rule."""
    loads: dict[tuple[str, str], float] = {edge: 0.0 for edge in tree.edges}
    for sid in assignment.assigned_streams():
        receivers = set(assignment.receivers_of(sid))
        if not receivers:
            continue
        rate = _bitrate(instance, sid)
        touched: set[tuple[str, str]] = set()
        for uid in receivers:
            touched.update(tree.path_to(uid))
        for edge in touched:
            loads[edge] += rate
    return loads


@dataclass
class MulticastState:
    """Incremental per-link accounting for online admission over a tree.

    Tracks, per edge, the current bandwidth and which streams it carries
    (so adding a receiver for an already-carried stream only loads the
    new branch).
    """

    tree: DistributionTree
    instance: MMDInstance
    used: "dict[tuple[str, str], float]" = field(default_factory=dict)
    carried: "dict[tuple[str, str], set[str]]" = field(default_factory=dict)

    def __post_init__(self) -> None:
        for edge in self.tree.edges:
            self.used.setdefault(edge, 0.0)
            self.carried.setdefault(edge, set())
        missing = set(self.instance.user_ids()) - set(self.tree.leaves)
        if missing:
            raise ValidationError(
                f"users {sorted(missing)!r} are not leaves of the tree"
            )

    def new_edges_for(self, stream_id: str, user_id: str) -> "list[tuple[str, str]]":
        """Edges that would newly carry the stream if ``user_id`` joined."""
        return [
            edge
            for edge in self.tree.path_to(user_id)
            if stream_id not in self.carried[edge]
        ]

    def fits(self, stream_id: str, user_id: str, margin: float = 1.0) -> bool:
        """Would adding this receiver overload any newly-loaded edge?"""
        rate = _bitrate(self.instance, stream_id)
        for edge in self.new_edges_for(stream_id, user_id):
            capacity = self.tree.capacity(edge)
            if math.isinf(capacity):
                continue
            if self.used[edge] + rate > margin * capacity * (1 + FEASIBILITY_RTOL):
                return False
        return True

    def add(self, stream_id: str, user_id: str) -> None:
        """Commit a delivery (caller checks :meth:`fits` first)."""
        rate = _bitrate(self.instance, stream_id)
        for edge in self.new_edges_for(stream_id, user_id):
            self.used[edge] += rate
            self.carried[edge].add(stream_id)

    def remove_stream(self, stream_id: str) -> None:
        """Release a stream from every edge carrying it."""
        rate = _bitrate(self.instance, stream_id)
        for edge, streams in self.carried.items():
            if stream_id in streams:
                streams.discard(stream_id)
                self.used[edge] -= rate

    def is_feasible(self) -> bool:
        return all(
            math.isinf(self.tree.capacity(edge))
            or self.used[edge] <= self.tree.capacity(edge) * (1 + FEASIBILITY_RTOL)
            for edge in self.tree.edges
        )

    def peak_utilization(self) -> float:
        peak = 0.0
        for edge in self.tree.edges:
            capacity = self.tree.capacity(edge)
            if not math.isinf(capacity) and capacity > 0:
                peak = max(peak, self.used[edge] / capacity)
        return peak


def assignment_is_tree_feasible(
    tree: DistributionTree,
    instance: MMDInstance,
    assignment: Assignment,
    rtol: float = FEASIBILITY_RTOL,
) -> bool:
    """Every edge's multicast load within its capacity?"""
    loads = link_loads(tree, instance, assignment)
    for edge, load in loads.items():
        capacity = tree.capacity(edge)
        if not math.isinf(capacity) and load > capacity * (1 + rtol):
            return False
    return True


def project_to_mmd(
    tree: DistributionTree,
    streams: Iterable[Stream],
    utilities: "Mapping[str, Mapping[str, float]]",
    name: str = "",
) -> MMDInstance:
    """Project a tree problem onto the paper's two-level MMD model.

    Keeps the **root edge** as the single server budget and each user's
    **access edge** as his single capacity measure — discarding interior
    links.  On a :func:`~repro.network.topology.two_level_tree` this is
    exact; on deeper trees it is an optimistic relaxation (its feasible
    region contains the tree's), which is precisely the modeling gap the
    A3 ablation measures.

    ``utilities[user_id][stream_id]`` must cover exactly the tree's
    leaf users.
    """
    stream_list = list(streams)
    root_edges = [e for e in tree.edges if e[0] == tree.root]
    if not root_edges:
        raise ValidationError("tree has no root edge")
    # Several root edges = several server ports: the projected egress
    # budget is their total capacity.
    budget = sum(tree.capacity(e) for e in root_edges)

    def bitrate(stream: Stream) -> float:
        return float(stream.attrs.get("bitrate", stream.costs[0]))

    projected_streams = [
        Stream(
            stream_id=s.stream_id,
            costs=(bitrate(s),),
            name=s.name,
            attrs=s.attrs,
        )
        for s in stream_list
        if bitrate(s) <= budget
    ]
    usable = {s.stream_id for s in projected_streams}
    users = []
    for uid in tree.leaves:
        access_capacity = tree.capacity(tree.access_edge(uid))
        user_utilities = {
            sid: w
            for sid, w in utilities.get(uid, {}).items()
            if w > 0 and sid in usable
        }
        loads = {}
        kept = {}
        for sid, w in user_utilities.items():
            stream = next(s for s in projected_streams if s.stream_id == sid)
            rate = bitrate(stream)
            if rate <= access_capacity:
                kept[sid] = w
                loads[sid] = (rate,)
        users.append(
            User(
                user_id=uid,
                utility_cap=math.inf,
                capacities=(access_capacity,),
                utilities=kept,
                loads=loads,
            )
        )
    return MMDInstance(projected_streams, users, (budget,), name=name or "tree-projection")
