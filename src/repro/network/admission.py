"""Tree-aware admission algorithms.

Two algorithms operating directly on the distribution tree (no MMD
projection, so interior links are respected):

- :func:`tree_threshold` — the deployed baseline generalized to trees:
  walk streams in order, deliver to every user whose *whole path* fits;
- :func:`tree_greedy` — the paper's §2.1 discipline generalized: pick
  the (stream, receiver-set) of best residual utility per unit of newly
  consumed tree bandwidth.

Neither carries the paper's guarantee (tree-MMD is outside the paper's
model); they bracket how much the two-level abstraction gives away,
which the A3 bench reports.
"""

from __future__ import annotations

from typing import Iterable

from repro.core.assignment import Assignment
from repro.core.instance import MMDInstance
from repro.network.multicast import MulticastState, _bitrate
from repro.network.topology import DistributionTree


def tree_threshold(
    tree: DistributionTree,
    instance: MMDInstance,
    order: "Iterable[str] | None" = None,
    margin: float = 1.0,
) -> Assignment:
    """First-come-first-served over the tree: deliver each stream to every
    interested user whose root-to-leaf path still has room."""
    state = MulticastState(tree, instance)
    assignment = Assignment(instance)
    sequence = list(order) if order is not None else instance.stream_ids()
    for sid in sequence:
        for user in instance.interested_users(sid):
            if state.fits(sid, user.user_id, margin=margin):
                state.add(sid, user.user_id)
                assignment.add(user.user_id, sid)
    return assignment


def tree_greedy(
    tree: DistributionTree,
    instance: MMDInstance,
) -> Assignment:
    """Residual-density greedy over the tree.

    Repeatedly pick the stream maximizing (capped residual utility of
    its addable receivers) / (bandwidth newly consumed across all their
    paths), then commit those receivers.  Terminates when no stream can
    add utility.
    """
    state = MulticastState(tree, instance)
    assignment = Assignment(instance)
    user_raw = {u.user_id: 0.0 for u in instance.users}

    def candidate(sid: str) -> "tuple[float, float, list[str]]":
        """(gain, new bandwidth, receivers) for one stream right now."""
        rate = _bitrate(instance, sid)
        gain = 0.0
        new_edges: set = set()
        receivers = []
        for user in instance.interested_users(sid):
            if sid in assignment.streams_of(user.user_id):
                continue
            headroom = user.utility_cap - user_raw[user.user_id]
            marginal = min(user.utilities[sid], max(headroom, 0.0))
            if marginal <= 0:
                continue
            if not state.fits(sid, user.user_id):
                continue
            # Note: fits() is per-user against current loads; joint
            # feasibility of several new receivers sharing a branch is
            # re-checked at commit time below.
            receivers.append(user.user_id)
            gain += marginal
            new_edges.update(state.new_edges_for(sid, user.user_id))
        return gain, rate * len(new_edges), receivers

    while True:
        best_sid = None
        best_receivers: "list[str]" = []
        best_density = 0.0
        for sid in instance.stream_ids():
            gain, bandwidth, receivers = candidate(sid)
            if gain <= 0 or not receivers:
                continue
            density = gain / bandwidth if bandwidth > 0 else float("inf")
            if density > best_density:
                best_density = density
                best_sid, best_receivers = sid, receivers
        if best_sid is None:
            break
        committed = False
        for uid in best_receivers:
            # Re-check: earlier commits in this batch may have consumed
            # shared branch capacity.
            if state.fits(best_sid, uid):
                state.add(best_sid, uid)
                assignment.add(uid, best_sid)
                user_raw[uid] += instance.user(uid).utilities[best_sid]
                committed = True
        if not committed:
            # Nothing from the chosen batch fit after re-checks; stop to
            # guarantee termination (fits() will keep failing).
            break
    return assignment
