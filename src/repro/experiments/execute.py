"""Work-unit execution: one spec unit in, one checkpoint row out.

This module is the bottom of the experiment stack — pure computation
with no knowledge of pools, checkpoints, or transports.  Its public
face is :func:`execute_item`, the function every transport's worker
maps over ``(spec, unit, cached_row)`` triples.

Execution delegates to the same front doors everything else uses —
:func:`repro.core.solver.solve_mmd` for solve specs,
:func:`repro.sim.simulation.simulate_trace` for simulation specs (one
policy per unit, replaying a per-cell trace drawn from the cell's seed
exactly as :func:`~repro.sim.simulation.compare_policies` draws it) —
so a spec run and a hand-rolled loop produce identical numbers.  In
pooled runs each worker process rebuilds a cell's workload/trace on
first touch (the one-slot cell cache is per process) — the price of
units being self-contained enough to ship to another machine.
"""

from __future__ import annotations

import math
import time

from repro.core.instance import MMDInstance
from repro.experiments.spec import ScenarioSpec, SpecError, WorkUnit


def _json_num(value: float) -> "float | str":
    """JSON-safe number (the instance-JSON convention: inf → ``"inf"``)."""
    return "inf" if math.isinf(value) else float(value)


def _solve_jain(assignment, instance: MMDInstance) -> float:
    """Jain fairness over per-user *capped* utility of a static solution.

    Same convention as
    :attr:`repro.sim.metrics.SimulationReport.jain_fairness`:
    ``(Σx)² / (n·Σx²)`` over the full population, ``1.0`` when nobody
    collects anything.
    """
    total = 0.0
    squares = 0.0
    for user in instance.users:
        x = min(assignment.raw_user_utility(user.user_id), user.utility_cap)
        total += x
        squares += x * x
    if squares == 0:
        return 1.0
    return total * total / (max(instance.num_users, 1) * squares)


def _build_solve_instance(spec: ScenarioSpec, unit: WorkUnit):
    """Materialize the instance of one solve unit (family dispatch)."""
    from repro.instances.generators import (
        random_mmd,
        random_smd,
        random_unit_skew_smd,
        small_streams_mmd,
        sweep_cell,
    )

    params = dict(spec.params)
    if spec.family == "jsonl":
        return MMDInstance.from_json(unit.payload)
    if spec.family == "sweep":
        return sweep_cell(
            unit.num_streams,
            unit.num_users,
            unit.skew,
            seed=unit.seed,
            engine=spec.gen_engine,
            **params,
        )
    if spec.family == "unit-skew-smd":
        return random_unit_skew_smd(
            unit.num_streams, unit.num_users, seed=unit.seed,
            engine=spec.gen_engine, **params,
        )
    if spec.family == "smd":
        return random_smd(
            unit.num_streams, unit.num_users, unit.skew, seed=unit.seed,
            engine=spec.gen_engine, **params,
        )
    if spec.family == "mmd":
        params.setdefault("m", 2)
        params.setdefault("mc", 1)
        return random_mmd(
            unit.num_streams, unit.num_users, seed=unit.seed,
            engine=spec.gen_engine, **params,
        )
    if spec.family == "small-streams":
        return small_streams_mmd(
            unit.num_streams, unit.num_users, seed=unit.seed,
            engine=spec.gen_engine, **params,
        )
    raise SpecError(f"unknown solve family {spec.family!r}")


def _execute_solve_unit(spec: ScenarioSpec, unit: WorkUnit) -> "dict[str, object]":
    """Generate-and-solve one unit; return its checkpoint row."""
    from repro.core.solver import solve_mmd

    from repro.config import resolve_engine_setting

    start = time.perf_counter()
    instance = _build_solve_instance(spec, unit)
    result = solve_mmd(instance, method=spec.method, engine=spec.engine)
    runtime = time.perf_counter() - start
    assignment = result.assignment
    lifted = assignment.instance
    return {
        "unit": unit.index,
        "id": unit.unit_id,
        "seed": unit.seed,
        "name": lifted.name,
        "streams": lifted.num_streams,
        "users": lifted.num_users,
        "skew": unit.skew,
        "replicate": unit.replicate,
        "method": result.method,
        "engine": resolve_engine_setting("solver", spec.engine),
        "utility": result.utility,
        "guarantee": _json_num(result.guarantee),
        "feasible": assignment.is_feasible(),
        "streams_carried": len(assignment.assigned_streams()),
        "jain": _solve_jain(assignment, lifted),
        "runtime": runtime,
    }


#: ``kind="simulate"`` workload factories (sizes positional, seed kwarg).
def _sim_workloads():
    """Name → factory map for the simulation workloads (lazy import)."""
    from repro.instances.workloads import (
        cable_headend_workload,
        iptv_neighborhood_workload,
        small_streams_workload,
    )

    return {
        "iptv": iptv_neighborhood_workload,
        "cable-headend": cable_headend_workload,
        "small-streams": small_streams_workload,
    }


def _sim_policy(name: str, seed: int):
    """Instantiate one admission policy by spec name."""
    from repro.sim.policies import (
        AllocatePolicy,
        DensityPolicy,
        RandomPolicy,
        ThresholdPolicy,
    )

    factories = {
        "threshold": ThresholdPolicy,
        "allocate": AllocatePolicy,
        "density": DensityPolicy,
        "random": lambda: RandomPolicy(seed=seed),
    }
    return factories[name]()


#: One-slot cache of the last simulation cell's (instance, trace).
#: Units expand cell-major — every policy of a cell is adjacent — so a
#: multi-policy spec builds each workload and draws each trace once per
#: cell instead of once per unit (matching what the pre-runner
#: ``compare_policies`` loop did), while sharded/pooled executions that
#: interleave cells merely miss the cache and rebuild.
_SIM_CELL_CACHE: "dict[tuple, tuple]" = {}


def _sim_cell(spec: ScenarioSpec, unit: WorkUnit):
    """The unit's cell: the workload instance and the common trace.

    A spec with ``trace_store`` replays one shared on-disk store
    (opened zero-copy via mmap) instead of drawing a trace: every
    policy/replicate unit — and every *shard worker* of a distributed
    sweep — streams the same giant trace, which is how one 10⁸-event
    workload fans out across processes in bounded memory.
    """
    import inspect

    from repro.sim.indexed import draw_trace_arrays, resolve_sim_engine
    from repro.sim.simulation import ArrivalModel, draw_trace

    engine = resolve_sim_engine(spec.sim_engine)
    key = (
        spec.family, unit.num_streams, unit.num_users, unit.seed,
        spec.horizon, spec.rate, spec.duration, spec.popularity, engine,
        spec.trace_store,
    )
    cached = _SIM_CELL_CACHE.get(key)
    if cached is not None:
        return cached
    factory = _sim_workloads()[spec.family]
    # A None size axis means "the workload's default": read the default
    # off the factory signature so one axis may be pinned alone.
    sizes = list(inspect.signature(factory).parameters.values())
    num_streams = unit.num_streams if unit.num_streams is not None else sizes[0].default
    num_users = unit.num_users if unit.num_users is not None else sizes[1].default
    instance = factory(num_streams, num_users, seed=unit.seed)
    if spec.trace_store is not None:
        from repro.sim.store import TraceStore

        trace = TraceStore.open(spec.trace_store)
    elif engine != "dict":  # indexed and chunked share the array draw
        model = ArrivalModel(
            rate=spec.rate,
            mean_duration=spec.duration,
            popularity_exponent=spec.popularity,
        )
        trace = draw_trace_arrays(instance, model, spec.horizon, unit.seed)
    else:
        model = ArrivalModel(
            rate=spec.rate,
            mean_duration=spec.duration,
            popularity_exponent=spec.popularity,
        )
        trace = draw_trace(instance, model, spec.horizon, unit.seed, engine="dict")
    _SIM_CELL_CACHE.clear()
    _SIM_CELL_CACHE[key] = (instance, trace, engine)
    return instance, trace, engine


def _execute_sim_unit(spec: ScenarioSpec, unit: WorkUnit) -> "dict[str, object]":
    """Replay one (workload cell, policy) unit; return its checkpoint row.

    The trace seed is the unit's *cell* seed (shared by every policy of
    the cell), so replays are common-random-number comparable exactly as
    :func:`repro.sim.simulation.compare_policies` makes them.  Store
    replays go through :func:`repro.sim.simulation.simulate_store`, so
    ``store_window`` streams the shared trace in bounded memory — with
    reports float-identical to monolithic replay by the stitching
    contract, keeping shard unions byte-identical regardless of window.
    """
    from repro.sim.simulation import simulate_store, simulate_trace

    start = time.perf_counter()
    instance, trace, engine = _sim_cell(spec, unit)
    if spec.trace_store is not None:
        report = simulate_store(
            instance,
            _sim_policy(unit.policy, unit.seed),
            trace,
            spec.horizon,
            engine=engine,
            window=spec.store_window,
        )
    else:
        report = simulate_trace(
            instance,
            _sim_policy(unit.policy, unit.seed),
            trace,
            spec.horizon,
            engine=engine,
        )
    runtime = time.perf_counter() - start
    return {
        "unit": unit.index,
        "id": unit.unit_id,
        "seed": unit.seed,
        "name": instance.name,
        "streams": instance.num_streams,
        "users": instance.num_users,
        "replicate": unit.replicate,
        "policy": unit.policy,
        "engine": engine,
        "utility_time": report.utility_time,
        "acceptance": report.acceptance_rate,
        "offered": report.offered,
        "admitted": report.admitted,
        "deliveries": report.deliveries,
        "violations": report.policy_violations,
        "peak_utilization": max(
            report.peak_server_utilization.values(), default=0.0
        ),
        "jain": report.jain_fairness,
        "runtime": runtime,
    }


def execute_item(
    args: "tuple[ScenarioSpec, WorkUnit, dict | None]",
) -> "tuple[bool, dict[str, object]]":
    """Pool worker: run one unit, or pass a checkpointed row through.

    Returns ``(was_cached, row)`` so the caller appends only freshly
    executed rows to the checkpoint.
    """
    spec, unit, cached = args
    if cached is not None:
        return True, cached
    if spec.kind == "simulate":
        return False, _execute_sim_unit(spec, unit)
    return False, _execute_solve_unit(spec, unit)
