"""The in-process transport: today's pool path behind the interface.

Behavior-identical to the pre-transport runner: units map over
:func:`repro.experiments.pipeline.map_ordered` (in-process when
``workers=1``, a bounded-in-flight process pool otherwise), rows come
back in unit order by construction.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Iterator

from repro.experiments.execute import execute_item
from repro.experiments.pipeline import map_ordered
from repro.experiments.transport.base import Transport

if TYPE_CHECKING:
    from repro.experiments.spec import ScenarioSpec


class LocalTransport(Transport):
    """Execute units in this process (or its process pool)."""

    name = "local"

    def run(
        self,
        spec: "ScenarioSpec",
        *,
        shard: "tuple[int, int] | None" = None,
        workers: int = 1,
        done: "dict[int, dict[str, object]] | None" = None,
    ) -> "Iterator[tuple[bool, dict[str, object]]]":
        """Map :func:`execute_item` over the (sharded) expansion."""
        done = done or {}
        items = ((spec, unit, done.get(unit.index)) for unit in spec.expand(shard))
        yield from map_ordered(execute_item, items, workers=workers)
