"""The subprocess transport: N local worker processes over pipes.

Fan-out shape (the worker protocol the ssh transport reuses):

- the parent spawns ``N`` workers, each running ``repro sweep -
  --shard i/N --emit checkpoint --checkpoint <file> -o -`` with the
  spec's canonical JSON written to its stdin — workers therefore
  execute *exactly* the sharded CLI path, including the PR 8 graceful
  SIGTERM handling (flush checkpoint, exit 130);
- each worker streams its **full checkpoint rows** (JSONL, flushed per
  completed unit) back over stdout; the parent reorders the racing
  streams into full-grid unit order, so the merged stream — and hence
  the aggregate — is byte-identical to a local run;
- ``REPRO_SWEEP_TRANSPORT=local`` is pinned in every worker's
  environment so a worker never recursively fans out;
- resume support: rows already in the parent's checkpoint are
  pre-seeded into each worker's own checkpoint file (the worker then
  runs ``--resume`` and passes them through without re-execution);
- **dead workers**: a worker that exits early (crash, OOM, lost host)
  simply stops producing rows; once every stream has closed, the
  parent re-dispatches the unfinished units in-process — the same
  missing-unit arithmetic :func:`~repro.experiments.aggregate.merge_checkpoints`
  uses — so one lost worker degrades throughput, never completeness.
"""

from __future__ import annotations

import json
import os
import subprocess
import sys
import tempfile
import threading
from pathlib import Path
from queue import Queue
from typing import TYPE_CHECKING, Iterator

from repro.exceptions import ValidationError
from repro.experiments.checkpoint import row_text
from repro.experiments.execute import execute_item
from repro.experiments.transport.base import Transport

if TYPE_CHECKING:
    from repro.experiments.spec import ScenarioSpec


class SubprocessTransport(Transport):
    """Execute units across N ``repro sweep --shard`` worker processes."""

    name = "subprocess"

    # -- worker-protocol hooks (the ssh transport overrides these) -----

    def _num_workers(self, workers: int) -> int:
        """How many workers to spawn for a requested pool width."""
        return max(1, int(workers))

    def _checkpoint_for(self, scratch: Path, index: int) -> str:
        """Worker ``index``'s own checkpoint file path."""
        return str(scratch / f"worker{index}.jsonl")

    def _preseed(
        self, checkpoint: str, rows: "list[dict[str, object]]"
    ) -> bool:
        """Seed a worker checkpoint with already-done rows; True = resume."""
        if not rows:
            return False
        with open(checkpoint, "w") as handle:
            for row in rows:
                handle.write(row_text(row))
                handle.write("\n")
        return True

    def _command(
        self, index: int, total: int, checkpoint: str, resume: bool
    ) -> "list[str]":
        """The worker's argv (one shard of the spec, checkpoint emission)."""
        cmd = [
            sys.executable, "-m", "repro", "sweep", "-",
            "--shard", f"{index}/{total}", "--workers", "1",
            "--emit", "checkpoint", "--checkpoint", checkpoint,
            "--output", "-",
        ]
        if resume:
            cmd.append("--resume")
        return cmd

    def _worker_env(self) -> "dict[str, str]":
        """Worker environment: inherit, but pin the transport to local."""
        env = dict(os.environ)
        env["REPRO_SWEEP_TRANSPORT"] = "local"
        return env

    # -- fan-out ------------------------------------------------------

    def run(
        self,
        spec: "ScenarioSpec",
        *,
        shard: "tuple[int, int] | None" = None,
        workers: int = 1,
        done: "dict[int, dict[str, object]] | None" = None,
    ) -> "Iterator[tuple[bool, dict[str, object]]]":
        """Fan the full grid out to workers; yield rows in unit order."""
        if shard is not None:
            raise ValidationError(
                f"the {self.name} transport owns sharding itself; "
                "combine --shard only with --remote local"
            )
        done = done or {}
        units = {u.index: u for u in spec.expand()}
        with tempfile.TemporaryDirectory(prefix="repro-sweep-") as scratch:
            yield from self._fan_out(spec, units, done, workers, Path(scratch))

    def _spawn(
        self,
        spec: "ScenarioSpec",
        index: int,
        total: int,
        scratch: Path,
        done: "dict[int, dict[str, object]]",
        units: "dict[int, object]",
    ) -> "subprocess.Popen[str]":
        """Start worker ``index`` and hand it the spec over stdin."""
        checkpoint = self._checkpoint_for(scratch, index)
        mine = [
            done[i] for i in sorted(done) if i in units and i % total == index
        ]
        resume = self._preseed(checkpoint, mine)
        proc = subprocess.Popen(
            self._command(index, total, checkpoint, resume),
            stdin=subprocess.PIPE,
            stdout=subprocess.PIPE,
            stderr=subprocess.DEVNULL,
            env=self._worker_env(),
            text=True,
        )
        spec_json = json.dumps(spec.to_dict(), sort_keys=True)
        try:
            proc.stdin.write(spec_json)
            proc.stdin.close()
        except BrokenPipeError:
            pass  # worker died at startup: the EOF path re-dispatches
        return proc

    @staticmethod
    def _read_stream(proc, index: int, queue: "Queue") -> None:
        """Reader thread: worker stdout lines → the merge queue."""
        try:
            for line in proc.stdout:
                line = line.strip()
                if not line:
                    continue
                try:
                    row = json.loads(line)
                except json.JSONDecodeError:
                    continue  # torn line from a dying worker
                if isinstance(row, dict) and "unit" in row:
                    queue.put(("row", index, row))
        finally:
            queue.put(("eof", index, proc.wait()))

    @staticmethod
    def _emit(index: int, row, done):
        """One ordered pair: the checkpointed row wins over a recompute."""
        if index in done:
            return True, done[index]
        return False, row

    def _fan_out(self, spec, units, done, workers, scratch):
        """Spawn, merge-in-order, and re-dispatch (the transport core)."""
        expected = sorted(units)
        total = self._num_workers(workers)
        queue: "Queue" = Queue()
        procs = []
        try:
            for index in range(total):
                procs.append(
                    self._spawn(spec, index, total, scratch, done, units)
                )
            for index, proc in enumerate(procs):
                threading.Thread(
                    target=self._read_stream,
                    args=(proc, index, queue),
                    daemon=True,
                ).start()
            buffered: "dict[int, dict[str, object]]" = {}
            position = 0
            closed = 0
            failures = []
            while closed < total:
                kind, index, payload = queue.get()
                if kind == "eof":
                    closed += 1
                    if payload != 0:
                        failures.append((index, payload))
                    continue
                unit_index = int(payload["unit"])
                if unit_index in units:
                    buffered.setdefault(unit_index, payload)
                while position < len(expected) and expected[position] in buffered:
                    current = expected[position]
                    position += 1
                    yield self._emit(current, buffered.pop(current), done)
            for index, code in failures:
                print(
                    f"sweep worker {index}/{total} exited with code {code}; "
                    "re-dispatching its unfinished units in-process",
                    file=sys.stderr,
                )
            # Every stream is closed: anything still missing is owned by
            # a dead worker — re-dispatch it in-process, in unit order.
            for current in expected[position:]:
                if current in buffered:
                    yield self._emit(current, buffered.pop(current), done)
                else:
                    yield execute_item((spec, units[current], done.get(current)))
        finally:
            for proc in procs:
                if proc.poll() is None:
                    proc.terminate()
            for proc in procs:
                try:
                    proc.wait(timeout=10)
                except subprocess.TimeoutExpired:
                    proc.kill()
