"""The :class:`Transport` interface every sweep execution backend fits.

A transport answers one question: *given a spec and the rows already
checkpointed, produce every remaining row* — as an ordered stream of
``(was_cached, row)`` pairs, exactly what
:func:`repro.experiments.execute.execute_item` returns.  Everything
above (checkpoint appends, aggregation, the CLI) and below (unit
execution) is shared; a transport only decides *where* units run:

- :class:`~repro.experiments.transport.local.LocalTransport` — this
  process, optionally over a process pool;
- :class:`~repro.experiments.transport.subproc.SubprocessTransport` —
  N worker processes on this machine, each a ``repro sweep --shard``
  invocation streaming checkpoint rows back over its pipe;
- :class:`~repro.experiments.transport.ssh.SshTransport` — the same
  worker protocol over ``ssh host python -m repro ...``.

The ordering contract is strict: rows come back in full-grid unit-index
order regardless of how workers race, so every transport's streamed
output — and therefore its aggregate — is byte-identical to a local
run's.
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from typing import TYPE_CHECKING, Iterator

if TYPE_CHECKING:  # import cycle: runner composes transports
    from repro.experiments.spec import ScenarioSpec


def graceful_runner_signals() -> None:
    """Make SIGTERM interrupt a runner exactly like Ctrl-C (SIGINT).

    The runner's checkpoint discipline (append + flush per completed
    unit) means an interrupted sweep loses at most the in-flight unit;
    translating SIGTERM into :class:`KeyboardInterrupt` lets the
    command funnel both signals into one flush-and-exit-130 path.  The
    CLI installs this for every runner invocation — including the
    worker processes the subprocess/ssh transports spawn, which is how
    a terminated worker flushes its checkpoint and exits 130 without
    any worker-specific signal code.
    """
    import signal

    def _interrupt(signum, frame):
        raise KeyboardInterrupt

    try:
        signal.signal(signal.SIGTERM, _interrupt)
    except (ValueError, OSError):
        # Not the main thread (embedded use): signals stay untouched.
        pass


class Transport(ABC):
    """One way of executing a spec's work units (see module docstring)."""

    #: Registry name (``"local"`` / ``"subprocess"`` / ``"ssh"``).
    name: str = ""

    @abstractmethod
    def run(
        self,
        spec: "ScenarioSpec",
        *,
        shard: "tuple[int, int] | None" = None,
        workers: int = 1,
        done: "dict[int, dict[str, object]] | None" = None,
    ) -> "Iterator[tuple[bool, dict[str, object]]]":
        """Yield ``(was_cached, row)`` for every unit, in unit order.

        ``done`` maps already-checkpointed unit indices to their rows;
        a transport must yield those rows with ``was_cached=True``
        (without charging for re-execution) and everything else freshly
        executed with ``was_cached=False``, so the caller appends only
        new rows to its checkpoint.
        """
