"""The ssh transport: the subprocess worker protocol on remote hosts.

One worker per host: worker ``i`` of ``len(hosts)`` runs

.. code-block:: text

    ssh <host> env REPRO_SWEEP_TRANSPORT=local \
        python3 -m repro sweep - --shard i/n --emit checkpoint \
        --checkpoint /tmp/repro-sweep-<token>-<i>.jsonl -o -

with the spec JSON on stdin, exactly as the subprocess transport does
locally — the stream merge, ordering, and dead-worker re-dispatch are
inherited unchanged, so a lost host degrades throughput (its units
re-run in-process), never completeness or byte-identity.

Differences from the local worker protocol:

- hosts come from ``--hosts`` / ``$REPRO_SWEEP_HOSTS`` (see
  :func:`repro.config.resolve_sweep_hosts`);
- worker checkpoints live in the *remote* ``/tmp`` (the parent cannot
  pre-seed them, so on resume a remote worker recomputes rows the
  parent already has — the parent discards the duplicates in favor of
  its checkpointed rows);
- ``$REPRO_SSH_CMD`` overrides the ssh client (e.g. ``ssh -o
  BatchMode=yes``, or a test stub) and ``$REPRO_SSH_PYTHON`` the
  remote interpreter (default ``python3``, which must have ``repro``
  importable on the host).
"""

from __future__ import annotations

import os
import shlex
import uuid
from pathlib import Path

from repro.exceptions import ValidationError
from repro.experiments.transport.subproc import SubprocessTransport

#: Environment variable overriding the ssh client command line.
SSH_CMD_ENV = "REPRO_SSH_CMD"

#: Environment variable naming the remote Python interpreter.
SSH_PYTHON_ENV = "REPRO_SSH_PYTHON"


class SshTransport(SubprocessTransport):
    """Execute units across ssh hosts (one worker per host)."""

    name = "ssh"

    def __init__(self, hosts: "tuple[str, ...]"):
        """Bind the transport to its worker host list (non-empty)."""
        if not hosts:
            raise ValidationError(
                "the ssh transport needs worker hosts; pass --hosts a,b,c "
                "or set $REPRO_SWEEP_HOSTS"
            )
        self.hosts = tuple(hosts)
        self._token = uuid.uuid4().hex[:8]

    def _num_workers(self, workers: int) -> int:
        """One worker per configured host (``--workers`` is per-host N/A)."""
        return len(self.hosts)

    def _checkpoint_for(self, scratch: Path, index: int) -> str:
        """Worker ``index``'s checkpoint path *on its remote host*."""
        return f"/tmp/repro-sweep-{self._token}-{index}.jsonl"

    def _preseed(self, checkpoint: str, rows) -> bool:
        """Remote checkpoints cannot be pre-seeded from here: recompute.

        The parent keeps its own checkpointed rows authoritative (the
        merge prefers them over a worker's recompute), so resume still
        never loses or duplicates a unit.
        """
        return False

    def _command(
        self, index: int, total: int, checkpoint: str, resume: bool
    ) -> "list[str]":
        """The ssh command line running worker ``index`` on its host."""
        ssh = shlex.split(os.environ.get(SSH_CMD_ENV, "ssh"))
        python = os.environ.get(SSH_PYTHON_ENV, "python3")
        return ssh + [
            self.hosts[index],
            "env", "REPRO_SWEEP_TRANSPORT=local",
            python, "-m", "repro", "sweep", "-",
            "--shard", f"{index}/{total}", "--workers", "1",
            "--emit", "checkpoint", "--checkpoint", checkpoint,
            "--output", "-",
        ]

    def _worker_env(self) -> "dict[str, str]":
        """The ssh client's local environment (guard rides the argv)."""
        return dict(os.environ)
