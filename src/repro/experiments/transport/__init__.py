"""Pluggable sweep execution transports (see :mod:`.base`).

:func:`get_transport` is the registry front door the runner uses:

>>> from repro.experiments.transport import get_transport
>>> get_transport("local").name
'local'
>>> get_transport("subprocess").name
'subprocess'
"""

from __future__ import annotations

from repro.exceptions import ValidationError
from repro.experiments.transport.base import Transport, graceful_runner_signals
from repro.experiments.transport.local import LocalTransport
from repro.experiments.transport.ssh import SshTransport
from repro.experiments.transport.subproc import SubprocessTransport

__all__ = [
    "LocalTransport",
    "SshTransport",
    "SubprocessTransport",
    "Transport",
    "get_transport",
    "graceful_runner_signals",
]


def get_transport(
    name: str, *, hosts: "tuple[str, ...] | None" = None
) -> Transport:
    """Instantiate a transport by registry name.

    ``hosts`` is required (non-empty) by ``"ssh"`` and ignored by the
    others; an unknown name raises
    :class:`~repro.exceptions.ValidationError` with the valid choices.
    """
    if name == "local":
        return LocalTransport()
    if name == "subprocess":
        return SubprocessTransport()
    if name == "ssh":
        return SshTransport(tuple(hosts or ()))
    from repro.config import SWEEP_TRANSPORTS

    raise ValidationError(
        f"unknown sweep transport {name!r}; pick one of {SWEEP_TRANSPORTS}"
    )
