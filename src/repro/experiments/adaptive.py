"""Round-based adaptive grid refinement over the experiment runner.

:func:`run_adaptive` runs a spec's grid coarsely, scores each cell by
the spec's refinement metric (``refine_metric``, defaulting to the
kind's headline objective), and subdivides the axis neighborhoods of
the top-``k`` cells into the next round's grid — re-dispatching each
round through any transport.  The procedure is a pure function of
``(spec, rounds, top_k)``:

- per-unit seeds derive from ``(base_seed, index)`` of each round's
  grid, never from RNG state carried between rounds;
- cell scores are means of checkpointed row values, so a resumed round
  scores identically to an uninterrupted one;
- subdivision is arithmetic (midpoints between a top cell's axis value
  and its nearest already-seen neighbors, integer axes rounded down,
  already-seen values skipped) with deterministic tie-breaks
  (``(-score, cell)`` ordering).

Every round checkpoints under the same resumable scheme as a flat
sweep — round ``r`` appends to ``<checkpoint>.round<r>`` — so a run
killed mid-round resumes byte-identically: completed rounds replay
from their files, the interrupted round continues from its partial
checkpoint, and later rounds re-derive the same grids.
"""

from __future__ import annotations

import dataclasses
from dataclasses import dataclass, field
from pathlib import Path

from repro.exceptions import ValidationError
from repro.experiments.aggregate import ExperimentRun
from repro.experiments.runner import run_experiment
from repro.experiments.spec import ScenarioSpec, resolve_spec

#: The grid axes refinement may subdivide, per spec kind (with their
#: value types — integer axes take floor midpoints).
REFINE_AXES = {
    "solve": (("streams", int), ("users", int), ("skews", float)),
    "simulate": (("streams", int), ("users", int)),
}


@dataclass
class AdaptiveRun:
    """The aggregated result of an adaptive multi-round sweep.

    Attributes
    ----------
    spec:
        The round-0 (coarse) spec.
    rounds:
        One :class:`~repro.experiments.aggregate.ExperimentRun` per
        executed round, in order.  Fewer than requested when the grid
        converged early (no new axis values to try).
    """

    spec: ScenarioSpec
    rounds: "list[ExperimentRun]" = field(default_factory=list)

    @property
    def final(self) -> ExperimentRun:
        """The last round's run (the most refined grid)."""
        return self.rounds[-1]

    def to_jsonl(self, path: "str | Path | None" = None) -> str:
        """Deterministic aggregate: the rounds' JSONL, concatenated.

        Byte-identical across reruns and across transports, including
        a run killed mid-round and resumed — the adaptive acceptance
        contract.  Returns the text; writes it when ``path`` is given.
        """
        text = "".join(run.to_jsonl() for run in self.rounds)
        if path is not None:
            Path(path).write_text(text)
        return text


def _check_refinable(spec: ScenarioSpec) -> None:
    """Reject specs whose grids refinement cannot subdivide."""
    if spec.kind == "solve" and spec.family == "jsonl":
        raise ValidationError(
            "adaptive refinement needs a generated grid; family='jsonl' "
            "units come from a file and have no axes to subdivide"
        )
    for axis, _kind in REFINE_AXES[spec.kind]:
        if getattr(spec, axis) is None:
            raise ValidationError(
                f"adaptive refinement needs an explicit {axis!r} axis; "
                "default-size cells cannot be subdivided"
            )


def _cell_key(spec: ScenarioSpec, unit) -> "tuple":
    """A unit's grid-cell coordinates along the refinable axes."""
    if spec.kind == "solve":
        return (unit.num_streams, unit.num_users, unit.skew)
    return (unit.num_streams, unit.num_users)


def _score_cells(
    spec: ScenarioSpec, run: ExperimentRun, metric: str
) -> "dict[tuple, float]":
    """Mean metric per grid cell (over replicates/policies/methods)."""
    by_index = {int(r["unit"]): r for r in run.rows}
    totals: "dict[tuple, list[float]]" = {}
    for unit in spec.expand():
        row = by_index.get(unit.index)
        if row is None:
            continue
        totals.setdefault(_cell_key(spec, unit), []).append(float(row[metric]))
    return {
        cell: sum(values) / len(values) for cell, values in totals.items()
    }


def _midpoints(
    value, neighbors: "list", seen: "set", integral: bool
) -> "set":
    """New values between ``value`` and its nearest seen neighbors."""
    fresh = set()
    below = [n for n in neighbors if n < value]
    above = [n for n in neighbors if n > value]
    for other in ([max(below)] if below else []) + ([min(above)] if above else []):
        mid = (value + other) // 2 if integral else (value + other) / 2
        if mid not in seen and mid != value and mid != other:
            fresh.add(mid)
    return fresh


def _refine_axes(
    spec: ScenarioSpec,
    top_cells: "list[tuple]",
    seen: "dict[str, set]",
) -> "tuple[dict[str, tuple], bool]":
    """Next round's axis values around the top cells; False = converged."""
    next_axes: "dict[str, tuple]" = {}
    grew = False
    for position, (axis, kind) in enumerate(REFINE_AXES[spec.kind]):
        top_values = sorted({cell[position] for cell in top_cells})
        neighbors = sorted(seen[axis])
        fresh: "set" = set()
        for value in top_values:
            fresh |= _midpoints(value, neighbors, seen[axis], kind is int)
        if fresh:
            grew = True
        seen[axis] |= fresh
        next_axes[axis] = tuple(sorted(set(top_values) | fresh))
    return next_axes, grew


def run_adaptive(
    spec: "ScenarioSpec | str | Path",
    *,
    rounds: int = 1,
    top_k: int = 1,
    workers: int = 1,
    checkpoint: "str | Path | None" = None,
    resume: bool = False,
    transport: "str | None" = None,
    hosts=None,
) -> AdaptiveRun:
    """Run an adaptive (coarse → refined) sweep; see module docstring.

    Parameters
    ----------
    spec:
        The coarse round-0 grid (object, file path, or builtin name).
    rounds:
        Total rounds to run (``1`` = a plain sweep wrapped in an
        :class:`AdaptiveRun`); stops early when no axis can grow.
    top_k:
        Cells kept per round (highest mean ``refine_metric``; ties
        break on cell coordinates).
    workers / checkpoint / resume / transport / hosts:
        Exactly as :func:`repro.experiments.runner.run_experiment`;
        round ``r`` checkpoints to ``<checkpoint>.round<r>``.
    """
    base = resolve_spec(spec)
    _check_refinable(base)
    if rounds < 1:
        raise ValidationError(f"adaptive rounds must be >= 1, got {rounds}")
    if top_k < 1:
        raise ValidationError(f"refine top-k must be >= 1, got {top_k}")
    metric = base.refine_metric or (
        "utility_time" if base.kind == "simulate" else "utility"
    )
    seen = {
        axis: set(getattr(base, axis))
        for axis, _kind in REFINE_AXES[base.kind]
    }
    result = AdaptiveRun(spec=base)
    current = base
    for round_index in range(rounds):
        round_checkpoint = (
            f"{checkpoint}.round{round_index}" if checkpoint is not None else None
        )
        run = run_experiment(
            current,
            workers=workers,
            checkpoint=round_checkpoint,
            resume=resume,
            transport=transport,
            hosts=hosts,
        )
        result.rounds.append(run)
        if round_index == rounds - 1:
            break
        scores = _score_cells(current, run, metric)
        top_cells = [
            cell
            for cell in sorted(scores, key=lambda c: (-scores[c], c))[:top_k]
        ]
        next_axes, grew = _refine_axes(current, top_cells, seen)
        if not grew:
            break  # nothing new to try: the grid has converged
        current = dataclasses.replace(
            base,
            name=f"{base.name}+round{round_index + 1}",
            **next_axes,
        ).validate()
    return result
