"""The shared work-unit pipeline: ordered, bounded, optionally pooled.

Every batch path in the repo — :func:`repro.core.solver.iter_solve_many`,
:func:`repro.sim.simulation.compare_policies`, and the experiment runner
of :mod:`repro.experiments.runner` — funnels through
:func:`map_ordered`: pull items from a (possibly huge, lazily produced)
iterable, apply a picklable function, and yield results **in input
order** while keeping at most ``O(workers)`` items in flight.

This module is deliberately a leaf: it imports nothing from the rest of
the package, so solver and simulation code can use it without cycles.
"""

from __future__ import annotations

import collections
from typing import Callable, Iterable, Iterator, TypeVar

from repro.exceptions import ValidationError

T = TypeVar("T")
R = TypeVar("R")

#: Keep at most ``IN_FLIGHT_FACTOR × workers`` submissions pending, so a
#: streaming producer is consumed lazily instead of being drained into
#: the pool's queue all at once.
IN_FLIGHT_FACTOR = 2


def map_ordered(
    fn: "Callable[[T], R]",
    items: "Iterable[T]",
    *,
    workers: int = 1,
) -> "Iterator[R]":
    """Apply ``fn`` to every item, yielding results in input order.

    Parameters
    ----------
    fn:
        The executor.  With ``workers > 1`` it must be a **top-level
        picklable** function and the items must pickle too (they cross
        the process boundary).
    items:
        Any iterable; consumed lazily, so generators stream.
    workers:
        ``1`` (default) maps in-process.  ``N > 1`` fans items out over
        a :class:`~concurrent.futures.ProcessPoolExecutor`, with at most
        ``IN_FLIGHT_FACTOR × N`` submissions pending at once — a result
        is yielded as soon as it *and all its predecessors* complete, so
        neither the inputs nor the outputs of a huge stream accumulate.
    """
    if workers < 1:
        raise ValidationError(f"workers must be >= 1, got {workers}")
    if workers == 1:
        for item in items:
            yield fn(item)
        return
    from concurrent.futures import ProcessPoolExecutor

    pending: "collections.deque" = collections.deque()
    with ProcessPoolExecutor(max_workers=workers) as pool:
        for item in items:
            pending.append(pool.submit(fn, item))
            while len(pending) >= IN_FLIGHT_FACTOR * workers:
                yield pending.popleft().result()
        while pending:
            yield pending.popleft().result()
