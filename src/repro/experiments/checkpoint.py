"""Checkpoint I/O: the runner's per-unit JSONL files and their lock.

A checkpoint is a plain JSONL file — one row appended (and flushed) per
completed work unit — whose append discipline makes sweeps resumable: a
killed run loses at most the row being written, and ``resume=True``
re-reads the file, skips the completed unit ids and repairs a torn
trailing line in place.

Two rules keep the format trustworthy:

- **single writer** — every open-for-append acquires an exclusive
  sibling lockfile (``<checkpoint>.lock`` holding the writer's pid and
  host).  A second writer — e.g. two transports pointed at one file —
  is refused loudly instead of interleaving JSONL rows; a *stale* lock
  left behind by a SIGKILLed run (its pid no longer alive on this
  host) is taken over silently, so crash-resume keeps working.
- **spec identity** — every row records the 12-hex ``spec_hash`` of
  the grid that produced it, so resuming (or merging) against the
  wrong spec is detected by hash instead of by luck.

:class:`CheckpointWriter` packages the whole append side — refusal
without ``resume``, torn-tail repair, lock acquisition, per-row flush —
so the runner and every transport share one implementation.
"""

from __future__ import annotations

import json
import os
import socket
from pathlib import Path

from repro.exceptions import ValidationError

#: Suffix of the sibling lockfile guarding a checkpoint against
#: concurrent writers.
LOCK_SUFFIX = ".lock"


def row_text(row: "dict[str, object]") -> str:
    """Canonical one-line JSON form (sorted keys: byte-stable)."""
    return json.dumps(row, sort_keys=True)


def read_checkpoint(path: "str | Path") -> "dict[int, dict[str, object]]":
    """Parse a checkpoint JSONL into ``{unit_index: row}``.

    A malformed line — in practice the torn tail of a killed run — ends
    the parse: everything before it is kept, it and anything after are
    re-executed on resume.
    """
    rows: "dict[int, dict[str, object]]" = {}
    path = Path(path)
    if not path.exists():
        return rows
    for line in path.read_text().splitlines():
        line = line.strip()
        if not line:
            continue
        try:
            row = json.loads(line)
            unit = int(row["unit"])
        except (json.JSONDecodeError, KeyError, TypeError, ValueError):
            break
        rows[unit] = row
    return rows


def _pid_alive(pid: int) -> bool:
    """Whether ``pid`` names a live process on this host."""
    try:
        os.kill(pid, 0)
    except ProcessLookupError:
        return False
    except (PermissionError, OSError):
        return True  # exists but owned by someone else — alive
    return True


class CheckpointLock:
    """Exclusive pid-marker lockfile for one checkpoint file.

    ``acquire`` creates ``<checkpoint>.lock`` with ``O_EXCL`` holding
    ``{"pid", "host"}``.  An existing lock whose pid is dead *on this
    host* is stale (the writer was SIGKILLed mid-run) and is taken
    over; a live or foreign-host lock raises
    :class:`~repro.exceptions.ValidationError` loudly — two writers
    interleaving one JSONL would corrupt it silently otherwise.
    """

    def __init__(self, checkpoint: "str | Path"):
        """Prepare the lock for ``checkpoint`` (not yet acquired)."""
        self.checkpoint = Path(checkpoint)
        self.path = Path(str(checkpoint) + LOCK_SUFFIX)
        self._held = False

    def acquire(self) -> "CheckpointLock":
        """Create the lockfile, taking over stale locks; loud otherwise."""
        payload = json.dumps(
            {"pid": os.getpid(), "host": socket.gethostname()}, sort_keys=True
        ).encode()
        while not self._held:
            try:
                fd = os.open(self.path, os.O_CREAT | os.O_EXCL | os.O_WRONLY)
            except FileExistsError:
                self._refuse_or_reap()
                continue
            try:
                os.write(fd, payload)
            finally:
                os.close(fd)
            self._held = True
        return self

    def _refuse_or_reap(self) -> None:
        """Remove a stale lockfile or raise on a live/foreign one."""
        try:
            holder = json.loads(self.path.read_text())
            pid = int(holder["pid"])
            host = str(holder.get("host", ""))
        except FileNotFoundError:
            return  # released between our open and this read: retry
        except (json.JSONDecodeError, KeyError, TypeError, ValueError):
            raise ValidationError(
                f"checkpoint {str(self.checkpoint)!r} has an unreadable "
                f"lockfile {str(self.path)!r}; remove it by hand if no "
                "other writer is running"
            ) from None
        if host == socket.gethostname() and not _pid_alive(pid):
            # Stale: the writer died without cleanup (e.g. SIGKILL).
            # Unlink may race another reaper; a vanished file is fine.
            try:
                os.unlink(self.path)
            except FileNotFoundError:
                pass
            return
        raise ValidationError(
            f"checkpoint {str(self.checkpoint)!r} is already being written "
            f"by pid {pid} on {host or 'unknown host'} (lockfile "
            f"{str(self.path)!r}); two concurrent writers would interleave "
            "JSONL rows — stop the other run, point this one at a "
            "different --checkpoint, or remove the stale lockfile"
        )

    def release(self) -> None:
        """Remove the lockfile if held (idempotent)."""
        if self._held:
            self._held = False
            try:
                os.unlink(self.path)
            except FileNotFoundError:
                pass


class CheckpointWriter:
    """The append side of one (optional) checkpoint file.

    Construction performs the whole open discipline in order: refuse a
    non-empty file without ``resume``; acquire the exclusive lock; read
    the completed rows; verify their recorded ``spec_hash`` against the
    spec being run; atomically repair a torn tail; open for append.
    ``path=None`` degrades to a no-op writer (no file, no lock), so
    callers never branch.

    Attributes
    ----------
    done:
        ``{unit_index: row}`` parsed from the file when resuming.
    """

    def __init__(
        self,
        path: "str | Path | None",
        *,
        resume: bool = False,
        spec_hash: "str | None" = None,
    ):
        """Open ``path`` for appending rows (see class docstring)."""
        self.path = Path(path) if path is not None else None
        self.done: "dict[int, dict[str, object]]" = {}
        self._lock: "CheckpointLock | None" = None
        self._handle = None
        if self.path is None:
            return
        if not resume and self.path.exists() and self.path.stat().st_size > 0:
            raise ValidationError(
                f"checkpoint {str(path)!r} already has rows; pass "
                "resume=True (--resume) to continue it, or remove the file "
                "to start over"
            )
        self._lock = CheckpointLock(self.path).acquire()
        try:
            if resume:
                self.done = read_checkpoint(self.path)
                self._check_spec_hash(spec_hash)
                if self.path.exists():
                    self._repair()
            self._handle = self.path.open("a")
        except BaseException:
            self._lock.release()
            raise

    def _check_spec_hash(self, spec_hash: "str | None") -> None:
        """Refuse to resume rows recorded under a different spec hash."""
        if spec_hash is None:
            return
        theirs = {
            str(row["spec_hash"])
            for row in self.done.values()
            if "spec_hash" in row
        }
        foreign = sorted(theirs - {spec_hash})
        if foreign:
            raise ValidationError(
                f"checkpoint {str(self.path)!r} was written by a different "
                f"spec (hash {', '.join(foreign)}) than the one being "
                f"resumed (hash {spec_hash}); resuming would mix grids — "
                "point --checkpoint at the matching spec's file"
            )

    def _repair(self) -> None:
        """Atomically rewrite the parseable rows, dropping a torn tail.

        Writes to a sibling temp file and renames it over the
        checkpoint, so a second kill during the rewrite can never lose
        already-completed rows.
        """
        repaired = self.path.with_name(self.path.name + ".repair")
        with repaired.open("w") as handle:
            for row in self.done.values():
                handle.write(row_text(row))
                handle.write("\n")
        os.replace(repaired, self.path)

    def append(self, row: "dict[str, object]") -> None:
        """Append one completed row (flushed immediately); no-op unfiled."""
        if self._handle is None:
            return
        self._handle.write(row_text(row))
        self._handle.write("\n")
        self._handle.flush()

    def close(self) -> None:
        """Close the file and release the lock (idempotent)."""
        if self._handle is not None:
            self._handle.close()
            self._handle = None
        if self._lock is not None:
            self._lock.release()
            self._lock = None

    def __enter__(self) -> "CheckpointWriter":
        """Context-manager entry: the writer itself."""
        return self

    def __exit__(self, *exc_info) -> None:
        """Context-manager exit: close and unlock."""
        self.close()
