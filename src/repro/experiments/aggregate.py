"""Aggregation: turning checkpoint rows into deterministic artifacts.

The top of the experiment stack.  :class:`ExperimentRun` holds one
run's rows sorted by unit index and writes the columnar outputs: a
deterministic JSONL (runtimes and provenance stripped, keys sorted —
shard unions and every transport's output are byte-identical to an
unsharded local run) and an ``.npz`` of per-unit objective, runtime and
Jain fairness arrays.  :func:`merge_checkpoints` unions shard
checkpoint files back into one full-grid run, refusing loudly when the
union and the spec's grid disagree — missing units, unknown unit
indices, or rows stamped with a different spec hash.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from pathlib import Path

import numpy as np

from repro.exceptions import ValidationError
from repro.experiments.checkpoint import read_checkpoint, row_text
from repro.experiments.spec import ScenarioSpec, resolve_spec

#: Checkpoint/aggregate row fields that are **not** deterministic across
#: runs (stripped from the aggregate JSONL, kept in checkpoints/.npz).
NONDETERMINISTIC_FIELDS = ("runtime",)

#: Row fields recording *where a row came from* rather than what it
#: measured (stripped from aggregates along with the nondeterministic
#: fields, kept in checkpoints so merges can verify shard provenance).
PROVENANCE_FIELDS = ("spec_hash",)


def strip_row(row: "dict[str, object]") -> "dict[str, object]":
    """Drop the nondeterministic and provenance fields of one row."""
    dropped = set(NONDETERMINISTIC_FIELDS) | set(PROVENANCE_FIELDS)
    return {k: v for k, v in row.items() if k not in dropped}


@dataclass
class ExperimentRun:
    """Aggregated result of one (possibly sharded/resumed) spec run.

    Attributes
    ----------
    spec:
        The executed spec.
    rows:
        One dict per completed unit, sorted by unit index.
    shard:
        The shard this run covered (``None`` = the full grid).
    """

    spec: ScenarioSpec
    rows: "list[dict[str, object]]" = field(default_factory=list)
    shard: "tuple[int, int] | None" = None

    @property
    def objective_key(self) -> str:
        """The headline metric's row key for this spec kind."""
        return "utility_time" if self.spec.kind == "simulate" else "utility"

    def columnar(self) -> "dict[str, np.ndarray]":
        """Per-unit arrays: unit ids, seeds, objective, runtime, Jain."""
        key = self.objective_key
        return {
            "unit": np.array([r["unit"] for r in self.rows], dtype=np.int64),
            "seed": np.array([r["seed"] for r in self.rows], dtype=np.uint64),
            "objective": np.array([r[key] for r in self.rows], dtype=np.float64),
            "runtime": np.array(
                [r.get("runtime", 0.0) for r in self.rows], dtype=np.float64
            ),
            "jain": np.array([r["jain"] for r in self.rows], dtype=np.float64),
        }

    def to_npz(self, path: "str | Path") -> None:
        """Write the columnar arrays (plus the spec, as JSON) to ``.npz``."""
        columns = self.columnar()
        np.savez_compressed(
            Path(path),
            spec=np.frombuffer(
                json.dumps(self.spec.to_dict(), sort_keys=True).encode(), dtype=np.uint8
            ),
            **columns,
        )

    def to_jsonl(self, path: "str | Path | None" = None) -> str:
        """Deterministic aggregate JSONL (runtimes stripped, keys sorted).

        Two shard runs merged, an unsharded run, and any transport's run
        of the same spec produce byte-identical text here — the
        acceptance contract of distributed sweeps.  Returns the text;
        writes it when ``path`` is given.
        """
        lines = [row_text(strip_row(row)) for row in self.rows]
        text = "".join(line + "\n" for line in lines)
        if path is not None:
            Path(path).write_text(text)
        return text

    def missing_units(self) -> "list[int]":
        """Unit indices of the covered grid that have no row yet."""
        have = {int(r["unit"]) for r in self.rows}
        expected = [u.index for u in self.spec.expand(self.shard)]
        return [i for i in expected if i not in have]


def merge_checkpoints(
    spec: "ScenarioSpec | str | Path", paths: "list[str | Path]"
) -> ExperimentRun:
    """Aggregate shard checkpoint files into one full-grid run.

    Rows are keyed by unit index (duplicates collapse — re-running a
    shard is harmless); raises
    :class:`~repro.exceptions.ValidationError` when the union does not
    match the spec's grid exactly — rows stamped with a different spec
    hash, checkpoint rows whose unit indices the spec does not expand to
    (both the telltale of merging against the wrong or a stale spec —
    the message names both hashes), or units missing from the
    checkpoints.
    """
    spec = resolve_spec(spec)
    merged: "dict[int, dict[str, object]]" = {}
    for path in paths:
        merged.update(read_checkpoint(path))
    ours = spec.spec_hash()
    theirs = sorted(
        {str(r["spec_hash"]) for r in merged.values() if "spec_hash" in r}
        - {ours}
    )
    expected = {unit.index for unit in spec.expand()}
    extra = sorted(set(merged) - expected)
    if extra:
        hashes = (
            f"checkpoint rows carry spec hash {', '.join(theirs)} but this "
            f"spec hashes to {ours}"
            if theirs
            else f"this spec hashes to {ours}"
        )
        raise ValidationError(
            f"checkpoints contain {len(extra)} unit ids the spec does not "
            f"expand to (starting at {extra[:5]}); {hashes} — are these "
            "shards from a different spec revision?"
        )
    if theirs:
        raise ValidationError(
            f"checkpoint rows carry spec hash {', '.join(theirs)} but this "
            f"spec hashes to {ours}; are these shards from a different "
            "spec revision?"
        )
    missing = sorted(expected - set(merged))
    if missing:
        raise ValidationError(
            f"merged checkpoints cover {len(merged)} units but the spec "
            f"expands to {len(expected)}; "
            f"missing unit ids start at {missing[:5]}"
        )
    return ExperimentRun(
        spec=spec, rows=[merged[i] for i in sorted(merged)], shard=None
    )
