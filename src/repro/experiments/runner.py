"""Sharded, resumable execution of scenario specs (the composition layer).

The runner used to be a monolith; it is now the thin seam where four
separately-testable layers meet, each owning one concern:

- :mod:`repro.experiments.execute` — one work unit in, one row out;
- :mod:`repro.experiments.checkpoint` — the per-unit JSONL append
  discipline, its exclusive lockfile, torn-tail repair, and the
  spec-hash provenance check;
- :mod:`repro.experiments.transport` — *where* units run: in this
  process (``local``), across worker processes (``subprocess``), or
  across hosts (``ssh``), all streaming rows back in unit order;
- :mod:`repro.experiments.aggregate` — :class:`ExperimentRun` and the
  deterministic artifacts (JSONL with runtimes/provenance stripped,
  ``.npz`` columns), plus shard-checkpoint merging.

:func:`iter_experiment` composes them: resolve the spec and transport,
open the checkpoint writer, stream the transport's ``(was_cached,
row)`` pairs, append fresh rows (stamped with the spec hash) as they
complete, yield every row in unit order.  Because all transports
converge on this one path, any transport's aggregate is byte-identical
to a local run — the distributed-sweep acceptance contract.

The historical names (``read_checkpoint``, ``ExperimentRun``,
``merge_checkpoints``, ``NONDETERMINISTIC_FIELDS``) are re-exported
here so existing imports keep working.
"""

from __future__ import annotations

from pathlib import Path
from typing import Iterator

from repro.exceptions import ValidationError
from repro.experiments.aggregate import (  # noqa: F401  (re-exports)
    NONDETERMINISTIC_FIELDS,
    PROVENANCE_FIELDS,
    ExperimentRun,
    merge_checkpoints,
    strip_row,
)
from repro.experiments.checkpoint import (  # noqa: F401  (re-exports)
    CheckpointLock,
    CheckpointWriter,
    read_checkpoint,
    row_text as _row_text,
)
from repro.experiments.execute import (  # noqa: F401  (re-exports)
    _execute_sim_unit,
    _execute_solve_unit,
    _sim_policy,
    _sim_workloads,
    execute_item as _execute_item,
)
from repro.experiments.spec import ScenarioSpec, resolve_spec
from repro.experiments.transport import get_transport

__all__ = [
    "NONDETERMINISTIC_FIELDS",
    "PROVENANCE_FIELDS",
    "ExperimentRun",
    "iter_experiment",
    "merge_checkpoints",
    "read_checkpoint",
    "run_experiment",
]


def _resolve_hosts(hosts) -> "tuple[str, ...]":
    """Normalize a host argument (sequence, comma string, or None)."""
    from repro.config import resolve_sweep_hosts

    if isinstance(hosts, (list, tuple)):
        return resolve_sweep_hosts(",".join(hosts)) if hosts else ()
    return resolve_sweep_hosts(hosts)


def iter_experiment(
    spec: "ScenarioSpec | str | Path",
    *,
    shard: "tuple[int, int] | None" = None,
    workers: int = 1,
    checkpoint: "str | Path | None" = None,
    resume: bool = False,
    transport: "str | None" = None,
    hosts=None,
) -> "Iterator[dict[str, object]]":
    """Stream one run's result rows in unit order (the runner's core).

    Rows of units already present in the checkpoint (``resume=True``)
    are yielded from the file without re-execution; freshly executed
    rows are appended to the checkpoint (and flushed) the moment they
    complete, so a killed run loses at most the row being written.  A
    non-empty checkpoint is never silently overwritten (continuing one
    requires ``resume=True``), never shared between two live writers
    (the sibling lockfile refuses loudly), and never mixed across specs
    (every appended row carries the spec's content hash).

    ``transport`` picks where units execute (``"local"`` /
    ``"subprocess"`` / ``"ssh"``; default resolved via
    :func:`repro.config.resolve_sweep_transport`) — the rows, their
    order, and the checkpoint discipline are identical regardless.
    """
    spec = resolve_spec(spec)
    from repro.config import resolve_sweep_transport

    transport_name = resolve_sweep_transport(transport)
    if transport_name != "local" and spec.input == "-":
        raise ValidationError(
            "a stdin-backed jsonl spec cannot be distributed (its units "
            "exist only in this process's stdin); use --remote local"
        )
    backend = get_transport(transport_name, hosts=_resolve_hosts(hosts))
    spec_hash = spec.spec_hash()
    writer = CheckpointWriter(checkpoint, resume=resume, spec_hash=spec_hash)
    try:
        rows = backend.run(spec, shard=shard, workers=workers, done=writer.done)
        for was_cached, row in rows:
            row.setdefault("spec_hash", spec_hash)
            if not was_cached:
                writer.append(row)
            yield row
    finally:
        writer.close()


def run_experiment(
    spec: "ScenarioSpec | str | Path",
    *,
    shard: "tuple[int, int] | None" = None,
    workers: int = 1,
    checkpoint: "str | Path | None" = None,
    resume: bool = False,
    transport: "str | None" = None,
    hosts=None,
) -> ExperimentRun:
    """Run a scenario spec (one shard of it) to completion and aggregate.

    Parameters
    ----------
    spec:
        A :class:`~repro.experiments.spec.ScenarioSpec`, a spec file
        path, or a builtin spec name.
    shard:
        ``(i, n)`` to run only units with ``index % n == i``;
        per-unit seeds and results are unchanged by sharding.  Only the
        local transport accepts a shard — the others own sharding.
    workers:
        Pool width: pool processes (local) or worker processes
        (subprocess); the ssh transport runs one worker per host.
    checkpoint:
        JSONL path; every completed unit is appended as it finishes.
    resume:
        Re-read ``checkpoint`` first and skip completed units.
    transport:
        Execution transport (``None`` = resolve via
        :func:`repro.config.resolve_sweep_transport`).
    hosts:
        ssh worker hosts (sequence or comma string; ``None`` = resolve
        via :func:`repro.config.resolve_sweep_hosts`).

    Returns the :class:`ExperimentRun` with rows sorted by unit index.
    """
    spec = resolve_spec(spec)
    rows = list(
        iter_experiment(
            spec,
            shard=shard,
            workers=workers,
            checkpoint=checkpoint,
            resume=resume,
            transport=transport,
            hosts=hosts,
        )
    )
    rows.sort(key=lambda r: int(r["unit"]))
    return ExperimentRun(spec=spec, rows=rows, shard=shard)
