"""Sharded, resumable execution of scenario specs.

The runner owns everything between a :class:`~repro.experiments.spec.ScenarioSpec`
and its results:

- **fan-out** — work units execute in-process or over a process pool
  (:func:`repro.experiments.pipeline.map_ordered`), results always in
  unit order;
- **sharding** — ``shard=(i, n)`` runs the units with
  ``index % n == i``; per-unit seeds are index-derived, so ``n``
  machines splitting one spec reproduce the single-machine run exactly;
- **checkpointing** — every completed unit appends one JSONL row to the
  checkpoint file; ``resume=True`` re-reads it and skips completed unit
  ids (a truncated trailing line from a kill mid-write is ignored);
- **aggregation** — an :class:`ExperimentRun` holds rows sorted by unit
  index and writes columnar output: a deterministic JSONL (runtimes
  stripped, keys sorted — shard unions are byte-identical to unsharded
  runs) and an ``.npz`` of per-unit objective, runtime and Jain
  fairness arrays.

Every checkpoint/aggregate row records the **resolved engine** that
executed its unit (the solver engine for solve specs, the simulation
engine — ``dict`` / ``indexed`` / ``chunked`` — for simulate specs), so
sweeps run on different machines or under different ``$REPRO_*_ENGINE``
environments are distinguishable after the fact.

Work-unit execution delegates to the same front doors everything else
uses — :func:`repro.core.solver.solve_mmd` for solve specs,
:func:`repro.sim.simulation.simulate_trace` for simulation specs (one
policy per unit, replaying a per-cell trace drawn from the cell's seed
exactly as :func:`~repro.sim.simulation.compare_policies` draws it) —
so a spec run and a hand-rolled loop produce identical numbers.  In
pooled runs each worker process rebuilds a cell's workload/trace on
first touch (the one-slot cell cache is per process) — the price of
units being self-contained enough to ship to another machine.
"""

from __future__ import annotations

import json
import math
import time
from dataclasses import dataclass, field
from pathlib import Path
from typing import Iterator

import numpy as np

from repro.core.instance import MMDInstance
from repro.exceptions import ValidationError
from repro.experiments.pipeline import map_ordered
from repro.experiments.spec import ScenarioSpec, SpecError, WorkUnit, resolve_spec

#: Checkpoint/aggregate row fields that are **not** deterministic across
#: runs (stripped from the aggregate JSONL, kept in checkpoints/.npz).
NONDETERMINISTIC_FIELDS = ("runtime",)


# ----------------------------------------------------------------------
# Work-unit executors
# ----------------------------------------------------------------------


def _json_num(value: float) -> "float | str":
    """JSON-safe number (the instance-JSON convention: inf → ``"inf"``)."""
    return "inf" if math.isinf(value) else float(value)


def _solve_jain(assignment, instance: MMDInstance) -> float:
    """Jain fairness over per-user *capped* utility of a static solution.

    Same convention as
    :attr:`repro.sim.metrics.SimulationReport.jain_fairness`:
    ``(Σx)² / (n·Σx²)`` over the full population, ``1.0`` when nobody
    collects anything.
    """
    total = 0.0
    squares = 0.0
    for user in instance.users:
        x = min(assignment.raw_user_utility(user.user_id), user.utility_cap)
        total += x
        squares += x * x
    if squares == 0:
        return 1.0
    return total * total / (max(instance.num_users, 1) * squares)


def _build_solve_instance(spec: ScenarioSpec, unit: WorkUnit):
    """Materialize the instance of one solve unit (family dispatch)."""
    from repro.instances.generators import (
        random_mmd,
        random_smd,
        random_unit_skew_smd,
        small_streams_mmd,
        sweep_cell,
    )

    params = dict(spec.params)
    if spec.family == "jsonl":
        return MMDInstance.from_json(unit.payload)
    if spec.family == "sweep":
        return sweep_cell(
            unit.num_streams,
            unit.num_users,
            unit.skew,
            seed=unit.seed,
            engine=spec.gen_engine,
            **params,
        )
    if spec.family == "unit-skew-smd":
        return random_unit_skew_smd(
            unit.num_streams, unit.num_users, seed=unit.seed,
            engine=spec.gen_engine, **params,
        )
    if spec.family == "smd":
        return random_smd(
            unit.num_streams, unit.num_users, unit.skew, seed=unit.seed,
            engine=spec.gen_engine, **params,
        )
    if spec.family == "mmd":
        params.setdefault("m", 2)
        params.setdefault("mc", 1)
        return random_mmd(
            unit.num_streams, unit.num_users, seed=unit.seed,
            engine=spec.gen_engine, **params,
        )
    if spec.family == "small-streams":
        return small_streams_mmd(
            unit.num_streams, unit.num_users, seed=unit.seed,
            engine=spec.gen_engine, **params,
        )
    raise SpecError(f"unknown solve family {spec.family!r}")


def _execute_solve_unit(spec: ScenarioSpec, unit: WorkUnit) -> "dict[str, object]":
    """Generate-and-solve one unit; return its checkpoint row."""
    from repro.core.solver import solve_mmd

    from repro.config import resolve_engine_setting

    start = time.perf_counter()
    instance = _build_solve_instance(spec, unit)
    result = solve_mmd(instance, method=spec.method, engine=spec.engine)
    runtime = time.perf_counter() - start
    assignment = result.assignment
    lifted = assignment.instance
    return {
        "unit": unit.index,
        "id": unit.unit_id,
        "seed": unit.seed,
        "name": lifted.name,
        "streams": lifted.num_streams,
        "users": lifted.num_users,
        "skew": unit.skew,
        "replicate": unit.replicate,
        "method": result.method,
        "engine": resolve_engine_setting("solver", spec.engine),
        "utility": result.utility,
        "guarantee": _json_num(result.guarantee),
        "feasible": assignment.is_feasible(),
        "streams_carried": len(assignment.assigned_streams()),
        "jain": _solve_jain(assignment, lifted),
        "runtime": runtime,
    }


#: ``kind="simulate"`` workload factories (sizes positional, seed kwarg).
def _sim_workloads():
    """Name → factory map for the simulation workloads (lazy import)."""
    from repro.instances.workloads import (
        cable_headend_workload,
        iptv_neighborhood_workload,
        small_streams_workload,
    )

    return {
        "iptv": iptv_neighborhood_workload,
        "cable-headend": cable_headend_workload,
        "small-streams": small_streams_workload,
    }


def _sim_policy(name: str, seed: int):
    """Instantiate one admission policy by spec name."""
    from repro.sim.policies import (
        AllocatePolicy,
        DensityPolicy,
        RandomPolicy,
        ThresholdPolicy,
    )

    factories = {
        "threshold": ThresholdPolicy,
        "allocate": AllocatePolicy,
        "density": DensityPolicy,
        "random": lambda: RandomPolicy(seed=seed),
    }
    return factories[name]()


#: One-slot cache of the last simulation cell's (instance, trace).
#: Units expand cell-major — every policy of a cell is adjacent — so a
#: multi-policy spec builds each workload and draws each trace once per
#: cell instead of once per unit (matching what the pre-runner
#: ``compare_policies`` loop did), while sharded/pooled executions that
#: interleave cells merely miss the cache and rebuild.
_SIM_CELL_CACHE: "dict[tuple, tuple]" = {}


def _sim_cell(spec: ScenarioSpec, unit: WorkUnit):
    """The unit's cell: the workload instance and the common trace.

    A spec with ``trace_store`` replays one shared on-disk store
    (opened zero-copy via mmap) instead of drawing a trace: every
    policy/replicate unit — and every *shard worker* of a distributed
    sweep — streams the same giant trace, which is how one 10⁸-event
    workload fans out across processes in bounded memory.
    """
    import inspect

    from repro.sim.indexed import draw_trace_arrays, resolve_sim_engine
    from repro.sim.simulation import ArrivalModel, draw_trace

    engine = resolve_sim_engine(spec.sim_engine)
    key = (
        spec.family, unit.num_streams, unit.num_users, unit.seed,
        spec.horizon, spec.rate, spec.duration, spec.popularity, engine,
        spec.trace_store,
    )
    cached = _SIM_CELL_CACHE.get(key)
    if cached is not None:
        return cached
    factory = _sim_workloads()[spec.family]
    # A None size axis means "the workload's default": read the default
    # off the factory signature so one axis may be pinned alone.
    sizes = list(inspect.signature(factory).parameters.values())
    num_streams = unit.num_streams if unit.num_streams is not None else sizes[0].default
    num_users = unit.num_users if unit.num_users is not None else sizes[1].default
    instance = factory(num_streams, num_users, seed=unit.seed)
    if spec.trace_store is not None:
        from repro.sim.store import TraceStore

        trace = TraceStore.open(spec.trace_store)
    elif engine != "dict":  # indexed and chunked share the array draw
        model = ArrivalModel(
            rate=spec.rate,
            mean_duration=spec.duration,
            popularity_exponent=spec.popularity,
        )
        trace = draw_trace_arrays(instance, model, spec.horizon, unit.seed)
    else:
        model = ArrivalModel(
            rate=spec.rate,
            mean_duration=spec.duration,
            popularity_exponent=spec.popularity,
        )
        trace = draw_trace(instance, model, spec.horizon, unit.seed, engine="dict")
    _SIM_CELL_CACHE.clear()
    _SIM_CELL_CACHE[key] = (instance, trace, engine)
    return instance, trace, engine


def _execute_sim_unit(spec: ScenarioSpec, unit: WorkUnit) -> "dict[str, object]":
    """Replay one (workload cell, policy) unit; return its checkpoint row.

    The trace seed is the unit's *cell* seed (shared by every policy of
    the cell), so replays are common-random-number comparable exactly as
    :func:`repro.sim.simulation.compare_policies` makes them.  Store
    replays go through :func:`repro.sim.simulation.simulate_store`, so
    ``store_window`` streams the shared trace in bounded memory — with
    reports float-identical to monolithic replay by the stitching
    contract, keeping shard unions byte-identical regardless of window.
    """
    from repro.sim.simulation import simulate_store, simulate_trace

    start = time.perf_counter()
    instance, trace, engine = _sim_cell(spec, unit)
    if spec.trace_store is not None:
        report = simulate_store(
            instance,
            _sim_policy(unit.policy, unit.seed),
            trace,
            spec.horizon,
            engine=engine,
            window=spec.store_window,
        )
    else:
        report = simulate_trace(
            instance,
            _sim_policy(unit.policy, unit.seed),
            trace,
            spec.horizon,
            engine=engine,
        )
    runtime = time.perf_counter() - start
    return {
        "unit": unit.index,
        "id": unit.unit_id,
        "seed": unit.seed,
        "name": instance.name,
        "streams": instance.num_streams,
        "users": instance.num_users,
        "replicate": unit.replicate,
        "policy": unit.policy,
        "engine": engine,
        "utility_time": report.utility_time,
        "acceptance": report.acceptance_rate,
        "offered": report.offered,
        "admitted": report.admitted,
        "deliveries": report.deliveries,
        "violations": report.policy_violations,
        "peak_utilization": max(
            report.peak_server_utilization.values(), default=0.0
        ),
        "jain": report.jain_fairness,
        "runtime": runtime,
    }


def _execute_item(
    args: "tuple[ScenarioSpec, WorkUnit, dict | None]",
) -> "tuple[bool, dict[str, object]]":
    """Pool worker: run one unit, or pass a checkpointed row through.

    Returns ``(was_cached, row)`` so the caller appends only freshly
    executed rows to the checkpoint.
    """
    spec, unit, cached = args
    if cached is not None:
        return True, cached
    if spec.kind == "simulate":
        return False, _execute_sim_unit(spec, unit)
    return False, _execute_solve_unit(spec, unit)


# ----------------------------------------------------------------------
# Checkpoints
# ----------------------------------------------------------------------


def read_checkpoint(path: "str | Path") -> "dict[int, dict[str, object]]":
    """Parse a checkpoint JSONL into ``{unit_index: row}``.

    A malformed line — in practice the torn tail of a killed run — ends
    the parse: everything before it is kept, it and anything after are
    re-executed on resume.
    """
    rows: "dict[int, dict[str, object]]" = {}
    path = Path(path)
    if not path.exists():
        return rows
    for line in path.read_text().splitlines():
        line = line.strip()
        if not line:
            continue
        try:
            row = json.loads(line)
            unit = int(row["unit"])
        except (json.JSONDecodeError, KeyError, TypeError, ValueError):
            break
        rows[unit] = row
    return rows


def _row_text(row: "dict[str, object]") -> str:
    """Canonical one-line JSON form (sorted keys: byte-stable)."""
    return json.dumps(row, sort_keys=True)


# ----------------------------------------------------------------------
# Running
# ----------------------------------------------------------------------


def iter_experiment(
    spec: "ScenarioSpec | str | Path",
    *,
    shard: "tuple[int, int] | None" = None,
    workers: int = 1,
    checkpoint: "str | Path | None" = None,
    resume: bool = False,
) -> "Iterator[dict[str, object]]":
    """Stream one run's result rows in unit order (the runner's core).

    Rows of units already present in the checkpoint (``resume=True``)
    are yielded from the file without re-execution; freshly executed
    rows are appended to the checkpoint (and flushed) the moment they
    complete, so a killed run loses at most the row being written.  A
    non-empty checkpoint is never silently overwritten: continuing one
    requires ``resume=True``, otherwise this raises.
    """
    spec = resolve_spec(spec)
    done: "dict[int, dict[str, object]]" = {}
    if checkpoint is not None and resume:
        done = read_checkpoint(checkpoint)
    out = None
    if checkpoint is not None:
        path = Path(checkpoint)
        if not resume and path.exists() and path.stat().st_size > 0:
            raise ValidationError(
                f"checkpoint {str(checkpoint)!r} already has rows; pass "
                "resume=True (--resume) to continue it, or remove the file "
                "to start over"
            )
        if resume and path.exists():
            # Repair atomically: write the parseable rows (dropping a
            # torn tail line from a killed run) to a sibling temp file
            # and rename it over the checkpoint, so a second kill during
            # the rewrite can never lose already-completed rows.
            import os

            repaired = path.with_name(path.name + ".repair")
            with repaired.open("w") as handle:
                for row in done.values():
                    handle.write(_row_text(row))
                    handle.write("\n")
            os.replace(repaired, path)
        out = path.open("a")
    items = ((spec, unit, done.get(unit.index)) for unit in spec.expand(shard))
    try:
        for was_cached, row in map_ordered(_execute_item, items, workers=workers):
            if out is not None and not was_cached:
                out.write(_row_text(row))
                out.write("\n")
                out.flush()
            yield row
    finally:
        if out is not None:
            out.close()


@dataclass
class ExperimentRun:
    """Aggregated result of one (possibly sharded/resumed) spec run.

    Attributes
    ----------
    spec:
        The executed spec.
    rows:
        One dict per completed unit, sorted by unit index.
    shard:
        The shard this run covered (``None`` = the full grid).
    """

    spec: ScenarioSpec
    rows: "list[dict[str, object]]" = field(default_factory=list)
    shard: "tuple[int, int] | None" = None

    @property
    def objective_key(self) -> str:
        """The headline metric's row key for this spec kind."""
        return "utility_time" if self.spec.kind == "simulate" else "utility"

    def columnar(self) -> "dict[str, np.ndarray]":
        """Per-unit arrays: unit ids, seeds, objective, runtime, Jain."""
        key = self.objective_key
        return {
            "unit": np.array([r["unit"] for r in self.rows], dtype=np.int64),
            "seed": np.array([r["seed"] for r in self.rows], dtype=np.uint64),
            "objective": np.array([r[key] for r in self.rows], dtype=np.float64),
            "runtime": np.array(
                [r.get("runtime", 0.0) for r in self.rows], dtype=np.float64
            ),
            "jain": np.array([r["jain"] for r in self.rows], dtype=np.float64),
        }

    def to_npz(self, path: "str | Path") -> None:
        """Write the columnar arrays (plus the spec, as JSON) to ``.npz``."""
        columns = self.columnar()
        np.savez_compressed(
            Path(path),
            spec=np.frombuffer(
                json.dumps(self.spec.to_dict(), sort_keys=True).encode(), dtype=np.uint8
            ),
            **columns,
        )

    def to_jsonl(self, path: "str | Path | None" = None) -> str:
        """Deterministic aggregate JSONL (runtimes stripped, keys sorted).

        Two shard runs merged and an unsharded run of the same spec
        produce byte-identical text here — the acceptance contract of
        distributed sweeps.  Returns the text; writes it when ``path``
        is given.
        """
        lines = []
        for row in self.rows:
            kept = {
                k: v for k, v in row.items() if k not in NONDETERMINISTIC_FIELDS
            }
            lines.append(_row_text(kept))
        text = "".join(line + "\n" for line in lines)
        if path is not None:
            Path(path).write_text(text)
        return text

    def missing_units(self) -> "list[int]":
        """Unit indices of the covered grid that have no row yet."""
        have = {int(r["unit"]) for r in self.rows}
        expected = [u.index for u in self.spec.expand(self.shard)]
        return [i for i in expected if i not in have]


def run_experiment(
    spec: "ScenarioSpec | str | Path",
    *,
    shard: "tuple[int, int] | None" = None,
    workers: int = 1,
    checkpoint: "str | Path | None" = None,
    resume: bool = False,
) -> ExperimentRun:
    """Run a scenario spec (one shard of it) to completion and aggregate.

    Parameters
    ----------
    spec:
        A :class:`~repro.experiments.spec.ScenarioSpec`, a spec file
        path, or a builtin spec name.
    shard:
        ``(i, n)`` to run only units with ``index % n == i``;
        per-unit seeds and results are unchanged by sharding.
    workers:
        Process-pool width (``1`` = in-process).
    checkpoint:
        JSONL path; every completed unit is appended as it finishes.
    resume:
        Re-read ``checkpoint`` first and skip completed units.

    Returns the :class:`ExperimentRun` with rows sorted by unit index.
    """
    spec = resolve_spec(spec)
    rows = list(
        iter_experiment(
            spec, shard=shard, workers=workers, checkpoint=checkpoint, resume=resume
        )
    )
    rows.sort(key=lambda r: int(r["unit"]))
    return ExperimentRun(spec=spec, rows=rows, shard=shard)


def merge_checkpoints(
    spec: "ScenarioSpec | str | Path", paths: "list[str | Path]"
) -> ExperimentRun:
    """Aggregate shard checkpoint files into one full-grid run.

    Rows are keyed by unit index (duplicates collapse — re-running a
    shard is harmless); raises
    :class:`~repro.exceptions.ValidationError` when the union does not
    match the spec's grid exactly — units missing from the checkpoints,
    or checkpoint rows whose unit indices the spec does not expand to
    (the telltale of merging against the wrong or a stale spec).
    """
    spec = resolve_spec(spec)
    merged: "dict[int, dict[str, object]]" = {}
    for path in paths:
        merged.update(read_checkpoint(path))
    expected = {unit.index for unit in spec.expand()}
    extra = sorted(set(merged) - expected)
    if extra:
        raise ValidationError(
            f"checkpoints contain {len(extra)} unit ids the spec does not "
            f"expand to (starting at {extra[:5]}); are these shards from a "
            "different spec revision?"
        )
    missing = sorted(expected - set(merged))
    if missing:
        raise ValidationError(
            f"merged checkpoints cover {len(merged)} units but the spec "
            f"expands to {len(expected)}; "
            f"missing unit ids start at {missing[:5]}"
        )
    return ExperimentRun(
        spec=spec, rows=[merged[i] for i in sorted(merged)], shard=None
    )
