"""Declarative scenario specs: a grid description that expands to work units.

A :class:`ScenarioSpec` describes one experiment — generator family (or
simulation workload) and its parameters, the size/skew/seed grid, the
solver or policies, and the engines — as plain data.  Specs load from
JSON (anywhere) or TOML (Python ≥ 3.11, where :mod:`tomllib` exists)
and ship with the package under ``repro/experiments/specs/``; see
:func:`builtin_specs`.

A spec **expands lazily** into a stream of numbered :class:`WorkUnit`
objects.  Unit numbering is the contract that makes distribution work:

- the unit's ``index`` is its position in the *full* grid, fixed by the
  spec alone;
- its ``seed`` is derived from ``(base_seed, index)`` via
  :func:`repro.util.rng.derive_seed` (never from sequential RNG state),
  so shard ``(i, n)`` — the units with ``index % n == i`` — draws
  exactly the per-unit seeds of the unsharded run;
- for simulation specs the seed is derived from the *cell* index (the
  grid without the policy axis), so every policy of a cell replays the
  same arrival trace (common random numbers), even across shards.

The runner (:mod:`repro.experiments.runner`) executes units; this module
knows nothing about solvers or simulators.
"""

from __future__ import annotations

import itertools
import json
import math
from dataclasses import dataclass, field, fields
from pathlib import Path
from typing import Iterator

from repro.config import ENGINE_SETTINGS
from repro.exceptions import ValidationError
from repro.util.rng import derive_seed


class SpecError(ValidationError):
    """A scenario spec is malformed (bad keys, types, or an empty grid)."""


#: Directory of the specs shipped with the package.
SPEC_DIR = Path(__file__).resolve().parent / "specs"

#: Generator families a ``kind="solve"`` spec may name.  ``"sweep"`` is
#: the catalog × population × skew dispatch of
#: :func:`repro.instances.generators.sweep_instances` (unit-skew family
#: for ``skew <= 1`` cells, bounded-skew otherwise); ``"jsonl"`` reads
#: pre-serialized instances from ``input`` instead of generating.
SOLVE_FAMILIES = ("sweep", "unit-skew-smd", "smd", "mmd", "small-streams", "jsonl")

#: Named workloads a ``kind="simulate"`` spec may name.
SIM_WORKLOADS = ("iptv", "cable-headend", "small-streams")

#: Admission policies a ``kind="simulate"`` spec may request.
SIM_POLICIES = ("threshold", "allocate", "density", "random")

#: Row metrics an adaptive sweep may refine on, per spec kind.  Each is
#: a numeric key present in every checkpoint row of that kind.
REFINE_METRICS = {
    "solve": ("utility", "jain"),
    "simulate": ("utility_time", "acceptance", "jain", "peak_utilization"),
}


@dataclass(frozen=True)
class WorkUnit:
    """One numbered cell of an expanded scenario grid.

    Attributes
    ----------
    index:
        Position in the full grid — the shard key and checkpoint id.
    unit_id:
        Human-readable stable id (``"s20-u50-a4-r0"`` style).
    seed:
        The unit's derived instance/trace seed (see module docstring).
    num_streams / num_users:
        Cell sizes; ``None`` means "the workload's default size"
        (simulation specs) or "taken from the payload" (JSONL input).
    skew:
        Cell local-skew target (solve grids).
    replicate:
        Seed-replicate coordinate of the cell.
    policy:
        Admission policy name (simulation specs only).
    payload:
        Raw instance JSON for ``family="jsonl"`` units.
    """

    index: int
    unit_id: str
    seed: int
    num_streams: "int | None" = None
    num_users: "int | None" = None
    skew: float = 1.0
    replicate: int = 0
    policy: "str | None" = None
    payload: "str | None" = None


def _tuple_of(value, caster, key: str) -> tuple:
    """Coerce a JSON/TOML list (or single scalar) to a tuple via ``caster``."""
    if isinstance(value, (str, bytes)):
        raise SpecError(f"spec field {key!r} must be a list, got {value!r}")
    try:
        items = list(value)
    except TypeError:
        items = [value]
    try:
        return tuple(caster(v) for v in items)
    except (TypeError, ValueError) as exc:
        raise SpecError(f"spec field {key!r} has a bad entry: {exc}") from None


@dataclass(frozen=True)
class ScenarioSpec:
    """A declarative experiment: family/workload + grid + solver/policies.

    Attributes
    ----------
    name:
        Spec name (reported in results; defaults to the file stem).
    kind:
        ``"solve"`` (batch-solve generated or serialized instances) or
        ``"simulate"`` (replay admission policies over drawn traces).
    family:
        One of :data:`SOLVE_FAMILIES` or :data:`SIM_WORKLOADS`.
    streams / users:
        Grid axes of catalog and population sizes.  ``None`` on a
        simulation spec means the workload's default size.
    skews:
        Local-skew axis (solve grids; ``1.0`` = the §2 unit-skew cell).
    replicates:
        Number of seed replicates per cell.
    base_seed:
        Root of the per-unit seed derivation.
    seeds:
        Explicit per-replicate seeds.  When given, replicate ``r`` of
        *every* cell uses ``seeds[r]`` (common random numbers across
        sizes) and ``replicates`` must equal ``len(seeds)``.
    method:
        Class solver for solve specs (``"greedy"`` / ``"enumeration"``).
    engine / gen_engine / sim_engine:
        Engine overrides (``None`` = resolve via :mod:`repro.config`).
    params:
        Extra generator keyword arguments (``density``,
        ``budget_fraction``, ``m``, ``mc``, ``headroom``, …).
    input:
        JSONL instance file for ``family="jsonl"``.
    policies:
        Admission policies of a simulation spec (each becomes a grid
        axis; all policies of a cell share the cell's trace seed).
    horizon / rate / duration / popularity:
        Arrival model of a simulation spec.
    trace_store:
        Path to an on-disk columnar trace store
        (:mod:`repro.sim.store`); every policy/replicate unit of the
        spec replays this one shared store instead of drawing a trace,
        so a sharded sweep streams one giant trace across workers.
        The arrival-model fields (``rate``/``duration``/
        ``popularity``) do not apply — the store *is* the workload.
    store_window:
        Streamed-replay window (time units) for ``trace_store`` units
        under the chunked/batched engines; reports are float-identical
        to monolithic replay, only peak memory changes.
    refine_metric:
        Row metric an adaptive sweep scores cells by (one of
        :data:`REFINE_METRICS` for the spec's kind; ``None`` = the
        kind's headline objective).  Ignored by plain single-round
        runs.
    """

    name: str
    kind: str
    family: str
    streams: "tuple[int, ...] | None" = None
    users: "tuple[int, ...] | None" = None
    skews: "tuple[float, ...]" = (1.0,)
    replicates: int = 1
    base_seed: int = 0
    seeds: "tuple[int, ...] | None" = None
    method: str = "greedy"
    engine: "str | None" = None
    gen_engine: "str | None" = None
    sim_engine: "str | None" = None
    params: "dict[str, object]" = field(default_factory=dict)
    input: "str | None" = None
    policies: "tuple[str, ...]" = ()
    horizon: float = 300.0
    rate: float = 2.0
    duration: float = 30.0
    popularity: float = 1.0
    trace_store: "str | None" = None
    store_window: "float | None" = None
    refine_metric: "str | None" = None

    # ------------------------------------------------------------------
    # Validation
    # ------------------------------------------------------------------

    def validate(self) -> "ScenarioSpec":
        """Check structural validity; raise :class:`SpecError` otherwise.

        An empty grid (no sizes, zero replicates, a simulation spec
        without policies) is rejected here too: a spec that expands to
        zero work units is a mistake, not an experiment.  So are fields
        that do not apply to the spec's kind — a ``skews`` axis on a
        simulation spec would be silently dropped otherwise, running a
        fraction of the grid its author intended.
        """
        if self.kind not in ("solve", "simulate"):
            raise SpecError(f"unknown spec kind {self.kind!r}; pick 'solve' or 'simulate'")
        if self.replicates < 1:
            raise SpecError(f"replicates must be >= 1, got {self.replicates}")
        if self.seeds is not None and len(self.seeds) != self.replicates:
            raise SpecError(
                f"explicit seeds ({len(self.seeds)}) must match replicates "
                f"({self.replicates})"
            )
        self._reject_foreign_fields()
        if self.kind == "solve":
            if self.family not in SOLVE_FAMILIES:
                raise SpecError(
                    f"unknown solve family {self.family!r}; pick one of {SOLVE_FAMILIES}"
                )
            if self.family == "jsonl":
                if not self.input:
                    raise SpecError("family 'jsonl' needs an 'input' file")
            else:
                if not self.streams or not self.users:
                    raise SpecError(
                        f"spec {self.name!r} expands to an empty grid: non-empty "
                        "'streams' and 'users' axes are required"
                    )
                if not self.skews:
                    raise SpecError(f"spec {self.name!r} has an empty 'skews' axis")
        else:
            if self.family not in SIM_WORKLOADS:
                raise SpecError(
                    f"unknown workload {self.family!r}; pick one of {SIM_WORKLOADS}"
                )
            if not self.policies:
                raise SpecError(
                    f"spec {self.name!r} expands to an empty grid: a simulation "
                    "spec needs at least one policy"
                )
            unknown = [p for p in self.policies if p not in SIM_POLICIES]
            if unknown:
                raise SpecError(f"unknown policies {unknown}; pick from {SIM_POLICIES}")
            if self.streams == () or self.users == ():
                raise SpecError(f"spec {self.name!r} has an empty size axis")
            if self.trace_store is not None:
                for name, default in self._SIM_ONLY_DEFAULTS:
                    if name != "horizon" and getattr(self, name) != default:
                        raise SpecError(
                            f"{name!r} does not apply when 'trace_store' "
                            "replays a pre-drawn store (the store is the "
                            "workload; only 'horizon' still cuts it off)"
                        )
            if self.store_window is not None:
                if self.trace_store is None:
                    raise SpecError(
                        "'store_window' needs a 'trace_store' to stream"
                    )
                if not math.isfinite(self.store_window) or self.store_window <= 0:
                    raise SpecError(
                        f"'store_window' must be a positive finite number, "
                        f"got {self.store_window!r}"
                    )
        if self.method not in ("greedy", "enumeration"):
            raise SpecError(f"unknown method {self.method!r}")
        for field_name, kind in (
            ("engine", "solver"),
            ("gen_engine", "generation"),
            ("sim_engine", "simulation"),
        ):
            value = getattr(self, field_name)
            if value is not None and value not in ENGINE_SETTINGS[kind].choices:
                raise SpecError(
                    f"spec field {field_name!r}: unknown {ENGINE_SETTINGS[kind].label} "
                    f"{value!r}; pick one of {ENGINE_SETTINGS[kind].choices}"
                )
        if (
            self.refine_metric is not None
            and self.refine_metric not in REFINE_METRICS[self.kind]
        ):
            raise SpecError(
                f"unknown refine_metric {self.refine_metric!r} for "
                f"kind={self.kind!r}; pick one of {REFINE_METRICS[self.kind]}"
            )
        return self

    #: Arrival-model fields with their defaults (simulation-only).
    _SIM_ONLY_DEFAULTS = (
        ("horizon", 300.0), ("rate", 2.0), ("duration", 30.0), ("popularity", 1.0),
    )

    def _reject_foreign_fields(self) -> None:
        """Raise on fields set on a spec kind they do not apply to."""
        if self.kind == "solve":
            if self.policies:
                raise SpecError("'policies' only applies to kind='simulate' specs")
            if self.sim_engine is not None:
                raise SpecError("'sim_engine' only applies to kind='simulate' specs")
            if self.trace_store is not None or self.store_window is not None:
                raise SpecError(
                    "'trace_store'/'store_window' only apply to "
                    "kind='simulate' specs"
                )
            for name, default in self._SIM_ONLY_DEFAULTS:
                if getattr(self, name) != default:
                    raise SpecError(
                        f"{name!r} only applies to kind='simulate' specs"
                    )
            if self.family != "jsonl" and self.input is not None:
                raise SpecError("'input' only applies to family='jsonl' specs")
        else:
            if self.skews != (1.0,):
                raise SpecError("'skews' only applies to kind='solve' specs")
            if self.method != "greedy":
                raise SpecError("'method' only applies to kind='solve' specs")
            if self.engine is not None or self.gen_engine is not None:
                raise SpecError(
                    "'engine'/'gen_engine' only apply to kind='solve' specs"
                )
            if self.input is not None:
                raise SpecError("'input' only applies to kind='solve' specs")

    # ------------------------------------------------------------------
    # Expansion
    # ------------------------------------------------------------------

    def _seed_for(self, cell_index: int, replicate: int) -> int:
        """Per-cell seed: explicit replicate seed, else derived."""
        if self.seeds is not None:
            return int(self.seeds[replicate])
        return derive_seed(self.base_seed, cell_index)

    def num_units(self) -> "int | None":
        """Size of the full grid (``None`` for file-backed specs)."""
        if self.kind == "solve" and self.family == "jsonl":
            return None
        if self.kind == "solve":
            return (
                len(self.streams) * len(self.users) * len(self.skews) * self.replicates
            )
        sizes = self._sim_sizes()
        return len(sizes) * self.replicates * len(self.policies)

    def _sim_sizes(self) -> "list[tuple[int | None, int | None]]":
        """The (streams, users) size cells of a simulation grid."""
        if self.streams is None and self.users is None:
            return [(None, None)]
        streams = self.streams if self.streams is not None else (None,)
        users = self.users if self.users is not None else (None,)
        return list(itertools.product(streams, users))

    def expand(self, shard: "tuple[int, int] | None" = None) -> "Iterator[WorkUnit]":
        """Stream the numbered work units, optionally one shard's worth.

        ``shard=(i, n)`` keeps the units with ``index % n == i``; the
        ``index`` and ``seed`` of a kept unit are identical to what the
        unsharded expansion assigns it.
        """
        self.validate()
        if shard is not None:
            i, n = shard
            if n < 1 or not 0 <= i < n:
                raise SpecError(f"bad shard {i}/{n}: need 0 <= i < n")
        for unit in self._expand_all():
            if shard is None or unit.index % shard[1] == shard[0]:
                yield unit

    def _expand_all(self) -> "Iterator[WorkUnit]":
        if self.kind == "solve" and self.family == "jsonl":
            yield from self._expand_jsonl()
            return
        if self.kind == "solve":
            grid = itertools.product(
                self.streams, self.users, self.skews, range(self.replicates)
            )
            for t, (ns, nu, skew, rep) in enumerate(grid):
                yield WorkUnit(
                    index=t,
                    unit_id=f"s{ns}-u{nu}-a{skew:g}-r{rep}",
                    seed=self._seed_for(t, rep),
                    num_streams=ns,
                    num_users=nu,
                    skew=skew,
                    replicate=rep,
                )
            return
        index = 0
        for cell, ((ns, nu), rep) in enumerate(
            itertools.product(self._sim_sizes(), range(self.replicates))
        ):
            seed = self._seed_for(cell, rep)
            for policy in self.policies:
                size = f"s{ns if ns is not None else 'dflt'}-u{nu if nu is not None else 'dflt'}"
                yield WorkUnit(
                    index=index,
                    unit_id=f"{size}-r{rep}-{policy}",
                    seed=seed,
                    num_streams=ns,
                    num_users=nu,
                    replicate=rep,
                    policy=policy,
                )
                index += 1

    def _expand_jsonl(self) -> "Iterator[WorkUnit]":
        """Units from a JSONL instance stream: one per non-blank line.

        ``input="-"`` reads stdin — lazily, so a shell pipeline's
        producer and this consumer run concurrently (each line is
        pulled only when the runner wants the next unit).  A stdin
        stream can of course only be expanded once per process.
        """
        import contextlib
        import sys

        if self.input == "-":
            context = contextlib.nullcontext(sys.stdin)
        else:
            path = Path(self.input)
            if not path.exists():
                raise SpecError(f"input file {self.input!r} does not exist")
            context = path.open()
        index = 0
        with context as handle:
            for line in handle:
                line = line.strip()
                if not line:
                    continue
                yield WorkUnit(
                    index=index,
                    unit_id=f"line{index}",
                    seed=self._seed_for(index, 0),
                    payload=line,
                )
                index += 1

    # ------------------------------------------------------------------
    # Serialization
    # ------------------------------------------------------------------

    def to_dict(self) -> "dict[str, object]":
        """Plain-data form (what :func:`spec_from_dict` accepts)."""
        data: "dict[str, object]" = {}
        for f in fields(self):
            value = getattr(self, f.name)
            if value is None or (f.name == "params" and not value):
                continue
            data[f.name] = list(value) if isinstance(value, tuple) else value
        return data

    def spec_hash(self) -> str:
        """Short content hash of the grid (12 hex chars).

        The sha256 of the canonical ``to_dict`` JSON (sorted keys),
        truncated.  Stamped into every checkpoint row so resume and
        merge can tell "same spec" from "coincidentally overlapping
        unit ids" — the distributed-sweep provenance check.
        """
        import hashlib

        canonical = json.dumps(self.to_dict(), sort_keys=True).encode()
        return hashlib.sha256(canonical).hexdigest()[:12]


#: Spec fields settable from a file, with their coercions.
_TUPLE_FIELDS = {
    "streams": int,
    "users": int,
    "skews": float,
    "seeds": int,
    "policies": str,
}
_SCALAR_FIELDS = {
    "name": str,
    "kind": str,
    "family": str,
    "replicates": int,
    "base_seed": int,
    "method": str,
    "engine": str,
    "gen_engine": str,
    "sim_engine": str,
    "input": str,
    "horizon": float,
    "rate": float,
    "duration": float,
    "popularity": float,
    "trace_store": str,
    "store_window": float,
    "refine_metric": str,
}


def spec_from_dict(data: "dict[str, object]", name: str = "") -> ScenarioSpec:
    """Build (and validate) a :class:`ScenarioSpec` from plain data.

    Unknown keys are rejected — a typo'd axis silently ignored would
    corrupt a distributed run's numbering.
    """
    if not isinstance(data, dict):
        raise SpecError(f"spec must be a table/object, got {type(data).__name__}")
    kwargs: "dict[str, object]" = {}
    for key, value in data.items():
        if key in _TUPLE_FIELDS:
            kwargs[key] = _tuple_of(value, _TUPLE_FIELDS[key], key)
        elif key in _SCALAR_FIELDS:
            try:
                kwargs[key] = _SCALAR_FIELDS[key](value)
            except (TypeError, ValueError) as exc:
                raise SpecError(f"spec field {key!r}: {exc}") from None
        elif key == "params":
            if not isinstance(value, dict):
                raise SpecError(f"spec field 'params' must be a table, got {value!r}")
            kwargs[key] = dict(value)
        else:
            raise SpecError(f"unknown spec field {key!r}")
    kwargs.setdefault("name", name or "unnamed")
    for required in ("kind", "family"):
        if required not in kwargs:
            raise SpecError(f"spec is missing the required field {required!r}")
    return ScenarioSpec(**kwargs).validate()


def load_spec(path: "str | Path") -> ScenarioSpec:
    """Load a spec file (``.json`` anywhere; ``.toml`` on Python ≥ 3.11)."""
    path = Path(path)
    if not path.exists():
        raise SpecError(f"spec file {str(path)!r} does not exist")
    text = path.read_text()
    if path.suffix == ".toml":
        try:
            import tomllib
        except ImportError:  # Python 3.10: stdlib has no TOML parser
            raise SpecError(
                f"{path.name}: TOML specs need Python >= 3.11 (tomllib); "
                "use the JSON form instead"
            ) from None
        try:
            data = tomllib.loads(text)
        except tomllib.TOMLDecodeError as exc:
            raise SpecError(f"{path.name}: invalid TOML: {exc}") from None
    else:
        try:
            data = json.loads(text)
        except json.JSONDecodeError as exc:
            raise SpecError(f"{path.name}: invalid JSON: {exc}") from None
    return spec_from_dict(data, name=path.stem)


def builtin_specs() -> "dict[str, Path]":
    """The specs shipped under ``repro/experiments/specs/``, by name."""
    found: "dict[str, Path]" = {}
    if SPEC_DIR.is_dir():
        for path in sorted(SPEC_DIR.iterdir()):
            if path.suffix in (".json", ".toml"):
                found[path.stem] = path
    return found


def resolve_spec(ref: "str | Path | ScenarioSpec") -> ScenarioSpec:
    """Resolve a spec reference: an object, a file path, or a builtin name."""
    if isinstance(ref, ScenarioSpec):
        return ref.validate()
    path = Path(ref)
    if path.exists():
        return load_spec(path)
    builtin = builtin_specs().get(str(ref))
    if builtin is not None:
        return load_spec(builtin)
    raise SpecError(
        f"no spec file {str(ref)!r} and no builtin spec of that name; "
        f"builtins: {sorted(builtin_specs())}"
    )
