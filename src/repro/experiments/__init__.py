"""Unified experiment orchestration: specs → shards → checkpoints → results.

The paper's evaluation is a grid — instance family × size × skew ×
policy × seed.  This package runs any such grid through **one**
pipeline:

- :mod:`repro.experiments.spec` — :class:`ScenarioSpec`, a declarative
  grid description (JSON/TOML-loadable; the shipped E3/E11/E12/E13
  scenarios live under ``repro/experiments/specs/``) that expands
  lazily into numbered :class:`WorkUnit` streams with index-derived
  per-unit seeds;
- :mod:`repro.experiments.runner` — :func:`run_experiment`: sharded
  (``shard=(i, n)``), pooled (``workers=N``), resumable (per-unit JSONL
  checkpoints) execution with columnar aggregation
  (:class:`ExperimentRun`);
- :mod:`repro.experiments.pipeline` — :func:`map_ordered`, the
  ordered bounded-in-flight mapper that `solve_many`,
  `compare_policies` and the runner all share.

CLI: ``repro sweep <spec> [--shard i/n --workers N --resume]`` and
``repro simulate-many``.

>>> from repro.experiments import ScenarioSpec, run_experiment
>>> spec = ScenarioSpec(kind="solve", family="sweep", name="tiny",
...                     streams=(6,), users=(4,), skews=(1.0, 4.0))
>>> run = run_experiment(spec)
>>> [row["id"] for row in run.rows]
['s6-u4-a1-r0', 's6-u4-a4-r0']
"""

from repro.experiments.pipeline import map_ordered
from repro.experiments.runner import (
    ExperimentRun,
    iter_experiment,
    merge_checkpoints,
    read_checkpoint,
    run_experiment,
)
from repro.experiments.spec import (
    ScenarioSpec,
    SpecError,
    WorkUnit,
    builtin_specs,
    load_spec,
    resolve_spec,
    spec_from_dict,
)

__all__ = [
    "ScenarioSpec",
    "SpecError",
    "WorkUnit",
    "builtin_specs",
    "load_spec",
    "resolve_spec",
    "spec_from_dict",
    "map_ordered",
    "ExperimentRun",
    "iter_experiment",
    "merge_checkpoints",
    "read_checkpoint",
    "run_experiment",
]
