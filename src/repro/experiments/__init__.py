"""Unified experiment orchestration: specs → shards → checkpoints → results.

The paper's evaluation is a grid — instance family × size × skew ×
policy × seed.  This package runs any such grid through **one**
pipeline:

- :mod:`repro.experiments.spec` — :class:`ScenarioSpec`, a declarative
  grid description (JSON/TOML-loadable; the shipped E3/E11/E12/E13
  scenarios live under ``repro/experiments/specs/``) that expands
  lazily into numbered :class:`WorkUnit` streams with index-derived
  per-unit seeds;
- :mod:`repro.experiments.execute` — one work unit in, one result row
  out (the solver/simulator front doors);
- :mod:`repro.experiments.checkpoint` — the per-unit JSONL append
  discipline: exclusive lockfile, torn-tail repair, spec-hash
  provenance;
- :mod:`repro.experiments.transport` — pluggable execution backends
  (``local`` pool, ``subprocess`` workers, ``ssh`` hosts), all
  streaming rows back in unit order;
- :mod:`repro.experiments.runner` — :func:`run_experiment`: sharded
  (``shard=(i, n)``), pooled (``workers=N``), resumable (per-unit JSONL
  checkpoints), distributable (``transport=...``) execution with
  columnar aggregation (:class:`ExperimentRun`);
- :mod:`repro.experiments.adaptive` — :func:`run_adaptive`,
  round-based grid refinement (score cells, subdivide the top-k) on
  top of the same checkpoint/transport stack;
- :mod:`repro.experiments.pipeline` — :func:`map_ordered`, the
  ordered bounded-in-flight mapper that `solve_many`,
  `compare_policies` and the local transport all share.

CLI: ``repro sweep <spec> [--shard i/n --workers N --resume --remote
{local,subprocess,ssh} --rounds R --refine-top K]`` and
``repro simulate-many``.

>>> from repro.experiments import ScenarioSpec, run_experiment
>>> spec = ScenarioSpec(kind="solve", family="sweep", name="tiny",
...                     streams=(6,), users=(4,), skews=(1.0, 4.0))
>>> run = run_experiment(spec)
>>> [row["id"] for row in run.rows]
['s6-u4-a1-r0', 's6-u4-a4-r0']
"""

from repro.experiments.adaptive import AdaptiveRun, run_adaptive
from repro.experiments.pipeline import map_ordered
from repro.experiments.runner import (
    ExperimentRun,
    iter_experiment,
    merge_checkpoints,
    read_checkpoint,
    run_experiment,
)
from repro.experiments.transport import Transport, get_transport
from repro.experiments.spec import (
    ScenarioSpec,
    SpecError,
    WorkUnit,
    builtin_specs,
    load_spec,
    resolve_spec,
    spec_from_dict,
)

__all__ = [
    "ScenarioSpec",
    "SpecError",
    "WorkUnit",
    "builtin_specs",
    "load_spec",
    "resolve_spec",
    "spec_from_dict",
    "map_ordered",
    "AdaptiveRun",
    "ExperimentRun",
    "Transport",
    "get_transport",
    "iter_experiment",
    "merge_checkpoints",
    "read_checkpoint",
    "run_adaptive",
    "run_experiment",
]
