"""Assignments of streams to users, and their feasibility/utility accounting.

An *assignment* ``A`` maps each user ``u`` to a set of streams ``A(u)``.
Following the paper's glossary (Fig. 2):

- the **range** ``S(A) = ∪_u A(u)`` is the set of streams the server must
  transmit;
- the **i-th cost** ``c_i(A) = c_i(S(A))`` is charged once per transmitted
  stream (multicast: one transmission serves all receivers);
- the **j-th load on u** ``k^u_j(A) = k^u_j(A(u))`` is charged per receiving
  user;
- the **utility** ``w(A) = Σ_u min(W_u, Σ_{S∈A(u)} w_u(S))`` — the paper
  extends ``w`` to *semi-feasible* assignments by capping each user's
  contribution at ``W_u`` (§2 Preliminaries).

An assignment is **feasible** when every server budget and every user
capacity constraint holds; it is **semi-feasible** when only the server
budgets are guaranteed (Algorithm Greedy works with semi-feasible
assignments internally, cf. Lemma 2.6).
"""

from __future__ import annotations

from typing import Iterable, Mapping

from repro.core.instance import FEASIBILITY_RTOL, MMDInstance
from repro.exceptions import ValidationError


class Assignment:
    """A (possibly partial) assignment of streams to users.

    Parameters
    ----------
    instance:
        The MMD instance this assignment is over.
    mapping:
        Optional initial ``user_id -> iterable of stream_id``.
    """

    def __init__(
        self,
        instance: MMDInstance,
        mapping: "Mapping[str, Iterable[str]] | None" = None,
    ) -> None:
        self.instance = instance
        self._assigned: dict[str, set[str]] = {u.user_id: set() for u in instance.users}
        if mapping is not None:
            for user_id, stream_ids in mapping.items():
                for sid in stream_ids:
                    self.add(user_id, sid)

    # ------------------------------------------------------------------
    # Mutation
    # ------------------------------------------------------------------

    def add(self, user_id: str, stream_id: str) -> None:
        """Assign ``stream_id`` to ``user_id`` (idempotent)."""
        if user_id not in self._assigned:
            raise ValidationError(f"unknown user id {user_id!r}")
        if not self.instance.has_stream(stream_id):
            raise ValidationError(f"unknown stream id {stream_id!r}")
        self._assigned[user_id].add(stream_id)

    def assign_stream(self, stream_id: str, user_ids: Iterable[str]) -> None:
        """Bulk-assign one stream to many users (idempotent).

        Validates the stream once instead of per ``add`` call, so tight
        solver loops (Greedy's per-stream delivery, Allocate's commit)
        do not pay per-pair validation.
        """
        if not self.instance.has_stream(stream_id):
            raise ValidationError(f"unknown stream id {stream_id!r}")
        assigned = self._assigned
        for user_id in user_ids:
            try:
                assigned[user_id].add(stream_id)
            except KeyError:
                raise ValidationError(f"unknown user id {user_id!r}") from None

    def add_stream_to_all(self, stream_id: str, only_interested: bool = True) -> "list[str]":
        """Assign a stream to every user (by default only those with
        ``w_u(S) > 0``); returns the user ids that received it."""
        receivers = []
        for u in self.instance.users:
            if only_interested and stream_id not in u.utilities:
                continue
            self.add(u.user_id, stream_id)
            receivers.append(u.user_id)
        return receivers

    def discard(self, user_id: str, stream_id: str) -> None:
        """Remove a stream from a user's set (no-op if absent)."""
        if user_id in self._assigned:
            self._assigned[user_id].discard(stream_id)

    # ------------------------------------------------------------------
    # Views
    # ------------------------------------------------------------------

    def streams_of(self, user_id: str) -> "frozenset[str]":
        """``A(u)`` — streams assigned to the user."""
        return frozenset(self._assigned[user_id])

    def assigned_streams(self) -> "set[str]":
        """The range ``S(A)`` — streams assigned to at least one user."""
        result: set[str] = set()
        for streams in self._assigned.values():
            result |= streams
        return result

    def receivers_of(self, stream_id: str) -> "list[str]":
        """Users that receive the given stream."""
        return [uid for uid, streams in self._assigned.items() if stream_id in streams]

    def is_empty(self) -> bool:
        return all(not streams for streams in self._assigned.values())

    def as_dict(self) -> "dict[str, set[str]]":
        """Copy of the underlying mapping."""
        return {uid: set(streams) for uid, streams in self._assigned.items()}

    def pairs(self) -> "Iterable[tuple[str, str]]":
        """Iterate the assigned ``(user_id, stream_id)`` pairs."""
        for uid, streams in self._assigned.items():
            for sid in streams:
                yield uid, sid

    # ------------------------------------------------------------------
    # Costs and loads
    # ------------------------------------------------------------------

    # Accounting sums iterate in sorted stream order: set iteration order
    # varies with per-process string-hash randomization, and float sums
    # must be reproducible across processes (solve_many workers).

    def server_cost(self, measure: int = 0) -> float:
        """``c_i(A)`` — total server cost of the range in one measure."""
        return sum(
            self.instance.stream(sid).costs[measure]
            for sid in sorted(self.assigned_streams())
        )

    def server_costs(self) -> tuple[float, ...]:
        """All server costs ``(c_1(A), ..., c_m(A))``."""
        totals = [0.0] * self.instance.m
        for sid in sorted(self.assigned_streams()):
            for i, c in enumerate(self.instance.stream(sid).costs):
                totals[i] += c
        return tuple(totals)

    def user_load(self, user_id: str, measure: int = 0) -> float:
        """``k^u_j(A)`` — load of ``A(u)`` on one capacity measure."""
        user = self.instance.user(user_id)
        return sum(user.load(sid, measure) for sid in sorted(self._assigned[user_id]))

    def user_loads(self, user_id: str) -> tuple[float, ...]:
        """All loads of ``A(u)`` on the user's capacity measures."""
        user = self.instance.user(user_id)
        totals = [0.0] * user.num_capacity_measures
        for sid in sorted(self._assigned[user_id]):
            for j, load in enumerate(user.load_vector(sid)):
                totals[j] += load
        return tuple(totals)

    # ------------------------------------------------------------------
    # Utility (paper §2 Preliminaries)
    # ------------------------------------------------------------------

    def raw_user_utility(self, user_id: str) -> float:
        """``w_u(A) = Σ_{S∈A(u)} w_u(S)`` — uncapped.

        Summed in sorted stream order for cross-process determinism.
        """
        user = self.instance.user(user_id)
        return sum(user.utility(sid) for sid in sorted(self._assigned[user_id]))

    def user_utility(self, user_id: str) -> float:
        """``min(W_u, w_u(A))`` — the capped contribution of one user."""
        user = self.instance.user(user_id)
        return min(user.utility_cap, self.raw_user_utility(user_id))

    def utility(self) -> float:
        """``w(A) = Σ_u min(W_u, w_u(A))`` — total capped utility."""
        return sum(self.user_utility(u.user_id) for u in self.instance.users)

    def residual_utility(self, user_id: str, stream_id: str) -> float:
        """The fractional residual utility ``w̄^A_u(S)`` (§2 Preliminaries).

        Zero when the stream is already assigned somewhere in ``A``'s
        range for this user; otherwise the utility the stream would add
        to ``u``, clipped by the user's remaining headroom below ``W_u``.
        """
        if stream_id in self._assigned[user_id]:
            return 0.0
        user = self.instance.user(user_id)
        w = user.utility(stream_id)
        if w == 0:
            return 0.0
        headroom = user.utility_cap - self.raw_user_utility(user_id)
        if headroom <= 0:
            return 0.0
        return min(w, headroom)

    def fractional_residual_utility(self, stream_id: str) -> float:
        """``w̄^A(S) = Σ_u w̄^A_u(S)``.

        Per the paper, ``w̄^A(S) = 0`` for streams already in the range
        ``S(A)`` (they are already transmitted; re-assigning them to
        additional users is free and handled separately).
        """
        if stream_id in self.assigned_streams():
            return 0.0
        return sum(self.residual_utility(u.user_id, stream_id) for u in self.instance.users)

    # ------------------------------------------------------------------
    # Feasibility
    # ------------------------------------------------------------------

    def is_server_feasible(self, rtol: float = FEASIBILITY_RTOL) -> bool:
        """All server budget constraints ``c_i(A) <= B_i`` hold."""
        return all(
            cost <= budget * (1 + rtol)
            for cost, budget in zip(self.server_costs(), self.instance.budgets)
        )

    def is_user_feasible(self, rtol: float = FEASIBILITY_RTOL) -> bool:
        """All user capacity constraints ``k^u_j(A) <= K^u_j`` hold."""
        for u in self.instance.users:
            for load, cap in zip(self.user_loads(u.user_id), u.capacities):
                if load > cap * (1 + rtol):
                    return False
        return True

    def is_feasible(self, rtol: float = FEASIBILITY_RTOL) -> bool:
        """Feasible = server budgets and user capacities all hold."""
        return self.is_server_feasible(rtol) and self.is_user_feasible(rtol)

    def is_semi_feasible(self, rtol: float = FEASIBILITY_RTOL) -> bool:
        """Semi-feasible = server budgets hold (user capacities may not)."""
        return self.is_server_feasible(rtol)

    def violated_constraints(self, rtol: float = FEASIBILITY_RTOL) -> "list[str]":
        """Human-readable list of violated constraints (for diagnostics)."""
        problems = []
        for i, (cost, budget) in enumerate(zip(self.server_costs(), self.instance.budgets)):
            if cost > budget * (1 + rtol):
                problems.append(f"server budget {i}: cost {cost:.6g} > B_{i}={budget:.6g}")
        for u in self.instance.users:
            for j, (load, cap) in enumerate(zip(self.user_loads(u.user_id), u.capacities)):
                if load > cap * (1 + rtol):
                    problems.append(
                        f"user {u.user_id} capacity {j}: load {load:.6g} > K={cap:.6g}"
                    )
        return problems

    # ------------------------------------------------------------------
    # Transformations
    # ------------------------------------------------------------------

    def restrict(self, stream_ids: Iterable[str]) -> "Assignment":
        """``A|_C`` — keep only streams in ``C`` (paper §4.1 output
        transformation)."""
        keep = set(stream_ids)
        return Assignment(
            self.instance,
            {uid: streams & keep for uid, streams in self._assigned.items()},
        )

    def copy(self) -> "Assignment":
        return Assignment(self.instance, self._assigned)

    def union(self, other: "Assignment") -> "Assignment":
        """Per-user union of two assignments over the same instance."""
        if other.instance is not self.instance:
            raise ValidationError("assignments are over different instances")
        merged = {
            uid: self._assigned[uid] | other._assigned[uid] for uid in self._assigned
        }
        return Assignment(self.instance, merged)

    def on_instance(self, instance: MMDInstance) -> "Assignment":
        """Re-interpret this assignment over another instance with the
        same stream/user ids (used when mapping solutions back through
        the §3/§4 reductions)."""
        return Assignment(instance, self._assigned)

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, Assignment):
            return NotImplemented
        return self.instance is other.instance and self._assigned == other._assigned

    def __repr__(self) -> str:
        nonempty = sum(1 for s in self._assigned.values() if s)
        return (
            f"Assignment(streams={len(self.assigned_streams())}, "
            f"users_served={nonempty}, utility={self.utility():.6g})"
        )


def best_assignment(assignments: Iterable[Assignment]) -> Assignment:
    """Return the assignment of maximum utility (ties: first wins).

    Raises :class:`ValidationError` on an empty iterable.
    """
    best: "Assignment | None" = None
    best_utility = -1.0
    for a in assignments:
        u = a.utility()
        if u > best_utility:
            best, best_utility = a, u
    if best is None:
        raise ValidationError("best_assignment over an empty iterable")
    return best


def saturating_assignment(instance: MMDInstance, stream_ids: Iterable[str]) -> Assignment:
    """The canonical semi-feasible assignment for a transmitted set ``T``:
    every user receives every transmitted stream he wants.

    Its capped utility equals the coverage utility ``w(T)`` of
    Lemma 2.1 (user capacities may be violated — the caller is expected
    to repair per-user sets afterwards, or to be in the unit-skew
    setting where capacities coincide with utility caps).
    """
    a = Assignment(instance)
    for sid in stream_ids:
        a.add_stream_to_all(sid)
    return a
