"""Utility-blind baseline policies the paper argues against (§1).

The paper's motivation: deployed systems use "a simple threshold-based
admission control policy, where requests are admitted so long as they do
not go over certain 'safety margins' for the resources in question...
this approach is somewhat naïve, in that it ignores the possibly very
different utilities of different streams."

These baselines make that comparison concrete (experiment E8):

- :func:`threshold_admission` — the deployed policy: first come, first
  served, admit while within per-resource safety margins.
- :func:`utility_greedy` — order by total utility, ignore costs.
- :func:`density_greedy` — order by static utility/cost density (no
  residual updates, unlike Algorithm Greedy).
- :func:`random_admission` — threshold admission in random order.

All baselines return fully feasible assignments: a stream is admitted
only if the server margins hold, and delivered only to users whose
capacity margins hold.
"""

from __future__ import annotations

import math

import numpy as np

from repro.core.assignment import Assignment
from repro.core.instance import FEASIBILITY_RTOL, MMDInstance
from repro.exceptions import ValidationError
from repro.util.rng import ensure_rng


def _admit_in_order(
    instance: MMDInstance,
    order: "list[str]",
    margin: float,
) -> Assignment:
    """Shared engine: walk streams in order, admit while within margins.

    A stream is transmitted if adding it keeps every finite server
    budget within ``margin * B_i``; it is then delivered to every
    interested user whose margins allow it and whose residual utility
    headroom is positive.
    """
    if not 0.0 < margin <= 1.0:
        raise ValidationError(f"margin must be in (0, 1], got {margin}")
    assignment = Assignment(instance)
    server_used = [0.0] * instance.m
    user_used = {u.user_id: [0.0] * instance.mc for u in instance.users}
    user_utility = {u.user_id: 0.0 for u in instance.users}
    for sid in order:
        stream = instance.stream(sid)
        fits = True
        for i, budget in enumerate(instance.budgets):
            if math.isinf(budget):
                continue
            if server_used[i] + stream.costs[i] > margin * budget * (1 + FEASIBILITY_RTOL):
                fits = False
                break
        if not fits:
            continue
        receivers = []
        for u in instance.users:
            if sid not in u.utilities:
                continue
            if user_utility[u.user_id] >= u.utility_cap:
                continue
            ok = True
            loads = u.load_vector(sid)
            for j, cap in enumerate(u.capacities):
                if math.isinf(cap):
                    continue
                if user_used[u.user_id][j] + loads[j] > margin * cap * (1 + FEASIBILITY_RTOL):
                    ok = False
                    break
            if ok:
                receivers.append(u.user_id)
        if not receivers:
            continue
        for uid in receivers:
            u = instance.user(uid)
            loads = u.load_vector(sid)
            for j in range(instance.mc):
                user_used[uid][j] += loads[j]
            user_utility[uid] += u.utilities[sid]
            assignment.add(uid, sid)
        for i in range(instance.m):
            server_used[i] += stream.costs[i]
    return assignment


def threshold_admission(
    instance: MMDInstance,
    order: "list[str] | None" = None,
    margin: float = 1.0,
) -> Assignment:
    """The deployed "safety margin" policy of the paper's introduction.

    Streams are processed in arrival order (default: catalog order) and
    admitted while every resource stays below ``margin`` times its cap —
    entirely blind to utilities.
    """
    sequence = order if order is not None else instance.stream_ids()
    return _admit_in_order(instance, sequence, margin)


def utility_greedy(instance: MMDInstance, margin: float = 1.0) -> Assignment:
    """Admit in decreasing order of total stream utility ``w(S)``,
    ignoring costs entirely."""
    sequence = sorted(
        instance.stream_ids(),
        key=lambda sid: (-instance.total_utility(sid), sid),
    )
    return _admit_in_order(instance, sequence, margin)


def density_greedy(instance: MMDInstance, margin: float = 1.0) -> Assignment:
    """Admit in decreasing order of *static* density ``w(S)/c(S)``.

    The density uses the reduced (normalize-and-sum) cost so it is
    defined for any ``m``; unlike Algorithm Greedy, densities are
    computed once and never updated as users saturate — the gap between
    the two quantifies the value of residual-utility maintenance.
    """
    finite = [i for i, b in enumerate(instance.budgets) if not math.isinf(b)]

    def density(sid: str) -> float:
        cost = sum(instance.stream(sid).costs[i] / instance.budgets[i] for i in finite)
        w = instance.total_utility(sid)
        if cost == 0.0:
            return math.inf if w > 0 else 0.0
        return w / cost

    sequence = sorted(instance.stream_ids(), key=lambda sid: (-density(sid), sid))
    return _admit_in_order(instance, sequence, margin)


def random_admission(
    instance: MMDInstance,
    seed: "int | np.random.Generator | None" = None,
    margin: float = 1.0,
) -> Assignment:
    """Threshold admission over a uniformly random arrival order."""
    rng = ensure_rng(seed)
    sequence = list(instance.stream_ids())
    rng.shuffle(sequence)
    return _admit_in_order(instance, sequence, margin)
