"""LP rounding heuristic for MMD.

Not part of the paper's toolbox (the paper is purely combinatorial), but
a natural competitor any systems deployment would consider: solve the
fractional relaxation, round stream selections randomly with
probabilities proportional to their fractional values, then *alter* the
rounded set back to feasibility (drop cheapest-utility streams/deliveries
until every budget holds).  Provides no worst-case guarantee for MMD —
the ablation bench (A2) measures where it lands between the greedy
pipeline and the exact optimum.
"""

from __future__ import annotations

import math

import numpy as np

from repro.core.assignment import Assignment
from repro.core.instance import MMDInstance
from repro.core.optimal import _MilpModel
from repro.core.solver import greedy_fill
from repro.exceptions import SolverError
from repro.util.rng import ensure_rng


def fractional_solution(instance: MMDInstance) -> "tuple[dict[str, float], dict[tuple[str, str], float]]":
    """Solve the LP relaxation; returns (x values per stream, y values per
    (user, stream) pair)."""
    from scipy.optimize import linprog

    model = _MilpModel(instance)
    if not model.pairs:
        return {}, {}
    constraint = model.constraints()
    bounds = model.bounds()
    result = linprog(
        model.objective(),
        A_ub=constraint.A,
        b_ub=constraint.ub,
        bounds=list(zip(bounds.lb, bounds.ub)),
        method="highs",
    )
    if not result.success:
        raise SolverError(f"LP relaxation failed: {result.message}")
    x_values = {sid: float(result.x[model.x_index[sid]]) for sid in model.stream_ids}
    y_values = {
        pair: float(result.x[col]) for pair, col in model.y_index.items()
    }
    return x_values, y_values


def _drop_to_feasibility(instance: MMDInstance, assignment: Assignment) -> Assignment:
    """Alteration step: remove lowest-utility-per-violation deliveries and
    streams until every constraint holds."""
    a = assignment.copy()
    # User side first: per user, drop smallest-utility streams until fits.
    for user in instance.users:
        while True:
            loads = a.user_loads(user.user_id)
            violated = [
                j
                for j, cap in enumerate(user.capacities)
                if not math.isinf(cap) and loads[j] > cap * (1 + 1e-9)
            ]
            if not violated:
                break
            streams = sorted(
                a.streams_of(user.user_id),
                key=lambda sid: (user.utilities.get(sid, 0.0), sid),
            )
            dropped = False
            for sid in streams:
                if any(user.load(sid, j) > 0 for j in violated):
                    a.discard(user.user_id, sid)
                    dropped = True
                    break
            if not dropped:  # violation with no positive-load stream: give up
                for sid in streams:
                    a.discard(user.user_id, sid)
                break
    # Server side: drop transmitted streams of lowest realized utility.
    while not a.is_server_feasible():
        candidates = sorted(
            a.assigned_streams(),
            key=lambda sid: (
                sum(
                    instance.user(uid).utilities.get(sid, 0.0)
                    for uid in a.receivers_of(sid)
                ),
                sid,
            ),
        )
        victim = candidates[0]
        for uid in a.receivers_of(victim):
            a.discard(uid, victim)
    return a


def lp_rounding(
    instance: MMDInstance,
    seed: "int | np.random.Generator | None" = None,
    trials: int = 5,
    fill: bool = True,
) -> Assignment:
    """Randomized rounding with alteration; best of ``trials`` draws.

    Each trial includes stream ``S`` with probability ``x*_S`` and then
    delivers it to user ``u`` with probability ``y*_{u,S}/x*_S``; the
    alteration pass restores feasibility, and (optionally) greedy-fill
    reclaims slack the rounding left unused.
    """
    if trials < 1:
        raise ValueError(f"trials must be positive, got {trials}")
    rng = ensure_rng(seed)
    x_values, y_values = fractional_solution(instance)
    best: "Assignment | None" = None
    best_value = -1.0
    for _ in range(trials):
        a = Assignment(instance)
        included = {
            sid for sid, x in x_values.items() if x > 0 and rng.random() < x
        }
        for (uid, sid), y in y_values.items():
            if sid not in included or y <= 0:
                continue
            x = max(x_values[sid], 1e-12)
            if rng.random() < min(y / x, 1.0):
                a.add(uid, sid)
        a = _drop_to_feasibility(instance, a)
        if fill:
            a = greedy_fill(instance, a)
        value = a.utility()
        if value > best_value:
            best, best_value = a, value
    assert best is not None
    return best
