"""Classify-and-select over skew classes (paper §3, Theorem 3.1).

An SMD instance with local skew ``α > 1`` is reduced to
``t = 1 + ⌊log₂ α⌋`` unit-skew instances: for each user ``u``, the
cost-benefit ratios ``w_u(S)/k_u(S)`` are normalized so their minimum is
1, and the user-stream pair is placed in class ``i`` when the normalized
ratio lies in ``[2^{i-1}, 2^i)``.  Class ``i``'s utility function is
``w^i_u(S) = k_u(S)`` with utility bound ``W^i_u = K_u`` — i.e. each
class is an instance of the §2 unit-skew setting, solvable by Algorithm
Greedy.  Solving every class and returning the solution of maximum
*original* utility loses only an ``O(log 2α)`` factor (Theorem 3.1).

Engineering extension: pairs with ``k_u(S) = 0`` but ``w_u(S) > 0``
("free" pairs — infinite cost-benefit ratio) are collected into one
additional class whose utility function is the original ``w_u`` with no
user-side constraint; this keeps ``α`` finite and the guarantee intact
(the best class is still within ``2(t+1)ρ`` of OPT).
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Callable

from repro.core.assignment import Assignment, best_assignment
from repro.core.greedy import greedy_feasible
from repro.core.indexed import index_instance, skew_bins
from repro.core.instance import MMDInstance
from repro.exceptions import ValidationError

#: Index used for the class of zero-load ("free") user-stream pairs.
FREE_CLASS = 0


@dataclass
class SkewClass:
    """One unit-skew sub-instance produced by :func:`classify_by_skew`.

    Attributes
    ----------
    index:
        Class number ``i >= 1`` (pairs with normalized ratio in
        ``[2^{i-1}, 2^i)``), or :data:`FREE_CLASS` for zero-load pairs.
    instance:
        The §2-setting instance: utilities are (scaled) loads, utility
        caps are (scaled) capacities.
    pairs:
        The ``(user_id, stream_id)`` pairs assigned to this class.
    """

    index: int
    instance: MMDInstance
    pairs: "list[tuple[str, str]]" = field(default_factory=list)


def _require_smd_for_classify(instance: MMDInstance) -> None:
    if instance.m != 1:
        raise ValidationError("classify_by_skew requires a single server budget (m=1)")
    if instance.mc > 1:
        raise ValidationError(
            f"classify_by_skew requires at most one capacity measure per user, got mc={instance.mc}"
        )
    for u in instance.users:
        if not math.isinf(u.utility_cap):
            raise ValidationError(
                f"classify_by_skew requires infinite utility caps (user {u.user_id} has "
                f"W_u={u.utility_cap}); model the cap as a capacity measure first "
                "(see repro.core.reduction.utility_cap_as_capacity)"
            )


def classify_by_skew(instance: MMDInstance) -> "list[SkewClass]":
    """Split an SMD instance into unit-skew classes (paper §3).

    Returns one :class:`SkewClass` per nonempty ratio class, plus at
    most one free class.  The union of the classes' positive-utility
    pairs is exactly the original instance's.
    """
    _require_smd_for_classify(instance)

    # Vectorized binning: per-user ratio normalization and the per-pair
    # log₂ class index are computed on the indexed lowering (identical
    # arithmetic to the scalar formulas — see repro.core.indexed.skew_bins);
    # zero/overflowing-ratio pairs land in the free class.
    idx = index_instance(instance)
    bins = skew_bins(idx)

    # class index -> user -> {stream: class utility}; parallel loads/caps.
    class_utilities: dict[int, dict[str, dict[str, float]]] = {}
    class_loads: dict[int, dict[str, dict[str, tuple[float, ...]]]] = {}
    class_caps: dict[int, dict[str, float]] = {}
    class_pairs: dict[int, list[tuple[str, str]]] = {}

    def _bucket(index: int) -> None:
        class_utilities.setdefault(index, {})
        class_loads.setdefault(index, {})
        class_caps.setdefault(index, {})
        class_pairs.setdefault(index, [])

    pos = 0
    for u_i, u in enumerate(instance.users):
        for sid, w in u.utilities.items():
            index = int(bins.bins[pos])
            _bucket(index)
            if index == FREE_CLASS:
                class_utilities[index].setdefault(u.user_id, {})[sid] = w
            else:
                # Class utility = scaled load; cap = scaled capacity
                # (unit skew).
                scaled_load = float(bins.scaled_load[pos])
                class_utilities[index].setdefault(u.user_id, {})[sid] = scaled_load
                class_loads[index].setdefault(u.user_id, {})[sid] = (scaled_load,)
                class_caps[index][u.user_id] = float(bins.scaled_cap[u_i])
            class_pairs[index].append((u.user_id, sid))
            pos += 1

    classes: "list[SkewClass]" = []
    for index in sorted(class_utilities):
        utilities = class_utilities[index]
        if index == FREE_CLASS:
            caps = {u.user_id: math.inf for u in instance.users}
            loads: dict[str, dict[str, tuple[float, ...]]] = {
                uid: {sid: (0.0,) * instance.mc for sid in streams}
                for uid, streams in utilities.items()
            }
            capacities = None
        else:
            caps = {
                uid: class_caps[index].get(uid, math.inf) for uid in instance.user_ids()
            }
            loads = class_loads[index]
            capacities = {
                uid: ((class_caps[index][uid],) if uid in class_caps[index] else (math.inf,) * instance.mc)
                for uid in instance.user_ids()
            }
        sub = instance.with_utilities(
            {uid: utilities.get(uid, {}) for uid in instance.user_ids()},
            loads={uid: loads.get(uid, {}) for uid in instance.user_ids()},
            utility_caps=caps,
            capacities=capacities,
            name=f"{instance.name or 'smd'}[class {index}]",
        )
        classes.append(SkewClass(index=index, instance=sub, pairs=class_pairs[index]))
    return classes


def classify_and_select(
    instance: MMDInstance,
    solve_class: "Callable[[MMDInstance], Assignment] | None" = None,
) -> Assignment:
    """Theorem 3.1: solve every skew class, return the best by original utility.

    Parameters
    ----------
    instance:
        SMD instance (``m = 1``, ``m_c <= 1``, infinite utility caps).
    solve_class:
        Solver for a unit-skew class instance; defaults to
        :func:`repro.core.greedy.greedy_feasible` (giving the
        ``O(n²)``-time ``O(log 2α)``-approximation of Theorem 3.1).

    The returned assignment is feasible for the original instance:
    class feasibility is capacity feasibility (class caps are the
    scaled capacities), which scaling preserves.
    """
    _require_smd_for_classify(instance)
    solver = solve_class if solve_class is not None else greedy_feasible
    classes = classify_by_skew(instance)
    if not classes:
        return Assignment(instance)
    candidates = []
    for cls in classes:
        class_solution = solver(cls.instance)
        # Reinterpret over the original instance: same users/streams, the
        # original utilities and loads; capacity feasibility carries over.
        candidates.append(class_solution.on_instance(instance))
    return best_assignment(candidates)


def num_skew_classes(alpha: float) -> int:
    """``t = 1 + ⌊log₂ α⌋`` — classes needed for skew ``α`` (paper §3)."""
    if alpha < 1.0:
        raise ValidationError(f"local skew is always >= 1, got {alpha}")
    return 1 + int(math.floor(math.log2(alpha) + 1e-12))


def skew_bound(alpha: float, class_factor: float) -> float:
    """The Theorem 3.1 guarantee: ``2·t·ρ`` where ``ρ`` is the class
    solver's factor — the proof loses 2 for intra-class utility rounding
    and ``t`` for selecting a single class."""
    return 2.0 * num_skew_classes(alpha) * class_factor
