"""Monotone submodular maximization under knapsack constraints.

The paper closes §4.1 with a remark: *"our approach can be used to
maximize nonnegative, nondecreasing, submodular, and polynomially
computable set functions under m budget constraints, obtaining an O(m)
approximation ratio"* — reduce the budgets to one (normalize and sum),
run Sviridenko's partial-enumeration greedy, then decompose the result
by the Fig. 3 construction and keep the best group.

This module implements that pipeline for arbitrary set functions, plus
the standard single-budget machinery it builds on:

- :func:`greedy_submodular` / :func:`lazy_greedy_submodular` — density
  greedy (lazy variant exploits monotone marginal decrease);
- :func:`greedy_or_best_singleton` — the Lemma 2.6-style fix with the
  ``2e/(e-1)`` guarantee;
- :func:`partial_enumeration_submodular` — Sviridenko's ``e/(e-1)``;
- :func:`multi_budget_submodular` — the §4.1 remark: ``O(m)·e/(e-1)``.

Set functions are plain callables ``f(frozenset) -> float``; they are
memoized internally per run, so expensive functions are evaluated once
per distinct set.
"""

from __future__ import annotations

import heapq
import itertools
import math
from typing import Callable, Hashable, Mapping, Sequence

from repro.core.reduction import unit_interval_decomposition
from repro.exceptions import ValidationError

SetFunction = Callable[[frozenset], float]


class _Memo:
    """Memoized view of a set function."""

    def __init__(self, fn: SetFunction) -> None:
        self._fn = fn
        self._cache: dict[frozenset, float] = {}
        self.evaluations = 0

    def __call__(self, items: frozenset) -> float:
        if items not in self._cache:
            self._cache[items] = self._fn(items)
            self.evaluations += 1
        return self._cache[items]

    def marginal(self, item: Hashable, base: frozenset) -> float:
        return self(base | {item}) - self(base)


def _check_inputs(
    ground: Sequence[Hashable],
    costs: Mapping[Hashable, float],
    budget: float,
) -> None:
    if budget < 0:
        raise ValidationError(f"budget must be nonnegative, got {budget}")
    for item in ground:
        if costs[item] < 0:
            raise ValidationError(f"negative cost for {item!r}")


def greedy_submodular(
    fn: SetFunction,
    ground: Sequence[Hashable],
    costs: Mapping[Hashable, float],
    budget: float,
) -> frozenset:
    """Density greedy: repeatedly add the item of maximum marginal value
    per unit cost that still fits the budget.

    (On its own this has an unbounded ratio — see §2.2's discussion —
    use :func:`greedy_or_best_singleton` for a guarantee.)
    """
    _check_inputs(ground, costs, budget)
    memo = _Memo(fn)
    chosen: frozenset = frozenset()
    spent = 0.0
    remaining = set(ground)
    while remaining:
        best_item = None
        best_key = (-math.inf, -math.inf)
        for item in remaining:
            gain = memo.marginal(item, chosen)
            cost = costs[item]
            density = (gain / cost) if cost > 0 else (math.inf if gain > 0 else 0.0)
            key = (density, gain)
            if key > best_key:
                best_key, best_item = key, item
        if best_item is None or best_key[1] <= 0:
            break
        remaining.discard(best_item)
        if spent + costs[best_item] <= budget * (1 + 1e-9):
            chosen = chosen | {best_item}
            spent += costs[best_item]
    return chosen


def lazy_greedy_submodular(
    fn: SetFunction,
    ground: Sequence[Hashable],
    costs: Mapping[Hashable, float],
    budget: float,
) -> frozenset:
    """CELF-style lazy greedy: identical output value to
    :func:`greedy_submodular` (up to ties), far fewer evaluations."""
    _check_inputs(ground, costs, budget)
    memo = _Memo(fn)
    chosen: frozenset = frozenset()
    spent = 0.0

    def density(item: Hashable, gain: float) -> float:
        cost = costs[item]
        return (gain / cost) if cost > 0 else (math.inf if gain > 0 else 0.0)

    heap: "list[tuple[float, float, int, Hashable]]" = []
    for order, item in enumerate(ground):
        gain = memo.marginal(item, chosen)
        heapq.heappush(heap, (-density(item, gain), -gain, order, item))
    stale: set[Hashable] = set()
    while heap:
        neg_density, neg_gain, order, item = heapq.heappop(heap)
        if item in stale:
            continue
        gain = memo.marginal(item, chosen)
        if gain != -neg_gain:
            heapq.heappush(heap, (-density(item, gain), -gain, order, item))
            continue
        if gain <= 0:
            break
        stale.add(item)
        if spent + costs[item] <= budget * (1 + 1e-9):
            chosen = chosen | {item}
            spent += costs[item]
    return chosen


def best_singleton(
    fn: SetFunction,
    ground: Sequence[Hashable],
    costs: Mapping[Hashable, float],
    budget: float,
) -> frozenset:
    """The best feasible single item."""
    memo = _Memo(fn)
    best: frozenset = frozenset()
    best_value = memo(frozenset())
    for item in ground:
        if costs[item] <= budget * (1 + 1e-9):
            value = memo(frozenset({item}))
            if value > best_value:
                best, best_value = frozenset({item}), value
    return best


def greedy_or_best_singleton(
    fn: SetFunction,
    ground: Sequence[Hashable],
    costs: Mapping[Hashable, float],
    budget: float,
) -> frozenset:
    """Greedy fixed by the best singleton (the Lemma 2.6 trick):
    guarantees ``(e-1)/2e`` of the optimum for monotone submodular
    ``fn``."""
    memo = _Memo(fn)
    a = greedy_submodular(memo, ground, costs, budget)
    b = best_singleton(memo, ground, costs, budget)
    return a if memo(a) >= memo(b) else b


def partial_enumeration_submodular(
    fn: SetFunction,
    ground: Sequence[Hashable],
    costs: Mapping[Hashable, float],
    budget: float,
    depth: int = 3,
) -> frozenset:
    """Sviridenko's partial enumeration: ``e/(e-1)`` for monotone
    submodular maximization under one knapsack constraint."""
    _check_inputs(ground, costs, budget)
    memo = _Memo(fn)
    best: frozenset = frozenset()
    best_value = memo(frozenset())
    for size in range(1, depth + 1):
        for seed in itertools.combinations(ground, size):
            seed_cost = sum(costs[item] for item in seed)
            if seed_cost > budget * (1 + 1e-9):
                continue
            base = frozenset(seed)
            residual_ground = [g for g in ground if g not in base]
            completion = greedy_submodular(
                lambda T, base=base: memo(T | base),
                residual_ground,
                costs,
                budget - seed_cost,
            )
            candidate = base | completion
            value = memo(candidate)
            if value > best_value:
                best, best_value = candidate, value
    # Depth-0 fallback: plain greedy with singleton fix.
    fallback = greedy_or_best_singleton(memo, ground, costs, budget)
    if memo(fallback) > best_value:
        best = fallback
    return best


def multi_budget_submodular(
    fn: SetFunction,
    ground: Sequence[Hashable],
    cost_vectors: Mapping[Hashable, Sequence[float]],
    budgets: Sequence[float],
    depth: int = 3,
) -> frozenset:
    """The §4.1 remark: submodular maximization under ``m`` knapsacks.

    Reduces to a single knapsack with ``c(x) = Σ_i c_i(x)/B_i`` and
    budget ``m``, solves it with :func:`partial_enumeration_submodular`,
    then splits the solution into at most ``2m-1`` groups via
    :func:`repro.core.reduction.unit_interval_decomposition` (items of
    reduced cost at least 1 stand alone) and returns the best group —
    which is feasible for every original budget.
    """
    m = len(budgets)
    for i, b in enumerate(budgets):
        if b <= 0:
            raise ValidationError(f"budgets must be positive, got B_{i}={b}")
    finite = [i for i in range(m) if not math.isinf(budgets[i])]
    reduced_cost = {
        item: sum(cost_vectors[item][i] / budgets[i] for i in finite)
        for item in ground
    }
    for item in ground:
        for i in finite:
            if cost_vectors[item][i] > budgets[i] * (1 + 1e-9):
                raise ValidationError(
                    f"item {item!r} exceeds budget {i} on its own; "
                    "the reduction assumes c_i(x) <= B_i"
                )
    memo = _Memo(fn)
    chosen = partial_enumeration_submodular(
        memo, ground, reduced_cost, float(len(finite)) if finite else math.inf, depth=depth
    )
    ordered = [item for item in ground if item in chosen]
    big = [item for item in ordered if reduced_cost[item] >= 1.0 - 1e-12]
    small = [item for item in ordered if item not in set(big)]
    groups: "list[list[Hashable]]" = [[item] for item in big]
    groups.extend(unit_interval_decomposition(small, reduced_cost.get))
    best: frozenset = frozenset()
    best_value = memo(frozenset())
    for group in groups:
        candidate = frozenset(group)
        value = memo(candidate)
        if value > best_value:
            best, best_value = candidate, value
    return best
