"""Exact solvers and bounds for MMD instances.

The paper proves worst-case approximation ratios analytically; the
reproduction measures them empirically, which requires the true optimum
on small and medium instances:

- :func:`solve_exact_milp` — a mixed-integer formulation solved by
  SciPy's HiGHS backend; exact for any instance it can fit in memory.
- :func:`solve_exact_bruteforce` — doubly exponential enumeration used
  only to cross-check the MILP on tiny instances.
- :func:`lp_upper_bound` — the fractional relaxation, a cheap upper
  bound on OPT for instances too large for exact solving (yields valid
  *lower* bounds on measured approximation ratios).

MILP formulation (capped-utility objective)::

    maximize   Σ_u t_u
    subject to y_{u,S} <= x_S                          (receive ⇒ transmit)
               Σ_S c_i(S)·x_S <= B_i                   (server budgets)
               Σ_S k^u_j(S)·y_{u,S} <= K^u_j           (user capacities)
               t_u <= Σ_S w_u(S)·y_{u,S}               (utility accounting)
               t_u <= W_u
               x, y ∈ {0,1};  t_u >= 0

For feasible assignments with infinite caps the objective equals the
paper's plain summed utility.
"""

from __future__ import annotations

import itertools
import math
from dataclasses import dataclass

import numpy as np
from scipy import sparse
from scipy.optimize import Bounds, LinearConstraint, linprog, milp

from repro.core.assignment import Assignment
from repro.core.instance import FEASIBILITY_RTOL, MMDInstance
from repro.exceptions import SolverError


@dataclass
class ExactSolution:
    """An exact (or bounding) solution.

    Attributes
    ----------
    assignment:
        The optimal assignment (empty for pure bounds).
    utility:
        Its capped utility — the optimum when ``status == "optimal"``.
    status:
        ``"optimal"`` or the solver's failure message.
    """

    assignment: Assignment
    utility: float
    status: str


class _MilpModel:
    """Index bookkeeping for the MILP/LP formulations."""

    def __init__(self, instance: MMDInstance) -> None:
        self.instance = instance
        self.stream_ids = instance.stream_ids()
        self.x_index = {sid: i for i, sid in enumerate(self.stream_ids)}
        self.pairs = [
            (u.user_id, sid) for u in instance.users for sid in sorted(u.utilities)
        ]
        self.y_index = {
            pair: len(self.stream_ids) + i for i, pair in enumerate(self.pairs)
        }
        self.t_index = {
            u.user_id: len(self.stream_ids) + len(self.pairs) + i
            for i, u in enumerate(instance.users)
        }
        self.num_vars = len(self.stream_ids) + len(self.pairs) + instance.num_users

    def objective(self) -> np.ndarray:
        c = np.zeros(self.num_vars)
        for idx in self.t_index.values():
            c[idx] = -1.0  # milp/linprog minimize
        return c

    def constraints(self) -> "LinearConstraint":
        rows: "list[int]" = []
        cols: "list[int]" = []
        data: "list[float]" = []
        lower: "list[float]" = []
        upper: "list[float]" = []
        row = 0

        def add_entry(r: int, c: int, v: float) -> None:
            rows.append(r)
            cols.append(c)
            data.append(v)

        inst = self.instance
        # y_{u,S} - x_S <= 0
        for (uid, sid), y_col in self.y_index.items():
            add_entry(row, y_col, 1.0)
            add_entry(row, self.x_index[sid], -1.0)
            lower.append(-np.inf)
            upper.append(0.0)
            row += 1
        # server budgets
        for i, budget in enumerate(inst.budgets):
            if math.isinf(budget):
                continue
            nonzero = False
            for sid in self.stream_ids:
                cost = inst.stream(sid).costs[i]
                if cost > 0:
                    add_entry(row, self.x_index[sid], cost)
                    nonzero = True
            if nonzero:
                lower.append(-np.inf)
                upper.append(budget)
                row += 1
        # user capacities
        for u in inst.users:
            for j, cap in enumerate(u.capacities):
                if math.isinf(cap):
                    continue
                nonzero = False
                for sid in sorted(u.utilities):
                    load = u.load(sid, j)
                    if load > 0:
                        add_entry(row, self.y_index[(u.user_id, sid)], load)
                        nonzero = True
                if nonzero:
                    lower.append(-np.inf)
                    upper.append(cap)
                    row += 1
        # t_u - Σ w_u(S) y <= 0
        for u in inst.users:
            add_entry(row, self.t_index[u.user_id], 1.0)
            for sid, w in sorted(u.utilities.items()):
                add_entry(row, self.y_index[(u.user_id, sid)], -w)
            lower.append(-np.inf)
            upper.append(0.0)
            row += 1

        matrix = sparse.csr_matrix(
            (data, (rows, cols)), shape=(row, self.num_vars)
        )
        return LinearConstraint(matrix, np.array(lower), np.array(upper))

    def bounds(self) -> Bounds:
        lb = np.zeros(self.num_vars)
        ub = np.ones(self.num_vars)
        for u in self.instance.users:
            idx = self.t_index[u.user_id]
            total = sum(u.utilities.values())
            ub[idx] = min(u.utility_cap, total)
        return Bounds(lb, ub)

    def integrality(self) -> np.ndarray:
        kinds = np.ones(self.num_vars)
        for idx in self.t_index.values():
            kinds[idx] = 0.0  # t_u continuous
        return kinds

    def extract_assignment(self, x: np.ndarray) -> Assignment:
        assignment = Assignment(self.instance)
        for (uid, sid), col in self.y_index.items():
            if x[col] > 0.5:
                assignment.add(uid, sid)
        return assignment


def solve_exact_milp(instance: MMDInstance) -> ExactSolution:
    """Exact optimum via mixed-integer programming (HiGHS).

    Raises :class:`SolverError` if the solver reports anything but
    optimality (MMD always has the feasible empty assignment, so
    infeasibility indicates a modeling bug).
    """
    model = _MilpModel(instance)
    if not model.pairs:
        return ExactSolution(Assignment(instance), 0.0, "optimal")
    result = milp(
        model.objective(),
        constraints=model.constraints(),
        bounds=model.bounds(),
        integrality=model.integrality(),
    )
    if not result.success:
        raise SolverError(f"MILP failed: {result.message}")
    assignment = model.extract_assignment(result.x)
    return ExactSolution(assignment, assignment.utility(), "optimal")


def lp_upper_bound(instance: MMDInstance) -> float:
    """Fractional relaxation value — an upper bound on the exact optimum."""
    model = _MilpModel(instance)
    if not model.pairs:
        return 0.0
    constraint = model.constraints()
    bounds = model.bounds()
    result = linprog(
        model.objective(),
        A_ub=constraint.A,
        b_ub=constraint.ub,
        bounds=list(zip(bounds.lb, bounds.ub)),
        method="highs",
    )
    if not result.success:
        raise SolverError(f"LP relaxation failed: {result.message}")
    return float(-result.fun)


def _user_best_subsets(instance: MMDInstance, transmitted: "tuple[str, ...]") -> float:
    """Best capped utility given a fixed transmitted set: per-user
    enumeration over received subsets (exponential; tiny inputs only)."""
    total = 0.0
    for u in instance.users:
        wanted = [sid for sid in transmitted if sid in u.utilities]
        best = 0.0
        for size in range(len(wanted) + 1):
            for combo in itertools.combinations(wanted, size):
                feasible = True
                for j, cap in enumerate(u.capacities):
                    if math.isinf(cap):
                        continue
                    load = sum(u.load(sid, j) for sid in combo)
                    if load > cap * (1 + FEASIBILITY_RTOL):
                        feasible = False
                        break
                if not feasible:
                    continue
                value = min(u.utility_cap, sum(u.utilities[sid] for sid in combo))
                best = max(best, value)
        total += best
    return total


def solve_exact_bruteforce(instance: MMDInstance, max_streams: int = 16) -> ExactSolution:
    """Doubly exponential exact search; cross-checks the MILP on tiny inputs.

    Enumerates every server-feasible transmitted set, then every
    capacity-feasible received subset per user.  Refuses instances with
    more than ``max_streams`` streams.
    """
    if instance.num_streams > max_streams:
        raise SolverError(
            f"bruteforce limited to {max_streams} streams, got {instance.num_streams}"
        )
    sids = instance.stream_ids()
    best_value = -1.0
    best_set: "tuple[str, ...]" = ()
    for size in range(len(sids) + 1):
        for combo in itertools.combinations(sids, size):
            feasible = True
            for i, budget in enumerate(instance.budgets):
                if math.isinf(budget):
                    continue
                cost = sum(instance.stream(sid).costs[i] for sid in combo)
                if cost > budget * (1 + FEASIBILITY_RTOL):
                    feasible = False
                    break
            if not feasible:
                continue
            value = _user_best_subsets(instance, combo)
            if value > best_value:
                best_value, best_set = value, combo
    # Rebuild the witness assignment for the best transmitted set.
    assignment = Assignment(instance)
    for u in instance.users:
        wanted = [sid for sid in best_set if sid in u.utilities]
        best_combo: "tuple[str, ...]" = ()
        best_user_value = 0.0
        for size in range(len(wanted) + 1):
            for combo in itertools.combinations(wanted, size):
                feasible = True
                for j, cap in enumerate(u.capacities):
                    if math.isinf(cap):
                        continue
                    load = sum(u.load(sid, j) for sid in combo)
                    if load > cap * (1 + FEASIBILITY_RTOL):
                        feasible = False
                        break
                if not feasible:
                    continue
                value = min(u.utility_cap, sum(u.utilities[sid] for sid in combo))
                if value > best_user_value:
                    best_user_value, best_combo = value, combo
        for sid in best_combo:
            assignment.add(u.user_id, sid)
    return ExactSolution(assignment, assignment.utility(), "optimal")
