"""Swap-based local search for MMD.

Another deployment-grade competitor outside the paper's toolbox:
starting from any feasible assignment, repeatedly try improving moves —
adding a stream (with its best feasible receiver set), dropping one, or
swapping one in for one out — until no move improves the utility.
Polynomial per-iteration cost; no approximation guarantee for general
MMD, but together with :func:`repro.core.rounding.lp_rounding` it brackets
where the paper's guaranteed pipeline sits in practice (ablation A2).
"""

from __future__ import annotations

import math

from repro.core.assignment import Assignment
from repro.core.instance import MMDInstance
from repro.core.solver import greedy_fill


def _delivery_value(instance: MMDInstance, assignment: Assignment) -> float:
    return assignment.utility()


def _try_with_stream_set(
    instance: MMDInstance, stream_ids: "set[str]"
) -> "Assignment | None":
    """Best-effort feasible assignment transmitting exactly ``stream_ids``:
    greedily deliver to users by utility density under their capacities.
    Returns None if the set itself violates a server budget."""
    total = [0.0] * instance.m
    for sid in stream_ids:
        for i, c in enumerate(instance.stream(sid).costs):
            total[i] += c
    for i, budget in enumerate(instance.budgets):
        if not math.isinf(budget) and total[i] > budget * (1 + 1e-9):
            return None
    a = Assignment(instance)
    for user in instance.users:
        used = [0.0] * instance.mc
        raw = 0.0
        wanted = sorted(
            (sid for sid in stream_ids if sid in user.utilities),
            key=lambda sid: -user.utilities[sid],
        )
        for sid in wanted:
            headroom = user.utility_cap - raw
            if headroom <= 0:
                break
            loads = user.load_vector(sid)
            if all(
                math.isinf(cap) or used[j] + loads[j] <= cap * (1 + 1e-9)
                for j, cap in enumerate(user.capacities)
            ):
                a.add(user.user_id, sid)
                for j in range(instance.mc):
                    used[j] += loads[j]
                raw += user.utilities[sid]
    return a


def local_search(
    instance: MMDInstance,
    initial: "Assignment | None" = None,
    max_iterations: int = 200,
    fill: bool = True,
) -> Assignment:
    """1-swap local search over the transmitted set.

    Parameters
    ----------
    initial:
        Starting point (defaults to the empty assignment).
    max_iterations:
        Safety cap on improving moves.
    fill:
        Run :func:`repro.core.solver.greedy_fill` on the final answer.
    """
    current_set = set(initial.assigned_streams()) if initial is not None else set()
    current = _try_with_stream_set(instance, current_set)
    if current is None:
        current_set = set()
        current = Assignment(instance)
    current_value = _delivery_value(instance, current)
    all_sids = instance.stream_ids()
    for _ in range(max_iterations):
        best_move: "tuple[set[str], Assignment] | None" = None
        best_value = current_value
        # Add moves.
        for sid in all_sids:
            if sid in current_set:
                continue
            candidate_set = current_set | {sid}
            candidate = _try_with_stream_set(instance, candidate_set)
            if candidate is None:
                continue
            value = _delivery_value(instance, candidate)
            if value > best_value + 1e-12:
                best_move, best_value = (candidate_set, candidate), value
        # Swap moves (only if no add improved — adds are cheaper).
        if best_move is None:
            for sid_out in list(current_set):
                for sid_in in all_sids:
                    if sid_in in current_set:
                        continue
                    candidate_set = (current_set - {sid_out}) | {sid_in}
                    candidate = _try_with_stream_set(instance, candidate_set)
                    if candidate is None:
                        continue
                    value = _delivery_value(instance, candidate)
                    if value > best_value + 1e-12:
                        best_move, best_value = (candidate_set, candidate), value
        if best_move is None:
            break
        current_set, current = best_move
        current_value = best_value
    if fill:
        filled = greedy_fill(instance, current)
        if filled.utility() > current_value:
            return filled
    return current
