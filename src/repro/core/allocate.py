"""Algorithm *Allocate* — online allocation of small streams (paper §5).

Every budget — the ``m`` server budgets and each user's capacity
measures, treated as *virtual budgets* — carries an exponential cost
``C_A(i) = B_i·(µ^{L_A(i)} - 1)`` in its normalized load ``L_A(i)``.
A stream ``S_j`` is assigned to a maximal set of users ``U_j`` whose
total utility covers the marginal exponential cost::

    Σ_{i ∈ M ∪ U_j} (c_i(S_j)/B_i) · C_{A_{j-1}}(i)  ≤  Σ_{u ∈ U_j} w_u(S_j)

Decisions are never revoked, so the algorithm is online.  When every
stream is *small* — ``c_i(S) ≤ B_i / log₂ µ`` in every measure — no
budget is ever violated (Lemma 5.1) and the solution is
``(1 + 2·log₂ µ)``-competitive (Theorem 5.4), where
``µ = 2γ·(m + |U|·m_c) + 2`` and ``γ`` is the instance's global skew.

The paper presents ``m_c = 1`` and notes the extension to ``m_c > 1`` is
straightforward; this implementation is the general version: each
``(user, capacity measure)`` pair is one virtual budget.

Normalization (paper eq. (1)) is applied internally: each cost measure is
scaled (cost and budget together, which leaves the problem unchanged) so
that a unit of any cost is worth at least ``m + Σ_u m_c`` of the smallest
per-user utility; ``γ`` is then the smallest valid upper bound of eq. (1).

Engineering extensions, both off the paper's path but needed by the
simulation substrate (and the paper's own footnote about streams of
finite duration):

- ``enforce_budgets=True`` adds a hard admission guard so the allocator
  is safe on instances that violate the small-streams precondition (the
  guard provably never fires when the precondition holds);
- :meth:`OnlineAllocator.release` returns a departed stream's load, for
  finite-duration sessions.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field

from repro.core.assignment import Assignment
from repro.core.instance import FEASIBILITY_RTOL, MMDInstance
from repro.exceptions import ValidationError


def global_skew_parameters(instance: MMDInstance) -> "tuple[float, float, int]":
    """Return ``(gamma, mu, D)`` for an instance.

    ``D = m_finite + Σ_u m_c_finite(u)`` counts the budgets with finite
    caps; ``gamma`` is the global skew of eq. (1) computed on the
    normalized instance, and ``mu = 2·gamma·D + 2`` (the constant that
    makes Lemma 5.1 go through; Theorem 1.2 states ``+1``, which does
    not satisfy the lemma's final inequality — we use ``+2`` from §5).
    """
    d = sum(1 for b in instance.budgets if not math.isinf(b))
    for u in instance.users:
        d += sum(1 for cap in u.capacities if not math.isinf(cap))
    d = max(d, 1)
    gamma = instance.global_skew()
    mu = 2.0 * gamma * d + 2.0
    return gamma, mu, d


def small_streams_condition(instance: MMDInstance, mu: "float | None" = None) -> bool:
    """Check the Theorem 1.2 precondition: every stream costs at most a
    ``1/log₂ µ`` fraction of every finite budget and capacity."""
    if mu is None:
        _gamma, mu, _d = global_skew_parameters(instance)
    log_mu = math.log2(mu)
    for s in instance.streams:
        for i, b in enumerate(instance.budgets):
            if not math.isinf(b) and s.costs[i] > b / log_mu * (1 + FEASIBILITY_RTOL):
                return False
    for u in instance.users:
        for sid in u.utilities:
            for j, cap in enumerate(u.capacities):
                if not math.isinf(cap) and u.load(sid, j) > cap / log_mu * (1 + FEASIBILITY_RTOL):
                    return False
    return True


class OnlineAllocator:
    """Stateful online allocator (Algorithm 2).

    The stream *catalog* (and hence the normalization and ``µ``) is
    fixed at construction; the arrival **order** is unknown and streams
    are offered one at a time via :meth:`offer`.  Decisions are never
    revoked (except through the explicit :meth:`release` extension).

    Parameters
    ----------
    instance:
        The full instance (catalog, users, budgets).
    mu:
        Optional override of the exponential base (for experiments);
        defaults to ``2γD + 2``.
    enforce_budgets:
        Hard admission guard (see module docstring).
    """

    def __init__(
        self,
        instance: MMDInstance,
        mu: "float | None" = None,
        enforce_budgets: bool = True,
    ) -> None:
        self.instance = instance
        self.enforce_budgets = enforce_budgets
        self.gamma, default_mu, self.d = global_skew_parameters(instance)
        self.mu = default_mu if mu is None else float(mu)
        if self.mu <= 1.0:
            raise ValidationError(f"mu must exceed 1, got {self.mu}")
        self.log_mu = math.log2(self.mu)

        # Per-measure normalization scales λ (cost and budget together):
        # λ_i = min over streams with c_i(S) > 0 of w_min(S) / (D · c_i(S)).
        self._min_support_utility: dict[str, float] = {}
        self._total_support_utility: dict[str, float] = {}
        for s in instance.streams:
            ws = [u.utilities[s.stream_id] for u in instance.users if s.stream_id in u.utilities]
            if ws:
                self._min_support_utility[s.stream_id] = min(ws)
                self._total_support_utility[s.stream_id] = sum(ws)

        self._server_measures: "list[int]" = [
            i for i, b in enumerate(instance.budgets) if not math.isinf(b)
        ]
        self._server_scale: dict[int, float] = {}
        for i in self._server_measures:
            scale = math.inf
            for s in instance.streams:
                wmin = self._min_support_utility.get(s.stream_id)
                if wmin is not None and s.costs[i] > 0:
                    scale = min(scale, wmin / (self.d * s.costs[i]))
            self._server_scale[i] = 1.0 if math.isinf(scale) else scale

        # user_id -> list of finite measure indices, and (u, j) -> scale.
        self._user_measures: dict[str, "list[int]"] = {}
        self._user_scale: dict[tuple[str, int], float] = {}
        for u in instance.users:
            finite = [j for j, cap in enumerate(u.capacities) if not math.isinf(cap)]
            self._user_measures[u.user_id] = finite
            for j in finite:
                scale = math.inf
                for sid in u.utilities:
                    load = u.load(sid, j)
                    wmin = self._min_support_utility.get(sid)
                    if wmin is not None and load > 0:
                        scale = min(scale, wmin / (self.d * load))
                self._user_scale[(u.user_id, j)] = 1.0 if math.isinf(scale) else scale

        # Normalized loads L(i) ∈ [0, 1] per budget (scale-invariant).
        self._server_load: dict[int, float] = {i: 0.0 for i in self._server_measures}
        self._user_load: dict[tuple[str, int], float] = {
            key: 0.0 for key in self._user_scale
        }
        self.assignment = Assignment(instance)
        self._offered: set[str] = set()
        self.rejected: "list[str]" = []

    # ------------------------------------------------------------------
    # Exponential costs
    # ------------------------------------------------------------------

    def _exp_cost_server(self, i: int) -> float:
        """``C(i) = B'_i (µ^{L(i)} - 1)`` for a server budget (normalized scale)."""
        scaled_budget = self._server_scale[i] * self.instance.budgets[i]
        return scaled_budget * (self.mu ** self._server_load[i] - 1.0)

    def _exp_cost_user(self, user_id: str, j: int) -> float:
        scaled_cap = self._user_scale[(user_id, j)] * self.instance.user(user_id).capacities[j]
        return scaled_cap * (self.mu ** self._user_load[(user_id, j)] - 1.0)

    def _server_charge(self, stream_id: str) -> float:
        """``Σ_{i∈M} (c_i(S)/B_i)·C(i)`` — the server part of the Line 4 test."""
        s = self.instance.stream(stream_id)
        total = 0.0
        for i in self._server_measures:
            budget = self.instance.budgets[i]
            if s.costs[i] > 0:
                total += (s.costs[i] / budget) * self._exp_cost_server(i)
        return total

    def _user_charge(self, user_id: str, stream_id: str) -> float:
        """``Σ_j (k^u_j(S)/K^u_j)·C(u,j)`` — one user's part of the test."""
        u = self.instance.user(user_id)
        total = 0.0
        for j in self._user_measures[user_id]:
            load = u.load(stream_id, j)
            if load > 0:
                total += (load / u.capacities[j]) * self._exp_cost_user(user_id, j)
        return total

    # ------------------------------------------------------------------
    # Online interface
    # ------------------------------------------------------------------

    def offer(self, stream_id: str) -> "list[str]":
        """Offer a stream; returns the users it was assigned to (may be
        empty = rejected).  An *accepted* stream may not be offered again
        until released; rejected streams may be re-offered (the simulator
        treats each re-arrival as a fresh request)."""
        if stream_id in self._offered:
            raise ValidationError(f"stream {stream_id!r} is already active")
        stream = self.instance.stream(stream_id)

        interested = [
            u for u in self.instance.users if stream_id in u.utilities
        ]
        if not interested:
            self.rejected.append(stream_id)
            return []

        server_charge = self._server_charge(stream_id)
        charges = {u.user_id: self._user_charge(u.user_id, stream_id) for u in interested}
        utilities = {u.user_id: u.utilities[stream_id] for u in interested}

        # Maximal U_j: drop users in decreasing order of charge/utility
        # until the Line 4 condition holds (the paper's note after Alg. 2).
        selected = sorted(
            (u.user_id for u in interested),
            key=lambda uid: (charges[uid] / utilities[uid], uid),
        )
        total_charge = server_charge + sum(charges[uid] for uid in selected)
        total_utility = sum(utilities[uid] for uid in selected)
        while selected and total_charge > total_utility:
            dropped = selected.pop()  # largest charge/utility ratio last
            total_charge -= charges[dropped]
            total_utility -= utilities[dropped]
        if not selected:
            self.rejected.append(stream_id)
            return []

        if self.enforce_budgets:
            selected = self._hard_guard(stream_id, stream, selected)
            if not selected:
                self.rejected.append(stream_id)
                return []

        # Commit: server loads increase once, user loads per receiver.
        self._offered.add(stream_id)
        for i in self._server_measures:
            if stream.costs[i] > 0:
                self._server_load[i] += stream.costs[i] / self.instance.budgets[i]
        for uid in selected:
            u = self.instance.user(uid)
            for j in self._user_measures[uid]:
                load = u.load(stream_id, j)
                if load > 0:
                    self._user_load[(uid, j)] += load / u.capacities[j]
            self.assignment.add(uid, stream_id)
        return list(selected)

    def _hard_guard(self, stream_id: str, stream, selected: "list[str]") -> "list[str]":
        """Drop the stream (or individual users) if committing would exceed
        a budget.  Never fires under the small-streams precondition."""
        for i in self._server_measures:
            budget = self.instance.budgets[i]
            if self._server_load[i] + stream.costs[i] / budget > 1.0 + FEASIBILITY_RTOL:
                return []
        survivors = []
        for uid in selected:
            u = self.instance.user(uid)
            fits = True
            for j in self._user_measures[uid]:
                cap = u.capacities[j]
                if self._user_load[(uid, j)] + u.load(stream_id, j) / cap > 1.0 + FEASIBILITY_RTOL:
                    fits = False
                    break
            if fits:
                survivors.append(uid)
        return survivors

    def release(self, stream_id: str) -> None:
        """Extension for finite-duration sessions: return a stream's load.

        Removes the stream from every receiver and subtracts its server
        and user loads.  The stream may be offered again afterwards.
        The §5 competitive analysis covers the arrivals-only model; with
        releases this is the heuristic policy used by the simulator.
        """
        if stream_id not in self._offered:
            raise ValidationError(f"stream {stream_id!r} was never offered")
        stream = self.instance.stream(stream_id)
        receivers = self.assignment.receivers_of(stream_id)
        if receivers:
            for i in self._server_measures:
                if stream.costs[i] > 0:
                    self._server_load[i] -= stream.costs[i] / self.instance.budgets[i]
        for uid in receivers:
            u = self.instance.user(uid)
            for j in self._user_measures[uid]:
                load = u.load(stream_id, j)
                if load > 0:
                    self._user_load[(uid, j)] -= load / u.capacities[j]
            self.assignment.discard(uid, stream_id)
        self._offered.discard(stream_id)

    # ------------------------------------------------------------------
    # Reporting
    # ------------------------------------------------------------------

    @property
    def competitive_bound(self) -> float:
        """Theorem 5.4's guarantee: ``1 + 2·log₂ µ``."""
        return 1.0 + 2.0 * self.log_mu

    def normalized_loads(self) -> "dict[str, float]":
        """Current normalized loads per budget (for diagnostics/metrics)."""
        loads = {f"server[{i}]": load for i, load in self._server_load.items()}
        for (uid, j), load in self._user_load.items():
            loads[f"user[{uid}][{j}]"] = load
        return loads


@dataclass
class AllocateResult:
    """Outcome of a batch :func:`allocate` run."""

    assignment: Assignment
    mu: float
    gamma: float
    competitive_bound: float
    small_streams_ok: bool
    rejected: "list[str]" = field(default_factory=list)


def allocate(
    instance: MMDInstance,
    order: "list[str] | None" = None,
    mu: "float | None" = None,
    enforce_budgets: bool = True,
) -> AllocateResult:
    """Run Algorithm 2 over all streams in the given (default: input) order."""
    allocator = OnlineAllocator(instance, mu=mu, enforce_budgets=enforce_budgets)
    sequence = order if order is not None else instance.stream_ids()
    for sid in sequence:
        allocator.offer(sid)
    return AllocateResult(
        assignment=allocator.assignment,
        mu=allocator.mu,
        gamma=allocator.gamma,
        competitive_bound=allocator.competitive_bound,
        small_streams_ok=small_streams_condition(instance, allocator.mu),
        rejected=list(allocator.rejected),
    )
