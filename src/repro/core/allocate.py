"""Algorithm *Allocate* — online allocation of small streams (paper §5).

Every budget — the ``m`` server budgets and each user's capacity
measures, treated as *virtual budgets* — carries an exponential cost
``C_A(i) = B_i·(µ^{L_A(i)} - 1)`` in its normalized load ``L_A(i)``.
A stream ``S_j`` is assigned to a maximal set of users ``U_j`` whose
total utility covers the marginal exponential cost::

    Σ_{i ∈ M ∪ U_j} (c_i(S_j)/B_i) · C_{A_{j-1}}(i)  ≤  Σ_{u ∈ U_j} w_u(S_j)

Decisions are never revoked, so the algorithm is online.  When every
stream is *small* — ``c_i(S) ≤ B_i / log₂ µ`` in every measure — no
budget is ever violated (Lemma 5.1) and the solution is
``(1 + 2·log₂ µ)``-competitive (Theorem 5.4), where
``µ = 2γ·(m + |U|·m_c) + 2`` and ``γ`` is the instance's global skew.

The paper presents ``m_c = 1`` and notes the extension to ``m_c > 1`` is
straightforward; this implementation is the general version: each
``(user, capacity measure)`` pair is one virtual budget.

Normalization (paper eq. (1)) is applied internally: each cost measure is
scaled (cost and budget together, which leaves the problem unchanged) so
that a unit of any cost is worth at least ``m + Σ_u m_c`` of the smallest
per-user utility; ``γ`` is then the smallest valid upper bound of eq. (1).

Engineering extensions, both off the paper's path but needed by the
simulation substrate (and the paper's own footnote about streams of
finite duration):

- ``enforce_budgets=True`` adds a hard admission guard so the allocator
  is safe on instances that violate the small-streams precondition (the
  guard provably never fires when the precondition holds);
- :meth:`OnlineAllocator.release` returns a departed stream's load, for
  finite-duration sessions;
- the exponential charges are maintained *incrementally*: ``µ^{L(i)}``
  is cached per budget and refreshed (exactly) for just the budgets a
  commit or release touches, so an offer never recomputes ``mu **
  load`` over the whole interested row — with
  :meth:`OnlineAllocator.resync_charges` as the periodic float-drift
  guard (a bit-wise no-op for the exact writes, asserted in tests) —
  and rejections are tracked as :attr:`OnlineAllocator.rejected_count`
  plus a deduplicated id list, so million-event simulations neither
  re-exponentiate nor leak memory.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field

import numpy as np

from repro.config import DEFAULT_CHARGE_RESYNC, resolve_charge_resync
from repro.core.assignment import Assignment
from repro.core.indexed import index_instance, small_streams_indexed
from repro.core.instance import FEASIBILITY_RTOL, MMDInstance
from repro.exceptions import ValidationError

#: Default commits/releases between defensive full recomputes of the
#: cached exponential charges (the float-drift guard).  The per-entry
#: cache writes are themselves exact recomputes of ``µ^L``, so the
#: periodic resync is a bit-wise no-op by construction — it exists to
#: pin that invariant at runtime, cheaply, for the 10⁶-event
#: simulations.  Configurable per allocator via the ``charge_resync``
#: constructor argument, or globally via ``$REPRO_CHARGE_RESYNC``
#: (resolved by :func:`repro.config.resolve_charge_resync`; this
#: constant re-exports :data:`repro.config.DEFAULT_CHARGE_RESYNC`).
CHARGE_RESYNC_INTERVAL = DEFAULT_CHARGE_RESYNC


def global_skew_parameters(instance: MMDInstance) -> "tuple[float, float, int]":
    """Return ``(gamma, mu, D)`` for an instance.

    ``D = m_finite + Σ_u m_c_finite(u)`` counts the budgets with finite
    caps; ``gamma`` is the global skew of eq. (1) computed on the
    normalized instance, and ``mu = 2·gamma·D + 2`` (the constant that
    makes Lemma 5.1 go through; Theorem 1.2 states ``+1``, which does
    not satisfy the lemma's final inequality — we use ``+2`` from §5).
    """
    idx = index_instance(instance)
    d = sum(1 for b in instance.budgets if not math.isinf(b))
    d += int(np.isfinite(idx.capacities).sum())
    d = max(d, 1)
    gamma = instance.global_skew()
    mu = 2.0 * gamma * d + 2.0
    return gamma, mu, d


def small_streams_condition(instance: MMDInstance, mu: "float | None" = None) -> bool:
    """Check the Theorem 1.2 precondition: every stream costs at most a
    ``1/log₂ µ`` fraction of every finite budget and capacity."""
    if mu is None:
        _gamma, mu, _d = global_skew_parameters(instance)
    return small_streams_indexed(index_instance(instance), mu)


class OnlineAllocator:
    """Stateful online allocator (Algorithm 2).

    The stream *catalog* (and hence the normalization and ``µ``) is
    fixed at construction; the arrival **order** is unknown and streams
    are offered one at a time via :meth:`offer`.  Decisions are never
    revoked (except through the explicit :meth:`release` extension).

    Parameters
    ----------
    instance:
        The full instance (catalog, users, budgets).
    mu:
        Optional override of the exponential base (for experiments);
        defaults to ``2γD + 2``.
    enforce_budgets:
        Hard admission guard (see module docstring).
    charge_resync:
        Commits/releases between drift-guard
        :meth:`resync_charges` runs.  ``None`` resolves through
        :func:`repro.config.resolve_charge_resync`
        (``$REPRO_CHARGE_RESYNC`` override, default
        :data:`CHARGE_RESYNC_INTERVAL`); bad values raise
        :class:`~repro.exceptions.ValidationError` loudly.
    """

    def __init__(
        self,
        instance: MMDInstance,
        mu: "float | None" = None,
        enforce_budgets: bool = True,
        charge_resync: "int | None" = None,
    ) -> None:
        self.instance = instance
        self.enforce_budgets = enforce_budgets
        self.charge_resync = resolve_charge_resync(charge_resync)
        self.gamma, default_mu, self.d = global_skew_parameters(instance)
        self.mu = default_mu if mu is None else float(mu)
        if self.mu <= 1.0:
            raise ValidationError(f"mu must exceed 1, got {self.mu}")
        self.log_mu = math.log2(self.mu)

        idx = index_instance(instance)
        self._idx = idx
        min_w = idx.min_support_utilities()  # w_min(S); inf for empty support

        # Per-measure normalization scales λ (cost and budget together):
        # λ_i = min over streams with c_i(S) > 0 of w_min(S) / (D · c_i(S)).
        self._server_measures: "list[int]" = [
            i for i, b in enumerate(instance.budgets) if not math.isinf(b)
        ]
        self._server_scale: dict[int, float] = {}
        for i in self._server_measures:
            cost = idx.stream_costs[:, i]
            mask = np.isfinite(min_w) & (cost > 0)
            scale = float((min_w[mask] / (self.d * cost[mask])).min()) if mask.any() else math.inf
            self._server_scale[i] = 1.0 if math.isinf(scale) else scale

        # Per-(user, measure) scales over the user-major pair arrays;
        # entries for infinite-cap measures exist but are never charged.
        num_users, mc = idx.num_users, idx.mc
        self._finite_caps = np.isfinite(idx.capacities)  # (U, mc)
        self._user_scale_arr = np.ones((num_users, mc))
        pair_min_w = min_w[idx.u_stream] if idx.nnz else np.empty(0)
        for j in range(mc):
            load = idx.u_loads[:, j]
            mask = load > 0
            if mask.any():
                scale = np.full(num_users, math.inf)
                with np.errstate(over="ignore"):
                    ratios = pair_min_w[mask] / (self.d * load[mask])
                np.minimum.at(scale, idx.u_pair_user[mask], ratios)
                self._user_scale_arr[:, j] = np.where(np.isfinite(scale), scale, 1.0)

        # Normalized loads L(i) ∈ [0, 1] per budget (scale-invariant).
        self._server_load_arr = np.zeros(idx.m)
        self._user_load_arr = np.zeros((num_users, mc))
        # Incremental exponential charges: the caches hold µ^{L(i)} per
        # budget (µ^0 = 1 at rest) and are updated on commit/release for
        # the budgets whose load changed, so an offer reads one gather
        # instead of recomputing ``mu ** load`` over every interested
        # row.  Each cache write is the *exact* ``µ^L`` of the new load
        # (one pow per changed budget — the same cost a multiplicative
        # update would pay — with zero float drift, keeping decisions
        # bit-identical to the uncached path).
        self._exp_server = np.ones(idx.m)
        self._exp_user = np.ones((num_users, mc))
        self._ops_since_resync = 0
        self.assignment = Assignment(instance)
        self._offered: set[str] = set()
        self._active_pairs: "dict[int, np.ndarray]" = {}
        #: Deduplicated rejected stream ids, in first-rejection order
        #: (bounded by the catalog size; re-offered rejections bump
        #: :attr:`rejected_count` without growing this list, so
        #: million-event simulation runs do not leak memory).
        self.rejected: "list[str]" = []
        #: Total rejections, re-offers included.
        self.rejected_count = 0
        self._rejected_seen: set[str] = set()

    # ------------------------------------------------------------------
    # Exponential costs
    # ------------------------------------------------------------------

    def _exp_cost_server(self, i: int) -> float:
        """``C(i) = B'_i (µ^{L(i)} - 1)`` for a server budget (normalized scale)."""
        scaled_budget = self._server_scale[i] * self.instance.budgets[i]
        return scaled_budget * (float(self._exp_server[i]) - 1.0)

    def _server_charge(self, stream_id: str) -> float:
        """``Σ_{i∈M} (c_i(S)/B_i)·C(i)`` — the server part of the Line 4 test."""
        self.instance.stream(stream_id)  # canonical unknown-stream error
        return self._server_charge_index(self._idx.stream_index[stream_id])

    def _server_charge_index(self, k: int) -> float:
        """Index form of :meth:`_server_charge` (same floats, no id lookup)."""
        costs = self._idx.stream_costs[k]
        total = 0.0
        for i in self._server_measures:
            budget = self._idx.budgets[i]
            if costs[i] > 0:
                total += (costs[i] / budget) * self._exp_cost_server(i)
        return float(total)

    def _user_charge(self, user_id: str, stream_id: str) -> float:
        """``Σ_j (k^u_j(S)/K^u_j)·C(u,j)`` — one user's part of the test.

        Scalar diagnostic view of :meth:`_user_charges` (same kernel, a
        single pair), for tests and interactive inspection.
        """
        idx = self._idx
        u_i = idx.user_index[user_id]
        k = idx.stream_index[self.instance.stream(stream_id).stream_id]
        row = idx.s_user[idx.s_indptr[k]:idx.s_indptr[k + 1]]
        position = np.flatnonzero(row == u_i)
        if position.size == 0:
            return 0.0  # zero utility pair: loads are zero by the model
        pair = idx.s_indptr[k] + position[:1]
        return float(self._user_charges(row[position[:1]], pair)[0])

    def _user_charges(self, row_users: np.ndarray, row_pairs: np.ndarray) -> np.ndarray:
        """``Σ_j (k^u_j(S)/K^u_j)·C(u,j)`` for every interested user at once.

        Measures accumulate in ascending ``j`` — the same per-user order
        (and hence the same floats) as charging one user at a time.  The
        exponentials come from the :attr:`_exp_user` cache (maintained
        exactly on commit/release), so an offer costs gathers and
        arithmetic over the interested row but **no** ``mu ** load``
        recompute — the floats are identical because each cache entry is
        the same ``self.mu ** self._user_load_arr[u, j]`` expression
        this method used to evaluate inline.
        """
        idx = self._idx
        charge = np.zeros(row_users.size)
        for j in range(idx.mc):
            cap = idx.capacities[row_users, j]
            load = idx.s_loads[row_pairs, j]
            mask = np.isfinite(cap) & (load > 0.0)
            if mask.any():
                users = row_users[mask]
                scaled_cap = self._user_scale_arr[users, j] * cap[mask]
                exp_cost = scaled_cap * (self._exp_user[users, j] - 1.0)
                charge[mask] += (load[mask] / cap[mask]) * exp_cost
        return charge

    def _recharge(self, selected_users: np.ndarray, j: int) -> None:
        """Refresh the cached ``µ^L`` of the given (user, ``j``) budgets.

        Called after a commit or release changed those loads; the write
        is the exact power of the new load, so the cache never drifts.
        """
        self._exp_user[selected_users, j] = (
            self.mu ** self._user_load_arr[selected_users, j]
        )

    def _charges_mutated(self) -> None:
        """Count a commit/release toward the periodic drift-guard resync."""
        self._ops_since_resync += 1
        if self._ops_since_resync >= self.charge_resync:
            self.resync_charges()

    def resync_charges(self) -> None:
        """Float-drift guard: recompute every cached ``µ^L`` from the loads.

        Because the incremental writes are already exact per-entry
        recomputes, this is a bit-wise no-op (asserted in
        ``tests/test_allocate.py``); it runs every
        :attr:`charge_resync` commits/releases as a cheap
        runtime pin of that invariant, and gives any subclass that
        swaps in genuinely multiplicative updates a bounded-drift story.
        """
        for i in range(self._idx.m):
            self._exp_server[i] = self.mu ** float(self._server_load_arr[i])
        self._exp_user[...] = self.mu ** self._user_load_arr
        self._ops_since_resync = 0

    # ------------------------------------------------------------------
    # Online interface
    # ------------------------------------------------------------------

    def _reject(self, stream_id: str) -> None:
        """Record a rejection: the count always grows, the id list only
        on first rejection (so re-offers over a long trace stay O(1))."""
        self.rejected_count += 1
        if stream_id not in self._rejected_seen:
            self._rejected_seen.add(stream_id)
            self.rejected.append(stream_id)

    def offer(self, stream_id: str) -> "list[str]":
        """Offer a stream; returns the users it was assigned to (may be
        empty = rejected).  An *accepted* stream may not be offered again
        until released; rejected streams may be re-offered (the simulator
        treats each re-arrival as a fresh request)."""
        k = self._idx.stream_index.get(stream_id)
        if k is None:
            self.instance.stream(stream_id)  # canonical unknown-stream error
        return self._idx.user_ids_of(self.offer_indexed(k))

    def _check_stream_index(self, k: int) -> int:
        """Validate a stream index loudly (canonical :class:`ValidationError`).

        Out-of-range *and negative* indices both fail: numpy's negative
        indexing would otherwise silently address the wrong stream.
        """
        k = int(k)
        if not 0 <= k < self._idx.num_streams:
            raise ValidationError(
                f"unknown stream index {k}; catalog has "
                f"{self._idx.num_streams} streams"
            )
        return k

    def offer_indexed(self, k: int) -> np.ndarray:
        """Index-native :meth:`offer`: stream index in, receiver user
        indices out (same floats, same decisions — the string form
        delegates here)."""
        idx = self._idx
        k = self._check_stream_index(k)
        stream_id = idx.stream_ids[k]
        if stream_id in self._offered:
            raise ValidationError(f"stream {stream_id!r} is already active")
        empty = np.empty(0, dtype=np.int64)
        lo, hi = int(idx.s_indptr[k]), int(idx.s_indptr[k + 1])
        if lo == hi:
            self._reject(stream_id)
            return empty
        row_users = idx.s_user[lo:hi]
        row_pairs = np.arange(lo, hi, dtype=np.int64)
        row_w = idx.s_w[lo:hi]

        server_charge = self._server_charge_index(k)
        charges = self._user_charges(row_users, row_pairs)

        # Maximal U_j: drop users in decreasing order of charge/utility
        # until the Line 4 condition holds (the paper's note after Alg. 2).
        order = np.lexsort((idx.user_rank[row_users], charges / row_w))
        sorted_charges = charges[order]
        sorted_w = row_w[order]
        # cumsum accumulates sequentially, so these totals are the exact
        # floats of summing user-by-user in sorted order.
        total_charge = server_charge + float(np.cumsum(sorted_charges)[-1])
        total_utility = float(np.cumsum(sorted_w)[-1])
        count = order.size
        while count and total_charge > total_utility:
            count -= 1  # largest charge/utility ratio last
            total_charge -= float(sorted_charges[count])
            total_utility -= float(sorted_w[count])
        if count == 0:
            self._reject(stream_id)
            return empty
        selected_users = row_users[order[:count]]
        selected_pairs = row_pairs[order[:count]]

        if self.enforce_budgets:
            selected_users, selected_pairs = self._hard_guard(
                k, selected_users, selected_pairs
            )
            if selected_users.size == 0:
                self._reject(stream_id)
                return empty

        # Commit: server loads increase once, user loads per receiver;
        # the charge caches refresh for exactly the budgets that moved.
        self._offered.add(stream_id)
        costs = idx.stream_costs[k]
        for i in self._server_measures:
            if costs[i] > 0:
                self._server_load_arr[i] += costs[i] / idx.budgets[i]
                self._exp_server[i] = self.mu ** float(self._server_load_arr[i])
        for j in range(idx.mc):
            cap = idx.capacities[selected_users, j]
            load = idx.s_loads[selected_pairs, j]
            mask = np.isfinite(cap) & (load > 0.0)
            if mask.any():
                touched = selected_users[mask]
                self._user_load_arr[touched, j] += load[mask] / cap[mask]
                self._recharge(touched, j)
        self._charges_mutated()
        self._active_pairs[k] = selected_pairs
        self.assignment.assign_stream(stream_id, idx.user_ids_of(selected_users))
        return selected_users

    def offer_batch(self, ks: np.ndarray) -> "list[np.ndarray]":
        """Answer a group of offers; returns answers for a prefix of ``ks``.

        Used by the batched simulation engine for arrival groups whose
        decisions cannot interact until one commits.  The exponential
        charges only move on a commit, so every offer the sequential
        walk would *reject* sees unchanged state — this method
        vectorizes the rejection filter (batched charges, one
        segment-major ``lexsort``, padded-row ``cumsum`` /
        ``subtract.accumulate`` replaying each offer's drop loop in its
        exact float order) and then delegates the first offer predicted
        to select users to :meth:`offer_indexed`, which recomputes and
        commits through the unchanged scalar path.  The answers are
        therefore bit-identical to calling :meth:`offer_indexed` in
        sequence; the prefix ends at the first potentially
        state-changing answer (the caller re-offers the rest).
        """
        idx = self._idx
        empty = np.empty(0, dtype=np.int64)
        total = len(ks)
        if total == 0:
            return []
        ks_arr = np.asarray(ks, dtype=np.int64)
        starts = idx.s_indptr[ks_arr]
        counts = (idx.s_indptr[ks_arr + 1] - starts).astype(np.int64)
        keep = np.zeros(total, dtype=np.int64)  # predicted Line-4 count
        nz = counts > 0
        if nz.any():
            from repro.core.indexed import _concat_ranges

            row_pairs = _concat_ranges(starts[nz], counts[nz])
            row_users = idx.s_user[row_pairs]
            row_w = idx.s_w[row_pairs]
            lengths = counts[nz]
            nrows = lengths.size
            seg = np.repeat(np.arange(nrows), lengths)
            charges = self._user_charges(row_users, row_pairs)

            # Per-offer server charge, measures accumulating in the
            # scalar loop's ascending order (zero-cost terms contribute
            # an exact 0.0 instead of being skipped — same float, and
            # the `where` avoids 0·inf).
            server_charge = np.zeros(nrows)
            for i in self._server_measures:
                cost_col = idx.stream_costs[ks_arr[nz], i]
                exp_cost = self._exp_cost_server(i)
                server_charge += np.where(
                    cost_col > 0, (cost_col / idx.budgets[i]) * exp_cost, 0.0
                )

            with np.errstate(invalid="ignore"):
                ratio = charges / row_w
                # Segment-major stable lexsort == each offer's own
                # (rank, charge/utility) lexsort, concatenated.
                order = np.lexsort((idx.user_rank[row_users], ratio, seg))
                sorted_charges = charges[order]
                sorted_w = row_w[order]
                offsets = np.concatenate(([0], np.cumsum(lengths)[:-1]))
                col = np.arange(seg.size, dtype=np.int64) - offsets[seg]
                width = int(lengths.max())
                mat_c = np.zeros((nrows, width))
                mat_u = np.zeros((nrows, width))
                mat_c[seg, col] = sorted_charges
                mat_u[seg, col] = sorted_w
                cum_c = np.cumsum(mat_c, axis=1)
                cum_u = np.cumsum(mat_u, axis=1)
                rows_idx = np.arange(nrows)
                last = lengths - 1
                # Drop walk: remove the largest charge/utility entries
                # one subtraction at a time — column s of the accumulate
                # is the scalar loop's running total after s removals.
                drop_c = np.zeros((nrows, width + 1))
                drop_u = np.zeros((nrows, width + 1))
                drop_c[:, 0] = server_charge + cum_c[rows_idx, last]
                drop_u[:, 0] = cum_u[rows_idx, last]
                step_col = lengths[seg] - col
                drop_c[seg, step_col] = sorted_charges
                drop_u[seg, step_col] = sorted_w
                tc = np.subtract.accumulate(drop_c, axis=1)
                tu = np.subtract.accumulate(drop_u, axis=1)
                # The scalar loop stops when the condition TC > TU turns
                # false (NaN included) or everyone has been dropped.
                stop = ~(tc > tu)
            stop |= np.arange(width + 1)[None, :] >= lengths[:, None]
            keep[nz] = lengths - stop.argmax(axis=1)

        answers: "list[np.ndarray]" = []
        for position in range(total):
            k = int(ks_arr[position])
            stream_id = idx.stream_ids[k]
            if stream_id in self._offered:
                raise ValidationError(f"stream {stream_id!r} is already active")
            if keep[position] == 0:
                self._reject(stream_id)
                answers.append(empty)
                continue
            # First offer that selects users: recompute + commit through
            # the scalar path (state untouched by the rejects above, so
            # the floats are identical), then end the prefix — a commit
            # moves the charges every later decision depends on.
            answers.append(self.offer_indexed(k))
            break
        return answers

    def _hard_guard(
        self, k: int, selected_users: np.ndarray, selected_pairs: np.ndarray
    ):
        """Drop the stream (or individual users) if committing would exceed
        a budget.  Never fires under the small-streams precondition."""
        idx = self._idx
        empty = np.empty(0, dtype=np.int64)
        costs = idx.stream_costs[k]
        for i in self._server_measures:
            budget = idx.budgets[i]
            if self._server_load_arr[i] + costs[i] / budget > 1.0 + FEASIBILITY_RTOL:
                return empty, empty
        fits = np.ones(selected_users.size, dtype=bool)
        for j in range(idx.mc):
            cap = idx.capacities[selected_users, j]
            finite = np.isfinite(cap)
            with np.errstate(invalid="ignore"):
                over = (
                    self._user_load_arr[selected_users, j]
                    + idx.s_loads[selected_pairs, j] / cap
                    > 1.0 + FEASIBILITY_RTOL
                )
            fits &= ~(finite & over)
        return selected_users[fits], selected_pairs[fits]

    def release(self, stream_id: str) -> None:
        """Extension for finite-duration sessions: return a stream's load.

        Removes the stream from every receiver and subtracts its server
        and user loads.  The stream may be offered again afterwards.
        The §5 competitive analysis covers the arrivals-only model; with
        releases this is the heuristic policy used by the simulator.
        """
        k = self._idx.stream_index.get(stream_id)
        if k is None:
            self.instance.stream(stream_id)  # canonical unknown-stream error
        if stream_id not in self._offered:
            raise ValidationError(
                f"stream {stream_id!r} is not active "
                "(never offered, rejected, or already released)"
            )
        self.release_indexed(k)

    def release_indexed(self, k: int) -> None:
        """Index-native :meth:`release`: one scatter-subtract per measure
        over the stream's receiver pairs instead of a per-user loop.

        Unknown indices and inactive streams raise the canonical
        :class:`~repro.exceptions.ValidationError` — never a raw
        ``KeyError``/``IndexError``, and never a silent no-op.
        """
        idx = self._idx
        k = self._check_stream_index(k)
        stream_id = idx.stream_ids[k]
        if stream_id not in self._offered:
            raise ValidationError(
                f"stream {stream_id!r} is not active "
                "(never offered, rejected, or already released)"
            )
        pairs = self._active_pairs.pop(k, np.empty(0, dtype=np.int64))
        if pairs.size:
            costs = idx.stream_costs[k]
            for i in self._server_measures:
                if costs[i] > 0:
                    self._server_load_arr[i] -= costs[i] / idx.budgets[i]
                    self._exp_server[i] = self.mu ** float(self._server_load_arr[i])
            users = idx.s_user[pairs]
            for j in range(idx.mc):
                cap = idx.capacities[users, j]
                load = idx.s_loads[pairs, j]
                mask = np.isfinite(cap) & (load > 0.0)
                if mask.any():
                    touched = users[mask]
                    self._user_load_arr[touched, j] -= load[mask] / cap[mask]
                    self._recharge(touched, j)
            self._charges_mutated()
            for uid in idx.user_ids_of(users):
                self.assignment.discard(uid, stream_id)
        self._offered.discard(stream_id)

    # ------------------------------------------------------------------
    # State snapshot / restore (the serving layer's durability hooks)
    # ------------------------------------------------------------------

    def state_dict(self) -> "dict[str, object]":
        """The allocator's full dynamic state, as plain data.

        Everything :meth:`load_state` needs to make a fresh allocator
        (same instance, same ``mu``) *bit-identical* to this one:
        normalized loads, the cached exponential charges (copied
        verbatim rather than recomputed, so restore cannot drift),
        active sessions with their receiver pairs, rejection
        bookkeeping and the resync counter.  Static derived data
        (scales, ``µ``, the index) is rebuilt from the instance at
        construction and therefore not part of the state.
        """
        return {
            "mu": self.mu,
            "server_load": self._server_load_arr.copy(),
            "user_load": self._user_load_arr.copy(),
            "exp_server": self._exp_server.copy(),
            "exp_user": self._exp_user.copy(),
            "ops_since_resync": int(self._ops_since_resync),
            "offered": sorted(self._offered),
            "active_pairs": {
                int(k): np.asarray(pairs, dtype=np.int64).copy()
                for k, pairs in self._active_pairs.items()
            },
            "rejected": list(self.rejected),
            "rejected_count": int(self.rejected_count),
        }

    def load_state(self, state: "dict[str, object]") -> None:
        """Restore a :meth:`state_dict` snapshot onto this allocator.

        The allocator must wrap the same instance with the same ``mu``
        (checked loudly); afterwards every future decision — and
        :meth:`resync_charges`, still a bit-wise no-op — is identical
        to the allocator the state was taken from.
        """
        if float(state["mu"]) != self.mu:
            raise ValidationError(
                f"state was taken at mu={state['mu']!r} but this allocator "
                f"has mu={self.mu!r}; same instance and mu are required"
            )
        idx = self._idx
        for name, target in (
            ("server_load", self._server_load_arr),
            ("user_load", self._user_load_arr),
            ("exp_server", self._exp_server),
            ("exp_user", self._exp_user),
        ):
            source = np.asarray(state[name], dtype=np.float64)
            if source.shape != target.shape:
                raise ValidationError(
                    f"state array {name!r} has shape {source.shape}, "
                    f"expected {target.shape}"
                )
            target[...] = source
        self._ops_since_resync = int(state["ops_since_resync"])
        offered = set(state["offered"])
        for sid in offered:
            if sid not in idx.stream_index:
                raise ValidationError(f"state names unknown stream id {sid!r}")
        self._offered = offered
        self._active_pairs = {}
        self.assignment = Assignment(self.instance)
        for k, pairs in sorted(state["active_pairs"].items()):
            k = self._check_stream_index(k)
            arr = np.asarray(pairs, dtype=np.int64)
            if arr.size and (
                int(arr.min()) < int(idx.s_indptr[k])
                or int(arr.max()) >= int(idx.s_indptr[k + 1])
            ):
                raise ValidationError(
                    f"state pairs for stream index {k} fall outside its "
                    "interest row"
                )
            self._active_pairs[k] = arr
            self.assignment.assign_stream(
                idx.stream_ids[k], idx.user_ids_of(idx.s_user[arr])
            )
        self.rejected = list(state["rejected"])
        self._rejected_seen = set(self.rejected)
        self.rejected_count = int(state["rejected_count"])

    def state_digest(self) -> str:
        """SHA-256 fingerprint of the dynamic state (bit-identity checks).

        Two allocators over the same instance have equal digests iff
        their loads, charge caches, active sessions, and rejection
        bookkeeping are bit-identical — the equality the crash-restore
        tests assert between a restored service and an uninterrupted
        run.
        """
        import hashlib

        state = self.state_dict()
        digest = hashlib.sha256()
        digest.update(repr(float(state["mu"])).encode())
        for name in ("server_load", "user_load", "exp_server", "exp_user"):
            arr = state[name]
            digest.update(name.encode())
            digest.update(repr(arr.shape).encode())
            digest.update(arr.tobytes())
        digest.update(repr(int(state["ops_since_resync"])).encode())
        digest.update("\x00".join(state["offered"]).encode())
        for k, pairs in sorted(state["active_pairs"].items()):
            digest.update(repr(int(k)).encode())
            digest.update(pairs.tobytes())
        digest.update("\x00".join(state["rejected"]).encode())
        digest.update(repr(int(state["rejected_count"])).encode())
        return digest.hexdigest()

    # ------------------------------------------------------------------
    # Reporting
    # ------------------------------------------------------------------

    @property
    def competitive_bound(self) -> float:
        """Theorem 5.4's guarantee: ``1 + 2·log₂ µ``."""
        return 1.0 + 2.0 * self.log_mu

    def normalized_loads(self) -> "dict[str, float]":
        """Current normalized loads per budget (for diagnostics/metrics)."""
        loads = {
            f"server[{i}]": float(self._server_load_arr[i])
            for i in self._server_measures
        }
        idx = self._idx
        for u_i, uid in enumerate(idx.user_ids):
            for j in range(idx.mc):
                if self._finite_caps[u_i, j]:
                    loads[f"user[{uid}][{j}]"] = float(self._user_load_arr[u_i, j])
        return loads


@dataclass
class AllocateResult:
    """Outcome of a batch :func:`allocate` run."""

    assignment: Assignment
    mu: float
    gamma: float
    competitive_bound: float
    small_streams_ok: bool
    rejected: "list[str]" = field(default_factory=list)


def allocate(
    instance: MMDInstance,
    order: "list[str] | None" = None,
    mu: "float | None" = None,
    enforce_budgets: bool = True,
) -> AllocateResult:
    """Run Algorithm 2 over all streams in the given (default: input) order."""
    allocator = OnlineAllocator(instance, mu=mu, enforce_budgets=enforce_budgets)
    sequence = order if order is not None else instance.stream_ids()
    for sid in sequence:
        allocator.offer(sid)
    return AllocateResult(
        assignment=allocator.assignment,
        mu=allocator.mu,
        gamma=allocator.gamma,
        competitive_bound=allocator.competitive_bound,
        small_streams_ok=small_streams_condition(instance, allocator.mu),
        rejected=list(allocator.rejected),
    )
