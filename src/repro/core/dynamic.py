"""Finite-duration streams: the time-expanded Algorithm Allocate.

Paper §5, footnote 1: *"The algorithm can also be extended to scenarios
where streams have dynamic resource requirements, so long as their
requirements are known when they arrive.  This includes, for example,
streams of finite duration.  Details are similar to the algorithm
of [3]."*

Following Awerbuch–Azar–Plotkin, time is discretized into slots and each
budget becomes one *virtual budget per slot*.  A stream arriving with a
known ``(start, duration)`` loads every slot it overlaps; the admission
condition compares the summed per-slot exponential costs against the
stream's utility integrated over its lifetime::

    Σ_{t ∈ slots(S)} Σ_{i ∈ M ∪ U_j} (c_i(S)/B_i)·C(i, t)
        ≤  |slots(S)| · Σ_{u ∈ U_j} w_u(S)

Feasibility per slot follows exactly as in Lemma 5.1 (each (measure,
slot) pair is an independent budget with the same small-streams
precondition), and the competitive argument of Theorem 5.4 carries over
with ``µ`` computed from the same global skew — the time dimension only
multiplies the number of virtual budgets, which enters ``µ``
logarithmically through the horizon.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field

from repro.core.allocate import global_skew_parameters
from repro.core.instance import FEASIBILITY_RTOL, MMDInstance
from repro.exceptions import ValidationError


@dataclass(frozen=True)
class TimedGrant:
    """One accepted stream session: who receives it, and when."""

    stream_id: str
    start: float
    duration: float
    receivers: tuple[str, ...]


class TimedAllocator:
    """Online allocator for finite-duration streams (footnote 1 of §5).

    Parameters
    ----------
    instance:
        Catalog, users and budgets (budgets are interpreted *per slot*:
        the instantaneous capacity of each resource).
    horizon:
        End of the planning window; sessions must fit inside it.
    slot_length:
        Time-slot granularity of the AAP-style expansion.
    mu:
        Optional override of the exponential base.
    enforce_budgets:
        Hard per-slot admission guard (never fires when every stream is
        small relative to every budget, as in Lemma 5.1).
    """

    def __init__(
        self,
        instance: MMDInstance,
        horizon: float,
        slot_length: float = 1.0,
        mu: "float | None" = None,
        enforce_budgets: bool = True,
    ) -> None:
        if horizon <= 0:
            raise ValidationError(f"horizon must be positive, got {horizon}")
        if slot_length <= 0:
            raise ValidationError(f"slot_length must be positive, got {slot_length}")
        self.instance = instance
        self.horizon = horizon
        self.slot_length = slot_length
        self.num_slots = int(math.ceil(horizon / slot_length))
        self.enforce_budgets = enforce_budgets
        self.gamma, default_mu, self.d = global_skew_parameters(instance)
        # The slot expansion multiplies the budget count; fold it into µ
        # the same way §5 folds the user count in.
        self.mu = (
            2.0 * self.gamma * self.d * max(1, self.num_slots) + 2.0
            if mu is None
            else float(mu)
        )
        if self.mu <= 1.0:
            raise ValidationError(f"mu must exceed 1, got {self.mu}")
        self.log_mu = math.log2(self.mu)

        self._server_measures = [
            i for i, b in enumerate(instance.budgets) if not math.isinf(b)
        ]
        self._user_measures: dict[str, "list[int]"] = {
            u.user_id: [
                j for j, cap in enumerate(u.capacities) if not math.isinf(cap)
            ]
            for u in instance.users
        }
        # Normalized loads per (budget, slot); dicts keyed lazily.
        self._server_load: dict[tuple[int, int], float] = {}
        self._user_load: dict[tuple[str, int, int], float] = {}
        self.grants: "list[TimedGrant]" = []
        self.rejected: "list[str]" = []

    # ------------------------------------------------------------------
    # Slot helpers
    # ------------------------------------------------------------------

    def slots_of(self, start: float, duration: float) -> "range":
        """Indices of the slots a session overlaps."""
        if start < 0 or duration <= 0:
            raise ValidationError("sessions need start >= 0 and duration > 0")
        if start + duration > self.horizon * (1 + FEASIBILITY_RTOL):
            raise ValidationError(
                f"session [{start}, {start + duration}) exceeds horizon {self.horizon}"
            )
        first = int(math.floor(start / self.slot_length + 1e-12))
        last = int(math.ceil((start + duration) / self.slot_length - 1e-12))
        return range(first, max(last, first + 1))

    def _exp_cost_server(self, i: int, t: int) -> float:
        load = self._server_load.get((i, t), 0.0)
        return self.instance.budgets[i] * (self.mu**load - 1.0)

    def _exp_cost_user(self, uid: str, j: int, t: int) -> float:
        cap = self.instance.user(uid).capacities[j]
        load = self._user_load.get((uid, j, t), 0.0)
        return cap * (self.mu**load - 1.0)

    # ------------------------------------------------------------------
    # Online interface
    # ------------------------------------------------------------------

    def offer(self, stream_id: str, start: float, duration: float) -> "list[str]":
        """Offer a session with known timing; returns the receiver set."""
        slots = self.slots_of(start, duration)
        stream = self.instance.stream(stream_id)
        interested = [u for u in self.instance.users if stream_id in u.utilities]
        if not interested:
            self.rejected.append(stream_id)
            return []

        server_charge = 0.0
        for t in slots:
            for i in self._server_measures:
                cost = stream.costs[i]
                if cost > 0:
                    server_charge += (cost / self.instance.budgets[i]) * self._exp_cost_server(i, t)
        charges = {}
        for u in interested:
            total = 0.0
            for t in slots:
                for j in self._user_measures[u.user_id]:
                    load = u.load(stream_id, j)
                    if load > 0:
                        total += (load / u.capacities[j]) * self._exp_cost_user(u.user_id, j, t)
            charges[u.user_id] = total
        utilities = {u.user_id: u.utilities[stream_id] for u in interested}
        weight = float(len(slots))

        selected = sorted(
            (u.user_id for u in interested),
            key=lambda uid: (charges[uid] / (weight * utilities[uid]), uid),
        )
        total_charge = server_charge + sum(charges[uid] for uid in selected)
        total_utility = weight * sum(utilities[uid] for uid in selected)
        while selected and total_charge > total_utility:
            dropped = selected.pop()
            total_charge -= charges[dropped]
            total_utility -= weight * utilities[dropped]
        if not selected:
            self.rejected.append(stream_id)
            return []

        if self.enforce_budgets:
            selected = self._hard_guard(stream, stream_id, slots, selected)
            if not selected:
                self.rejected.append(stream_id)
                return []

        for t in slots:
            for i in self._server_measures:
                cost = stream.costs[i]
                if cost > 0:
                    key = (i, t)
                    self._server_load[key] = (
                        self._server_load.get(key, 0.0) + cost / self.instance.budgets[i]
                    )
            for uid in selected:
                u = self.instance.user(uid)
                for j in self._user_measures[uid]:
                    load = u.load(stream_id, j)
                    if load > 0:
                        key = (uid, j, t)
                        self._user_load[key] = (
                            self._user_load.get(key, 0.0) + load / u.capacities[j]
                        )
        grant = TimedGrant(
            stream_id=stream_id,
            start=start,
            duration=duration,
            receivers=tuple(selected),
        )
        self.grants.append(grant)
        return list(selected)

    def _hard_guard(self, stream, stream_id, slots, selected):
        for t in slots:
            for i in self._server_measures:
                projected = (
                    self._server_load.get((i, t), 0.0)
                    + stream.costs[i] / self.instance.budgets[i]
                )
                if projected > 1.0 + FEASIBILITY_RTOL:
                    return []
        survivors = []
        for uid in selected:
            u = self.instance.user(uid)
            fits = True
            for t in slots:
                for j in self._user_measures[uid]:
                    projected = (
                        self._user_load.get((uid, j, t), 0.0)
                        + u.load(stream_id, j) / u.capacities[j]
                    )
                    if projected > 1.0 + FEASIBILITY_RTOL:
                        fits = False
                        break
                if not fits:
                    break
            if fits:
                survivors.append(uid)
        return survivors

    # ------------------------------------------------------------------
    # Accounting
    # ------------------------------------------------------------------

    @property
    def competitive_bound(self) -> float:
        """``1 + 2·log₂ µ`` with the slot-expanded ``µ``."""
        return 1.0 + 2.0 * self.log_mu

    def total_utility_time(self) -> float:
        """Σ over grants of duration × utility of its receivers."""
        total = 0.0
        for grant in self.grants:
            rate = sum(
                self.instance.user(uid).utilities[grant.stream_id]
                for uid in grant.receivers
            )
            total += rate * grant.duration
        return total

    def is_feasible(self) -> bool:
        """Every (budget, slot) normalized load is at most 1."""
        loads = list(self._server_load.values()) + list(self._user_load.values())
        return all(load <= 1.0 + FEASIBILITY_RTOL for load in loads)

    def peak_load(self) -> float:
        loads = list(self._server_load.values()) + list(self._user_load.values())
        return max(loads, default=0.0)
