"""Reduction from multiple budgets to a single budget (paper §4.1).

The input transformation normalizes and sums every cost measure::

    c(S)   = Σ_i c_i(S)/B_i        with budget  B   = m
    k_u(S) = Σ_j k^u_j(S)/K^u_j    with capacity K_u = m_c

An ``r``-approximate solution of the reduced single-budget instance is
server-feasible within factor ``m`` and user-feasible within factor
``m_c`` of the original caps (Lemma 4.2); the *output transformation*
repairs it into a fully feasible solution by decomposing the chosen
streams into at most ``2m-1`` groups along the unit-interval construction
of Fig. 3 (and each user's set into at most ``2m_c-1`` groups), keeping
the best group — losing an ``O(m·m_c)`` factor overall (Theorem 4.3).
The §4.2 instance family shows this loss is tight.

Refinements kept from the paper's analysis:

- measures with infinite caps contribute nothing to the summed cost and
  are skipped (their normalized cost would be zero anyway);
- the capacity bound ``K_u`` is the user's own count of finite measures
  (the paper's uniform ``m_c`` is an upper bound on it);
- the best candidate is selected *after* the per-user repair rather than
  before, which can only improve the chosen solution and keeps the
  Theorem 4.3 guarantee.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Callable, Iterable, Sequence

import numpy as np

from repro.core.assignment import Assignment, best_assignment
from repro.core.indexed import index_instance
from repro.core.instance import MMDInstance, Stream, User
from repro.exceptions import ValidationError

#: Float guard for the integer-boundary tests of the Fig. 3 construction.
_BOUNDARY_EPS = 1e-12


def unit_interval_decomposition(
    items: Sequence[str],
    cost_of: "Callable[[str], float]",
) -> "list[list[str]]":
    """Fig. 3: lay items as consecutive intervals; split at integer points.

    Items are placed on the real line in the given order, each occupying
    an interval of length ``cost_of(item)``.  An item whose interval
    strictly contains an integer point becomes a singleton group; maximal
    runs of items lying between consecutive integer points form the
    remaining groups.  Consequently every non-singleton group has total
    cost at most 1, and for total cost ``C`` at most ``2⌈C⌉-1`` groups
    are produced.

    >>> unit_interval_decomposition(["a", "b", "c"], {"a": 0.6, "b": 0.6, "c": 0.6}.get)
    [['a'], ['b'], ['c']]
    >>> unit_interval_decomposition(["a", "b", "c", "d"], {"a": 0.5, "b": 0.5, "c": 0.5, "d": 0.5}.get)
    [['a', 'b'], ['c', 'd']]
    """
    groups: "list[list[str]]" = []
    current: "list[str]" = []
    current_window: "int | None" = None
    pos = 0.0
    for item in items:
        cost = cost_of(item)
        if cost < 0:
            raise ValidationError(f"negative cost for {item!r}")
        start, end = pos, pos + cost
        first_integer = math.floor(start + _BOUNDARY_EPS) + 1
        if first_integer < end - _BOUNDARY_EPS:
            # The interval strictly contains an integer point: singleton.
            if current:
                groups.append(current)
                current, current_window = [], None
            groups.append([item])
        else:
            # Lies within the unit window (first_integer-1, first_integer].
            window = first_integer
            if (
                current
                and current_window is not None
                and end <= current_window + _BOUNDARY_EPS
            ):
                # Still fits the open group's window — in particular a
                # zero-cost item sitting exactly on an integer boundary,
                # whose `first_integer` points at the *next* window and
                # used to split the run (exceeding the 2⌈C⌉-1 bound).
                window = current_window
            if current and current_window != window:
                groups.append(current)
                current = []
            current.append(item)
            current_window = window
        pos = end
    if current:
        groups.append(current)
    return groups


def utility_cap_as_capacity(instance: MMDInstance) -> MMDInstance:
    """Model finite utility caps as an additional capacity measure.

    The paper's formal MMD model has only capacity constraints; the
    bound on the utility a client can generate (Fig. 1) is expressed as
    a capacity measure whose loads are the utilities themselves.  This
    helper performs that modeling step: each user gains one capacity
    measure with load ``min(w_u(S), W_u)`` and cap ``W_u``, and his
    utility cap becomes infinite.  Single-stream loads are clipped at
    ``W_u`` so a stream worth more than the whole cap stays assignable
    (it simply saturates the user), matching the capped-utility
    semantics up to the unavoidable knapsack rounding.

    Instances whose caps are all infinite are returned unchanged.
    """
    if all(math.isinf(u.utility_cap) for u in instance.users):
        return instance
    mc = instance.mc
    new_users = []
    for u in instance.users:
        cap = u.utility_cap
        extra_cap = cap if not math.isinf(cap) else math.inf
        loads = {}
        for sid in u.utilities:
            base = u.load_vector(sid)
            extra_load = min(u.utilities[sid], cap) if not math.isinf(cap) else 0.0
            loads[sid] = base + (extra_load,)
        new_users.append(
            User(
                user_id=u.user_id,
                utility_cap=math.inf,
                capacities=u.capacities + (extra_cap,),
                utilities=dict(u.utilities),
                loads=loads,
                attrs=u.attrs,
            )
        )
    del mc
    return MMDInstance(
        instance.streams, new_users, instance.budgets, name=instance.name
    )


@dataclass
class SingleBudgetReduction:
    """The §4.1 reduction: holds the reduced instance and lifts solutions back.

    Attributes
    ----------
    original:
        The MMD instance ``I_M``.
    reduced:
        The single-budget instance ``I_S`` (``m = 1``, ``m_c = 1``,
        infinite utility caps).
    finite_measures:
        Indices of the server measures with finite budgets (the ones
        that participate in the summed cost).
    """

    original: MMDInstance
    reduced: MMDInstance
    finite_measures: tuple[int, ...]

    def lift(self, assignment: Assignment) -> Assignment:
        """Output transformation (§4.1): repair a feasible ``I_S`` solution
        into a feasible ``I_M`` solution, losing at most the Theorem 4.3
        factor.

        The candidate groups are built exactly as in the paper: streams of
        reduced cost at least 1 stand alone; the rest are decomposed by
        :func:`unit_interval_decomposition`.  Every candidate is then
        repaired per user the same way, and the best repaired candidate
        (by original utility) is returned.
        """
        if assignment.instance is not self.reduced:
            raise ValidationError("assignment is not over this reduction's instance")
        reduced_cost = {
            s.stream_id: s.costs[0] for s in self.reduced.streams
        }
        assigned = assignment.assigned_streams()
        chosen = [sid for sid in self.reduced.stream_ids() if sid in assigned]
        if not chosen:
            return Assignment(self.original)
        big = [sid for sid in chosen if reduced_cost[sid] >= 1.0 - _BOUNDARY_EPS]
        small = [sid for sid in chosen if sid not in set(big)]
        candidates: "list[list[str]]" = [[sid] for sid in big]
        candidates.extend(unit_interval_decomposition(small, reduced_cost.get))

        original_assignment = assignment.on_instance(self.original)
        repaired: "list[Assignment]" = []
        for group in candidates:
            restricted = original_assignment.restrict(group)
            repaired.append(self._repair_users(restricted))
        return best_assignment(repaired)

    def _repair_users(self, assignment: Assignment) -> Assignment:
        """Per-user Fig. 3 decomposition: keep each user's best-capacity
        group (at most ``2m_c - 1`` groups per user)."""
        result = Assignment(self.original)
        for user in self.original.users:
            user_streams = assignment.streams_of(user.user_id)
            streams = [
                sid for sid in self.original.stream_ids() if sid in user_streams
            ]
            if not streams:
                continue
            reduced_user = self.reduced.user(user.user_id)
            cost_of = {sid: reduced_user.load(sid, 0) for sid in streams}
            big = [sid for sid in streams if cost_of[sid] >= 1.0 - _BOUNDARY_EPS]
            small = [sid for sid in streams if sid not in set(big)]
            groups: "list[list[str]]" = [[sid] for sid in big]
            groups.extend(unit_interval_decomposition(small, cost_of.get))
            best_group: "list[str]" = []
            best_value = -1.0
            for group in groups:
                value = sum(user.utility(sid) for sid in group)
                if value > best_value:
                    best_group, best_value = group, value
            for sid in best_group:
                result.add(user.user_id, sid)
        return result


def reduce_to_single_budget(instance: MMDInstance) -> SingleBudgetReduction:
    """Input transformation of §4.1: normalize-and-sum all cost measures.

    Requires infinite utility caps (run :func:`utility_cap_as_capacity`
    first if needed) so that the reduced instance's only user-side state
    is its single capacity measure.
    """
    for u in instance.users:
        if not math.isinf(u.utility_cap):
            raise ValidationError(
                f"reduce_to_single_budget requires infinite utility caps (user "
                f"{u.user_id} has W_u={u.utility_cap}); apply utility_cap_as_capacity first"
            )
    # Measures with infinite caps never bind; measures with ZERO caps are
    # vacuous too (validation forces every cost/load on them to zero, so
    # including them would divide by zero for nothing).
    finite = tuple(
        i for i, b in enumerate(instance.budgets) if not math.isinf(b) and b > 0
    )
    m_eff = len(finite)

    # Vectorized normalize-and-sum over the indexed lowering; measures
    # accumulate in ascending order, matching the scalar sums.
    idx = index_instance(instance)
    reduced_costs = idx.normalized_costs()
    new_streams = [
        Stream(
            stream_id=s.stream_id,
            costs=(float(reduced_costs[k]),),
            name=s.name,
            attrs=s.attrs,
        )
        for k, s in enumerate(instance.streams)
    ]
    single_budget = float(m_eff) if m_eff > 0 else math.inf

    finite_caps_mask = np.isfinite(idx.capacities) & (idx.capacities > 0)
    pair_reduced = np.zeros(idx.nnz)
    for j in range(idx.mc):
        mask = finite_caps_mask[idx.u_pair_user, j]
        if mask.any():
            pair_reduced[mask] += (
                idx.u_loads[mask, j] / idx.capacities[idx.u_pair_user[mask], j]
            )
    mc_eff_per_user = finite_caps_mask.sum(axis=1)

    new_users = []
    pos = 0
    for u_i, u in enumerate(instance.users):
        mc_eff = int(mc_eff_per_user[u_i])
        capacity = float(mc_eff) if mc_eff > 0 else math.inf
        loads = {}
        for sid in u.utilities:
            loads[sid] = (float(pair_reduced[pos]),)
            pos += 1
        new_users.append(
            User(
                user_id=u.user_id,
                utility_cap=math.inf,
                capacities=(capacity,),
                utilities=dict(u.utilities),
                loads=loads,
                attrs=u.attrs,
            )
        )
    reduced = MMDInstance(
        new_streams,
        new_users,
        (single_budget,),
        name=f"{instance.name or 'mmd'}[reduced]",
    )
    return SingleBudgetReduction(original=instance, reduced=reduced, finite_measures=finite)


def solve_by_reduction(
    instance: MMDInstance,
    solve_smd: "Callable[[MMDInstance], Assignment]",
) -> Assignment:
    """Theorem 4.3 end to end: reduce, solve the SMD instance, lift back.

    ``solve_smd`` must return a feasible assignment for the reduced
    instance (e.g. :func:`repro.core.skew.classify_and_select`).
    """
    reduction = reduce_to_single_budget(instance)
    reduced_solution = solve_smd(reduction.reduced)
    return reduction.lift(reduced_solution)


def decomposition_group_bound(total_cost: float) -> int:
    """Paper bound on Fig. 3 group count for summed cost ``total_cost``:
    at most ``2⌈total_cost⌉ - 1`` (the paper states ``2m-1`` for cost
    at most ``m``)."""
    if total_cost <= 0:
        return 1
    return 2 * int(math.ceil(total_cost - _BOUNDARY_EPS)) - 1
