"""The coverage utility set function of Lemma 2.1.

For a set ``T`` of transmitted streams, the utility a user ``u`` derives
(in the semi-feasible accounting of §2) is::

    w_u(T) = min(W_u, Σ_{S∈T} w_u(S))

and ``w(T) = Σ_u w_u(T)``.  Lemma 2.1 shows ``w`` is nonnegative,
nondecreasing, submodular and polynomially computable — which is what
lets the paper invoke Sviridenko's partial-enumeration greedy (§2.3) and
extend it to multiple budgets (§4.1's closing remark).

:class:`CoverageUtility` evaluates ``w`` and its marginals efficiently
and plugs into the generic machinery in :mod:`repro.core.submodular`.
"""

from __future__ import annotations

from typing import Iterable

from repro.core.instance import MMDInstance


class CoverageUtility:
    """Callable wrapper for the capped coverage utility ``w: 2^S -> R``.

    >>> from repro.core.instance import unit_skew_instance
    >>> inst = unit_skew_instance(
    ...     {"s1": 1.0, "s2": 1.0}, budget=2.0,
    ...     utilities={"u1": {"s1": 3.0, "s2": 2.0}},
    ...     utility_caps={"u1": 4.0})
    >>> w = CoverageUtility(inst)
    >>> w.value(["s1"])
    3.0
    >>> w.value(["s1", "s2"])  # capped at W_u = 4
    4.0
    """

    def __init__(self, instance: MMDInstance) -> None:
        self.instance = instance

    def value(self, stream_ids: Iterable[str]) -> float:
        """``w(T)`` for a set of stream ids."""
        T = set(stream_ids)
        total = 0.0
        for u in self.instance.users:
            raw = sum(w for sid, w in u.utilities.items() if sid in T)
            total += min(u.utility_cap, raw)
        return total

    __call__ = value

    def user_value(self, user_id: str, stream_ids: Iterable[str]) -> float:
        """``w_u(T)`` for a single user."""
        T = set(stream_ids)
        u = self.instance.user(user_id)
        raw = sum(w for sid, w in u.utilities.items() if sid in T)
        return min(u.utility_cap, raw)

    def marginal(self, stream_id: str, stream_ids: Iterable[str]) -> float:
        """``w(T ∪ {S}) - w(T)`` without recomputing users untouched by ``S``."""
        T = set(stream_ids)
        if stream_id in T:
            return 0.0
        gain = 0.0
        for u in self.instance.users:
            w_new = u.utilities.get(stream_id, 0.0)
            if w_new == 0.0:
                continue
            raw = sum(w for sid, w in u.utilities.items() if sid in T)
            if raw >= u.utility_cap:
                continue
            gain += min(w_new, u.utility_cap - raw)
        return gain

    def is_submodular_on(self, sets: "Iterable[tuple[frozenset[str], frozenset[str]]]") -> bool:
        """Spot-check submodularity ``w(T)+w(T') >= w(T∪T') + w(T∩T')`` on
        given pairs (used by property-based tests)."""
        for T, Tp in sets:
            lhs = self.value(T) + self.value(Tp)
            rhs = self.value(T | Tp) + self.value(T & Tp)
            if lhs < rhs - 1e-9 * max(1.0, abs(rhs)):
                return False
        return True
