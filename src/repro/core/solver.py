"""End-to-end solvers: the Theorem 1.1 pipeline and the Theorem 1.2 path.

:func:`solve_mmd` is the library's main entry point.  It chains the
paper's transformations exactly as §1.3 describes:

1. model finite utility caps as capacity measures (the paper's own
   modeling of the "bounded utility per client" constraint — Fig. 1);
2. reduce the multi-budget instance to a single-budget one (§4.1);
3. classify-and-select over skew classes (§3);
4. solve each unit-skew class with Algorithm Greedy + fixes (§2);
5. lift the winner back through the §4.1 output transformation;
6. return the best of the lifted solution, the best single stream, and
   (when the small-streams precondition of Theorem 1.2 holds) the
   online Allocate solution.

:func:`solve_smd` handles the single-budget case directly — in the unit
skew setting it is pure §2; otherwise it classifies by skew first.

Both return a :class:`SolveResult` carrying the assignment plus the
instance parameters (``α``, ``γ``, ``m``, ``m_c``) and the *proved*
worst-case factor for the path taken, so experiments can print
paper-bound vs. measured side by side.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Iterable

import numpy as np

from repro.core.allocate import allocate, small_streams_condition
from repro.core.assignment import Assignment, best_assignment
from repro.core.enumeration import partial_enumeration_feasible
from repro.core.greedy import (
    FEASIBLE_FACTOR,
    SEMI_FEASIBLE_FACTOR,
    greedy_feasible,
)
from repro.core.indexed import (
    IndexedInstance,
    assigned_pair_mask,
    best_single_stream_kernel,
    ensure_instance,
    fill_kernel,
    index_instance,
    resolve_engine,
)
from repro.core.instance import MMDInstance, User
from repro.core.reduction import reduce_to_single_budget, utility_cap_as_capacity
from repro.core.skew import classify_and_select, num_skew_classes, skew_bound
from repro.exceptions import ValidationError


@dataclass
class SolveResult:
    """A solution together with the guarantees of the path that produced it.

    Attributes
    ----------
    assignment:
        A fully feasible assignment for the input instance.
    utility:
        Its capped utility.
    method:
        Which pipeline produced the winner (e.g. ``"greedy"``,
        ``"classify+greedy"``, ``"reduction+classify+greedy"``,
        ``"allocate"``, ``"best-single-stream"``).
    guarantee:
        The proved worst-case approximation factor of the pipeline for
        this instance's parameters (``inf`` when no guarantee applies).
    details:
        Instance parameters and per-candidate utilities.
    """

    assignment: Assignment
    utility: float
    method: str
    guarantee: float
    details: "dict[str, object]" = field(default_factory=dict)


def section2_view(instance: MMDInstance) -> MMDInstance:
    """Rewrite a unit-skew single-budget instance into the §2 setting.

    Under unit skew each user's loads are proportional to his utilities
    (ratio ``r_u``), so the capacity ``K_u`` is equivalent to a utility
    bound ``r_u·K_u``; the effective §2 bound is ``min(W_u, r_u·K_u)``.
    The returned instance has loads equal to utilities and capacities
    equal to the effective bound, which is what :mod:`repro.core.greedy`
    consumes.
    """
    if instance.m != 1:
        raise ValidationError("section2_view requires m=1")
    if not instance.is_unit_skew():
        raise ValidationError("section2_view requires unit local skew")
    users = []
    for u in instance.users:
        bound = u.utility_cap
        if instance.mc >= 1:
            ratios = instance.cost_benefit_ratios(u, 0)
            if ratios:
                # Unit skew: all ratios equal (up to float noise).
                bound = min(bound, min(ratios) * u.capacities[0])
        utilities = dict(u.utilities)
        users.append(
            User(
                user_id=u.user_id,
                utility_cap=bound,
                capacities=(bound,),
                utilities=utilities,
                loads={sid: (w,) for sid, w in utilities.items()},
                attrs=u.attrs,
            )
        )
    return MMDInstance(instance.streams, users, instance.budgets, name=instance.name, strict=False)


def greedy_fill(
    instance: MMDInstance, assignment: Assignment, engine: "str | None" = None
) -> Assignment:
    """Monotone post-augmentation: claim feasible deliveries the pipeline
    left on the table.

    The §3 classify-and-select stage keeps only the best skew class and
    the §4 output transformation keeps only the best decomposition
    group — both discard deliveries that are still individually
    feasible.  This pass repeatedly adds any (stream, user) delivery
    that fits every budget and still has positive capped utility, so
    the result's utility only grows and every worst-case guarantee is
    preserved.  (This is the practical refinement that lets the pipeline
    dominate the threshold baseline instead of merely bounding it.)
    """
    if resolve_engine(engine) != "dict":
        return _greedy_fill_indexed(instance, assignment)
    a = assignment.copy()
    server_used = list(a.server_costs())
    user_used = {u.user_id: list(a.user_loads(u.user_id)) for u in instance.users}
    user_raw = {u.user_id: a.raw_user_utility(u.user_id) for u in instance.users}
    in_range = set(a.assigned_streams())
    # Zero budgets are vacuous (validation forces costs on them to zero)
    # and must not enter the normalized-cost sum: 0/0 has no meaning.
    finite = [i for i, b in enumerate(instance.budgets) if not math.isinf(b) and b > 0]

    def fits_server(stream) -> bool:
        return all(
            math.isinf(b) or server_used[i] + stream.costs[i] <= b * (1 + 1e-9)
            for i, b in enumerate(instance.budgets)
        )

    def fits_user(user, sid) -> bool:
        loads = user.load_vector(sid)
        return all(
            math.isinf(cap) or user_used[user.user_id][j] + loads[j] <= cap * (1 + 1e-9)
            for j, cap in enumerate(user.capacities)
        )

    def candidate(stream) -> "tuple[float, list]":
        """Residual gain and eligible receivers of one stream."""
        sid = stream.stream_id
        receivers = []
        gain = 0.0
        for user in instance.interested_users(sid):
            if sid in a.streams_of(user.user_id):
                continue
            headroom = user.utility_cap - user_raw[user.user_id]
            marginal = min(user.utilities[sid], max(headroom, 0.0))
            if marginal <= 0 or not fits_user(user, sid):
                continue
            receivers.append((user, marginal))
            gain += marginal
        return gain, receivers

    # Greedy by residual density (marginal utility per unit of remaining
    # normalized server cost) — the §2.1 selection rule applied as a fill.
    while True:
        best = None
        best_density = 0.0
        for stream in instance.streams:
            sid = stream.stream_id
            gain, receivers = candidate(stream)
            if gain <= 0:
                continue
            if sid not in in_range and not fits_server(stream):
                continue
            if sid in in_range:
                extra_cost = 0.0
            else:
                extra_cost = sum(
                    stream.costs[i] / instance.budgets[i] for i in finite
                )
            density = math.inf if extra_cost == 0 else gain / extra_cost
            if best is None or density > best_density:
                best = (stream, receivers)
                best_density = density
        if best is None:
            break
        stream, receivers = best
        sid = stream.stream_id
        if sid not in in_range:
            in_range.add(sid)
            for i in range(instance.m):
                server_used[i] += stream.costs[i]
        for user, _marginal in receivers:
            a.add(user.user_id, sid)
            loads = user.load_vector(sid)
            for j in range(instance.mc):
                user_used[user.user_id][j] += loads[j]
            user_raw[user.user_id] += user.utilities[sid]
    return a


def _greedy_fill_indexed(instance: MMDInstance, assignment: Assignment) -> Assignment:
    """Vectorized greedy_fill: seed the accounting arrays from the
    assignment, run the CSR kernel, lift the additions back."""
    idx = index_instance(instance)
    a = assignment.copy()
    server_used = np.array(a.server_costs(), dtype=np.float64)
    user_used = np.zeros((idx.num_users, idx.mc))
    user_raw = np.empty(idx.num_users)
    for u_i, uid in enumerate(idx.user_ids):
        loads = a.user_loads(uid)
        if loads:
            user_used[u_i, :] = loads
        user_raw[u_i] = a.raw_user_utility(uid)
    assigned_pairs = assigned_pair_mask(idx, a.as_dict())
    in_range = np.zeros(idx.num_streams, dtype=bool)
    for sid in a.assigned_streams():
        in_range[idx.stream_index[sid]] = True
    additions = fill_kernel(idx, server_used, user_used, user_raw, assigned_pairs, in_range)
    for k, receivers in additions:
        a.assign_stream(idx.stream_ids[k], idx.user_ids_of(receivers))
    return a


def best_single_stream_mmd(
    instance: MMDInstance, engine: "str | None" = None
) -> Assignment:
    """``A_max`` generalised to MMD: the best single transmitted stream.

    Feasible for any instance: ``c_i(S) <= B_i`` and single-stream user
    loads respect capacities by the instance's validation invariants.
    """
    if resolve_engine(engine) != "dict":
        idx = index_instance(instance)
        k, best_value = best_single_stream_kernel(idx, lexicographic_ties=False)
        a = Assignment(instance)
        if k >= 0 and best_value > 0:
            a.add_stream_to_all(idx.stream_ids[k])
        return a
    best_sid = None
    best_value = 0.0
    for s in instance.streams:
        value = 0.0
        for u in instance.users:
            w = u.utilities.get(s.stream_id, 0.0)
            value += min(w, u.utility_cap)
        if value > best_value:
            best_sid, best_value = s.stream_id, value
    a = Assignment(instance)
    if best_sid is not None:
        a.add_stream_to_all(best_sid)
    return a


def _class_solver(method: str, engine: "str | None" = None):
    if method == "enumeration":
        return partial_enumeration_feasible

    def solver(inst: MMDInstance) -> Assignment:
        return greedy_feasible(inst, engine=engine)

    return solver


def _class_factor(method: str) -> float:
    return SEMI_FEASIBLE_FACTOR if method == "enumeration" else FEASIBLE_FACTOR


def solve_smd(
    instance: "MMDInstance | IndexedInstance",
    method: str = "greedy",
    engine: "str | None" = None,
) -> SolveResult:
    """Solve a single-budget instance (Theorem 2.8 / 2.10 / 3.1 paths).

    ``method`` selects the unit-skew class solver: ``"greedy"`` (the
    ``O(n²)`` Theorem 2.8 algorithm) or ``"enumeration"`` (the slower
    Theorem 2.10 algorithm with the sharper constant).  ``engine``
    selects the greedy/fill implementation (see :func:`repro.core.greedy.greedy`).
    Array-native :class:`IndexedInstance` inputs (from the vectorized
    generators) are accepted and lifted lazily.
    """
    instance = ensure_instance(instance)
    if instance.m != 1:
        raise ValidationError("solve_smd requires a single server budget; use solve_mmd")
    if instance.mc > 1:
        # More than one capacity measure per user is MMD in disguise.
        return solve_mmd(instance, method=method, engine=engine)
    solver = _class_solver(method, engine)
    alpha = instance.local_skew()
    details: "dict[str, object]" = {"alpha": alpha, "m": 1, "mc": instance.mc}

    if instance.is_unit_skew():
        view = section2_view(instance)
        solution = greedy_fill(instance, solver(view).on_instance(instance), engine=engine)
        guarantee = _class_factor(method)
        return SolveResult(
            assignment=solution,
            utility=solution.utility(),
            method=method,
            guarantee=guarantee,
            details=details,
        )

    if any(not math.isinf(u.utility_cap) for u in instance.users):
        # Skewed instance with finite utility caps: convert and go MMD.
        return solve_mmd(instance, method=method, engine=engine)

    solution = greedy_fill(
        instance, classify_and_select(instance, solve_class=solver), engine=engine
    )
    num_classes = num_skew_classes(alpha) + (1 if instance.has_free_pairs() else 0)
    guarantee = 2.0 * num_classes * _class_factor(method)
    details["skew_classes"] = num_classes
    return SolveResult(
        assignment=solution,
        utility=solution.utility(),
        method=f"classify+{method}",
        guarantee=guarantee,
        details=details,
    )


def solve_mmd(
    instance: "MMDInstance | IndexedInstance",
    method: str = "greedy",
    try_allocate: bool = True,
    engine: "str | None" = None,
) -> SolveResult:
    """Theorem 1.1's ``O(m·m_c·log(2αm_c))``-approximation for MMD.

    Also runs the Theorem 1.2 online algorithm when its small-streams
    precondition holds, and always considers the best single stream;
    the best feasible candidate wins.  Array-native
    :class:`IndexedInstance` inputs (from the vectorized generators) are
    accepted and lifted lazily — the attached lowering is reused, never
    rebuilt.
    """
    instance = ensure_instance(instance)
    converted = utility_cap_as_capacity(instance)
    candidates: "list[tuple[str, Assignment]]" = []
    details: "dict[str, object]" = {
        "m": converted.m,
        "mc": converted.mc,
        "alpha": converted.local_skew(),
    }

    if converted.is_smd and all(math.isinf(u.utility_cap) for u in converted.users):
        inner = solve_smd(converted, method=method, engine=engine)
        candidates.append((inner.method, inner.assignment.on_instance(instance)))
        base_guarantee = inner.guarantee
        details.update(inner.details)
    else:
        reduction = reduce_to_single_budget(converted)
        reduced_alpha = reduction.reduced.local_skew()
        solver = _class_solver(method, engine)
        reduced_solution = classify_and_select(reduction.reduced, solve_class=solver)
        lifted = reduction.lift(reduced_solution).on_instance(instance)
        candidates.append((f"reduction+classify+{method}", lifted))
        m = max(1, len(reduction.finite_measures))
        mc = max(1, converted.mc)
        base_guarantee = (
            (2 * m - 1) * (2 * mc - 1) * skew_bound(max(reduced_alpha, 1.0), _class_factor(method))
        )
        details["reduced_alpha"] = reduced_alpha

    single = best_single_stream_mmd(instance, engine=engine)
    candidates.append(("best-single-stream", single))
    # Residual-density greedy straight on the MMD instance: no worst-case
    # guarantee of its own, but a strong practical candidate (Algorithm 1's
    # selection rule generalized past the unit-skew setting).
    candidates.append(
        ("mmd-greedy", greedy_fill(instance, Assignment(instance), engine=engine))
    )

    if try_allocate and small_streams_condition(converted):
        result = allocate(converted)
        candidates.append(("allocate", result.assignment.on_instance(instance)))
        details["allocate_mu"] = result.mu
        details["allocate_bound"] = result.competitive_bound

    candidates = [
        (name, greedy_fill(instance, a, engine=engine)) for name, a in candidates
    ]
    details["candidate_utilities"] = {
        name: a.utility() for name, a in candidates
    }
    winner_name, winner = max(candidates, key=lambda pair: pair[1].utility())
    return SolveResult(
        assignment=winner,
        utility=winner.utility(),
        method=winner_name,
        guarantee=base_guarantee,
        details=details,
    )


def _solve_one(args: "tuple[MMDInstance, str, bool, str | None]") -> SolveResult:
    """Process-pool worker for :func:`solve_many` (top level: picklable)."""
    instance, method, try_allocate, engine = args
    return solve_mmd(instance, method=method, try_allocate=try_allocate, engine=engine)


def iter_solve_many(
    instances: "Iterable[MMDInstance | IndexedInstance]",
    *,
    method: str = "greedy",
    try_allocate: bool = True,
    engine: "str | None" = None,
    parallel: int = 1,
) -> "Iterable[SolveResult]":
    """Streaming core of :func:`solve_many`: yield results in input order.

    Instances are pulled from the iterable lazily and results are
    yielded as soon as they (and all their predecessors) complete, so a
    sweep generator piped through this never holds more than
    ``O(parallel)`` instances/results alive at once (the shared
    work-unit pipeline, :func:`repro.experiments.pipeline.map_ordered`).
    Items may be :class:`MMDInstance` or array-native
    :class:`IndexedInstance` objects (the default output of
    :func:`repro.instances.generators.sweep_instances`); in parallel
    mode the lazy lift then happens inside the workers, so the dict
    model is built N-wide while the producer keeps generating arrays.
    """
    if parallel < 1:
        raise ValidationError(f"parallel must be >= 1, got {parallel}")
    from repro.experiments.pipeline import map_ordered

    items = ((inst, method, try_allocate, engine) for inst in instances)
    yield from map_ordered(_solve_one, items, workers=parallel)


def solve_many(
    instances: "Iterable[MMDInstance | IndexedInstance]",
    *,
    method: str = "greedy",
    try_allocate: bool = True,
    engine: "str | None" = None,
    parallel: int = 1,
) -> "list[SolveResult]":
    """Batch front door: solve every instance of a workload sweep.

    Parameters
    ----------
    instances:
        Any iterable of :class:`MMDInstance` and/or array-native
        :class:`IndexedInstance` items — a list, or a streaming
        generator such as
        :func:`repro.instances.generators.sweep_instances`
        (consumed lazily).
    method / try_allocate / engine:
        Forwarded to :func:`solve_mmd` per instance.
    parallel:
        Number of worker processes.  ``1`` (default) solves in-process;
        ``N > 1`` fans instances out over a process pool with a bounded
        number in flight.

    Returns the :class:`SolveResult` list in input order.  For sweeps
    too large to hold every result in memory, use
    :func:`iter_solve_many`, which yields results as they complete.
    """
    return list(
        iter_solve_many(
            instances,
            method=method,
            try_allocate=try_allocate,
            engine=engine,
            parallel=parallel,
        )
    )


def theorem_1_1_bound(instance: MMDInstance, method: str = "greedy") -> float:
    """The explicit Theorem 1.1 constant for an instance: the product of
    the §2 class factor, the §3 classification loss and the §4
    decomposition loss, evaluated at the instance's own ``m``, ``m_c``
    and local skew."""
    converted = utility_cap_as_capacity(instance)
    m = max(1, sum(1 for b in converted.budgets if not math.isinf(b)))
    mc = max(1, converted.mc)
    alpha = converted.local_skew()
    return (2 * m - 1) * (2 * mc - 1) * skew_bound(max(alpha * mc, 1.0), _class_factor(method))
