"""Batched decision core: multi-pick rounds for Algorithm Greedy (§2.1).

:func:`repro.core.indexed.greedy_kernel` vectorized the *per-pick* work
of Algorithm Greedy but still crosses into numpy once per pick — an
argmax cascade over all streams plus one residual scatter, ``O(|S|)``
numpy dispatches for a full run.  This module replaces the per-pick
loop with **rounds** that select and commit many picks per numpy
dispatch while reproducing the single-pick kernel's pick sequence,
tie-breaking and float accumulation *bit-exactly*.

Round structure
---------------

1. **Snapshot + select.**  Compute the effectiveness key
   ``(w̄/c, w̄, -rank)`` once (identical float recipe to the single-pick
   kernel), take the top ``R`` candidates by effectiveness with one
   ``argpartition``, and order that subset by the full key with one
   ``lexsort``.  Candidates tied with the partition boundary are
   truncated (an unselected stream could outrank them on the
   ``(w̄, rank)`` tie-break), so the kept prefix enumerates *exactly*
   the argmaxes the sequential algorithm would produce from the
   snapshot state; when every selected stream ties at the boundary the
   round degrades to the single exact argmax.

2. **Non-interaction test.**  Pick ``j`` in the prefix is *safe* when
   committing every earlier prefix pick cannot change ``j``'s key: for
   each of ``j``'s interested pairs ``(u, w)``, either no earlier pick
   touches ``u``, or ``u``'s clipped headroom is already zero (it can
   only stay zero), or ``w ≤ max(h_u - drop_u, 0)`` where ``drop_u``
   subtracts *every* earlier prefix pick's utility from ``u``'s
   headroom in sequential float order — a sound lower bound on ``u``'s
   residual under any commit subset, because dropping a subtrahend from
   an IEEE subtraction chain never lowers the result.  Residual
   utilities are monotone nonincreasing (Lemma 2.1's submodularity, and
   the float updates preserve it), so a safe pick's snapshot key is
   still the true argmax at its turn — including ties, which the
   snapshot ``lexsort`` already broke by the dict engine's
   ``(-eff, -w̄, id)`` rule.

3. **Commit + fallback.**  Walk the safe prefix applying the budget
   test scalarly (the only genuinely sequential state), then commit all
   accepted picks with one vectorized residual update: per-user
   sequential headroom chains via ``np.subtract.accumulate`` over a
   zero-padded matrix (subtracting the padding is an exact no-op), and
   one ``np.add.at`` whose operand order replays the single-pick
   kernel's receiver-by-receiver delta sequence, so every float
   accumulates in the same IEEE order.  The first unsafe pick ends the
   round — the conflicting tail falls back to the next round's fresh
   snapshot (pick one of a round is always safe, so progress is
   guaranteed) — and the round size adapts: it grows after
   conflict-free rounds and shrinks toward the consumed prefix after a
   conflict.

A pick whose residual is nonpositive terminates the whole run exactly
where the sequential kernel would: effectiveness is nonpositive iff the
residual is, so every remaining candidate — selected or not — is also
exhausted.

``engine="numba"`` (optional)
-----------------------------

:func:`greedy_kernel_numba` JIT-compiles the *single-pick* inner loop
instead — same pick sequence, same scalar float operations in the same
order — for environments with the ``numba`` extra installed
(``pip install repro-mmd[numba]``).  The import is guarded so numba
stays strictly optional; selecting ``engine="numba"`` without it raises
a :class:`~repro.exceptions.ValidationError` naming the extra.

Both engines are selected through the usual switches
(``greedy(inst, engine="batched")``, ``$REPRO_ENGINE=batched``,
``--engine batched`` on the CLI); ``tests/test_indexed_parity.py`` and
``tests/test_batched.py`` assert bit-identical traces against the dict
and indexed engines, and ``benchmarks/bench_e16_batched.py`` asserts
the ≥ 10× floor over the single-pick kernel at 10k users × 1k streams.
"""

from __future__ import annotations

import math

import numpy as np

from repro.core.indexed import IndexedInstance, _concat_ranges
from repro.core.instance import FEASIBILITY_RTOL
from repro.exceptions import ValidationError

try:  # pragma: no cover - exercised only with the numba extra installed
    from numba import njit

    HAS_NUMBA = True
except ImportError:  # pragma: no cover
    njit = None
    HAS_NUMBA = False

#: First-round multi-pick width; later rounds adapt between
#: :data:`MIN_ROUND` and :data:`MAX_ROUND` (grow ×2 after a
#: conflict-free round, shrink toward the consumed prefix otherwise).
INITIAL_ROUND = 64
MIN_ROUND = 16
MAX_ROUND = 4096


def _user_prefix_chains(
    users: np.ndarray, w: np.ndarray, headroom: np.ndarray
) -> "tuple[np.ndarray, np.ndarray, np.ndarray, np.ndarray, np.ndarray]":
    """Per-user sequential headroom chains over pick-major pairs.

    For every pair (in the given pick-major order) of a round's picks,
    computes the headroom its user would have **before** and **after**
    that pair's subtraction if every pick committed, chaining the
    subtractions per user in pick order with ``np.subtract.accumulate``
    over a zero-padded matrix — each chain value is the *exact*
    sequential IEEE float the single-pick kernel would produce.

    Returns ``(sort_idx, group_starts, seg_id, acc, col)``: the stable
    per-user ordering, its group boundaries/ids, the accumulate matrix
    (row = user, column 0 = starting headroom) and each pair's column.
    """
    sort_idx = np.argsort(users, kind="stable")
    gu = users[sort_idx]
    gw = w[sort_idx]
    n = gu.size
    group_start = np.empty(n, dtype=bool)
    group_start[0] = True
    group_start[1:] = gu[1:] != gu[:-1]
    group_starts = np.flatnonzero(group_start)
    seg_id = np.cumsum(group_start) - 1
    col = np.arange(n, dtype=np.int64) - group_starts[seg_id]
    width = int(col.max()) + 1
    chains = np.zeros((group_starts.size, width + 1))
    chains[:, 0] = headroom[gu[group_starts]]
    chains[seg_id, col + 1] = gw
    acc = np.subtract.accumulate(chains, axis=1)
    return sort_idx, group_starts, seg_id, acc, col


def safe_prefix_mask(
    idx: IndexedInstance, headroom: np.ndarray, picks: np.ndarray
) -> np.ndarray:
    """Non-interaction mask over a round's ordered picks.

    ``safe[a]`` is True when committing every earlier pick of the round
    provably cannot change pick ``a``'s residual key (see module
    docstring, step 2).  Conservative: a False entry only costs a round
    boundary, never correctness.
    """
    t = picks.size
    safe = np.ones(t, dtype=bool)
    starts = idx.s_indptr[picks]
    counts = idx.s_indptr[picks + 1] - starts
    nz = counts > 0
    if not nz.any():
        return safe  # empty interest rows interact with nothing
    flat = _concat_ranges(starts[nz], counts[nz])
    users = idx.s_user[flat]
    w = idx.s_w[flat]
    # A pair can only interact when some *other* pick shares its user, so
    # pairs of once-touched users are safe outright; only the duplicated
    # subset pays for the sequential chain machinery.  (A duplicated
    # user's pairs all land in the subset, and masking preserves their
    # pick-major order, so "first pair in the round" survives intact.)
    dup = np.bincount(users, minlength=idx.num_users)[users] > 1
    if not dup.any():
        return safe
    d_users = users[dup]
    d_w = w[dup]
    sort_idx, group_starts, seg_id, acc, col = _user_prefix_chains(
        d_users, d_w, headroom
    )
    h_before_sorted = acc[seg_id, col]
    h0_sorted = acc[seg_id, 0]
    first_sorted = np.zeros(d_users.size, dtype=bool)
    first_sorted[group_starts] = True  # the user's first pair in the round
    ok_sorted = (
        first_sorted
        | (h0_sorted <= 0.0)
        | (d_w[sort_idx] <= np.maximum(h_before_sorted, 0.0))
    )
    ok = np.empty(d_users.size, dtype=bool)
    ok[sort_idx] = ok_sorted
    seg_pick = np.repeat(np.flatnonzero(nz), counts[nz])
    conflicts = np.bincount(seg_pick[dup][~ok], minlength=t)
    safe &= conflicts == 0
    return safe


def commit_picks(
    idx: IndexedInstance,
    headroom: np.ndarray,
    wbar: np.ndarray,
    picks: "list[int]",
) -> "list[np.ndarray]":
    """Commit accepted picks with one vectorized residual update.

    Reproduces the single-pick kernel's ``assign`` exactly for the whole
    batch: per-user headroom chains give each pair the same sequential
    float the pick-by-pick loop would read (a user saturated mid-batch
    stops receiving at the same pair, because the chains are
    nonincreasing), and the residual deltas land through one
    ``np.add.at`` in pick order, then receiver row order — the
    single-pick loop's exact accumulation sequence.  Returns each pick's
    receiver user indices, in pick order.
    """
    t = len(picks)
    picks_arr = np.asarray(picks, dtype=np.int64)
    starts = idx.s_indptr[picks_arr]
    counts = idx.s_indptr[picks_arr + 1] - starts
    nz = counts > 0
    empty = idx.s_user[:0]
    if not nz.any():
        return [empty] * t
    flat = _concat_ranges(starts[nz], counts[nz])
    users = idx.s_user[flat]
    w = idx.s_w[flat]
    n = users.size
    h_before = np.empty(n)
    h_after = np.empty(n)
    # Once-touched users need no chain: their single pair reads the live
    # headroom directly.  Only duplicated users pay for the sequential
    # machinery (the two populations are disjoint, so the two headroom
    # writes below cannot race).
    dup = np.bincount(users, minlength=idx.num_users)[users] > 1
    if dup.any():
        d_users = users[dup]
        sort_idx, group_starts, seg_id, acc, col = _user_prefix_chains(
            d_users, w[dup], headroom
        )
        h_before_sorted = acc[seg_id, col]
        h_after_sorted = acc[seg_id, col + 1]
        receiving_sorted = h_before_sorted > 0.0
        # Final headroom per duplicated user: the chain value after its
        # last receiving pair (the chains are nonincreasing, so once a
        # value goes nonpositive the user stops receiving — exactly the
        # sequential "skip saturated users" rule — and the chain freezes
        # there).
        received = np.add.reduceat(
            receiving_sorted.astype(np.int64), group_starts
        )
        headroom[d_users[sort_idx][group_starts]] = acc[
            np.arange(group_starts.size), received
        ]
        # Back to pick-major (pair) order for the delta sequence.
        tmp = np.empty(d_users.size)
        tmp[sort_idx] = h_before_sorted
        h_before[dup] = tmp
        tmp = np.empty(d_users.size)
        tmp[sort_idx] = h_after_sorted
        h_after[dup] = tmp
    once = ~dup
    hb = headroom[users[once]]
    h_before[once] = hb
    h_after[once] = hb - w[once]
    receiving = h_before > 0.0
    once_recv = once & receiving
    headroom[users[once_recv]] = h_after[once_recv]
    old_clip = h_before[receiving]  # == max(·, 0): receivers are positive
    new_clip = np.maximum(h_after[receiving], 0.0)
    changed = new_clip != old_clip
    if np.any(changed):
        ch_users = users[receiving][changed]
        ustarts = idx.u_indptr[ch_users]
        ucounts = idx.u_indptr[ch_users + 1] - ustarts
        flat2 = _concat_ranges(ustarts, ucounts)
        w2 = idx.u_w[flat2]
        targets = idx.u_stream[flat2]
        nc = np.repeat(new_clip[changed], ucounts)
        oc = np.repeat(old_clip[changed], ucounts)
        np.add.at(wbar, targets, np.minimum(w2, nc) - np.minimum(w2, oc))
    seg_pick = np.repeat(np.arange(t)[nz], counts[nz])
    receiver_counts = np.bincount(seg_pick[receiving], minlength=t)
    flat_receivers = users[receiving]
    out = []
    lo = 0
    for hi in np.cumsum(receiver_counts).tolist():
        out.append(flat_receivers[lo:hi])
        lo = hi
    return out


def _argmax_exact(
    masked: np.ndarray, wbar: np.ndarray, stream_rank: np.ndarray
) -> int:
    """The single-pick kernel's argmax cascade over ``(eff, w̄, -rank)``."""
    num_streams = masked.shape[0]
    best_eff = masked.max()
    tied = masked == best_eff
    masked_wbar = np.where(tied, wbar, -math.inf)
    best_wbar = masked_wbar.max()
    tied &= masked_wbar == best_wbar
    ranks = np.where(tied, stream_rank, num_streams + 1)
    return int(ranks.argmin())


def greedy_kernel_batched(
    idx: IndexedInstance,
    cap: float,
    initial: "list[int]",
    rtol: float = FEASIBILITY_RTOL,
) -> "tuple[list[tuple[int, np.ndarray]], list[int], float]":
    """Multi-pick Algorithm Greedy (see module docstring).

    Same contract and bit-identical result as
    :func:`repro.core.indexed.greedy_kernel`: ``(order, rejected,
    total_cost)`` with receivers per pick in assignment order.
    """
    num_streams = idx.num_streams
    costs0 = idx.stream_costs[:, 0] if idx.m else np.zeros(num_streams)
    headroom = idx.utility_caps.copy()
    wbar = np.zeros(num_streams)
    np.add.at(
        wbar,
        idx.s_pair_stream,
        np.minimum(idx.s_w, np.maximum(headroom[idx.s_user], 0.0)),
    )
    candidates = np.ones(num_streams, dtype=bool)
    order: "list[tuple[int, np.ndarray]]" = []
    rejected: "list[int]" = []
    total_cost = 0.0

    for k in initial:
        receivers = commit_picks(idx, headroom, wbar, [k])[0]
        order.append((k, receivers))
        total_cost += float(costs0[k])
        candidates[k] = False
    if total_cost > cap * (1 + rtol):
        raise ValidationError("initial streams already exceed the budget")

    positive_cost = costs0 > 0.0
    free = ~positive_cost
    any_free = bool(free.any())
    effectiveness = np.empty(num_streams)
    round_size = INITIAL_ROUND
    num_candidates = int(np.count_nonzero(candidates))
    while num_candidates:
        # Snapshot the effectiveness key (single-pick kernel's recipe).
        np.divide(wbar, costs0, out=effectiveness, where=positive_cost)
        if any_free:
            effectiveness[free] = np.where(wbar[free] > 0.0, math.inf, 0.0)
        masked = np.where(candidates, effectiveness, -math.inf)
        r = min(round_size, num_candidates)
        if r == num_candidates:
            selected = np.flatnonzero(candidates)
            complete = True
        else:
            selected = np.argpartition(masked, num_streams - r)[num_streams - r:]
            complete = False
        sel_eff = masked[selected]
        # Full snapshot order inside the selection: the dict engine's
        # min over (-eff, -w̄, id), via the precomputed rank table.
        picks = selected[
            np.lexsort((idx.stream_rank[selected], -wbar[selected], -sel_eff))
        ]
        if not complete:
            # Boundary rule: a pick tied with the partition threshold may
            # be outranked by an *unselected* equal-effectiveness stream
            # on the (w̄, rank) tie-break — keep only the strict prefix.
            picks = picks[masked[picks] > sel_eff.min()]
            if picks.size == 0:
                picks = np.array(
                    [_argmax_exact(masked, wbar, idx.stream_rank)],
                    dtype=np.int64,
                )
        safe = safe_prefix_mask(idx, headroom, picks)

        # The walk reads only snapshot state (w̄ is untouched until the
        # commit below), so hoist the per-pick scalars out of numpy once.
        safe_list = safe.tolist()
        picks_list = picks.tolist()
        wbar_list = wbar[picks].tolist()
        cost_list = costs0[picks].tolist()
        budget_cap = cap * (1 + rtol)
        accepted: "list[int]" = []
        consumed = 0
        terminate = False
        for a in range(len(picks_list)):
            if not safe_list[a]:
                break  # conflicting tail: retry from a fresh snapshot
            if wbar_list[a] <= 0.0:
                # The exact argmax is exhausted, so every remaining
                # candidate is too (eff <= 0 iff w̄ <= 0): global stop.
                terminate = True
                break
            cost = cost_list[a]
            if total_cost + cost <= budget_cap:
                accepted.append(picks_list[a])
                total_cost += cost
            else:
                rejected.append(picks_list[a])
            consumed += 1
        if consumed:
            candidates[picks[:consumed]] = False
        if accepted:
            for k, receivers in zip(
                accepted, commit_picks(idx, headroom, wbar, accepted)
            ):
                order.append((k, receivers))
        num_candidates -= consumed
        if terminate:
            break
        if consumed == picks.size:
            round_size = min(round_size * 2, MAX_ROUND)
        else:
            round_size = max(MIN_ROUND, min(round_size, 2 * max(consumed, 1)))
    return order, rejected, total_cost


# ----------------------------------------------------------------------
# Optional numba JIT of the single-pick inner loop (engine="numba")
# ----------------------------------------------------------------------


def _single_pick_loop(
    s_indptr,
    s_user,
    s_w,
    u_indptr,
    u_stream,
    u_w,
    stream_rank,
    costs0,
    headroom,
    wbar,
    initial,
    cap,
    rtol,
):  # pragma: no cover - compiled and run only with numba installed
    """Single-pick Greedy as one scalar loop (the numba kernel body).

    Plain-Python semantics identical to
    :func:`repro.core.indexed.greedy_kernel`: every float op happens in
    the same order the vectorized kernel's sequential primitives
    (``np.add.at``, ``cumsum``) apply them, so the JIT-compiled run is
    bit-identical too.  Returns flat result arrays (orders, receiver
    CSR, rejections) plus an error flag for the initial-budget check.
    """
    num_streams = costs0.shape[0]
    candidates = np.ones(num_streams, np.bool_)
    order_streams = np.empty(num_streams, np.int64)
    rec_indptr = np.zeros(num_streams + 1, np.int64)
    rec_flat = np.empty(s_user.shape[0], np.int64)
    rejected = np.empty(num_streams, np.int64)
    picked = 0
    num_rejected = 0
    rec_n = 0
    total_cost = 0.0
    budget_limit = cap * (1.0 + rtol)

    for idx_i in range(initial.shape[0]):
        k = initial[idx_i]
        rec_n = _scalar_assign(
            k, s_indptr, s_user, s_w, u_indptr, u_stream, u_w,
            headroom, wbar, rec_flat, rec_n,
        )
        order_streams[picked] = k
        picked += 1
        rec_indptr[picked] = rec_n
        total_cost += costs0[k]
        candidates[k] = False
    if total_cost > budget_limit:
        return order_streams, rec_indptr, rec_flat, rejected, 0, 0, 0, total_cost, 1

    while True:
        best_k = -1
        best_eff = -math.inf
        best_wbar = -math.inf
        best_rank = num_streams + 1
        for k in range(num_streams):
            if not candidates[k]:
                continue
            wv = wbar[k]
            c = costs0[k]
            if c > 0.0:
                eff = wv / c
            elif wv > 0.0:
                eff = math.inf
            else:
                eff = 0.0
            if eff > best_eff or (
                eff == best_eff
                and (
                    wv > best_wbar
                    or (wv == best_wbar and stream_rank[k] < best_rank)
                )
            ):
                best_k = k
                best_eff = eff
                best_wbar = wv
                best_rank = stream_rank[k]
        if best_k < 0 or wbar[best_k] <= 0.0:
            break
        cost = costs0[best_k]
        if total_cost + cost <= budget_limit:
            rec_n = _scalar_assign(
                best_k, s_indptr, s_user, s_w, u_indptr, u_stream, u_w,
                headroom, wbar, rec_flat, rec_n,
            )
            order_streams[picked] = best_k
            picked += 1
            rec_indptr[picked] = rec_n
            total_cost += cost
        else:
            rejected[num_rejected] = best_k
            num_rejected += 1
        candidates[best_k] = False
    return (
        order_streams, rec_indptr, rec_flat, rejected,
        picked, num_rejected, rec_n, total_cost, 0,
    )


def _scalar_assign(
    k, s_indptr, s_user, s_w, u_indptr, u_stream, u_w, headroom, wbar,
    rec_flat, rec_n,
):  # pragma: no cover - compiled and run only with numba installed
    """Scalar twin of the vectorized kernel's ``assign`` (same op order)."""
    for p in range(s_indptr[k], s_indptr[k + 1]):
        u = s_user[p]
        old_r = headroom[u]
        if old_r <= 0.0:
            continue
        new_r = old_r - s_w[p]
        headroom[u] = new_r
        rec_flat[rec_n] = u
        rec_n += 1
        new_clip = new_r if new_r > 0.0 else 0.0
        if new_clip != old_r:
            for q in range(u_indptr[u], u_indptr[u + 1]):
                w2 = u_w[q]
                low_new = w2 if w2 < new_clip else new_clip
                low_old = w2 if w2 < old_r else old_r
                wbar[u_stream[q]] += low_new - low_old
    return rec_n


if HAS_NUMBA:  # pragma: no cover - exercised in the CI numba matrix leg
    _scalar_assign = njit(cache=True)(_scalar_assign)
    _single_pick_loop = njit(cache=True)(_single_pick_loop)


def greedy_kernel_numba(
    idx: IndexedInstance,
    cap: float,
    initial: "list[int]",
    rtol: float = FEASIBILITY_RTOL,
) -> "tuple[list[tuple[int, np.ndarray]], list[int], float]":
    """JIT-compiled single-pick Greedy (``engine="numba"``).

    Same contract and bit-identical result as
    :func:`repro.core.indexed.greedy_kernel`.  Requires the optional
    ``numba`` extra; without it this raises a
    :class:`~repro.exceptions.ValidationError` so the engine stays
    selectable-but-guarded rather than a hard import failure.
    """
    if not HAS_NUMBA:
        raise ValidationError(
            'engine "numba" requires the optional numba dependency; '
            'install the extra (pip install "repro-mmd[numba]") or pick '
            'one of ("indexed", "dict", "batched")'
        )
    num_streams = idx.num_streams
    costs0 = (
        np.ascontiguousarray(idx.stream_costs[:, 0])
        if idx.m
        else np.zeros(num_streams)
    )
    headroom = idx.utility_caps.copy()
    wbar = np.zeros(num_streams)
    np.add.at(
        wbar,
        idx.s_pair_stream,
        np.minimum(idx.s_w, np.maximum(headroom[idx.s_user], 0.0)),
    )
    (
        order_streams, rec_indptr, rec_flat, rejected_arr,
        picked, num_rejected, _rec_n, total_cost, error,
    ) = _single_pick_loop(
        idx.s_indptr, idx.s_user, idx.s_w,
        idx.u_indptr, idx.u_stream, idx.u_w,
        idx.stream_rank, costs0, headroom, wbar,
        np.asarray(initial, dtype=np.int64), float(cap), float(rtol),
    )
    if error:
        raise ValidationError("initial streams already exceed the budget")
    order = [
        (int(order_streams[i]), rec_flat[rec_indptr[i]:rec_indptr[i + 1]])
        for i in range(picked)
    ]
    return order, [int(k) for k in rejected_arr[:num_rejected]], float(total_cost)
