"""Partial enumeration for SMD (paper §2.3, following Sviridenko).

Sviridenko's algorithm for maximizing a nondecreasing submodular set
function subject to a knapsack constraint enumerates every feasible seed
set of at most ``d`` (classically 3) streams, completes each greedily by
cost effectiveness, and keeps the best — achieving ``e/(e-1)``.

Lemma 2.1 makes SMD's semi-feasible utility such a function, so:

- :func:`partial_enumeration` returns the semi-feasible
  ``e/(e-1)``-approximation of Theorem 2.9 (feasible when each user's
  capacity is augmented by his largest stream load);
- :func:`partial_enumeration_feasible` applies the Theorem 2.8-style
  ``A_1``/``A_2`` split to obtain the fully feasible ``2e/(e-1)``
  solution of Theorem 2.10.

Running time is ``O(|S|^d)`` greedy runs, so this is the slow-but-sharp
option; :func:`repro.core.greedy.greedy_feasible` is the ``O(n^2)`` one.
"""

from __future__ import annotations

from itertools import combinations

from repro.core.assignment import Assignment, best_assignment
from repro.core.greedy import GreedyTrace, _require_single_budget, greedy
from repro.core.instance import FEASIBILITY_RTOL, MMDInstance


def _seed_sets(instance: MMDInstance, depth: int) -> "list[tuple[str, ...]]":
    """Every budget-feasible seed of at most ``depth`` streams (including
    the empty seed, which reduces to plain greedy)."""
    cap = instance.budgets[0]
    sids = instance.stream_ids()
    seeds: "list[tuple[str, ...]]" = [()]
    for size in range(1, depth + 1):
        for combo in combinations(sids, size):
            total = sum(instance.stream(sid).costs[0] for sid in combo)
            if total <= cap * (1 + FEASIBILITY_RTOL):
                seeds.append(combo)
    return seeds


def partial_enumeration(instance: MMDInstance, depth: int = 3) -> GreedyTrace:
    """Theorem 2.9: the ``e/(e-1)`` semi-feasible approximation.

    Parameters
    ----------
    instance:
        Single-budget instance in the §2 setting.
    depth:
        Seed size (3 gives the proven ratio; 1 or 2 trade quality for
        speed and are useful in experiments).

    Returns the best trace over all greedy completions of feasible
    seeds.  The assignment is semi-feasible; by Theorem 2.9 it is
    feasible if every user's capacity is raised by ``k̄_u = max_S k_u(S)``.
    """
    _require_single_budget(instance)
    if depth < 1:
        raise ValueError(f"depth must be >= 1, got {depth}")
    best_trace: "GreedyTrace | None" = None
    best_value = -1.0
    for seed in _seed_sets(instance, depth):
        trace = greedy(instance, initial_streams=seed)
        value = trace.assignment.utility()
        if value > best_value:
            best_trace, best_value = trace, value
    assert best_trace is not None  # the empty seed always exists
    return best_trace


def partial_enumeration_feasible(instance: MMDInstance, depth: int = 3) -> Assignment:
    """Theorem 2.10: the fully feasible ``2e/(e-1)`` approximation.

    Applies the per-user last-stream split of Theorem 2.8 to the best
    enumerated trace, so no user exceeds his cap.
    """
    trace = partial_enumeration(instance, depth=depth)
    last = trace.last_stream_of()
    a1 = Assignment(instance)
    a2 = Assignment(instance)
    for u in instance.users:
        streams = trace.assignment.streams_of(u.user_id)
        final = last.get(u.user_id)
        for sid in streams:
            if sid == final:
                a2.add(u.user_id, sid)
            else:
                a1.add(u.user_id, sid)
    return best_assignment([a1, a2])
