"""Compiled integer-indexed instance layer: vectorized hot paths.

The object model of :mod:`repro.core.instance` is string-keyed and
dict-of-dicts — ideal for expressing the paper's definitions, but every
inner loop of Algorithm Greedy, classify-and-select, the §4.1 reduction
and Algorithm Allocate pays Python dict/attribute overhead per
(user, stream) pair.  This module *lowers* an :class:`MMDInstance` into
an :class:`IndexedInstance`: contiguous integer id tables plus
numpy-backed CSR-style sparse matrices

- ``u_*``  — the user-major pair arrays (rows = users, entries in each
  user's utilities-dict insertion order);
- ``s_*``  — the stream-major pair arrays (rows = streams, entries in
  user order), obtained by a stable sort of the user-major layout;

and dense cost/budget/cap vectors.  The kernels below run the paper's
algorithms directly on these arrays.

**Bit-exactness contract.**  Every kernel reproduces the dict
implementation's floating-point *accumulation order* exactly:
``np.add.at`` applies its updates sequentially in operand order, and the
pair arrays are laid out in the same order the dict code iterates
(streams scan their interested users in instance order; users scan their
utilities in dict insertion order).  Consequently the ``engine="indexed"``
code paths return identical floats — identical utilities, identical
tie-breaks, identical traces — to ``engine="dict"``, which is what the
parity suite (``tests/test_indexed_parity.py``) asserts.

Lowering is cached on the instance (``MMDInstance`` objects are immutable
after construction), so repeated solver calls over the same instance pay
the O(nnz) build once.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field

import numpy as np

from repro.config import ENGINE_SETTINGS, resolve_engine_setting
from repro.core.instance import FEASIBILITY_RTOL, MMDInstance, Stream, User
from repro.exceptions import ValidationError

#: Attribute under which the lowering is cached on the MMDInstance.
_CACHE_ATTR = "_indexed_cache"

#: Environment variable selecting the default engine for the hot paths.
ENGINE_ENV = ENGINE_SETTINGS["solver"].env

_ENGINES = ENGINE_SETTINGS["solver"].choices


def resolve_engine(engine: "str | None" = None) -> str:
    """Resolve an engine name: explicit argument > $REPRO_ENGINE > indexed.

    Delegates to the shared :mod:`repro.config` resolver (kind
    ``"solver"``); kept as the historical front door.
    """
    return resolve_engine_setting("solver", engine)


@dataclass
class IndexedInstance:
    """Integer-indexed, numpy-backed view of an :class:`MMDInstance`.

    An ``IndexedInstance`` is usually obtained by *lowering* an existing
    :class:`MMDInstance` via :func:`index_instance`, but it can also be
    built **directly from arrays** (no dict detour) by the vectorized
    generators in :mod:`repro.instances.vectorized`; in that case
    ``instance`` starts out ``None`` and :meth:`lift` materializes the
    string-keyed object model on demand.

    Attributes
    ----------
    instance:
        The source instance (round-tripping back to string ids), or
        ``None`` for array-native instances that have not been lifted
        yet (see :meth:`lift`).
    name:
        Human-readable label, mirroring :attr:`MMDInstance.name`.
    stream_ids / user_ids:
        Index → id tables (``stream_ids[k]`` is the id of stream ``k``).
    stream_index / user_index:
        Id → index tables.
    stream_rank / user_rank:
        Rank of each id in *lexicographic* id order — the tie-break key
        the dict implementations use (``min`` over string ids).
    stream_costs:
        Dense ``(num_streams, m)`` cost matrix.
    budgets:
        ``(m,)`` budget caps (may contain ``inf``).
    utility_caps:
        ``(num_users,)`` utility caps ``W_u`` (may contain ``inf``).
    capacities:
        Dense ``(num_users, mc)`` capacity caps (may contain ``inf``).
    u_indptr / u_stream / u_w / u_loads:
        User-major CSR: pairs of user ``u`` live at
        ``u_indptr[u]:u_indptr[u+1]``; ``u_stream`` holds stream
        indices, ``u_w`` utilities, ``u_loads`` the ``(nnz, mc)`` load
        rows.  Entry order inside a row is the user's utilities-dict
        insertion order (the order the dict code iterates).
    u_pair_user:
        ``(nnz,)`` user index of each user-major pair.
    s_indptr / s_user / s_w / s_loads:
        Stream-major CSR (entries in user order — the order
        ``interested_users`` iterates).
    s_pair_stream:
        ``(nnz,)`` stream index of each stream-major pair.
    s_pair_key:
        ``(nnz,)`` combined key ``user * num_streams + stream`` of each
        stream-major pair (for fast membership tests).
    """

    instance: "MMDInstance | None"
    stream_ids: "list[str]"
    user_ids: "list[str]"
    stream_index: "dict[str, int]"
    user_index: "dict[str, int]"
    stream_rank: np.ndarray
    user_rank: np.ndarray
    stream_costs: np.ndarray
    budgets: np.ndarray
    utility_caps: np.ndarray
    capacities: np.ndarray
    u_indptr: np.ndarray
    u_stream: np.ndarray
    u_w: np.ndarray
    u_loads: np.ndarray
    u_pair_user: np.ndarray
    s_indptr: np.ndarray
    s_user: np.ndarray
    s_w: np.ndarray
    s_loads: np.ndarray
    s_pair_stream: np.ndarray
    s_pair_key: np.ndarray
    name: str = ""
    _derived: dict = field(default_factory=dict, repr=False)

    # ------------------------------------------------------------------
    # Shape
    # ------------------------------------------------------------------

    @property
    def num_streams(self) -> int:
        """Number of streams in the catalog (``|S|``)."""
        return len(self.stream_ids)

    @property
    def num_users(self) -> int:
        """Number of users (``|U|``)."""
        return len(self.user_ids)

    @property
    def nnz(self) -> int:
        """Number of positive-utility (user, stream) pairs."""
        return int(self.u_w.shape[0])

    @property
    def m(self) -> int:
        """Number of server budget measures."""
        return int(self.budgets.shape[0])

    @property
    def mc(self) -> int:
        """Number of capacity measures per user."""
        return int(self.capacities.shape[1])

    # ------------------------------------------------------------------
    # Round-tripping
    # ------------------------------------------------------------------

    def lift(self) -> MMDInstance:
        """Materialize (and cache) the string-keyed :class:`MMDInstance`.

        For lowered instances this returns the original object.  For
        array-native instances (built by the vectorized generators) it
        constructs the dict model **once** from the CSR arrays — per-user
        utility/load dicts in user-major row order, so re-lowering the
        lifted instance reproduces these exact arrays (asserted by
        ``tests/test_vectorized.py``) — and attaches ``self`` as the
        lifted instance's cached lowering, so no solver ever re-lowers.
        """
        if self.instance is None:
            mc = self.mc
            streams = [
                Stream(sid, tuple(float(c) for c in self.stream_costs[k]))
                for k, sid in enumerate(self.stream_ids)
            ]
            users = []
            stream_ids = self.stream_ids
            for u, uid in enumerate(self.user_ids):
                lo, hi = int(self.u_indptr[u]), int(self.u_indptr[u + 1])
                row_sids = [stream_ids[int(k)] for k in self.u_stream[lo:hi]]
                utilities = {
                    sid: float(w) for sid, w in zip(row_sids, self.u_w[lo:hi])
                }
                loads = {
                    sid: tuple(float(x) for x in vec)
                    for sid, vec in zip(row_sids, self.u_loads[lo:hi])
                }
                users.append(
                    User(
                        user_id=uid,
                        utility_cap=float(self.utility_caps[u]),
                        capacities=tuple(float(k) for k in self.capacities[u, :mc]),
                        utilities=utilities,
                        loads=loads,
                    )
                )
            instance = MMDInstance(
                streams,
                users,
                tuple(float(b) for b in self.budgets),
                name=self.name,
            )
            setattr(instance, _CACHE_ATTR, self)
            self.instance = instance
        return self.instance

    def to_dict(self) -> dict:
        """Plain-dict form — :meth:`MMDInstance.to_dict` of the lift."""
        return self.lift().to_dict()

    def to_json(self) -> str:
        """JSON form — :meth:`MMDInstance.to_json` of the lift."""
        return self.lift().to_json()

    def __repr__(self) -> str:
        """Compact shape summary (mirrors :meth:`MMDInstance.__repr__`)."""
        return (
            f"IndexedInstance(name={self.name!r}, |S|={self.num_streams}, "
            f"|U|={self.num_users}, nnz={self.nnz}, m={self.m}, mc={self.mc})"
        )

    def stream_ids_of(self, indices) -> "list[str]":
        """Map stream indices back to string ids."""
        table = self.stream_ids
        return [table[int(k)] for k in indices]

    def user_ids_of(self, indices) -> "list[str]":
        """Map user indices back to string ids."""
        table = self.user_ids
        return [table[int(u)] for u in indices]

    # ------------------------------------------------------------------
    # Cached derived arrays
    # ------------------------------------------------------------------

    def total_utilities(self) -> np.ndarray:
        """``w(S)`` per stream — vectorized :meth:`MMDInstance.total_utility`.

        Accumulated per stream in user order, matching the dict loop.
        """
        cached = self._derived.get("total_utilities")
        if cached is None:
            cached = np.zeros(self.num_streams)
            np.add.at(cached, self.s_pair_stream, self.s_w)
            self._derived["total_utilities"] = cached
        return cached

    def min_support_utilities(self) -> np.ndarray:
        """``min_{u ∈ supp(S)} w_u(S)`` per stream (``inf`` for empty support)."""
        cached = self._derived.get("min_support_utilities")
        if cached is None:
            cached = np.full(self.num_streams, math.inf)
            np.minimum.at(cached, self.s_pair_stream, self.s_w)
            self._derived["min_support_utilities"] = cached
        return cached

    def normalized_costs(self) -> np.ndarray:
        """``Σ_i c_i(S)/B_i`` over finite positive budgets, per stream.

        Accumulated measure-by-measure in ascending order, matching the
        dict code's ``sum`` over the finite-measure list.
        """
        cached = self._derived.get("normalized_costs")
        if cached is None:
            cached = np.zeros(self.num_streams)
            for i in range(self.m):
                b = self.budgets[i]
                if not math.isinf(b) and b > 0:
                    cached += self.stream_costs[:, i] / b
            self._derived["normalized_costs"] = cached
        return cached


def _rank_of(ids: "list[str]") -> np.ndarray:
    """rank[i] = position of ids[i] in sorted(ids)."""
    rank = np.empty(len(ids), dtype=np.int64)
    for pos, i in enumerate(sorted(range(len(ids)), key=ids.__getitem__)):
        rank[i] = pos
    return rank


def build_indexed(
    *,
    stream_ids: "list[str]",
    user_ids: "list[str]",
    stream_costs: np.ndarray,
    budgets: np.ndarray,
    utility_caps: np.ndarray,
    capacities: np.ndarray,
    u_indptr: np.ndarray,
    u_stream: np.ndarray,
    u_w: np.ndarray,
    u_loads: np.ndarray,
    instance: "MMDInstance | None" = None,
    name: str = "",
) -> IndexedInstance:
    """Assemble an :class:`IndexedInstance` from user-major arrays.

    The caller supplies the id tables, the dense cost/budget/cap arrays
    and the user-major CSR pair arrays (rows in each user's intended
    dict-insertion order); this helper derives everything else — the
    stream-major layout via a stable sort (per stream, users stay in
    instance order), the lexicographic rank tables, the id→index maps
    and the combined pair keys.  Both :func:`index_instance` (lowering a
    dict instance) and the vectorized generators (array-native
    construction) funnel through here, so the derived layout is
    identical no matter which side produced the arrays.
    """
    num_streams, num_users = len(stream_ids), len(user_ids)
    degrees = np.diff(u_indptr)
    u_pair_user = np.repeat(np.arange(num_users, dtype=np.int64), degrees)

    # Stream-major layout via a stable sort: per stream, users stay in
    # instance order — exactly the order interested-user lists are built.
    perm = np.argsort(u_stream, kind="stable")
    s_pair_stream = u_stream[perm]
    s_user = u_pair_user[perm]
    s_w = u_w[perm]
    s_loads = u_loads[perm, :]
    s_indptr = np.zeros(num_streams + 1, dtype=np.int64)
    np.cumsum(np.bincount(s_pair_stream, minlength=num_streams), out=s_indptr[1:])
    s_pair_key = s_user * np.int64(max(num_streams, 1)) + s_pair_stream

    return IndexedInstance(
        instance=instance,
        stream_ids=stream_ids,
        user_ids=user_ids,
        stream_index={sid: k for k, sid in enumerate(stream_ids)},
        user_index={uid: u for u, uid in enumerate(user_ids)},
        stream_rank=_rank_of(stream_ids),
        user_rank=_rank_of(user_ids),
        stream_costs=stream_costs,
        budgets=budgets,
        utility_caps=utility_caps,
        capacities=capacities,
        u_indptr=u_indptr,
        u_stream=u_stream,
        u_w=u_w,
        u_loads=u_loads,
        u_pair_user=u_pair_user,
        s_indptr=s_indptr,
        s_user=s_user,
        s_w=s_w,
        s_loads=s_loads,
        s_pair_stream=s_pair_stream,
        s_pair_key=s_pair_key,
        name=name,
    )


def index_instance(instance: MMDInstance) -> IndexedInstance:
    """Lower an instance to its indexed form (cached on the instance)."""
    cached = getattr(instance, _CACHE_ATTR, None)
    if cached is not None:
        return cached

    stream_ids = [s.stream_id for s in instance.streams]
    user_ids = [u.user_id for u in instance.users]
    stream_index = {sid: k for k, sid in enumerate(stream_ids)}
    num_streams, num_users = len(stream_ids), len(user_ids)
    m, mc = instance.m, instance.mc

    stream_costs = np.array(
        [s.costs for s in instance.streams], dtype=np.float64
    ).reshape(num_streams, m)
    budgets = np.array(instance.budgets, dtype=np.float64)
    utility_caps = np.array([u.utility_cap for u in instance.users], dtype=np.float64)
    capacities = np.array(
        [u.capacities for u in instance.users], dtype=np.float64
    ).reshape(num_users, mc)

    # User-major pair arrays, rows in utilities-dict insertion order.
    degrees = np.array([len(u.utilities) for u in instance.users], dtype=np.int64)
    nnz = int(degrees.sum())
    u_indptr = np.zeros(num_users + 1, dtype=np.int64)
    np.cumsum(degrees, out=u_indptr[1:])
    u_stream = np.empty(nnz, dtype=np.int64)
    u_w = np.empty(nnz, dtype=np.float64)
    u_loads = np.zeros((nnz, mc), dtype=np.float64)
    pos = 0
    for user in instance.users:
        loads = user.loads
        for sid, w in user.utilities.items():
            u_stream[pos] = stream_index[sid]
            u_w[pos] = w
            vec = loads.get(sid)
            if vec is not None:
                u_loads[pos, :] = vec
            pos += 1

    idx = build_indexed(
        stream_ids=stream_ids,
        user_ids=user_ids,
        stream_costs=stream_costs,
        budgets=budgets,
        utility_caps=utility_caps,
        capacities=capacities,
        u_indptr=u_indptr,
        u_stream=u_stream,
        u_w=u_w,
        u_loads=u_loads,
        instance=instance,
        name=instance.name,
    )
    try:
        setattr(instance, _CACHE_ATTR, idx)
    except AttributeError:  # pragma: no cover - exotic instance subclass
        pass
    return idx


def ensure_instance(obj: "MMDInstance | IndexedInstance") -> MMDInstance:
    """Coerce to the string-keyed model, lifting an :class:`IndexedInstance`.

    The public solvers accept either representation; array-native
    instances coming off the vectorized generators are lifted lazily
    here (once — the lift is cached both ways).
    """
    if isinstance(obj, IndexedInstance):
        return obj.lift()
    return obj


def ensure_indexed(obj: "MMDInstance | IndexedInstance") -> IndexedInstance:
    """Coerce to the array-native form, lowering an :class:`MMDInstance`."""
    if isinstance(obj, IndexedInstance):
        return obj
    return index_instance(obj)


def _concat_ranges(starts: np.ndarray, counts: np.ndarray) -> np.ndarray:
    """Concatenation of ``arange(starts[i], starts[i] + counts[i])``.

    All counts must be positive (callers guarantee this: a receiver's
    user-major row contains at least the pair that made it a receiver).
    """
    total = int(counts.sum())
    out = np.ones(total, dtype=np.int64)
    out[0] = starts[0]
    if len(starts) > 1:
        boundaries = np.cumsum(counts)[:-1]
        out[boundaries] = starts[1:] - starts[:-1] - counts[:-1] + 1
    return np.cumsum(out)


# ----------------------------------------------------------------------
# Algorithm Greedy (§2.1) — vectorized residual maintenance over CSR rows
# ----------------------------------------------------------------------


def greedy_kernel(
    idx: IndexedInstance,
    cap: float,
    initial: "list[int]",
    rtol: float = FEASIBILITY_RTOL,
) -> "tuple[list[tuple[int, np.ndarray]], list[int], float]":
    """Run Algorithm Greedy on the indexed arrays.

    Returns ``(order, rejected, total_cost)`` where ``order`` is a list
    of ``(stream_index, receiver_user_indices)`` in assignment order and
    ``rejected`` the stream indices whose residual was positive but whose
    cost exceeded the remaining budget.  Bit-identical to the dict
    implementation (see module docstring).
    """
    num_streams = idx.num_streams
    costs0 = idx.stream_costs[:, 0] if idx.m else np.zeros(num_streams)
    headroom = idx.utility_caps.copy()

    # wbar[S] = Σ_u min(w_u(S), max(headroom_u, 0)) accumulated per
    # stream in interested-user order (np.add.at applies sequentially).
    wbar = np.zeros(num_streams)
    np.add.at(
        wbar,
        idx.s_pair_stream,
        np.minimum(idx.s_w, np.maximum(headroom[idx.s_user], 0.0)),
    )

    candidates = np.ones(num_streams, dtype=bool)
    order: "list[tuple[int, np.ndarray]]" = []
    rejected: "list[int]" = []
    total_cost = 0.0

    def assign(k: int) -> np.ndarray:
        """Deliver stream ``k`` to every positive-headroom user; update
        residuals in the same sequence the dict code does."""
        lo, hi = int(idx.s_indptr[k]), int(idx.s_indptr[k + 1])
        row_users = idx.s_user[lo:hi]
        row_w = idx.s_w[lo:hi]
        old_r = headroom[row_users]
        receiving = old_r > 0.0
        receivers = row_users[receiving]
        if receivers.size == 0:
            return receivers
        new_r = old_r[receiving] - row_w[receiving]
        headroom[receivers] = new_r
        old_clip = old_r[receiving]  # == max(old_r, 0) since old_r > 0
        new_clip = np.maximum(new_r, 0.0)
        changed = new_clip != old_clip
        if np.any(changed):
            users = receivers[changed]
            starts = idx.u_indptr[users]
            counts = idx.u_indptr[users + 1] - starts
            flat = _concat_ranges(starts, counts)
            w2 = idx.u_w[flat]
            targets = idx.u_stream[flat]
            nc = np.repeat(new_clip[changed], counts)
            oc = np.repeat(old_clip[changed], counts)
            # Deltas land receiver-by-receiver, row order inside each —
            # the dict loop's exact accumulation sequence.  Non-candidate
            # targets (and k itself, dropped right after) also get the
            # delta; their wbar entries are dead and never read.
            np.add.at(wbar, targets, np.minimum(w2, nc) - np.minimum(w2, oc))
        return receivers

    for k in initial:
        receivers = assign(k)
        order.append((k, receivers))
        total_cost += float(costs0[k])
        candidates[k] = False
    if total_cost > cap * (1 + rtol):
        raise ValidationError("initial streams already exceed the budget")

    effectiveness = np.empty(num_streams)
    while candidates.any():
        # Cost effectiveness w̄(S)/c(S); free streams: inf if w̄ > 0 else 0.
        positive_cost = costs0 > 0.0
        np.divide(wbar, costs0, out=effectiveness, where=positive_cost)
        if not positive_cost.all():
            free = ~positive_cost
            effectiveness[free] = np.where(wbar[free] > 0.0, math.inf, 0.0)
        # argmax of (effectiveness, wbar, -lexicographic rank) — the dict
        # code's min over (-eff, -wbar, stream_id).
        masked = np.where(candidates, effectiveness, -math.inf)
        best_eff = masked.max()
        tied = masked == best_eff
        masked_wbar = np.where(tied, wbar, -math.inf)
        best_wbar = masked_wbar.max()
        tied &= masked_wbar == best_wbar
        ranks = np.where(tied, idx.stream_rank, num_streams + 1)
        k = int(ranks.argmin())
        if wbar[k] <= 0.0:
            break  # every remaining stream would be assigned to nobody
        cost = float(costs0[k])
        if total_cost + cost <= cap * (1 + rtol):
            receivers = assign(k)
            order.append((k, receivers))
            total_cost += cost
        else:
            rejected.append(k)
        candidates[k] = False
    return order, rejected, total_cost


# ----------------------------------------------------------------------
# Best single stream (A_max of §2.2)
# ----------------------------------------------------------------------


def best_single_stream_kernel(
    idx: IndexedInstance, lexicographic_ties: bool
) -> "tuple[int, float]":
    """``argmax_S Σ_u min(w_u(S), W_u)`` with the dict tie-break.

    ``lexicographic_ties=True`` resolves equal values to the smallest
    stream id (:func:`repro.core.greedy.best_single_stream_assignment`,
    whose dict loop accepts an equal value only when the id is
    smaller); ``False`` uses ``values.argmax()``, which keeps the
    *first occurrence* — the first stream in instance order, matching
    :func:`repro.core.solver.best_single_stream_mmd`'s dict loop whose
    strictly-greater test never replaces an earlier tied stream.  The
    two rules genuinely differ whenever instance order is not id order
    (see ``test_best_single_stream_tie_breaks``).  Returns ``(-1,
    0.0)`` for an empty catalog.
    """
    num_streams = idx.num_streams
    if num_streams == 0:
        return -1, 0.0
    values = np.zeros(num_streams)
    np.add.at(
        values,
        idx.s_pair_stream,
        np.minimum(idx.s_w, idx.utility_caps[idx.s_user]),
    )
    best_value = values.max()
    if lexicographic_ties:
        ranks = np.where(values == best_value, idx.stream_rank, num_streams + 1)
        return int(ranks.argmin()), float(best_value)
    return int(values.argmax()), float(best_value)


# ----------------------------------------------------------------------
# Residual-density fill (solver.greedy_fill) — vectorized rounds
# ----------------------------------------------------------------------


def fill_kernel(
    idx: IndexedInstance,
    server_used: np.ndarray,
    user_used: np.ndarray,
    user_raw: np.ndarray,
    assigned_pairs: np.ndarray,
    in_range: np.ndarray,
    rtol: float = 1e-9,
) -> "list[tuple[int, np.ndarray]]":
    """One full run of the monotone post-augmentation pass.

    The state arrays (server usage ``(m,)``, per-user usage ``(U, mc)``,
    raw per-user utility ``(U,)``, stream-major assigned-pair mask and
    in-range stream mask) are mutated in place; the return value lists
    ``(stream_index, receiver_user_indices)`` additions in commit order.
    """
    num_streams, mc = idx.num_streams, idx.mc
    budgets = idx.budgets
    costs = idx.stream_costs
    norm_cost = idx.normalized_costs()
    finite_budget = [i for i in range(idx.m) if not math.isinf(budgets[i])]
    pair_user = idx.s_user
    additions: "list[tuple[int, np.ndarray]]" = []
    if num_streams == 0:
        return additions

    density = np.empty(num_streams)
    while True:
        headroom = np.maximum(idx.utility_caps - user_raw, 0.0)
        marginal = np.minimum(idx.s_w, headroom[pair_user])
        marginal[assigned_pairs] = 0.0
        fits = np.ones(idx.nnz, dtype=bool)
        for j in range(mc):
            pair_cap = idx.capacities[pair_user, j]
            finite = np.isfinite(pair_cap)
            fits &= ~finite | (
                user_used[pair_user, j] + idx.s_loads[:, j] <= pair_cap * (1 + rtol)
            )
        marginal[~fits] = 0.0
        gain = np.zeros(num_streams)
        np.add.at(gain, idx.s_pair_stream, marginal)

        fits_server = np.ones(num_streams, dtype=bool)
        for i in finite_budget:
            fits_server &= server_used[i] + costs[:, i] <= budgets[i] * (1 + rtol)
        extra = np.where(in_range, 0.0, norm_cost)
        free = extra == 0.0
        density.fill(math.inf)
        np.divide(gain, extra, out=density, where=~free)
        eligible = (gain > 0.0) & (in_range | fits_server)
        density[~eligible] = -math.inf
        k = int(density.argmax())
        if density[k] == -math.inf:
            break

        lo, hi = int(idx.s_indptr[k]), int(idx.s_indptr[k + 1])
        row_marginal = marginal[lo:hi]
        receiving = row_marginal > 0.0
        receiver_pairs = np.arange(lo, hi, dtype=np.int64)[receiving]
        receivers = pair_user[receiver_pairs]
        if not in_range[k]:
            in_range[k] = True
            server_used += costs[k, :]
        user_used[receivers, :] += idx.s_loads[receiver_pairs, :]
        user_raw[receivers] += idx.s_w[receiver_pairs]
        assigned_pairs[receiver_pairs] = True
        additions.append((k, receivers))
    return additions


def assigned_pair_mask(idx: IndexedInstance, assigned: "dict[str, set[str]]") -> np.ndarray:
    """Stream-major boolean mask of pairs present in an assignment mapping."""
    keys = []
    base = np.int64(max(idx.num_streams, 1))
    for uid, streams in assigned.items():
        if not streams:
            continue
        u = idx.user_index[uid]
        for sid in streams:
            keys.append(u * base + idx.stream_index[sid])
    if not keys:
        return np.zeros(idx.nnz, dtype=bool)
    return np.isin(idx.s_pair_key, np.array(keys, dtype=np.int64))


# ----------------------------------------------------------------------
# Skew statistics (§3, §5) — vectorized over pair arrays
# ----------------------------------------------------------------------


def _ratio_extrema_per_user(idx: IndexedInstance, measure: int):
    """Per-user (count, min, max) of the finite cost-benefit ratios
    ``w_u(S)/k_u(S)`` over positive-load pairs on one measure."""
    num_users = idx.num_users
    load = idx.u_loads[:, measure]
    positive = load > 0.0
    with np.errstate(divide="ignore", over="ignore"):
        ratio = idx.u_w[positive] / load[positive]
    finite = np.isfinite(ratio)
    users = idx.u_pair_user[positive][finite]
    ratio = ratio[finite]
    rmin = np.full(num_users, math.inf)
    rmax = np.full(num_users, -math.inf)
    np.minimum.at(rmin, users, ratio)
    np.maximum.at(rmax, users, ratio)
    counts = np.bincount(users, minlength=num_users)
    return counts, rmin, rmax


def local_skew_indexed(idx: IndexedInstance) -> float:
    """Vectorized :meth:`MMDInstance.local_skew` (identical arithmetic)."""
    skew = 1.0
    for j in range(idx.mc):
        counts, rmin, rmax = _ratio_extrema_per_user(idx, j)
        multi = counts >= 2
        if multi.any():
            skew = max(skew, float((rmax[multi] / rmin[multi]).max()))
    return skew


def is_unit_skew_indexed(idx: IndexedInstance, rtol: float = 1e-9) -> bool:
    """Vectorized :meth:`MMDInstance.is_unit_skew`."""
    for j in range(idx.mc):
        counts, rmin, rmax = _ratio_extrema_per_user(idx, j)
        present = counts >= 1
        if np.any(rmax[present] > rmin[present] * (1 + rtol)):
            return False
    return True


def has_free_pairs_indexed(idx: IndexedInstance) -> bool:
    """Vectorized :meth:`MMDInstance.has_free_pairs`."""
    num_users = idx.num_users
    for j in range(idx.mc):
        load = idx.u_loads[:, j]
        zero = np.bincount(idx.u_pair_user[load == 0.0], minlength=num_users) > 0
        positive = np.bincount(idx.u_pair_user[load > 0.0], minlength=num_users) > 0
        if np.any(zero & positive):
            return True
    return False


def global_skew_indexed(idx: IndexedInstance) -> float:
    """Vectorized :meth:`MMDInstance.global_skew` (eq. (1) of §5).

    All aggregations are per-measure maxima/minima of identical
    divisions, so the result matches the dict implementation exactly.
    """
    total_w = idx.total_utilities()
    min_w = idx.min_support_utilities()
    support = np.diff(idx.s_indptr) > 0
    gamma = 1.0

    def fold(best: np.ndarray, worst: np.ndarray) -> float:
        live = (best > 0.0) & np.isfinite(worst)
        if live.any():
            return float((best[live] / worst[live]).max())
        return 1.0

    for i in range(idx.m):
        cost = idx.stream_costs[:, i]
        mask = support & (cost > 0.0)
        if mask.any():
            with np.errstate(over="ignore"):
                best = float((total_w[mask] / cost[mask]).max())
                worst = float((min_w[mask] / cost[mask]).min())
            if best > 0.0 and not math.isinf(worst):
                gamma = max(gamma, best / worst)

    num_users = idx.num_users
    for j in range(idx.mc):
        load = idx.s_loads[:, j]
        mask = load > 0.0
        if not mask.any():
            continue
        users = idx.s_user[mask]
        streams = idx.s_pair_stream[mask]
        with np.errstate(over="ignore"):
            best_vals = total_w[streams] / load[mask]
            worst_vals = min_w[streams] / load[mask]
        best = np.zeros(num_users)
        worst = np.full(num_users, math.inf)
        np.maximum.at(best, users, best_vals)
        np.minimum.at(worst, users, worst_vals)
        gamma = max(gamma, fold(best, worst))
    return gamma


# ----------------------------------------------------------------------
# Classify-by-skew binning (§3) — vectorized ratio classes
# ----------------------------------------------------------------------


@dataclass
class SkewBins:
    """Per-pair class assignment for :func:`repro.core.skew.classify_by_skew`.

    Attributes (all user-major, aligned with ``idx.u_*``):

    - ``bins`` — class index per pair (0 = the free class);
    - ``scaled_load`` — the class utility ``k_u(S)·scale_u`` of non-free
      pairs (unused entries are 0);
    - ``scale`` — per-user normalization ``1/min ratio`` (NaN when the
      user has no finite positive-load ratio);
    - ``scaled_cap`` — per-user scaled capacity ``K_u·scale_u``.
    """

    bins: np.ndarray
    scaled_load: np.ndarray
    scale: np.ndarray
    scaled_cap: np.ndarray


def skew_bins(idx: IndexedInstance) -> SkewBins:
    """Vectorized §3 ratio classification (identical arithmetic to the
    scalar loop: same divisions, same ``log₂`` guard band)."""
    nnz, num_users = idx.nnz, idx.num_users
    has_capacity = idx.mc == 1
    load = idx.u_loads[:, 0] if has_capacity else np.zeros(nnz)
    positive = load > 0.0
    with np.errstate(divide="ignore", over="ignore", invalid="ignore"):
        ratio = np.where(positive, idx.u_w / np.where(positive, load, 1.0), math.inf)
    finite = positive & np.isfinite(ratio)
    scale = np.full(num_users, math.nan)
    if finite.any():
        rmin = np.full(num_users, math.inf)
        np.minimum.at(rmin, idx.u_pair_user[finite], ratio[finite])
        scale = np.where(np.isfinite(rmin), rmin, math.nan)
    pair_scale = scale[idx.u_pair_user]
    free = (~positive) | (~np.isfinite(ratio)) | np.isnan(pair_scale)

    bins = np.zeros(nnz, dtype=np.int64)
    busy = ~free
    if busy.any():
        with np.errstate(over="ignore", invalid="ignore"):
            normalized = ratio[busy] / pair_scale[busy]
        normalized = np.where(np.isfinite(normalized), normalized, 2.0**1000)
        bins[busy] = (
            np.floor(np.log2(np.maximum(normalized, 1.0)) + 1e-12).astype(np.int64) + 1
        )
    scaled_load = np.where(busy, load * np.where(np.isnan(pair_scale), 0.0, pair_scale), 0.0)
    if has_capacity:
        cap0 = idx.capacities[:, 0]
    else:
        cap0 = np.full(num_users, math.inf)
    # Entries for users without a finite ratio are never read; use a safe
    # scale of 1 there so inf caps do not produce inf·0 NaN warnings.
    # Overflow to inf matches the scalar engine's silent float semantics.
    with np.errstate(over="ignore"):
        scaled_cap = cap0 * np.where(np.isnan(scale), 1.0, scale)
    return SkewBins(bins=bins, scaled_load=scaled_load, scale=scale, scaled_cap=scaled_cap)


# ----------------------------------------------------------------------
# Small-streams precondition (§5)
# ----------------------------------------------------------------------


def small_streams_indexed(idx: IndexedInstance, mu: float, rtol: float = FEASIBILITY_RTOL) -> bool:
    """Vectorized :func:`repro.core.allocate.small_streams_condition` test."""
    log_mu = math.log2(mu)
    for i in range(idx.m):
        b = idx.budgets[i]
        if not math.isinf(b) and np.any(
            idx.stream_costs[:, i] > b / log_mu * (1 + rtol)
        ):
            return False
    for j in range(idx.mc):
        cap = idx.capacities[idx.u_pair_user, j]
        finite = np.isfinite(cap)
        if np.any(idx.u_loads[finite, j] > cap[finite] / log_mu * (1 + rtol)):
            return False
    return True


# ----------------------------------------------------------------------
# Assignment accounting over index arrays
# ----------------------------------------------------------------------


class IndexedAssignment:
    """Array-backed feasibility/utility accounting for an assignment.

    Holds the assignment as a stream-major pair mask over the lowering's
    CSR layout (deliveries outside the positive-utility support are not
    representable — the solvers never produce them) and computes the
    paper's accounting — utility, server costs, user loads, feasibility —
    as vector reductions.  Construct from an :class:`Assignment` with
    :meth:`from_assignment`, round-trip back with :meth:`to_mapping`.
    """

    def __init__(self, idx: IndexedInstance, pair_mask: "np.ndarray | None" = None) -> None:
        self.idx = idx
        self.pair_mask = (
            pair_mask if pair_mask is not None else np.zeros(idx.nnz, dtype=bool)
        )

    @classmethod
    def from_assignment(cls, assignment) -> "IndexedAssignment":
        """Lower an :class:`repro.core.assignment.Assignment`."""
        idx = index_instance(assignment.instance)
        return cls(idx, assigned_pair_mask(idx, assignment.as_dict()))

    def to_mapping(self) -> "dict[str, set[str]]":
        """``user_id -> set of stream_id`` (the Assignment constructor input)."""
        result: "dict[str, set[str]]" = {uid: set() for uid in self.idx.user_ids}
        for p in np.flatnonzero(self.pair_mask):
            result[self.idx.user_ids[int(self.idx.s_user[p])]].add(
                self.idx.stream_ids[int(self.idx.s_pair_stream[p])]
            )
        return result

    # -- mutation ------------------------------------------------------

    def assign_stream(self, k: int, user_indices: np.ndarray) -> None:
        """Bulk-assign stream ``k`` to the given user indices."""
        lo, hi = int(self.idx.s_indptr[k]), int(self.idx.s_indptr[k + 1])
        row = self.idx.s_user[lo:hi]
        self.pair_mask[lo + np.flatnonzero(np.isin(row, user_indices))] = True

    # -- accounting ----------------------------------------------------

    def stream_mask(self) -> np.ndarray:
        """Boolean range S(A) over stream indices."""
        mask = np.zeros(self.idx.num_streams, dtype=bool)
        mask[self.idx.s_pair_stream[self.pair_mask]] = True
        return mask

    def server_costs(self) -> np.ndarray:
        """``(c_1(A), ..., c_m(A))``."""
        return self.idx.stream_costs[self.stream_mask(), :].sum(axis=0)

    def user_loads(self) -> np.ndarray:
        """``(U, mc)`` matrix of per-user loads ``k^u_j(A)``."""
        loads = np.zeros((self.idx.num_users, self.idx.mc))
        picked = self.pair_mask
        np.add.at(loads, self.idx.s_user[picked], self.idx.s_loads[picked, :])
        return loads

    def raw_user_utilities(self) -> np.ndarray:
        """Uncapped ``w_u(A)`` per user."""
        raw = np.zeros(self.idx.num_users)
        np.add.at(raw, self.idx.s_user[self.pair_mask], self.idx.s_w[self.pair_mask])
        return raw

    def utility(self) -> float:
        """``w(A) = Σ_u min(W_u, w_u(A))``."""
        return float(
            np.minimum(self.idx.utility_caps, self.raw_user_utilities()).sum()
        )

    def is_server_feasible(self, rtol: float = FEASIBILITY_RTOL) -> bool:
        """True when every budget cap holds: ``c_i(A) <= B_i`` for all ``i``."""
        return bool(np.all(self.server_costs() <= self.idx.budgets * (1 + rtol)))

    def is_user_feasible(self, rtol: float = FEASIBILITY_RTOL) -> bool:
        """True when every capacity cap holds: ``k^u_j(A) <= K^u_j`` for all ``u, j``."""
        return bool(np.all(self.user_loads() <= self.idx.capacities * (1 + rtol)))

    def is_feasible(self, rtol: float = FEASIBILITY_RTOL) -> bool:
        """True when the assignment satisfies both budget and capacity caps."""
        return self.is_server_feasible(rtol) and self.is_user_feasible(rtol)
