"""Data model for the Multi-budget Multi-client Distribution problem (MMD).

The paper (§1.1) defines an MMD instance by:

- a collection ``S`` of streams and a set ``U`` of users;
- ``m`` server cost measures: stream ``S`` costs ``c_i(S) >= 0`` in measure
  ``i``, and measure ``i`` has a budget cap ``B_i`` (possibly infinite);
- up to ``m_c`` capacity measures per user: stream ``S`` puts load
  ``k^u_j(S)`` on user ``u``'s measure ``j``, capped by ``K^u_j``;
- a utility ``w_u(S) >= 0`` for each user/stream pair, and a utility cap
  ``W_u`` on the total utility user ``u`` can generate.

The paper's convention ``w_u(S) = 0`` whenever some single-stream load
exceeds a capacity (``k^u_j(S) > K^u_j``) is enforced by
:meth:`MMDInstance.validate`; :func:`sanitize_utilities` converts offending
instances instead of rejecting them.

The *Single-budget Multi-client Distribution* problem (SMD) is the special
case ``m = m_c = 1``; it is represented by the same class (see
:attr:`MMDInstance.is_smd`) so that the reductions of §3 and §4 are plain
instance-to-instance functions.
"""

from __future__ import annotations

import json
import math
from dataclasses import dataclass, field
from typing import Iterable, Mapping, Sequence

from repro.exceptions import ValidationError
from repro.util.validation import check_nonnegative, check_unique

#: Relative tolerance used throughout the library for budget comparisons.
#: Floating-point accumulation must not make a paper-feasible assignment
#: appear infeasible.
FEASIBILITY_RTOL = 1e-9


def _as_cost_tuple(name: str, values: Sequence[float], expected_len: int | None = None) -> tuple[float, ...]:
    """Validate and freeze a vector of nonnegative costs/loads."""
    result = tuple(check_nonnegative(f"{name}[{i}]", v) for i, v in enumerate(values))
    if expected_len is not None and len(result) != expected_len:
        raise ValidationError(f"{name} must have length {expected_len}, got {len(result)}")
    return result


@dataclass(frozen=True)
class Stream:
    """A video stream the server may transmit.

    Attributes
    ----------
    stream_id:
        Unique identifier within an instance.
    costs:
        Server-side cost vector ``(c_1(S), ..., c_m(S))``; transmitting
        the stream consumes ``c_i(S)`` out of budget ``B_i``.
    name:
        Optional human-readable label (e.g. a channel name).
    attrs:
        Free-form metadata (bitrate, genre, ...) carried through
        generators and the simulator; ignored by the algorithms.
    """

    stream_id: str
    costs: tuple[float, ...]
    name: str = ""
    attrs: Mapping[str, object] = field(default_factory=dict)

    def __post_init__(self) -> None:
        object.__setattr__(self, "costs", _as_cost_tuple(f"stream {self.stream_id} costs", self.costs))

    @property
    def num_measures(self) -> int:
        """Number of server cost measures this stream is priced in."""
        return len(self.costs)

    def cost(self, measure: int = 0) -> float:
        """Cost ``c_i(S)`` in the given measure."""
        return self.costs[measure]


@dataclass(frozen=True)
class User:
    """A client (household or neighborhood gateway) of the distribution system.

    Attributes
    ----------
    user_id:
        Unique identifier within an instance.
    utility_cap:
        ``W_u`` — an upper bound on the utility this user can generate.
        May be ``math.inf`` for uncapped users.
    capacities:
        ``(K^u_1, ..., K^u_{m_c})`` — capacity caps; entries may be
        ``math.inf``.
    utilities:
        Sparse map ``stream_id -> w_u(S)`` holding only **positive**
        utilities.  A missing key means ``w_u(S) = 0`` (the user does not
        want or cannot receive the stream).
    loads:
        Sparse map ``stream_id -> (k^u_1(S), ..., k^u_{m_c}(S))``.
        Keys must be a subset of ``utilities``; a missing key for a
        positive-utility stream means the stream puts **zero** load on
        every capacity measure of this user.
    """

    user_id: str
    utility_cap: float
    capacities: tuple[float, ...]
    utilities: Mapping[str, float] = field(default_factory=dict)
    loads: Mapping[str, tuple[float, ...]] = field(default_factory=dict)
    attrs: Mapping[str, object] = field(default_factory=dict)

    def __post_init__(self) -> None:
        check_nonnegative(f"user {self.user_id} utility_cap", self.utility_cap, allow_inf=True)
        caps = tuple(
            check_nonnegative(f"user {self.user_id} capacities[{j}]", v, allow_inf=True)
            for j, v in enumerate(self.capacities)
        )
        object.__setattr__(self, "capacities", caps)
        utilities = dict(self.utilities)
        for sid, w in utilities.items():
            if check_nonnegative(f"w_{self.user_id}({sid})", w) == 0:
                raise ValidationError(
                    f"user {self.user_id} utilities must be sparse: drop zero entry for {sid}"
                )
        object.__setattr__(self, "utilities", utilities)
        loads = {
            sid: _as_cost_tuple(f"k_{self.user_id}({sid})", vec, expected_len=len(caps))
            for sid, vec in self.loads.items()
        }
        for sid in loads:
            if sid not in utilities:
                raise ValidationError(
                    f"user {self.user_id} has a load for {sid} but zero utility; "
                    "loads keys must be a subset of utilities keys"
                )
        object.__setattr__(self, "loads", loads)

    @property
    def num_capacity_measures(self) -> int:
        """Number of capacity measures ``m_c`` for this user."""
        return len(self.capacities)

    def utility(self, stream_id: str) -> float:
        """``w_u(S)`` (0 for unknown streams)."""
        return self.utilities.get(stream_id, 0.0)

    def load(self, stream_id: str, measure: int = 0) -> float:
        """``k^u_j(S)`` (0 for unknown streams)."""
        vec = self.loads.get(stream_id)
        if vec is None:
            return 0.0
        return vec[measure]

    def load_vector(self, stream_id: str) -> tuple[float, ...]:
        """All loads of a stream on this user (zeros if unknown)."""
        vec = self.loads.get(stream_id)
        if vec is None:
            return (0.0,) * len(self.capacities)
        return vec

    def wanted_streams(self) -> "frozenset[str]":
        """Streams with positive utility for this user."""
        return frozenset(self.utilities)


class MMDInstance:
    """An instance of Multi-budget Multi-client Distribution.

    Parameters
    ----------
    streams:
        Stream collection; each stream's cost vector must have length
        equal to ``len(budgets)``.
    users:
        User collection; each user's capacity vector must have length
        ``num_capacity_measures`` (all users share the same ``m_c``; pad
        with ``math.inf`` capacities for users with fewer real limits).
    budgets:
        Server budget caps ``(B_1, ..., B_m)``; entries may be
        ``math.inf``.
    name:
        Optional label for reporting.
    """

    def __init__(
        self,
        streams: Iterable[Stream],
        users: Iterable[User],
        budgets: Sequence[float],
        name: str = "",
        strict: bool = True,
    ) -> None:
        self.streams: tuple[Stream, ...] = tuple(streams)
        self.users: tuple[User, ...] = tuple(users)
        self.budgets: tuple[float, ...] = tuple(
            check_nonnegative(f"budgets[{i}]", b, allow_inf=True) for i, b in enumerate(budgets)
        )
        self.name = name
        self._stream_by_id = {s.stream_id: s for s in self.streams}
        self._user_by_id = {u.user_id: u for u in self.users}
        self.validate(strict=strict)

    # ------------------------------------------------------------------
    # Basic shape
    # ------------------------------------------------------------------

    @property
    def m(self) -> int:
        """Number of server budget measures."""
        return len(self.budgets)

    @property
    def mc(self) -> int:
        """Number of capacity measures per user (0 if there are no users)."""
        if not self.users:
            return 0
        return self.users[0].num_capacity_measures

    @property
    def num_streams(self) -> int:
        return len(self.streams)

    @property
    def num_users(self) -> int:
        return len(self.users)

    @property
    def is_smd(self) -> bool:
        """True when this is a Single-budget Multi-client instance (m = m_c = 1)."""
        return self.m == 1 and self.mc <= 1

    @property
    def input_length(self) -> int:
        """The paper's ``n``: streams + users + nonzero utility entries."""
        nnz = sum(len(u.utilities) for u in self.users)
        return len(self.streams) + len(self.users) + nnz

    def stream(self, stream_id: str) -> Stream:
        """Look up a stream by id."""
        try:
            return self._stream_by_id[stream_id]
        except KeyError:
            raise ValidationError(f"unknown stream id {stream_id!r}") from None

    def user(self, user_id: str) -> User:
        """Look up a user by id."""
        try:
            return self._user_by_id[user_id]
        except KeyError:
            raise ValidationError(f"unknown user id {user_id!r}") from None

    def has_stream(self, stream_id: str) -> bool:
        return stream_id in self._stream_by_id

    def stream_ids(self) -> "list[str]":
        return [s.stream_id for s in self.streams]

    def user_ids(self) -> "list[str]":
        return [u.user_id for u in self.users]

    # ------------------------------------------------------------------
    # Validation
    # ------------------------------------------------------------------

    def validate(self, strict: bool = True) -> None:
        """Check the structural invariants the paper assumes.

        Raises :class:`ValidationError` when:

        - stream/user ids collide;
        - a stream's cost vector length differs from ``m``, or a user's
          capacity vector length differs from the instance ``m_c``;
        - a stream violates ``c_i(S) <= B_i`` (the paper's standing
          assumption — otherwise the stream could never be transmitted);
        - a user has positive utility for an unknown stream;
        - (``strict`` only) a user has positive utility for a stream
          whose single-stream load already exceeds a capacity — the
          paper requires ``w_u(S) = 0`` in that case.  Build with
          ``strict=False`` and pass through :func:`sanitize_utilities`
          to repair such data instead of rejecting it.
        """
        check_unique("stream id", [s.stream_id for s in self.streams])
        check_unique("user id", [u.user_id for u in self.users])
        for s in self.streams:
            if s.num_measures != self.m:
                raise ValidationError(
                    f"stream {s.stream_id} has {s.num_measures} cost measures, expected {self.m}"
                )
            for i, c in enumerate(s.costs):
                if c > self.budgets[i] * (1 + FEASIBILITY_RTOL):
                    raise ValidationError(
                        f"stream {s.stream_id} cost {c} exceeds budget B_{i}={self.budgets[i]}; "
                        "the paper assumes c_i(S) <= B_i"
                    )
        mc = self.mc
        for u in self.users:
            if u.num_capacity_measures != mc:
                raise ValidationError(
                    f"user {u.user_id} has {u.num_capacity_measures} capacity measures, expected {mc}"
                )
            for sid in u.utilities:
                if sid not in self._stream_by_id:
                    raise ValidationError(
                        f"user {u.user_id} has utility for unknown stream {sid!r}"
                    )
                if not strict:
                    continue
                vec = u.load_vector(sid)
                for j, load in enumerate(vec):
                    if load > u.capacities[j] * (1 + FEASIBILITY_RTOL):
                        raise ValidationError(
                            f"user {u.user_id} has positive utility for {sid} but its load "
                            f"{load} exceeds capacity K^u_{j}={u.capacities[j]}; the paper "
                            "requires w_u(S)=0 then (use sanitize_utilities)"
                        )

    # ------------------------------------------------------------------
    # Aggregates used throughout the paper
    # ------------------------------------------------------------------

    def total_utility(self, stream_id: str) -> float:
        """``w(S) = sum_u w_u(S)`` — total (uncapped) utility of a stream."""
        return sum(u.utility(stream_id) for u in self.users)

    def max_total_utility(self) -> float:
        """``sum_u min(W_u, sum_S w_u(S))`` — a trivial utility upper bound."""
        total = 0.0
        for u in self.users:
            total += min(u.utility_cap, sum(u.utilities.values()))
        return total

    def interested_users(self, stream_id: str) -> "list[User]":
        """Users with ``w_u(S) > 0`` for the given stream."""
        return [u for u in self.users if stream_id in u.utilities]

    # ------------------------------------------------------------------
    # Skew (paper §3 and §5)
    # ------------------------------------------------------------------

    def cost_benefit_ratios(self, user: User, measure: int) -> "list[float]":
        """Ratios ``w_u(S) / k^u_j(S)`` over positive-utility, positive-load streams.

        Ratios that overflow to infinity (subnormal loads) are excluded:
        such a load is indistinguishable from zero, so the pair behaves
        like a "free" pair (see :meth:`local_skew`).
        """
        ratios = []
        for sid, w in user.utilities.items():
            load = user.load(sid, measure)
            if load > 0:
                ratio = w / load
                if math.isfinite(ratio):
                    ratios.append(ratio)
        return ratios

    def local_skew(self) -> float:
        """The local skew ``α`` of the instance (paper §3).

        For each user ``u`` and capacity measure ``j``, the local skew of
        ``u`` at ``j`` is the ratio between the largest and smallest
        cost-benefit ratios ``w_u(S)/k^u_j(S)`` over streams with
        positive utility.  ``α`` is the maximum over all users and
        measures; ``α = 1`` iff every user's loads are proportional to
        his utilities.

        Streams with positive utility but **zero** load are excluded
        (their cost-benefit ratio is infinite; the classify-and-select
        reduction of §3 places them in a dedicated "free" class instead
        of letting them blow up ``α``).
        """
        from repro.core.indexed import index_instance, local_skew_indexed

        return local_skew_indexed(index_instance(self))

    def has_free_pairs(self) -> bool:
        """True if some (user, stream) pair has positive utility and zero load
        on some measure while other streams load that measure positively."""
        from repro.core.indexed import has_free_pairs_indexed, index_instance

        return has_free_pairs_indexed(index_instance(self))

    def is_unit_skew(self, rtol: float = 1e-9) -> bool:
        """True when every user's loads are proportional to his utilities.

        Under unit skew the paper replaces user capacities with utility
        caps (``§2 Preliminaries``): after normalization either
        ``w_u(S) = k_u(S)`` or ``w_u(S) = 0``.
        """
        from repro.core.indexed import index_instance, is_unit_skew_indexed

        return is_unit_skew_indexed(index_instance(self), rtol=rtol)

    def global_skew(self) -> float:
        """The global skew ``γ`` of the instance (paper §5, eq. (1)).

        Each cost function — server budgets and per-user virtual budgets
        (capacity measures) — may be scaled independently (scaling a
        cost together with its budget leaves the problem unchanged), so
        the smallest ``γ`` satisfying eq. (1) is the **per-measure**
        spread between the best and worst utility-per-unit-cost::

            γ = max_i  (max_S Σ_{u∈supp(S)} w_u(S) / c_i(S))
                     / (min_S min_{u∈supp(S)} w_u(S) / c_i(S))

        where both extrema range over streams with ``c_i(S) > 0`` and
        nonempty support (the binding sets ``X`` of eq. (1) are the full
        support at the top and a singleton of minimum utility at the
        bottom).  Measures that no stream loads positively contribute
        nothing; an instance with no positive costs at all has ``γ = 1``.
        """
        from repro.core.indexed import global_skew_indexed, index_instance

        return global_skew_indexed(index_instance(self))

    # ------------------------------------------------------------------
    # Rebuilding helpers used by the reductions
    # ------------------------------------------------------------------

    def with_utilities(
        self,
        utilities: Mapping[str, Mapping[str, float]],
        loads: "Mapping[str, Mapping[str, tuple[float, ...]]] | None" = None,
        utility_caps: "Mapping[str, float] | None" = None,
        capacities: "Mapping[str, tuple[float, ...]] | None" = None,
        name: str = "",
    ) -> "MMDInstance":
        """Clone this instance with replaced user-side data.

        ``utilities[user_id]`` replaces the user's sparse utility map
        (zero/absent entries are dropped); loads, utility caps and
        capacities are optionally replaced per user.  Streams and server
        budgets are shared (they are immutable).
        """
        new_users = []
        for u in self.users:
            new_util = {
                sid: w for sid, w in utilities.get(u.user_id, u.utilities).items() if w > 0
            }
            if loads is not None and u.user_id in loads:
                new_loads = {
                    sid: vec for sid, vec in loads[u.user_id].items() if sid in new_util
                }
            else:
                new_loads = {sid: vec for sid, vec in u.loads.items() if sid in new_util}
            new_cap = u.utility_cap if utility_caps is None else utility_caps.get(u.user_id, u.utility_cap)
            new_caps = u.capacities if capacities is None else capacities.get(u.user_id, u.capacities)
            new_users.append(
                User(
                    user_id=u.user_id,
                    utility_cap=new_cap,
                    capacities=new_caps,
                    utilities=new_util,
                    loads=new_loads,
                    attrs=u.attrs,
                )
            )
        return MMDInstance(self.streams, new_users, self.budgets, name=name or self.name)

    def restrict_streams(self, stream_ids: Iterable[str], name: str = "") -> "MMDInstance":
        """Sub-instance over a subset of streams."""
        keep = set(stream_ids)
        unknown = keep - set(self._stream_by_id)
        if unknown:
            raise ValidationError(f"unknown stream ids {sorted(unknown)!r}")
        streams = [s for s in self.streams if s.stream_id in keep]
        users = [
            User(
                user_id=u.user_id,
                utility_cap=u.utility_cap,
                capacities=u.capacities,
                utilities={sid: w for sid, w in u.utilities.items() if sid in keep},
                loads={sid: vec for sid, vec in u.loads.items() if sid in keep},
                attrs=u.attrs,
            )
            for u in self.users
        ]
        return MMDInstance(streams, users, self.budgets, name=name or self.name)

    # ------------------------------------------------------------------
    # Serialization
    # ------------------------------------------------------------------

    def to_dict(self) -> dict:
        """Plain-dict form (JSON-safe apart from infinities, which become the
        string ``"inf"``)."""

        def num(x: float) -> "float | str":
            return "inf" if math.isinf(x) else x

        return {
            "name": self.name,
            "budgets": [num(b) for b in self.budgets],
            "streams": [
                {
                    "stream_id": s.stream_id,
                    "costs": list(s.costs),
                    "name": s.name,
                    "attrs": dict(s.attrs),
                }
                for s in self.streams
            ],
            "users": [
                {
                    "user_id": u.user_id,
                    "utility_cap": num(u.utility_cap),
                    "capacities": [num(k) for k in u.capacities],
                    "utilities": dict(u.utilities),
                    "loads": {sid: list(vec) for sid, vec in u.loads.items()},
                    "attrs": dict(u.attrs),
                }
                for u in self.users
            ],
        }

    @classmethod
    def from_dict(cls, data: Mapping) -> "MMDInstance":
        """Inverse of :meth:`to_dict`."""

        def num(x: "float | str") -> float:
            return math.inf if x == "inf" else float(x)

        streams = [
            Stream(
                stream_id=s["stream_id"],
                costs=tuple(s["costs"]),
                name=s.get("name", ""),
                attrs=s.get("attrs", {}),
            )
            for s in data["streams"]
        ]
        users = [
            User(
                user_id=u["user_id"],
                utility_cap=num(u["utility_cap"]),
                capacities=tuple(num(k) for k in u["capacities"]),
                utilities={sid: float(w) for sid, w in u["utilities"].items()},
                loads={sid: tuple(vec) for sid, vec in u.get("loads", {}).items()},
                attrs=u.get("attrs", {}),
            )
            for u in data["users"]
        ]
        budgets = tuple(num(b) for b in data["budgets"])
        return cls(streams, users, budgets, name=data.get("name", ""))

    def to_json(self) -> str:
        """JSON form of :meth:`to_dict`."""
        return json.dumps(self.to_dict(), sort_keys=True)

    @classmethod
    def from_json(cls, text: str) -> "MMDInstance":
        return cls.from_dict(json.loads(text))

    def __getstate__(self) -> dict:
        # The lazily-built indexed lowering (repro.core.indexed) holds
        # large numpy arrays; re-derive it after unpickling instead of
        # shipping it across process boundaries.
        state = self.__dict__.copy()
        state.pop("_indexed_cache", None)
        return state

    def __repr__(self) -> str:
        return (
            f"MMDInstance(name={self.name!r}, |S|={self.num_streams}, "
            f"|U|={self.num_users}, m={self.m}, mc={self.mc})"
        )

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, MMDInstance):
            return NotImplemented
        return self.to_dict() == other.to_dict()

    def __hash__(self) -> int:
        return hash(self.to_json())


# ----------------------------------------------------------------------
# Convenience constructors
# ----------------------------------------------------------------------


def smd_instance(
    stream_costs: Mapping[str, float],
    budget: float,
    utilities: Mapping[str, Mapping[str, float]],
    utility_caps: Mapping[str, float],
    loads: "Mapping[str, Mapping[str, float]] | None" = None,
    capacities: "Mapping[str, float] | None" = None,
    name: str = "",
) -> MMDInstance:
    """Build a Single-budget Multi-client Distribution instance.

    Parameters
    ----------
    stream_costs:
        ``stream_id -> c(S)``.
    budget:
        The single server budget ``B``.
    utilities:
        ``user_id -> {stream_id -> w_u(S)}`` (positive entries only).
    utility_caps:
        ``user_id -> W_u``.
    loads:
        Optional ``user_id -> {stream_id -> k_u(S)}``; defaults to loads
        equal to utilities (unit skew).
    capacities:
        Optional ``user_id -> K_u``; defaults to the utility cap
        (the unit-skew convention of §2: ``W_u = K_u``).
    """
    streams = [Stream(sid, (c,)) for sid, c in stream_costs.items()]
    users = []
    for uid, util in utilities.items():
        cap = utility_caps[uid]
        if loads is not None and uid in loads:
            user_loads = {sid: (k,) for sid, k in loads[uid].items() if util.get(sid, 0) > 0}
        else:
            user_loads = {sid: (w,) for sid, w in util.items() if w > 0}
        capacity = capacities[uid] if capacities is not None and uid in capacities else cap
        users.append(
            User(
                user_id=uid,
                utility_cap=cap,
                capacities=(capacity,),
                utilities={sid: w for sid, w in util.items() if w > 0},
                loads=user_loads,
            )
        )
    return MMDInstance(streams, users, (budget,), name=name)


def unit_skew_instance(
    stream_costs: Mapping[str, float],
    budget: float,
    utilities: Mapping[str, Mapping[str, float]],
    utility_caps: Mapping[str, float],
    name: str = "",
) -> MMDInstance:
    """SMD instance in the §2 unit-skew setting: loads equal utilities and
    capacities equal utility caps, so the only user-side constraint is
    the utility cap ``W_u``."""
    return smd_instance(stream_costs, budget, utilities, utility_caps, name=name)


def sanitize_utilities(instance: MMDInstance) -> MMDInstance:
    """Zero out utilities that the paper's convention requires to be zero.

    For each user ``u`` and stream ``S`` with ``k^u_j(S) > K^u_j`` for
    some ``j``, set ``w_u(S) = 0`` (drop the entry).  Returns a new
    instance; the input is unchanged.
    """
    new_utilities: dict[str, dict[str, float]] = {}
    for u in instance.users:
        keep = {}
        for sid, w in u.utilities.items():
            vec = u.load_vector(sid)
            if all(load <= cap * (1 + FEASIBILITY_RTOL) for load, cap in zip(vec, u.capacities)):
                keep[sid] = w
        new_utilities[u.user_id] = keep
    return instance.with_utilities(new_utilities, name=instance.name)
