"""Core algorithms and data model for Multi-budget Multi-client Distribution.

This subpackage implements the paper's primary contribution:

- :mod:`repro.core.instance` — the MMD/SMD problem data model (paper §1.1).
- :mod:`repro.core.assignment` — assignments, feasibility, capped utility.
- :mod:`repro.core.utility` — the submodular coverage utility (Lemma 2.1).
- :mod:`repro.core.greedy` — Algorithm *Greedy* and its fixes (§2.1–2.2).
- :mod:`repro.core.enumeration` — partial enumeration (§2.3).
- :mod:`repro.core.skew` — classify-and-select over skew classes (§3).
- :mod:`repro.core.reduction` — MMD→SMD reduction and the interval
  decomposition output transformation (§4.1, Fig. 3).
- :mod:`repro.core.allocate` — online Algorithm *Allocate* (§5).
- :mod:`repro.core.solver` — end-to-end solvers (Theorems 1.1 and 1.2).
- :mod:`repro.core.optimal` — exact MILP / brute-force solvers and LP bound.
- :mod:`repro.core.baselines` — threshold admission control and other
  utility-blind baselines the paper argues against.
- :mod:`repro.core.submodular` — generic monotone submodular maximization
  under knapsack constraints (the paper's closing remark of §4.1).
"""

from repro.core.assignment import Assignment
from repro.core.instance import MMDInstance, Stream, User, smd_instance, unit_skew_instance

__all__ = [
    "Assignment",
    "MMDInstance",
    "Stream",
    "User",
    "smd_instance",
    "unit_skew_instance",
]
