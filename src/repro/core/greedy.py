"""Algorithm *Greedy* for single-budget SMD and its fixes (paper §2).

The §2 setting: a single server budget ``B``, and unit local skew, so the
only user-side datum that matters is the utility bound ``W_u`` (under unit
skew the capacity constraint coincides with the utility cap; see the
paper's "Preliminaries" of §2).  The functions here therefore interpret an
instance through its utilities and utility caps only; callers that start
from capacity-constrained instances reach this module through the
classify-and-select reduction of :mod:`repro.core.skew`, which builds
bucket instances in exactly this setting.

Provided algorithms:

- :func:`greedy` — Algorithm 1 verbatim: iteratively add the stream of
  maximum cost effectiveness ``w̄^A(S)/c(S)``; the result is
  *semi-feasible* (server budget holds; users may be oversaturated by
  their last stream, with utility counted capped).  Runs in
  ``O(|S|·n)`` via incremental residual maintenance, matching the
  paper's complexity analysis.
- :func:`greedy_lazy` — same algorithm with a lazy priority queue
  (valid because residual utilities are monotone nonincreasing); same
  utility, often faster.
- :func:`best_single_stream_assignment` — ``A_max`` of §2.2.
- :func:`greedy_with_best_stream` — Lemma 2.6's ``Ã``: the better of
  Greedy and ``A_max``; semi-feasible with ratio ``2e/(e-1)``
  (feasible under the resource augmentation of Corollary 2.7).
- :func:`greedy_feasible` — Theorem 2.8: split the greedy assignment
  into ``A_1`` (all but each user's last stream) and ``A_2`` (each
  user's last stream), return the best of ``A_1``, ``A_2``, ``A_max``;
  fully feasible with ratio ``3e/(e-1)``.
"""

from __future__ import annotations

import heapq
import math
from dataclasses import dataclass, field

from repro.core.assignment import Assignment, best_assignment
from repro.core.indexed import (
    best_single_stream_kernel,
    greedy_kernel,
    index_instance,
    resolve_engine,
)
from repro.core.instance import FEASIBILITY_RTOL, MMDInstance
from repro.exceptions import ValidationError

#: ``e/(e-1)`` — the submodular-greedy constant.
E_RATIO = math.e / (math.e - 1.0)
#: Lemma 2.6 / Theorem 2.10 semi-feasible (or augmented) factor.
SEMI_FEASIBLE_FACTOR = 2.0 * math.e / (math.e - 1.0)
#: Theorem 2.8 feasible factor for the O(n^2) algorithm.
FEASIBLE_FACTOR = 3.0 * math.e / (math.e - 1.0)


def _require_single_budget(instance: MMDInstance) -> None:
    if instance.m != 1:
        raise ValidationError(
            f"greedy requires a single server budget (m=1), got m={instance.m}; "
            "use repro.core.reduction.reduce_to_single_budget first"
        )


@dataclass
class GreedyTrace:
    """The result of a greedy run, with enough history for the §2.2 fixes.

    Attributes
    ----------
    assignment:
        The (semi-feasible) greedy assignment ``A``.
    order:
        ``(stream_id, receivers)`` pairs in assignment order; receivers
        lists the users whose residual utility was positive when the
        stream was added.
    rejected_for_budget:
        Streams whose residual utility was positive but whose cost would
        have exceeded the remaining budget when considered (the paper's
        ``S_{k+1}`` is the first of these that belongs to the reference
        solution).
    total_cost:
        ``c(A)`` at termination.
    """

    assignment: Assignment
    order: "list[tuple[str, tuple[str, ...]]]" = field(default_factory=list)
    rejected_for_budget: "list[str]" = field(default_factory=list)
    total_cost: float = 0.0

    def last_stream_of(self) -> "dict[str, str]":
        """For each user that received anything: the last stream assigned."""
        last: dict[str, str] = {}
        for sid, receivers in self.order:
            for uid in receivers:
                last[uid] = sid
        return last


class _GreedyState:
    """Incremental residual-utility bookkeeping shared by both variants.

    Maintains, for the current partial assignment:

    - ``headroom[u] = W_u - w_u(A)`` (may go negative once, when a user
      is saturated by his final stream);
    - ``wbar[S] = w̄^A(S)`` for every not-yet-considered stream.

    Assigning a stream updates both in ``O(Σ_{u∈receivers} deg(u))``
    total work, which is what yields the paper's ``O(|S|·n)`` bound.
    """

    def __init__(self, instance: MMDInstance) -> None:
        self.instance = instance
        self.headroom: dict[str, float] = {
            u.user_id: u.utility_cap for u in instance.users
        }
        # stream -> [(user_id, w_u(S))] over positive utilities
        self.interested: dict[str, list[tuple[str, float]]] = {
            s.stream_id: [] for s in instance.streams
        }
        # user -> [(stream_id, w_u(S))]
        self.user_streams: dict[str, list[tuple[str, float]]] = {}
        for u in instance.users:
            pairs = list(u.utilities.items())
            self.user_streams[u.user_id] = pairs
            for sid, w in pairs:
                self.interested[sid].append((u.user_id, w))
        self.candidates: set[str] = {s.stream_id for s in instance.streams}
        self.wbar: dict[str, float] = {}
        for sid in self.candidates:
            self.wbar[sid] = sum(
                min(w, max(self.headroom[uid], 0.0))
                for uid, w in self.interested[sid]
            )

    def effectiveness(self, sid: str) -> float:
        """Cost effectiveness ``w̄^A(S)/c(S)`` (``inf`` for free streams)."""
        wbar = self.wbar[sid]
        cost = self.instance.stream(sid).costs[0]
        if cost == 0.0:
            return math.inf if wbar > 0.0 else 0.0
        return wbar / cost

    def assign(self, sid: str, assignment: Assignment) -> "tuple[str, ...]":
        """Add ``sid`` to every user with positive residual; update state."""
        receivers = []
        for uid, w in self.interested[sid]:
            old_r = self.headroom[uid]
            if old_r <= 0.0:
                continue
            assignment.add(uid, sid)
            receivers.append(uid)
            new_r = old_r - w
            self.headroom[uid] = new_r
            old_clip = old_r  # == max(old_r, 0) since old_r > 0
            new_clip = max(new_r, 0.0)
            if old_clip != new_clip:
                for sid2, w2 in self.user_streams[uid]:
                    if sid2 in self.candidates and sid2 != sid:
                        self.wbar[sid2] += min(w2, new_clip) - min(w2, old_clip)
        return tuple(receivers)

    def drop(self, sid: str) -> None:
        self.candidates.discard(sid)
        self.wbar.pop(sid, None)


def greedy(
    instance: MMDInstance,
    initial_streams: "tuple[str, ...]" = (),
    budget: "float | None" = None,
    engine: "str | None" = None,
) -> GreedyTrace:
    """Algorithm 1 (*Greedy*) of §2.1.

    Parameters
    ----------
    instance:
        A single-budget instance (``m = 1``); interpreted in the §2
        setting (user constraint = utility cap).
    initial_streams:
        Streams assigned unconditionally first (used by the partial
        enumeration of §2.3); their cost counts against the budget.
    budget:
        Optional budget override (used by resource-augmentation
        experiments); defaults to ``B_1``.
    engine:
        ``"indexed"`` (default) runs the vectorized single-pick kernel
        of :mod:`repro.core.indexed`; ``"batched"`` runs the multi-pick
        round kernel of :mod:`repro.core.batched`; ``"numba"`` runs the
        JIT-compiled single-pick loop (requires the optional ``numba``
        extra); ``"dict"`` runs the original string-keyed
        implementation.  All engines produce bit-identical traces; the
        default may be overridden with ``$REPRO_ENGINE``.

    Returns a :class:`GreedyTrace` whose assignment is semi-feasible:
    the server budget holds, and each user may exceed his utility cap
    only by his final stream (utility is counted capped).
    """
    _require_single_budget(instance)
    resolved = resolve_engine(engine)
    if resolved != "dict":
        return _greedy_indexed(instance, initial_streams, budget, resolved)
    cap = instance.budgets[0] if budget is None else budget
    state = _GreedyState(instance)
    assignment = Assignment(instance)
    trace = GreedyTrace(assignment)
    for sid in initial_streams:
        if sid not in state.candidates:
            raise ValidationError(f"initial stream {sid!r} unknown or repeated")
        receivers = state.assign(sid, assignment)
        trace.order.append((sid, receivers))
        trace.total_cost += instance.stream(sid).costs[0]
        state.drop(sid)
    if trace.total_cost > cap * (1 + FEASIBILITY_RTOL):
        raise ValidationError("initial streams already exceed the budget")

    while state.candidates:
        # argmax of effectiveness, ties broken by larger residual then id.
        best_sid = min(
            state.candidates,
            key=lambda s: (-state.effectiveness(s), -state.wbar[s], s),
        )
        if state.wbar[best_sid] <= 0.0:
            break  # every remaining stream would be assigned to nobody
        cost = instance.stream(best_sid).costs[0]
        if trace.total_cost + cost <= cap * (1 + FEASIBILITY_RTOL):
            receivers = state.assign(best_sid, assignment)
            trace.order.append((best_sid, receivers))
            trace.total_cost += cost
        else:
            trace.rejected_for_budget.append(best_sid)
        state.drop(best_sid)
    return trace


def _greedy_indexed(
    instance: MMDInstance,
    initial_streams: "tuple[str, ...]",
    budget: "float | None",
    engine: str = "indexed",
) -> GreedyTrace:
    """Vectorized Greedy: lower once, run a CSR kernel, lift the trace.

    All array-native engines share this lowering; ``engine`` picks the
    kernel (single-pick, multi-pick batched, or JIT-compiled).
    """
    cap = instance.budgets[0] if budget is None else budget
    idx = index_instance(instance)
    initial: "list[int]" = []
    seen: set[str] = set()
    for sid in initial_streams:
        if sid in seen or sid not in idx.stream_index:
            raise ValidationError(f"initial stream {sid!r} unknown or repeated")
        seen.add(sid)
        initial.append(idx.stream_index[sid])
    if engine == "batched":
        from repro.core.batched import greedy_kernel_batched

        kernel = greedy_kernel_batched
    elif engine == "numba":
        from repro.core.batched import greedy_kernel_numba

        kernel = greedy_kernel_numba
    else:
        kernel = greedy_kernel
    order, rejected, total_cost = kernel(idx, cap, initial)
    assignment = Assignment(instance)
    trace = GreedyTrace(assignment)
    for k, receivers in order:
        sid = idx.stream_ids[k]
        uids = tuple(idx.user_ids_of(receivers))
        assignment.assign_stream(sid, uids)
        trace.order.append((sid, uids))
    trace.rejected_for_budget = idx.stream_ids_of(rejected)
    trace.total_cost = total_cost
    return trace


def greedy_lazy(
    instance: MMDInstance,
    initial_streams: "tuple[str, ...]" = (),
    budget: "float | None" = None,
) -> GreedyTrace:
    """Lazy-heap variant of :func:`greedy`.

    Residual utilities only decrease as the assignment grows (the
    coverage utility is submodular, Lemma 2.1), so a stale heap entry
    whose recomputed effectiveness still tops the heap is a valid
    argmax.  Produces the same utility as :func:`greedy`; the selection
    order may differ between tied streams.
    """
    _require_single_budget(instance)
    cap = instance.budgets[0] if budget is None else budget
    state = _GreedyState(instance)
    assignment = Assignment(instance)
    trace = GreedyTrace(assignment)
    for sid in initial_streams:
        if sid not in state.candidates:
            raise ValidationError(f"initial stream {sid!r} unknown or repeated")
        receivers = state.assign(sid, assignment)
        trace.order.append((sid, receivers))
        trace.total_cost += instance.stream(sid).costs[0]
        state.drop(sid)
    if trace.total_cost > cap * (1 + FEASIBILITY_RTOL):
        raise ValidationError("initial streams already exceed the budget")

    heap: "list[tuple[float, float, str]]" = [
        (-state.effectiveness(sid), -state.wbar[sid], sid) for sid in state.candidates
    ]
    heapq.heapify(heap)
    while heap:
        neg_eff, neg_wbar, sid = heapq.heappop(heap)
        if sid not in state.candidates:
            continue
        current_wbar = state.wbar[sid]
        if current_wbar != -neg_wbar:
            # Stale: residual decreased since the entry was pushed.
            heapq.heappush(heap, (-state.effectiveness(sid), -current_wbar, sid))
            continue
        if current_wbar <= 0.0:
            break
        cost = instance.stream(sid).costs[0]
        if trace.total_cost + cost <= cap * (1 + FEASIBILITY_RTOL):
            receivers = state.assign(sid, assignment)
            trace.order.append((sid, receivers))
            trace.total_cost += cost
        else:
            trace.rejected_for_budget.append(sid)
        state.drop(sid)
    return trace


def best_single_stream_assignment(
    instance: MMDInstance, engine: "str | None" = None
) -> Assignment:
    """``A_max`` (§2.2): the best single transmitted stream, assigned to
    every interested user.

    Always feasible at the server (the paper assumes ``c_i(S) <= B_i``).
    """
    _require_single_budget(instance)
    if resolve_engine(engine) != "dict":
        idx = index_instance(instance)
        k, best_value = best_single_stream_kernel(idx, lexicographic_ties=True)
        a = Assignment(instance)
        if k >= 0 and best_value > 0:
            a.add_stream_to_all(idx.stream_ids[k])
        return a
    best_sid = None
    best_value = -1.0
    for s in instance.streams:
        value = 0.0
        for u in instance.users:
            w = u.utilities.get(s.stream_id, 0.0)
            value += min(w, u.utility_cap)
        if value > best_value or (value == best_value and best_sid is not None and s.stream_id < best_sid):
            best_sid, best_value = s.stream_id, value
    a = Assignment(instance)
    if best_sid is not None and best_value > 0:
        a.add_stream_to_all(best_sid)
    return a


def greedy_with_best_stream(
    instance: MMDInstance, engine: "str | None" = None
) -> Assignment:
    """Lemma 2.6's ``Ã``: the better of Greedy and ``A_max``.

    Semi-feasible, with ``w(Ã) >= (e-1)/2e · OPT``; feasible when user
    capacities are augmented by one stream (Corollary 2.7).
    """
    trace = greedy(instance, engine=engine)
    return best_assignment(
        [trace.assignment, best_single_stream_assignment(instance, engine=engine)]
    )


def greedy_feasible(instance: MMDInstance, engine: "str | None" = None) -> Assignment:
    """Theorem 2.8: the feasible ``3e/(e-1)``-approximation.

    Splits the greedy assignment per user into all-but-last (``A_1``)
    and last-only (``A_2``) streams — each feasible, because a user is
    oversaturated only by his final stream — and returns the best of
    ``A_1``, ``A_2`` and ``A_max`` by (capped) utility.
    """
    trace = greedy(instance, engine=engine)
    last = trace.last_stream_of()
    a1 = Assignment(instance)
    a2 = Assignment(instance)
    for u in instance.users:
        streams = trace.assignment.streams_of(u.user_id)
        final = last.get(u.user_id)
        for sid in streams:
            if sid == final:
                a2.add(u.user_id, sid)
            else:
                a1.add(u.user_id, sid)
    return best_assignment(
        [a1, a2, best_single_stream_assignment(instance, engine=engine)]
    )
