"""Retrying client for the admission service.

Production-shaped failure handling in ~150 lines of stdlib asyncio:

- **timeouts** on every round trip (``asyncio.wait_for``);
- **capped exponential backoff with jitter** between retries — the
  jitter source is a seeded :class:`random.Random`, so client behavior
  in tests and benchmarks is reproducible;
- **idempotency-key reuse**: a key is chosen once per logical call and
  resent verbatim on every retry, so a request whose acknowledgement
  was lost (injected or organic) is deduplicated server-side instead
  of double-executing;
- **Retry-After compliance**: a ``503`` shed response waits the
  server's hint (still jittered, still counted against the retry
  budget) before trying again.

:func:`http_call` is the synchronous one-shot sibling used by the CLI
(health/stats probes) and by subprocess tests that just need a single
request without an event loop.
"""

from __future__ import annotations

import asyncio
import json
import random
import socket
from dataclasses import dataclass

from repro.exceptions import ValidationError
from repro.serve.faults import FaultPlan
from repro.serve.service import ServeFailure


@dataclass(frozen=True)
class BackoffPolicy:
    """Capped exponential backoff with full jitter.

    Attributes
    ----------
    base:
        First-retry delay (seconds); doubles each attempt.
    cap:
        Upper bound on any single delay.
    retries:
        Retry budget per logical call (total attempts = retries + 1).
    """

    base: float = 0.05
    cap: float = 1.0
    retries: int = 6

    def delay(self, attempt: int, rng: random.Random) -> float:
        """Jittered delay before retry ``attempt`` (0-based)."""
        ceiling = min(self.cap, self.base * (2.0 ** attempt))
        return ceiling * (0.5 + 0.5 * rng.random())


def _encode_request(
    method: str, path: str, payload: "dict[str, object] | None"
) -> bytes:
    """Serialize one JSON request as HTTP/1.1 bytes (keep-alive)."""
    body = b"" if payload is None else json.dumps(payload).encode()
    lines = [
        f"{method} {path} HTTP/1.1",
        "Host: repro-serve",
        "Content-Type: application/json",
        f"Content-Length: {len(body)}",
        "Connection: keep-alive",
    ]
    return ("\r\n".join(lines) + "\r\n\r\n").encode() + body


def _parse_head(head: bytes) -> "tuple[int, dict[str, str]]":
    """HTTP response head → (status, lowercase headers)."""
    try:
        status_line, *header_lines = head.decode("latin-1").split("\r\n")
        status = int(status_line.split(" ", 2)[1])
    except (ValueError, IndexError):
        raise ValidationError("malformed HTTP response head") from None
    headers: "dict[str, str]" = {}
    for line in header_lines:
        if not line:
            continue
        name, _, value = line.partition(":")
        headers[name.strip().lower()] = value.strip()
    return status, headers


class ServeClient:
    """Asyncio client with timeouts, backoff + jitter, idempotent retries."""

    def __init__(
        self,
        host: str,
        port: int,
        *,
        timeout: float = 5.0,
        backoff: "BackoffPolicy | None" = None,
        seed: int = 0,
        fault_plan: "FaultPlan | None" = None,
    ) -> None:
        self.host = host
        self.port = int(port)
        self.timeout = float(timeout)
        self.backoff = backoff or BackoffPolicy()
        self._rng = random.Random(int(seed))
        self.fault_plan = fault_plan
        self._reader: "asyncio.StreamReader | None" = None
        self._writer: "asyncio.StreamWriter | None" = None
        self._key_counter = 0
        self.retried = 0
        #: Every jittered wait this client has slept (retry backoff and
        #: shed Retry-After waits alike), in order.  Pure function of the
        #: seed and the observed failure sequence — the determinism test
        #: asserts two same-seed clients produce identical schedules.
        self.backoff_delays: "list[float]" = []

    # ------------------------------------------------------------------
    # Public operations
    # ------------------------------------------------------------------

    async def offer(
        self, stream: "str | int", *, key: "str | None" = None
    ) -> "dict[str, object]":
        """Offer a stream (retried; at-most-once via the idempotency key)."""
        key = key if key is not None else self._fresh_key("offer")
        return await self._request("POST", "/offer", {"stream": stream, "key": key})

    async def release(
        self, stream: "str | int", *, key: "str | None" = None
    ) -> "dict[str, object]":
        """Release a stream (retried; at-most-once via the idempotency key)."""
        key = key if key is not None else self._fresh_key("release")
        return await self._request("POST", "/release", {"stream": stream, "key": key})

    async def stats(self) -> "dict[str, object]":
        """Fetch the server's operational summary."""
        return await self._request("GET", "/stats", None)

    async def health(self) -> "dict[str, object]":
        """Fetch the liveness probe."""
        return await self._request("GET", "/health", None)

    async def close(self) -> None:
        """Close the persistent connection (idempotent)."""
        if self._writer is not None:
            self._writer.close()
            try:
                await self._writer.wait_closed()
            except (ConnectionError, OSError):
                pass
        self._reader = self._writer = None

    def _fresh_key(self, op: str) -> str:
        """Mint a per-call idempotency key (stable across its retries)."""
        self._key_counter += 1
        return f"{op}-c{self._key_counter:08d}-{self._rng.getrandbits(32):08x}"

    # ------------------------------------------------------------------
    # Transport
    # ------------------------------------------------------------------

    async def _request(
        self, method: str, path: str, payload: "dict[str, object] | None"
    ) -> "dict[str, object]":
        """One logical call: round trips until success or budget exhausted."""
        last_error: "BaseException | None" = None
        for attempt in range(self.backoff.retries + 1):
            if attempt:
                self.retried += 1
                delay = self.backoff.delay(attempt - 1, self._rng)
                self.backoff_delays.append(delay)
                await asyncio.sleep(delay)
            duplicate = (
                self.fault_plan is not None
                and method == "POST"
                and self.fault_plan.on_request() == "duplicate"
            )
            try:
                if duplicate:
                    # Injected transport fault: the same request arrives
                    # twice; the idempotency key makes it execute once.
                    await asyncio.wait_for(
                        self._roundtrip(method, path, payload), self.timeout
                    )
                status, headers, body = await asyncio.wait_for(
                    self._roundtrip(method, path, payload), self.timeout
                )
            except (OSError, asyncio.TimeoutError, asyncio.IncompleteReadError,
                    ConnectionError) as exc:
                last_error = exc
                await self.close()
                continue
            if status == 503:
                hint = float(body.get("retry_after") or headers.get(
                    "retry-after", 0.0) or 0.0)
                last_error = ServeFailure(body.get("error", "overloaded"))
                if hint > 0:
                    wait = min(hint, self.backoff.cap) * (
                        0.5 + 0.5 * self._rng.random()
                    )
                    self.backoff_delays.append(wait)
                    await asyncio.sleep(wait)
                continue
            if status == 400:
                raise ValidationError(str(body.get("error", "bad request")))
            if status != 200:
                raise ServeFailure(
                    f"{method} {path} failed with HTTP {status}: "
                    f"{body.get('error', body)}"
                )
            return body
        raise ServeFailure(
            f"{method} {path} still failing after {self.backoff.retries} retries: "
            f"{last_error}"
        )

    async def _roundtrip(
        self, method: str, path: str, payload: "dict[str, object] | None"
    ) -> "tuple[int, dict[str, str], dict[str, object]]":
        """Send one request on the persistent connection; parse the response."""
        if self._writer is None:
            self._reader, self._writer = await asyncio.open_connection(
                self.host, self.port
            )
        self._writer.write(_encode_request(method, path, payload))
        await self._writer.drain()
        head = await self._reader.readuntil(b"\r\n\r\n")
        status, headers = _parse_head(head)
        length = int(headers.get("content-length", "0") or "0")
        raw = await self._reader.readexactly(length) if length else b""
        try:
            body = json.loads(raw.decode() or "{}")
        except (UnicodeDecodeError, json.JSONDecodeError):
            body = {"error": "undecodable response body"}
        if headers.get("connection") == "close":
            await self.close()
        return status, headers, body


def http_call(
    host: str,
    port: int,
    method: str,
    path: str,
    payload: "dict[str, object] | None" = None,
    *,
    timeout: float = 5.0,
) -> "tuple[int, dict[str, object]]":
    """Synchronous one-shot request; returns ``(status, body)``.

    No retries — this is the CLI/test probe, not the production path.
    """
    with socket.create_connection((host, int(port)), timeout=timeout) as conn:
        request = _encode_request(method, path, payload)
        # Ask the server to close after responding so we can read to EOF.
        request = request.replace(b"Connection: keep-alive", b"Connection: close", 1)
        conn.sendall(request)
        chunks = []
        while True:
            chunk = conn.recv(65536)
            if not chunk:
                break
            chunks.append(chunk)
    raw = b"".join(chunks)
    head, _, rest = raw.partition(b"\r\n\r\n")
    status, headers = _parse_head(head + b"\r\n\r\n")
    length = int(headers.get("content-length", str(len(rest))) or "0")
    try:
        body = json.loads(rest[:length].decode() or "{}")
    except (UnicodeDecodeError, json.JSONDecodeError):
        body = {"error": "undecodable response body"}
    return status, body
