"""Crash-safe live admission service around :class:`~repro.core.allocate.OnlineAllocator`.

The paper's §5 online algorithm becomes a *system* here: a long-lived
asyncio HTTP/JSON service whose every state-changing decision is
durable, idempotent, chaos-tested, and shed-instead-of-queued under
overload.

Layers (one module each):

- :mod:`repro.serve.wal` — the append-only decision WAL: one
  checksummed JSONL record per state-changing offer/release, fsync'd
  per append, torn tails repaired loudly;
- :mod:`repro.serve.snapshot` — periodic atomic snapshots of the full
  allocator state (write data, then commit a checksummed manifest —
  the :mod:`repro.sim.store` pattern via :mod:`repro.util.atomic`);
- :mod:`repro.serve.service` — :class:`~repro.serve.service.AdmissionCore`,
  the durable single-writer state machine (offer / release /
  idempotency / snapshot / restore);
- :mod:`repro.serve.faults` — the deterministic, seedable
  fault-injection harness (latency, torn writes, fsync failures,
  simulated crashes and power loss, dropped/duplicated requests);
- :mod:`repro.serve.shard` — stream-hash sharding: N admission workers
  (each a full core + WAL + snapshots) behind one router, with
  cross-shard **barrier snapshots** under a single root manifest;
- :mod:`repro.serve.http` — the asyncio HTTP/1.1 front door with
  per-shard single-writer workers, **group-commit** WAL batching (one
  fsync per batch, acknowledgements strictly after the shared sync), a
  bounded admission queue and explicit load shedding;
- :mod:`repro.serve.client` — a retrying client (timeouts, capped
  exponential backoff with jitter, idempotency-key reuse);
- :mod:`repro.serve.replay` — the trace driver used by the chaos suite
  and the throughput benchmark (simulator-identical decision order,
  crash-resumable stitching).

Restore contract: ``snapshot + WAL tail`` replayed onto a fresh
allocator is **bit-identical** (``state_digest`` equality, and
``resync_charges()`` still a no-op) to the uninterrupted allocator —
fuzzed under injected crashes and real ``SIGKILL`` in
``tests/test_serve_chaos.py``.
"""

from __future__ import annotations

from repro.serve.faults import (
    FaultPlan,
    InjectedCrash,
    InjectedFault,
    InjectedFsyncError,
)
from repro.serve.service import AdmissionCore, ServeConfig, ServeFailure
from repro.serve.shard import (
    ShardedAdmissionCore,
    merged_digest,
    open_service,
    route_stream_id,
)
from repro.serve.wal import DecisionWal, read_wal, repair_wal

__all__ = [
    "AdmissionCore",
    "ShardedAdmissionCore",
    "ServeConfig",
    "ServeFailure",
    "DecisionWal",
    "read_wal",
    "repair_wal",
    "route_stream_id",
    "merged_digest",
    "open_service",
    "FaultPlan",
    "InjectedFault",
    "InjectedCrash",
    "InjectedFsyncError",
]
