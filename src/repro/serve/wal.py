"""Append-only decision WAL for the admission service.

One JSONL record per *state-changing* operation (offers — admissions
and rejections both mutate allocator state — and releases).  Each
record carries a dense sequence number and a CRC32 of its own body, and
is flushed (and by default ``fsync``'d) before the operation is
acknowledged, so an acknowledged decision survives process death.

Recovery reads the log back with :func:`read_wal`, which distinguishes
the two failure shapes loudly:

- a **torn tail** — the final record was cut mid-write by a crash or
  power loss.  :func:`repair_wal` truncates the file back to the last
  complete record; the lost operation was never acknowledged and is
  simply re-executed by the caller.
- **mid-file corruption** — a record that fails its checksum *before*
  later valid records, or a sequence-number gap.  That is never
  repairable (silently dropping an interior decision would fork the
  state machine), so it raises
  :class:`~repro.exceptions.ValidationError`.

The WAL is the complete decision history of a service directory: it is
never compacted or truncated by snapshots, which lets the chaos suite
compare a kill-and-restore run's stitched decision sequence against an
uninterrupted one record-for-record.

**Group commit:** :meth:`DecisionWal.append_many` appends a whole batch
of records as one contiguous write and one ``fsync``.  Durability
semantics are unchanged — no record in the batch is acknowledged before
the shared fsync returns — and a crash mid-batch tears only the suffix:
the records before the cut are complete (repairable tail), and nothing
after the cut was ever written, so the torn-tail/mid-file distinction
above still holds exactly.
"""

from __future__ import annotations

import json
import os
import zlib
from pathlib import Path

from repro.config import SERVE_DURABILITIES
from repro.exceptions import ValidationError

#: Valid WAL durability levels (re-exported from :mod:`repro.config`,
#: which owns the arg > env > default resolution): ``fsync`` forces
#: every commit to disk before acknowledging (survives power loss);
#: ``flush`` stops at the OS page cache (survives process death —
#: e.g. SIGKILL — but not the machine losing power).
WAL_DURABILITIES = SERVE_DURABILITIES


def _body_checksum(body: "dict[str, object]") -> str:
    """CRC32 (hex) of a record body's canonical JSON form."""
    canonical = json.dumps(body, sort_keys=True).encode()
    return format(zlib.crc32(canonical), "08x")


def encode_record(body: "dict[str, object]") -> bytes:
    """Encode one WAL record body as a checksummed JSONL line.

    Serializes the body once: because ``"crc"`` sorts before every key
    the service writes (``k`` < ``key`` < ``op`` < ``seq`` < ``users``),
    splicing the checksum field into the canonical dump is byte-identical
    to re-dumping the full record with ``sort_keys=True`` — the hot
    group-commit path encodes each record with a single ``json.dumps``.
    """
    canonical = json.dumps(body, sort_keys=True)
    crc = format(zlib.crc32(canonical.encode()), "08x")
    if body and min(body) > "crc":
        return ('{"crc": "%s", ' % crc + canonical[1:] + "\n").encode()
    # A key sorting at/before "crc" (not produced by the service, but
    # this module is generic): fall back to the two-pass dump.
    record = dict(body)
    record["crc"] = crc
    return json.dumps(record, sort_keys=True).encode() + b"\n"


def decode_record(line: bytes) -> "dict[str, object]":
    """Decode one WAL line, raising ``ValidationError`` if it is damaged."""
    try:
        record = json.loads(line.decode())
    except (UnicodeDecodeError, json.JSONDecodeError) as exc:
        raise ValidationError(f"undecodable WAL record: {exc}") from None
    if not isinstance(record, dict) or "crc" not in record:
        raise ValidationError("WAL record is not a checksummed JSON object")
    crc = record.pop("crc")
    if crc != _body_checksum(record):
        raise ValidationError("WAL record failed its checksum")
    return record


class FileSink:
    """Append-only binary file with explicit durability accounting.

    Tracks ``written_bytes`` (handed to the OS) separately from
    ``synced_bytes`` (known durable via ``fsync``) so the fault harness
    can simulate power loss precisely: everything past ``synced_bytes``
    may vanish, and the in-flight suffix may additionally be torn.
    """

    def __init__(self, path: "str | Path", *, durability: str = "fsync") -> None:
        if durability not in WAL_DURABILITIES:
            raise ValidationError(
                f"unknown WAL durability {durability!r}; pick one of {WAL_DURABILITIES}"
            )
        self.path = Path(path)
        self.durability = durability
        self._handle = self.path.open("ab")
        size = self._handle.tell()
        self.written_bytes = size
        # Bytes present at open are assumed durable: recovery only ever
        # opens a sink after read/repair has validated that prefix.
        self.synced_bytes = size
        self.sync_count = 0

    def append(self, data: bytes) -> None:
        """Append ``data`` and make it durable per the sink's level.

        ``data`` may hold one record or a whole group-commit batch —
        either way it is one write, one flush, and (under ``fsync``
        durability) one fsync, which is exactly what group commit
        amortizes.  ``sync_count`` tallies the fsyncs issued so tests
        and benchmarks can assert the amortization actually happened.
        """
        self._handle.write(data)
        self._handle.flush()
        self.written_bytes += len(data)
        if self.durability == "fsync":
            os.fsync(self._handle.fileno())
            self.synced_bytes = self.written_bytes
            self.sync_count += 1

    def sync(self) -> None:
        """Force all written bytes to disk regardless of durability level."""
        self._handle.flush()
        os.fsync(self._handle.fileno())
        self.synced_bytes = self.written_bytes
        self.sync_count += 1

    def close(self) -> None:
        """Close the underlying handle (idempotent)."""
        if not self._handle.closed:
            self._handle.close()


def read_wal(
    path: "str | Path", *, what: str = "decision WAL"
) -> "tuple[list[dict[str, object]], int]":
    """Read every complete record; return ``(records, good_bytes)``.

    ``good_bytes`` is the offset of the end of the last complete record
    — the truncation point :func:`repair_wal` uses when the tail is
    torn.  A damaged record *followed by* any valid one, or a sequence
    discontinuity, is mid-file corruption and raises
    :class:`~repro.exceptions.ValidationError` instead of being
    silently dropped.
    """
    path = Path(path)
    if not path.exists():
        return [], 0
    data = path.read_bytes()
    records: "list[dict[str, object]]" = []
    good_bytes = 0
    offset = 0
    damaged_at: "int | None" = None
    while offset < len(data):
        newline = data.find(b"\n", offset)
        if newline < 0:
            # Partial final line with no terminator: torn in-flight write.
            damaged_at = offset
            break
        line = data[offset:newline]
        try:
            record = decode_record(line)
        except ValidationError:
            damaged_at = offset
            break
        if record.get("seq") != len(records):
            raise ValidationError(
                f"{what} {str(path)!r} has a sequence gap at record "
                f"{len(records)} (found seq {record.get('seq')!r}); "
                "the log is corrupt and cannot be repaired"
            )
        records.append(record)
        offset = newline + 1
        good_bytes = offset
    if damaged_at is not None:
        # Repairable only if *nothing* after the damage decodes: then it
        # is the torn tail of the final in-flight append.
        tail = data[damaged_at:]
        for probe in tail.split(b"\n"):
            if not probe:
                continue
            try:
                decode_record(probe)
            except ValidationError:
                continue
            raise ValidationError(
                f"{what} {str(path)!r} is corrupt mid-file at byte "
                f"{damaged_at}: a damaged record precedes valid ones; "
                "refusing to silently drop interior decisions"
            )
    return records, good_bytes


def repair_wal(
    path: "str | Path", *, what: str = "decision WAL"
) -> "tuple[list[dict[str, object]], int]":
    """Truncate a torn tail off the WAL; return ``(records, dropped_bytes)``.

    Safe by construction: only bytes past the last complete record are
    ever dropped, and those belong to an append that was never
    acknowledged.  Mid-file corruption still raises.
    """
    path = Path(path)
    records, good_bytes = read_wal(path, what=what)
    size = path.stat().st_size if path.exists() else 0
    dropped = size - good_bytes
    if dropped > 0:
        with path.open("r+b") as handle:
            handle.truncate(good_bytes)
            handle.flush()
            os.fsync(handle.fileno())
    return records, dropped


class DecisionWal:
    """Writer for the admission service's decision log.

    Assigns dense sequence numbers, encodes checksummed records and
    appends them through a sink (a :class:`FileSink`, or a fault-harness
    wrapper around one).  ``append`` returns only after the sink has
    made the record durable at its configured level.
    """

    def __init__(
        self,
        path: "str | Path",
        *,
        durability: str = "fsync",
        next_seq: int = 0,
        sink: "FileSink | None" = None,
    ) -> None:
        self.path = Path(path)
        self.sink = sink if sink is not None else FileSink(self.path, durability=durability)
        self.next_seq = int(next_seq)

    def append(self, body: "dict[str, object]") -> "dict[str, object]":
        """Durably append one record; returns it with its ``seq`` filled in."""
        record = dict(body)
        record["seq"] = self.next_seq
        self.sink.append(encode_record(record))
        self.next_seq += 1
        return record

    def append_many(
        self, bodies: "list[dict[str, object]]"
    ) -> "list[dict[str, object]]":
        """Group-commit a batch: one contiguous write, one fsync, all records.

        Assigns dense sequence numbers in list order and hands the
        concatenated encoding to the sink as a single append, so the
        whole batch shares one durability round trip.  ``next_seq``
        advances only after the sink returns: if the append fails (torn
        write, fsync error, injected crash) *no* record in the batch
        was acknowledged, and recovery's torn-tail repair truncates at
        the last complete record — an acknowledged record is never torn
        because acknowledgement happens strictly after the shared sync.
        A batch of one is byte-identical to :meth:`append`.
        """
        if not bodies:
            return []
        records: "list[dict[str, object]]" = []
        lines: "list[bytes]" = []
        seq = self.next_seq
        for body in bodies:
            record = dict(body)
            record["seq"] = seq
            records.append(record)
            lines.append(encode_record(record))
            seq += 1
        self.sink.append(b"".join(lines))
        self.next_seq = seq
        return records

    def sync(self) -> None:
        """Force everything appended so far to disk."""
        self.sink.sync()

    def close(self) -> None:
        """Close the underlying sink (idempotent)."""
        self.sink.close()
