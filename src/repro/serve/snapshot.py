"""Atomic allocator-state snapshots for the admission service.

A snapshot bounds restore time: recovery loads the newest snapshot and
replays only the WAL records past it, instead of the whole history.
Correctness never depends on snapshots — losing every one of them just
makes restore replay from sequence 0.

Layout under the service directory::

    serve-manifest.json          # root pointer (checksummed, atomic)
    instance.json                # the MMDInstance, written once at create
    wal.jsonl                    # the decision log (repro.serve.wal)
    snapshots/snap-<seq>/
        state.npz                # allocator arrays + active pairs
        state.json               # checksummed manifest w/ npz sha256

Commit protocol (the :mod:`repro.sim.store` pattern, via
:mod:`repro.util.atomic`): data bytes first (``state.npz``, fsync'd),
then the snapshot manifest (``state.json``, which embeds the npz's
sha256), then the root pointer — each an atomic replace.  A crash at
any instant leaves the previous pointer intact; a torn npz or manifest
is detected by checksum on load and reported loudly.

Arrays are stored **verbatim** (including the incremental ``µ^L``
charge caches), never recomputed, so a restored allocator is bit-wise
identical to the one that snapshotted — the property the chaos suite
asserts via :meth:`~repro.core.allocate.OnlineAllocator.state_digest`.
"""

from __future__ import annotations

import hashlib
import io
import json
import shutil
from pathlib import Path

import numpy as np

from repro.exceptions import ValidationError
from repro.util.atomic import (
    read_checked_manifest,
    atomic_write_bytes,
    write_checked_manifest,
)

#: Root-manifest format marker.
SERVE_FORMAT = "repro-serve"

#: On-disk layout version of the service directory.
SERVE_VERSION = 1

#: Filename of the root pointer inside a service directory.
MANIFEST_NAME = "serve-manifest.json"

#: Filename of the serialized instance inside a service directory.
INSTANCE_NAME = "instance.json"

#: Filename of the decision WAL inside a service directory.
WAL_NAME = "wal.jsonl"

#: Root-manifest format marker for a *sharded* service directory.
SHARDED_FORMAT = "repro-serve-sharded"

#: On-disk layout version of a sharded service directory.
SHARDED_VERSION = 1

#: Filename of the sharded root pointer (the cross-shard barrier
#: manifest) inside a sharded service directory.
SHARD_MANIFEST_NAME = "shard-manifest.json"


def shard_dir_name(shard: int) -> str:
    """Directory name of shard ``shard`` inside a sharded service root."""
    return f"shard-{int(shard):03d}"


def write_shard_manifest(
    root: "str | Path",
    *,
    shards: int,
    mu: float,
    barrier_seqs: "list[int] | None" = None,
) -> None:
    """Atomically (re)write a sharded service directory's root pointer.

    ``barrier_seqs`` records the per-shard WAL sequence counts at the
    last cross-shard barrier snapshot (``None`` before the first one).
    The barrier protocol syncs **every** shard's WAL before this
    manifest moves, so on restore each shard is guaranteed to hold at
    least its barrier prefix — checked loudly.
    """
    write_checked_manifest(
        Path(root) / SHARD_MANIFEST_NAME,
        {
            "format": SHARDED_FORMAT,
            "version": SHARDED_VERSION,
            "shards": int(shards),
            "mu": float(mu),
            "barrier_seqs": (
                None if barrier_seqs is None else [int(s) for s in barrier_seqs]
            ),
        },
        fsync=True,
    )


def read_shard_manifest(root: "str | Path") -> "dict[str, object]":
    """Read + validate a sharded root pointer; loud on torn/foreign files."""
    body = read_checked_manifest(
        Path(root) / SHARD_MANIFEST_NAME, "sharded serve manifest"
    )
    if body.get("format") != SHARDED_FORMAT:
        raise ValidationError(
            f"{str(Path(root))!r} is not a sharded repro-serve directory "
            f"(format {body.get('format')!r})"
        )
    if body.get("version") != SHARDED_VERSION:
        raise ValidationError(
            f"unsupported sharded serve layout version {body.get('version')!r}; "
            f"this build reads version {SHARDED_VERSION}"
        )
    if int(body.get("shards", 0)) < 1:
        raise ValidationError(
            f"sharded serve manifest names {body.get('shards')!r} shards; "
            "the directory is corrupt"
        )
    return body


def snapshot_name(wal_seq: int) -> str:
    """Directory name for the snapshot taken after ``wal_seq`` records."""
    return f"snap-{int(wal_seq):012d}"


def _pack_state(state: "dict[str, object]") -> "tuple[bytes, str]":
    """Serialize the array half of an allocator state dict to npz bytes.

    Returns ``(npz_bytes, sha256_hex)``.  Active pairs are flattened to
    CSR-style ``(keys, indptr, flat)`` arrays for a stable layout.
    """
    pairs = state["active_pairs"]
    keys = np.asarray(sorted(pairs), dtype=np.int64)
    flats = [np.asarray(pairs[int(k)], dtype=np.int64) for k in keys]
    indptr = np.zeros(len(keys) + 1, dtype=np.int64)
    if flats:
        indptr[1:] = np.cumsum([len(f) for f in flats])
    flat = np.concatenate(flats) if flats else np.zeros(0, dtype=np.int64)
    buffer = io.BytesIO()
    np.savez(
        buffer,
        server_load=state["server_load"],
        user_load=state["user_load"],
        exp_server=state["exp_server"],
        exp_user=state["exp_user"],
        active_keys=keys,
        active_indptr=indptr,
        active_flat=flat,
    )
    data = buffer.getvalue()
    return data, hashlib.sha256(data).hexdigest()


def _unpack_state(
    data: bytes, body: "dict[str, object]"
) -> "dict[str, object]":
    """Rebuild an allocator state dict from npz bytes + manifest body."""
    with np.load(io.BytesIO(data)) as bundle:
        keys = bundle["active_keys"]
        indptr = bundle["active_indptr"]
        flat = bundle["active_flat"]
        state: "dict[str, object]" = {
            "mu": float(body["mu"]),
            "server_load": bundle["server_load"],
            "user_load": bundle["user_load"],
            "exp_server": bundle["exp_server"],
            "exp_user": bundle["exp_user"],
            "ops_since_resync": int(body["ops_since_resync"]),
            "offered": list(body["offered"]),
            "active_pairs": {
                int(k): flat[indptr[i] : indptr[i + 1]].copy()
                for i, k in enumerate(keys)
            },
            "rejected": list(body["rejected"]),
            "rejected_count": int(body["rejected_count"]),
        }
    return state


def write_root_manifest(
    root: "str | Path", *, wal_seq: int, snapshot: "str | None", mu: float
) -> None:
    """Atomically (re)write the service directory's root pointer.

    The pointer records the resolved ``µ`` so a bare restore (no
    snapshot yet) still rebuilds the allocator with the exact parameter
    the service was created with.
    """
    write_checked_manifest(
        Path(root) / MANIFEST_NAME,
        {
            "format": SERVE_FORMAT,
            "version": SERVE_VERSION,
            "rows": int(wal_seq),
            "snapshot": snapshot,
            "mu": float(mu),
        },
        fsync=True,
    )


def read_root_manifest(root: "str | Path") -> "dict[str, object]":
    """Read + validate the root pointer; loud on torn/foreign files."""
    body = read_checked_manifest(Path(root) / MANIFEST_NAME, "serve manifest")
    if body.get("format") != SERVE_FORMAT:
        raise ValidationError(
            f"{str(Path(root))!r} is not a repro-serve directory "
            f"(format {body.get('format')!r})"
        )
    if body.get("version") != SERVE_VERSION:
        raise ValidationError(
            f"unsupported serve layout version {body.get('version')!r}; "
            f"this build reads version {SERVE_VERSION}"
        )
    return body


def write_snapshot(
    root: "str | Path",
    *,
    wal_seq: int,
    state: "dict[str, object]",
    idempotency: "dict[str, dict[str, object]]",
    keep: int = 2,
) -> str:
    """Commit a snapshot of the allocator after ``wal_seq`` WAL records.

    Returns the snapshot's directory name.  Old snapshots beyond the
    newest ``keep`` are pruned only after the root pointer has moved on,
    so the referenced snapshot is never deleted.
    """
    root = Path(root)
    name = snapshot_name(wal_seq)
    snap_dir = root / "snapshots" / name
    snap_dir.mkdir(parents=True, exist_ok=True)
    npz_bytes, npz_sha = _pack_state(state)
    atomic_write_bytes(snap_dir / "state.npz", npz_bytes, fsync=True)
    write_checked_manifest(
        snap_dir / "state.json",
        {
            "rows": int(wal_seq),
            "mu": float(state["mu"]),
            "ops_since_resync": int(state["ops_since_resync"]),
            "offered": list(state["offered"]),
            "rejected": list(state["rejected"]),
            "rejected_count": int(state["rejected_count"]),
            "idempotency": dict(idempotency),
            "npz_sha256": npz_sha,
        },
        fsync=True,
    )
    write_root_manifest(
        root, wal_seq=wal_seq, snapshot=name, mu=float(state["mu"])
    )
    _prune_snapshots(root, keep=keep, referenced=name)
    return name


def _prune_snapshots(root: Path, *, keep: int, referenced: str) -> None:
    """Delete snapshot directories beyond the newest ``keep``."""
    snaps = root / "snapshots"
    if not snaps.is_dir():
        return
    names = sorted(p.name for p in snaps.iterdir() if p.is_dir())
    for name in names[: max(0, len(names) - max(1, int(keep)))]:
        if name != referenced:
            shutil.rmtree(snaps / name, ignore_errors=True)


def load_snapshot(
    root: "str | Path", name: str
) -> "tuple[int, dict[str, object], dict[str, dict[str, object]]]":
    """Load snapshot ``name``; returns ``(wal_seq, state, idempotency)``.

    Raises :class:`~repro.exceptions.ValidationError` when the snapshot
    manifest is torn or the npz bytes do not match their recorded
    sha256 — corruption is reported, never silently absorbed.
    """
    snap_dir = Path(root) / "snapshots" / name
    body = read_checked_manifest(snap_dir / "state.json", "snapshot manifest")
    npz_path = snap_dir / "state.npz"
    if not npz_path.exists():
        raise ValidationError(f"snapshot {name!r} is missing its state.npz")
    data = npz_path.read_bytes()
    digest = hashlib.sha256(data).hexdigest()
    if digest != body.get("npz_sha256"):
        raise ValidationError(
            f"snapshot {name!r} state.npz is torn or tampered "
            f"(sha256 {digest} != recorded {body.get('npz_sha256')!r})"
        )
    state = _unpack_state(data, body)
    idempotency = {
        str(k): dict(v) for k, v in dict(body.get("idempotency", {})).items()
    }
    return int(body["rows"]), state, idempotency


def instance_digest(instance_json: str) -> str:
    """Stable fingerprint of a serialized instance (sha256 hex)."""
    return hashlib.sha256(instance_json.encode()).hexdigest()


def write_instance(root: "str | Path", instance) -> None:
    """Persist the instance a service directory was created for."""
    text = instance.to_json()
    atomic_write_bytes(
        Path(root) / INSTANCE_NAME,
        json.dumps({"digest": instance_digest(text), "instance": json.loads(text)},
                   sort_keys=True).encode(),
        fsync=True,
    )


def read_instance(root: "str | Path"):
    """Load the instance a service directory was created for (loudly)."""
    from repro.core.instance import MMDInstance

    path = Path(root) / INSTANCE_NAME
    if not path.exists():
        raise ValidationError(f"no serialized instance at {str(path)!r}")
    try:
        payload = json.loads(path.read_text())
    except json.JSONDecodeError as exc:
        raise ValidationError(f"corrupt instance file {str(path)!r}: {exc}") from None
    body = payload.get("instance")
    text = json.dumps(body, sort_keys=True)
    if instance_digest(text) != payload.get("digest"):
        raise ValidationError(
            f"instance file {str(path)!r} is torn or tampered (digest mismatch)"
        )
    return MMDInstance.from_dict(body)
