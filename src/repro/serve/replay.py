"""Trace driver for the admission service: simulator-identical replay.

:func:`drive_trace` feeds a pre-drawn session trace through any
*gateway* (an :class:`~repro.serve.service.AdmissionCore`, or an HTTP
client speaking to one) in **exactly** the order and with exactly the
skip semantics of :func:`repro.sim.simulation.simulate_trace`:

- event order comes from
  :func:`repro.sim.engine.merged_replay_order` (equal-time arrivals
  before departures, arrivals in trace order, departures in admission
  order, events past the horizon dropped);
- an arrival for a stream the service already carries is skipped
  without consulting the service (a multicast system gets no new
  decision from a second request for a carried stream);
- a departure for a session that was rejected on arrival is a no-op.

Because the driver is deterministic and the service's WAL is a
complete decision history, replay is **crash-resumable**: on restart
the driver walks the same trace, consumes the committed WAL prefix
(verifying op and stream of each record against the trace) instead of
re-sending it, and goes live exactly at the first uncommitted
operation.  Idempotency keys are derived from trace positions, so a
retry of an operation that committed right before a crash dedupes
instead of double-executing.

:func:`drive_with_recovery` packages the kill/restore loop the chaos
suite and the recovery benchmark both use, and
:func:`decision_report` reduces a decision sequence to the aggregate
counters that must match a monolithic
:func:`~repro.sim.simulation.simulate_trace` run.
"""

from __future__ import annotations

from dataclasses import dataclass
from pathlib import Path

import numpy as np

from repro.exceptions import ValidationError
from repro.serve.faults import InjectedCrash
from repro.serve.service import AdmissionCore, MANIFEST_NAME
from repro.sim.engine import merged_replay_order


@dataclass(frozen=True)
class Decision:
    """One replayed service decision, in a comparison-friendly shape.

    Attributes
    ----------
    seq:
        WAL sequence number (dense over state-changing operations).
    op:
        ``"offer"`` or ``"release"``.
    position:
        Trace position of the session this decision belongs to.
    k:
        Stream index the decision addressed.
    users:
        Receiver user indices (empty tuple = rejection or release).
    shard:
        Shard that executed the decision (0 for unsharded gateways).
    """

    seq: int
    op: str
    position: int
    k: int
    users: "tuple[int, ...]"
    shard: int = 0


def offer_key(position: int) -> str:
    """Deterministic idempotency key for the arrival at ``position``."""
    return f"offer-{int(position)}"


def release_key(position: int) -> str:
    """Deterministic idempotency key for the departure of session ``position``."""
    return f"release-{int(position)}"


def trace_arrays(
    instance, trace
) -> "tuple[np.ndarray, np.ndarray, np.ndarray]":
    """Trace → ``(times, durations, stream_indices)`` with loud validation.

    Mirrors the simulator's trace hygiene: NaN times/durations and
    negative durations are refused, and unknown stream ids raise the
    instance's canonical error.
    """
    from repro.core.indexed import index_instance

    index = index_instance(instance).stream_index
    times = np.array([e.time for e in trace], dtype=np.float64)
    durations = np.array([e.duration for e in trace], dtype=np.float64)
    if np.isnan(times).any() or np.isnan(durations).any():
        raise ValidationError("NaN event time or duration in trace")
    if (durations < 0).any():
        bad = int(np.argmax(durations < 0))
        raise ValidationError(
            f"negative session duration {durations[bad]!r} at trace position {bad}"
        )
    streams = np.empty(len(trace), dtype=np.int64)
    for i, event in enumerate(trace):
        k = index.get(event.stream_id)
        if k is None:
            instance.stream(event.stream_id)  # canonical unknown-stream error
        streams[i] = k
    return times, durations, streams


def drive_trace(
    gateway,
    instance,
    trace,
    horizon: float,
    *,
    committed: "list[dict[str, object]] | None" = None,
) -> "list[Decision]":
    """Replay ``trace`` through ``gateway``; returns the decision sequence.

    ``gateway`` needs ``offer(stream, key=...)`` / ``release(stream,
    key=...)`` returning service responses.  When ``committed`` is
    omitted and the gateway exposes ``decisions()`` (an
    :class:`~repro.serve.service.AdmissionCore` does) or
    ``decisions_by_shard()`` (a
    :class:`~repro.serve.shard.ShardedAdmissionCore`), the committed
    WAL prefix is consumed instead of re-sent — that is what makes a
    kill-and-restored replay stitch seamlessly.  A committed record
    that disagrees with the trace (wrong op or stream) raises loudly.

    For a sharded gateway the consumption runs **per shard**: the
    driver routes every trace operation exactly as the gateway does, so
    the *i*-th operation the trace sends to shard ``s`` must match
    shard ``s``'s *i*-th WAL record — each shard's committed prefix is
    an independent cursor, which is precisely why a crash that loses
    different amounts of tail on different shards still resumes
    seamlessly.
    """
    times, durations, streams = trace_arrays(instance, trace)
    codes = merged_replay_order(times, times + durations, horizon)
    count = len(trace)
    sharded = hasattr(gateway, "decisions_by_shard")
    if committed is not None:
        committed_by_shard = [list(committed)]
    elif sharded:
        committed_by_shard = gateway.decisions_by_shard()
    elif hasattr(gateway, "decisions"):
        committed_by_shard = [gateway.decisions()]
    else:
        committed_by_shard = [[]]
    route = gateway.route if sharded else (lambda _k: 0)
    cursor = [0] * len(committed_by_shard)
    decisions: "list[Decision]" = []
    sessions: "dict[int, int]" = {}
    active: "set[int]" = set()
    op_i = 0
    for code in codes:
        code = int(code)
        if code < count:
            position, k = code, int(streams[code])
            if k in active:
                continue
            shard = route(k)
            at = cursor[shard]
            if at < len(committed_by_shard[shard]):
                record = committed_by_shard[shard][at]
                _check_committed(record, at, "offer", k)
                users = tuple(int(u) for u in record["users"])
            else:
                response = gateway.offer(k, key=offer_key(position))
                users = tuple(int(u) for u in response["user_index"])
            cursor[shard] = at + 1
            decisions.append(Decision(op_i, "offer", position, k, users, shard))
            if users:
                sessions[position] = k
                active.add(k)
        else:
            position = code - count
            k = sessions.pop(position, None)
            if k is None:
                continue
            active.discard(k)
            shard = route(k)
            at = cursor[shard]
            if at < len(committed_by_shard[shard]):
                _check_committed(committed_by_shard[shard][at], at, "release", k)
            else:
                gateway.release(k, key=release_key(position))
            cursor[shard] = at + 1
            decisions.append(Decision(op_i, "release", position, k, (), shard))
        op_i += 1
    return decisions


def _check_committed(
    record: "dict[str, object]", seq: int, op: str, k: int
) -> None:
    """Loudly verify a committed WAL record against the trace's expectation."""
    if record.get("op") != op or int(record["k"]) != k:
        raise ValidationError(
            f"committed WAL diverges from the trace at seq {seq}: "
            f"expected {op} of stream index {k}, found "
            f"{record.get('op')!r} of {record.get('k')!r}; "
            "was this directory driven by a different trace?"
        )


def decision_report(decisions: "list[Decision]") -> "dict[str, int]":
    """Aggregate a decision sequence to simulator-comparable counters."""
    offers = [d for d in decisions if d.op == "offer"]
    return {
        "offered": len(offers),
        "admitted": sum(1 for d in offers if d.users),
        "deliveries": sum(len(d.users) for d in offers),
    }


def drive_with_recovery(
    root: "str | Path",
    instance,
    trace,
    horizon: float,
    *,
    mu: "float | None" = None,
    config=None,
    fault_plans=(),
    shards: "int | None" = None,
) -> "dict[str, object]":
    """Replay a trace to completion through any number of injected crashes.

    ``fault_plans[i]`` arms the service's *i*-th process lifetime; once
    plans run out, lifetimes run fault-free.  Each
    :class:`~repro.serve.faults.InjectedCrash` abandons the in-memory
    core (as process death would) and the next iteration restores from
    disk and resumes the replay off the committed WAL prefix.

    With ``shards`` set the directory is a sharded layout
    (:class:`~repro.serve.shard.ShardedAdmissionCore`) and each element
    of ``fault_plans`` is a ``{shard: FaultPlan}`` mapping for that
    lifetime (see :meth:`~repro.serve.faults.FaultPlan.shard_plans`) —
    a crash on *any* shard kills the whole process, and the next
    lifetime restores every shard from disk.

    Returns the stitched decision sequence plus crash count, final
    state digest (merged across shards when sharded) and final WAL
    length — everything the chaos suite compares against an
    uninterrupted run.
    """
    from repro.serve.shard import ShardedAdmissionCore
    from repro.serve.snapshot import SHARD_MANIFEST_NAME

    root = Path(root)
    plans = list(fault_plans)
    lifetime = 0
    while True:
        plan = plans[lifetime] if lifetime < len(plans) else None
        if shards is not None:
            if (root / SHARD_MANIFEST_NAME).exists():
                core = ShardedAdmissionCore.restore(
                    root, config=config, fault_plans=plan or {}
                )
            else:
                core = ShardedAdmissionCore.create(
                    instance, root, shards=int(shards), mu=mu,
                    config=config, fault_plans=plan or {},
                )
        elif (root / MANIFEST_NAME).exists():
            core = AdmissionCore.restore(root, config=config, fault_plan=plan)
        else:
            core = AdmissionCore.create(
                instance, root, mu=mu, config=config, fault_plan=plan
            )
        lifetime += 1
        try:
            decisions = drive_trace(core, instance, trace, horizon)
        except InjectedCrash:
            continue
        digest = core.state_digest()
        seq = core.next_seq
        result: "dict[str, object]" = {
            "decisions": decisions,
            "crashes": lifetime - 1,
            "digest": digest,
            "seq": seq,
        }
        if shards is not None:
            result["shard_seqs"] = core.next_seqs()
        core.close()
        return result
