"""Deterministic fault injection for the admission service.

Everything here is *seedable and replayable*: a :class:`FaultPlan` is a
pure function of its constructor arguments, keyed off monotone
operation counters, so a chaos-suite failure reproduces from its seed
alone.  Faults are injected at two seams:

- **storage** — :class:`FaultySink` wraps the WAL's
  :class:`~repro.serve.wal.FileSink` and can tear the in-flight append,
  fail ``fsync``, or simulate process death (``kill``: every byte
  handed to the OS survives, the in-flight record may be torn) and
  power loss (``power``: only ``fsync``'d bytes are guaranteed; the
  unsynced suffix is cut at an adversarial, seed-chosen offset);
- **transport** — the HTTP layer consults :meth:`FaultPlan.on_response`
  to drop acknowledgements after executing a request (forcing the
  client to retry an operation that already happened — the idempotency
  test), and the chaos client duplicates requests outright.

Injected faults are real exceptions derived from
:class:`~repro.exceptions.ReproError` so production ``except`` clauses
treat them exactly like their organic counterparts.
"""

from __future__ import annotations

import os
import random
from pathlib import Path

from repro.exceptions import ReproError, ValidationError
from repro.serve.wal import FileSink

#: Simulated-crash flavors: ``kill`` models SIGKILL (written bytes
#: survive in the page cache), ``power`` models power loss (only
#: fsync'd bytes are guaranteed durable).
CRASH_MODES = ("kill", "power")


class InjectedFault(ReproError):
    """Base class for every harness-injected failure."""


class InjectedCrash(InjectedFault):
    """Simulated process death raised out of a faulted storage append.

    Carries the crash ``mode`` (``"kill"`` or ``"power"``) so the chaos
    harness can report which durability contract was exercised.
    """

    def __init__(self, mode: str, op: int) -> None:
        super().__init__(f"injected {mode} crash at WAL op {op}")
        self.mode = mode
        self.op = op


class InjectedFsyncError(InjectedFault, OSError):
    """Simulated ``fsync`` failure (disk refusing to make bytes durable)."""


class FaultPlan:
    """A deterministic schedule of faults keyed by operation counts.

    Parameters name the operation indices (0-based, counted per seam) at
    which each fault fires.  ``seed`` drives only the *adversarial
    details* (where a torn write is cut), never *whether* a fault fires
    — so schedules compose predictably in tests.
    """

    def __init__(
        self,
        *,
        crash_at: "tuple[int, ...] | list[int]" = (),
        crash_mode: str = "kill",
        fsync_fail_at: "tuple[int, ...] | list[int]" = (),
        drop_response_at: "tuple[int, ...] | list[int]" = (),
        duplicate_at: "tuple[int, ...] | list[int]" = (),
        seed: int = 0,
    ) -> None:
        if crash_mode not in CRASH_MODES:
            raise ValidationError(
                f"unknown crash mode {crash_mode!r}; pick one of {CRASH_MODES}"
            )
        self.crash_at = frozenset(int(i) for i in crash_at)
        self.crash_mode = crash_mode
        self.fsync_fail_at = frozenset(int(i) for i in fsync_fail_at)
        self.drop_response_at = frozenset(int(i) for i in drop_response_at)
        self.duplicate_at = frozenset(int(i) for i in duplicate_at)
        self.seed = int(seed)
        self._rng = random.Random(self.seed)
        self.wal_ops = 0
        self.responses = 0
        self.requests = 0

    @classmethod
    def random_crashes(
        cls,
        seed: int,
        *,
        ops: int,
        crashes: int = 1,
        crash_mode: str = "kill",
    ) -> "FaultPlan":
        """Schedule ``crashes`` distinct crash points uniformly in ``[0, ops)``."""
        if ops < 1:
            raise ValidationError(f"need at least 1 op to crash in, got {ops}")
        rng = random.Random(int(seed))
        count = min(int(crashes), int(ops))
        points = rng.sample(range(int(ops)), count)
        return cls(crash_at=tuple(points), crash_mode=crash_mode, seed=int(seed))

    @classmethod
    def shard_plans(
        cls,
        seed: int,
        *,
        shards: int,
        ops: int,
        crashed_shards: int = 1,
        crash_mode: str = "kill",
    ) -> "dict[int, FaultPlan]":
        """Deterministic crash schedules over a multi-shard layout.

        Picks ``crashed_shards`` distinct shards and gives each its own
        :meth:`random_crashes` plan (one crash point uniform in
        ``[0, ops)`` of *that shard's* WAL-op counter) with a seed
        derived from ``(seed, shard)`` — so the whole multi-shard
        schedule reproduces from one integer.  Shards absent from the
        returned dict run fault-free.
        """
        if int(shards) < 1:
            raise ValidationError(f"shard count must be >= 1, got {shards}")
        count = min(int(crashed_shards), int(shards))
        if count < 1:
            raise ValidationError(
                f"need at least 1 crashed shard, got {crashed_shards}"
            )
        rng = random.Random(int(seed))
        picked = rng.sample(range(int(shards)), count)
        return {
            shard: cls.random_crashes(
                rng.randrange(2**31), ops=ops, crash_mode=crash_mode
            )
            for shard in sorted(picked)
        }

    def torn_cut(self, length: int) -> int:
        """Adversarial cut offset for a torn write of ``length`` bytes."""
        if length <= 0:
            return 0
        return self._rng.randrange(length)

    def on_append(self, op: "int | None" = None) -> "str | None":
        """Fault decision for the next storage append: ``crash``/``fsync``/None."""
        index = self.wal_ops if op is None else op
        self.wal_ops = index + 1
        if index in self.crash_at:
            return "crash"
        if index in self.fsync_fail_at:
            return "fsync"
        return None

    def on_response(self) -> "str | None":
        """Fault decision for the next acknowledgement: ``drop`` or None."""
        index = self.responses
        self.responses = index + 1
        return "drop" if index in self.drop_response_at else None

    def on_request(self) -> "str | None":
        """Fault decision for the next outgoing request: ``duplicate`` or None."""
        index = self.requests
        self.requests = index + 1
        return "duplicate" if index in self.duplicate_at else None


class FaultySink:
    """A :class:`~repro.serve.wal.FileSink` wrapper that injects storage faults.

    Drop-in for the real sink: same ``append``/``sync``/``close`` surface
    and durability accounting, but each append first consults the plan.
    A ``crash`` decision writes an adversarially torn prefix of the
    record, makes the on-disk file match the crash mode's durability
    contract, and raises :class:`InjectedCrash`; an ``fsync`` decision
    leaves the bytes written but not durable and raises
    :class:`InjectedFsyncError`.
    """

    def __init__(self, inner: FileSink, plan: FaultPlan) -> None:
        self.inner = inner
        self.plan = plan

    @property
    def path(self) -> Path:
        """Path of the underlying WAL file."""
        return self.inner.path

    @property
    def written_bytes(self) -> int:
        """Bytes handed to the OS so far (delegated)."""
        return self.inner.written_bytes

    @property
    def synced_bytes(self) -> int:
        """Bytes known durable so far (delegated)."""
        return self.inner.synced_bytes

    @property
    def sync_count(self) -> int:
        """Fsyncs issued so far (delegated)."""
        return self.inner.sync_count

    def append(self, data: bytes) -> None:
        """Append through the inner sink unless the plan injects a fault."""
        op = self.plan.wal_ops
        action = self.plan.on_append()
        if action == "crash":
            self._crash(data, op)
        if action == "fsync":
            # The write itself lands; durability is what fails.
            handle = self.inner._handle
            handle.write(data)
            handle.flush()
            self.inner.written_bytes += len(data)
            raise InjectedFsyncError(
                f"injected fsync failure at WAL op {op}: bytes written but not durable"
            )
        self.inner.append(data)

    def _crash(self, data: bytes, op: int) -> None:
        """Tear the in-flight append and die per the plan's crash mode."""
        cut = self.plan.torn_cut(len(data))
        handle = self.inner._handle
        handle.write(data[:cut])
        handle.flush()
        written = self.inner.written_bytes + cut
        if self.plan.crash_mode == "power":
            # Power loss: the unsynced suffix (earlier flush-only appends
            # plus the torn prefix) survives only up to an adversarial,
            # seed-chosen writeback point.
            synced = self.inner.synced_bytes
            keep_tail = self._rng_keep(written - synced)
            handle.close()
            with self.inner.path.open("r+b") as repairer:
                repairer.truncate(synced + keep_tail)
                repairer.flush()
                os.fsync(repairer.fileno())
        else:
            handle.close()
        raise InjectedCrash(self.plan.crash_mode, op)

    def _rng_keep(self, tail: int) -> int:
        """How many unsynced tail bytes 'made it' before the power cut."""
        if tail <= 0:
            return 0
        return self.plan._rng.randrange(tail + 1)

    def sync(self) -> None:
        """Force durability through the inner sink."""
        self.inner.sync()

    def close(self) -> None:
        """Close the inner sink."""
        self.inner.close()
