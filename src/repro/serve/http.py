"""Asyncio HTTP/1.1 front door for the admission service.

Stdlib-only (``asyncio`` streams + a minimal HTTP/1.1 parser — the
container deliberately has no third-party HTTP stack).  Endpoints:

- ``GET /health`` — liveness + failed-state flag, served instantly
  from the event loop;
- ``GET /stats`` — the core's operational summary plus queue counters;
- ``POST /offer`` / ``POST /release`` — state-changing decisions, body
  ``{"stream": <id or index>, "key": <idempotency key>}``.

**Single-writer discipline:** every state-changing request runs on a
one-thread executor, so the allocator and WAL only ever see one writer
while the event loop stays free to answer health checks and — the
point — to *shed* load.

**Graceful overload degradation:** before queueing a decision the
server checks the admission queue.  If ``pending >= max_pending`` or
the estimated wait (depth × rolling mean decision latency) exceeds
``max_wait``, the request is rejected *immediately* with ``503`` and a
``Retry-After`` hint instead of being queued.  Under 2× sustained
overload the shed path keeps served-request latency bounded — queue
depth, not service time, is what melts tail latency.

The transport consults the core's
:class:`~repro.serve.faults.FaultPlan` (when armed) to drop
acknowledgements after executing a request — the injected fault that
proves client retries + idempotency keys give at-most-once effects.
"""

from __future__ import annotations

import asyncio
import json
import time
from collections import deque
from concurrent.futures import ThreadPoolExecutor

from repro.exceptions import ValidationError
from repro.serve.service import AdmissionCore, ServeFailure

#: Hard cap on request-head bytes (request line + headers).
MAX_HEAD_BYTES = 16 * 1024

#: Hard cap on request-body bytes.
MAX_BODY_BYTES = 1024 * 1024

#: Reason phrases for the status codes this server emits.
_REASONS = {
    200: "OK",
    400: "Bad Request",
    404: "Not Found",
    405: "Method Not Allowed",
    500: "Internal Server Error",
    503: "Service Unavailable",
}


def _encode_response(
    status: int,
    body: "dict[str, object]",
    *,
    keep_alive: bool,
    extra_headers: "tuple[tuple[str, str], ...]" = (),
) -> bytes:
    """Serialize one JSON response as HTTP/1.1 bytes."""
    payload = json.dumps(body).encode()
    lines = [
        f"HTTP/1.1 {status} {_REASONS.get(status, 'Unknown')}",
        "Content-Type: application/json",
        f"Content-Length: {len(payload)}",
        f"Connection: {'keep-alive' if keep_alive else 'close'}",
    ]
    lines.extend(f"{name}: {value}" for name, value in extra_headers)
    return ("\r\n".join(lines) + "\r\n\r\n").encode() + payload


async def _read_request(reader: asyncio.StreamReader):
    """Parse one request; returns ``(method, path, headers, body)`` or None at EOF."""
    try:
        head = await reader.readuntil(b"\r\n\r\n")
    except asyncio.IncompleteReadError:
        return None
    except asyncio.LimitOverrunError:
        raise ValidationError("request head exceeds the line limit") from None
    if len(head) > MAX_HEAD_BYTES:
        raise ValidationError("request head too large")
    try:
        request_line, *header_lines = head.decode("latin-1").split("\r\n")
        method, path, _version = request_line.split(" ", 2)
    except ValueError:
        raise ValidationError("malformed HTTP request line") from None
    headers: "dict[str, str]" = {}
    for line in header_lines:
        if not line:
            continue
        name, _, value = line.partition(":")
        headers[name.strip().lower()] = value.strip()
    length = int(headers.get("content-length", "0") or "0")
    if length > MAX_BODY_BYTES:
        raise ValidationError("request body too large")
    body = await reader.readexactly(length) if length else b""
    return method.upper(), path, headers, body


class AdmissionHTTPService:
    """HTTP server over one :class:`~repro.serve.service.AdmissionCore`."""

    def __init__(self, core: AdmissionCore) -> None:
        self.core = core
        self.config = core.config
        self._executor = ThreadPoolExecutor(max_workers=1)
        self._server: "asyncio.base_events.Server | None" = None
        self.port: "int | None" = None
        self._pending = 0
        self._shed = 0
        self._served = 0
        self._latencies: "deque[float]" = deque(maxlen=64)

    # ------------------------------------------------------------------
    # Lifecycle
    # ------------------------------------------------------------------

    async def start(self, host: str = "127.0.0.1", port: int = 0) -> int:
        """Bind and start accepting; returns the bound port."""
        self._server = await asyncio.start_server(self._handle, host, port)
        self.port = self._server.sockets[0].getsockname()[1]
        return self.port

    async def serve_forever(self) -> None:
        """Serve until cancelled (``asyncio.CancelledError``)."""
        if self._server is None:
            raise ValidationError("call start() before serve_forever()")
        async with self._server:
            await self._server.serve_forever()

    async def stop(self) -> None:
        """Stop accepting, drain the writer thread, snapshot and close."""
        if self._server is not None:
            self._server.close()
            await self._server.wait_closed()
        loop = asyncio.get_running_loop()
        await loop.run_in_executor(self._executor, self._final_flush)
        self._executor.shutdown(wait=True)

    def _final_flush(self) -> None:
        """Last writer-thread job: force a snapshot and close the WAL."""
        if not self.core.failed:
            self.core.maybe_snapshot(force=True)
        self.core.close()

    # ------------------------------------------------------------------
    # Connection handling
    # ------------------------------------------------------------------

    async def _handle(
        self, reader: asyncio.StreamReader, writer: asyncio.StreamWriter
    ) -> None:
        """Serve one keep-alive connection until EOF or error."""
        try:
            while True:
                try:
                    request = await _read_request(reader)
                except ValidationError as exc:
                    writer.write(_encode_response(
                        400, {"ok": False, "error": str(exc)}, keep_alive=False
                    ))
                    await writer.drain()
                    break
                if request is None:
                    break
                method, path, headers, body = request
                keep_alive = headers.get("connection", "keep-alive") != "close"
                status, response, extra, drop = await self._dispatch(
                    method, path, body
                )
                if drop:
                    # Injected transport fault: the request executed but
                    # its acknowledgement is lost — the client must
                    # retry with the same idempotency key.
                    writer.transport.abort()
                    return
                writer.write(_encode_response(
                    status, response, keep_alive=keep_alive, extra_headers=extra
                ))
                await writer.drain()
                if not keep_alive:
                    break
        except (ConnectionError, asyncio.IncompleteReadError):
            pass
        finally:
            writer.close()
            try:
                await writer.wait_closed()
            except (ConnectionError, OSError):
                pass

    async def _dispatch(
        self, method: str, path: str, body: bytes
    ) -> "tuple[int, dict[str, object], tuple, bool]":
        """Route one request; returns (status, body, extra headers, drop?)."""
        if path == "/health":
            if method != "GET":
                return 405, {"ok": False, "error": "health is GET-only"}, (), False
            return 200, {
                "ok": not self.core.failed,
                "failed": self.core.failed,
                "seq": self.core.next_seq,
            }, (), False
        if path == "/stats":
            if method != "GET":
                return 405, {"ok": False, "error": "stats is GET-only"}, (), False
            loop = asyncio.get_running_loop()
            stats = await loop.run_in_executor(self._executor, self.core.stats)
            stats.update(self.queue_stats())
            return 200, stats, (), False
        if path in ("/offer", "/release"):
            if method != "POST":
                return 405, {"ok": False, "error": f"{path} is POST-only"}, (), False
            return await self._decide(path.lstrip("/"), body)
        return 404, {"ok": False, "error": f"unknown path {path!r}"}, (), False

    def queue_stats(self) -> "dict[str, object]":
        """Admission-queue counters (merged into ``/stats``)."""
        return {
            "pending": self._pending,
            "shed": self._shed,
            "served": self._served,
            "mean_latency": self._mean_latency(),
        }

    def _mean_latency(self) -> float:
        """Rolling mean decision latency (seconds; 0 before any sample)."""
        if not self._latencies:
            return 0.0
        return sum(self._latencies) / len(self._latencies)

    def _should_shed(self) -> bool:
        """Overload predicate: queue too deep, or estimated wait too long."""
        if self._pending >= self.config.max_pending:
            return True
        return self._pending * self._mean_latency() > self.config.max_wait

    async def _decide(
        self, op: str, body: bytes
    ) -> "tuple[int, dict[str, object], tuple, bool]":
        """Run one offer/release through the single-writer executor."""
        try:
            payload = json.loads(body.decode() or "{}")
        except (UnicodeDecodeError, json.JSONDecodeError) as exc:
            return 400, {"ok": False, "error": f"bad JSON body: {exc}"}, (), False
        if not isinstance(payload, dict) or "stream" not in payload:
            return 400, {"ok": False, "error": 'body needs a "stream" field'}, (), False
        stream = payload["stream"]
        if not isinstance(stream, (str, int)):
            return 400, {"ok": False, "error": "stream must be an id or index"}, (), False
        key = payload.get("key")
        if key is not None and not isinstance(key, str):
            return 400, {"ok": False, "error": "key must be a string"}, (), False
        if self._should_shed():
            self._shed += 1
            retry_after = self.config.retry_after
            return 503, {
                "ok": False,
                "error": "overloaded",
                "shed": True,
                "retry_after": retry_after,
            }, (("Retry-After", f"{retry_after:g}"),), False
        loop = asyncio.get_running_loop()
        call = self.core.offer if op == "offer" else self.core.release
        self._pending += 1
        started = time.perf_counter()
        try:
            response = await loop.run_in_executor(
                self._executor, lambda: call(stream, key=key)
            )
        except ValidationError as exc:
            return 400, {"ok": False, "error": str(exc)}, (), False
        except ServeFailure as exc:
            return 500, {"ok": False, "error": str(exc)}, (), False
        finally:
            self._pending -= 1
            self._latencies.append(time.perf_counter() - started)
            self._served += 1
        drop = False
        plan = self.core.fault_plan
        if plan is not None and plan.on_response() == "drop":
            drop = True
        return 200, response, (), drop
