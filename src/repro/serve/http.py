"""Asyncio HTTP/1.1 front door for the admission service.

Stdlib-only (``asyncio`` streams + a minimal HTTP/1.1 parser — the
container deliberately has no third-party HTTP stack).  Endpoints:

- ``GET /health`` — liveness + failed-state flag, served instantly
  from the event loop;
- ``GET /stats`` — the core's operational summary plus queue counters,
  the group-commit batch-size histogram and per-shard decision counts;
- ``POST /offer`` / ``POST /release`` — state-changing decisions, body
  ``{"stream": <id or index>, "key": <idempotency key>}``.

**Single-writer-per-shard discipline:** every state-changing request is
routed to the worker that owns its stream (one worker for an unsharded
:class:`~repro.serve.service.AdmissionCore`; the CRC32 stream router of
:class:`~repro.serve.shard.ShardedAdmissionCore` otherwise), and each
worker funnels its requests through one thread — the allocator and WAL
of a shard only ever see one writer while the event loop stays free to
answer health checks and to *shed* load.

**Group commit:** a worker's thread drains up to ``commit_batch``
queued decisions per pass, executes them in order, and commits all
their WAL records under **one** fsync
(:meth:`~repro.serve.service.AdmissionCore.execute_batch`), resolving
every waiter only after the shared sync returns — durability semantics
unchanged, fsync cost shared.  ``commit_linger_ms`` lets a shallow
queue wait briefly for company; at ``commit_batch=1`` the server
behaves exactly like the pre-batching single-writer.

**Graceful overload degradation:** before queueing a decision the
server checks the admission queue.  If ``pending >= max_pending`` or
the estimated wait (depth × rolling mean decision latency) exceeds
``max_wait``, the request is rejected *immediately* with ``503`` and a
``Retry-After`` hint instead of being queued.  Under 2× sustained
overload the shed path keeps served-request latency bounded — queue
depth, not service time, is what melts tail latency.

The transport consults the core's
:class:`~repro.serve.faults.FaultPlan` (when armed) to drop
acknowledgements after executing a request — the injected fault that
proves client retries + idempotency keys give at-most-once effects.
"""

from __future__ import annotations

import asyncio
import json
import threading
import time
from collections import deque
from concurrent.futures import ThreadPoolExecutor

from repro.exceptions import ValidationError
from repro.serve.service import AdmissionCore, ServeFailure

#: Hard cap on request-head bytes (request line + headers).
MAX_HEAD_BYTES = 16 * 1024

#: Hard cap on request-body bytes.
MAX_BODY_BYTES = 1024 * 1024

#: Reason phrases for the status codes this server emits.
_REASONS = {
    200: "OK",
    400: "Bad Request",
    404: "Not Found",
    405: "Method Not Allowed",
    500: "Internal Server Error",
    503: "Service Unavailable",
}


def _encode_response(
    status: int,
    body: "dict[str, object]",
    *,
    keep_alive: bool,
    extra_headers: "tuple[tuple[str, str], ...]" = (),
) -> bytes:
    """Serialize one JSON response as HTTP/1.1 bytes."""
    payload = json.dumps(body).encode()
    lines = [
        f"HTTP/1.1 {status} {_REASONS.get(status, 'Unknown')}",
        "Content-Type: application/json",
        f"Content-Length: {len(payload)}",
        f"Connection: {'keep-alive' if keep_alive else 'close'}",
    ]
    lines.extend(f"{name}: {value}" for name, value in extra_headers)
    return ("\r\n".join(lines) + "\r\n\r\n").encode() + payload


async def _read_request(reader: asyncio.StreamReader):
    """Parse one request; returns ``(method, path, headers, body)`` or None at EOF."""
    try:
        head = await reader.readuntil(b"\r\n\r\n")
    except asyncio.IncompleteReadError:
        return None
    except asyncio.LimitOverrunError:
        raise ValidationError("request head exceeds the line limit") from None
    if len(head) > MAX_HEAD_BYTES:
        raise ValidationError("request head too large")
    try:
        request_line, *header_lines = head.decode("latin-1").split("\r\n")
        method, path, _version = request_line.split(" ", 2)
    except ValueError:
        raise ValidationError("malformed HTTP request line") from None
    headers: "dict[str, str]" = {}
    for line in header_lines:
        if not line:
            continue
        name, _, value = line.partition(":")
        headers[name.strip().lower()] = value.strip()
    length = int(headers.get("content-length", "0") or "0")
    if length > MAX_BODY_BYTES:
        raise ValidationError("request body too large")
    body = await reader.readexactly(length) if length else b""
    return method.upper(), path, headers, body


def _resolve_waiter(future: "asyncio.Future", outcome, error) -> None:
    """Complete one request future from the writer thread (loop-side call)."""
    if future.cancelled():
        return
    if error is not None:
        future.set_exception(error)
    else:
        future.set_result(outcome)


class _ShardWorker:
    """One shard's single-writer thread with a group-commit drain loop.

    Requests enqueue from the event loop; the worker thread drains up
    to ``commit_batch`` of them per pass and commits the whole batch
    under one fsync.  Extra drain submissions against an already-empty
    queue are no-ops, so scheduling one drain per enqueue keeps the
    thread busy exactly while work is pending.
    """

    def __init__(self, core: AdmissionCore) -> None:
        self.core = core
        self.executor = ThreadPoolExecutor(max_workers=1)
        self._lock = threading.Lock()
        self._queue: "deque[tuple]" = deque()

    def submit(
        self, loop: asyncio.AbstractEventLoop, op: str, stream, key
    ) -> "asyncio.Future":
        """Enqueue one decision; returns a future resolving to its outcome."""
        future = loop.create_future()
        with self._lock:
            self._queue.append((op, stream, key, loop, future))
        self.executor.submit(self._drain)
        return future

    def depth(self) -> int:
        """Decisions currently queued on this shard (snapshot)."""
        with self._lock:
            return len(self._queue)

    def _drain(self) -> None:
        """Writer-thread pass: gather a batch, group-commit, resolve waiters."""
        config = self.core.config
        linger = config.commit_linger_ms / 1000.0
        if linger > 0.0:
            with self._lock:
                shallow = 0 < len(self._queue) < config.commit_batch
            if shallow:
                time.sleep(linger)
        with self._lock:
            take = min(config.commit_batch, len(self._queue))
            items = [self._queue.popleft() for _ in range(take)]
        if not items:
            return
        ops = [(op, stream, key) for op, stream, key, _, _ in items]
        try:
            outcomes = self.core.execute_batch(ops)
        except BaseException as exc:
            # Whole-batch failure (durability fault, injected crash):
            # nothing was acknowledged; every waiter sees the error.
            for _, _, _, loop, future in items:
                loop.call_soon_threadsafe(_resolve_waiter, future, None, exc)
            return
        for (_, _, _, loop, future), outcome in zip(items, outcomes):
            if isinstance(outcome, ValidationError):
                loop.call_soon_threadsafe(_resolve_waiter, future, None, outcome)
            else:
                loop.call_soon_threadsafe(_resolve_waiter, future, outcome, None)


class AdmissionHTTPService:
    """HTTP server over an admission backend (single-core or sharded).

    ``core`` is either one :class:`~repro.serve.service.AdmissionCore`
    (one worker, everything routes to it) or a
    :class:`~repro.serve.shard.ShardedAdmissionCore` (one worker per
    shard, requests routed by the stream hash).
    """

    def __init__(self, core) -> None:
        self.core = core
        self.config = core.config
        shard_cores = getattr(core, "cores", None)
        self._sharded = shard_cores is not None
        self._workers = [
            _ShardWorker(c) for c in (shard_cores if self._sharded else [core])
        ]
        self._server: "asyncio.base_events.Server | None" = None
        self.port: "int | None" = None
        self._pending = 0
        self._shed = 0
        self._served = 0
        self._latencies: "deque[float]" = deque(maxlen=64)

    # ------------------------------------------------------------------
    # Lifecycle
    # ------------------------------------------------------------------

    async def start(self, host: str = "127.0.0.1", port: int = 0) -> int:
        """Bind and start accepting; returns the bound port."""
        self._server = await asyncio.start_server(self._handle, host, port)
        self.port = self._server.sockets[0].getsockname()[1]
        return self.port

    async def serve_forever(self) -> None:
        """Serve until cancelled (``asyncio.CancelledError``)."""
        if self._server is None:
            raise ValidationError("call start() before serve_forever()")
        async with self._server:
            await self._server.serve_forever()

    async def stop(self) -> None:
        """Stop accepting, drain every writer, barrier-snapshot and close."""
        if self._server is not None:
            self._server.close()
            await self._server.wait_closed()
        loop = asyncio.get_running_loop()
        await loop.run_in_executor(None, self._final_flush)

    def _final_flush(self) -> None:
        """Drain all writer threads, then snapshot and close (quiesced).

        Shutting each worker's executor down waits out its queued
        drains, so by the time the snapshot runs no writer is
        mid-operation — exactly the quiescence the cross-shard barrier
        requires.
        """
        for worker in self._workers:
            worker.executor.shutdown(wait=True)
        if not self.core.failed:
            if self._sharded:
                self.core.barrier_snapshot()
            else:
                self.core.maybe_snapshot(force=True)
        self.core.close()

    # ------------------------------------------------------------------
    # Connection handling
    # ------------------------------------------------------------------

    async def _handle(
        self, reader: asyncio.StreamReader, writer: asyncio.StreamWriter
    ) -> None:
        """Serve one keep-alive connection until EOF or error."""
        try:
            while True:
                try:
                    request = await _read_request(reader)
                except ValidationError as exc:
                    writer.write(_encode_response(
                        400, {"ok": False, "error": str(exc)}, keep_alive=False
                    ))
                    await writer.drain()
                    break
                if request is None:
                    break
                method, path, headers, body = request
                keep_alive = headers.get("connection", "keep-alive") != "close"
                status, response, extra, drop = await self._dispatch(
                    method, path, body
                )
                if drop:
                    # Injected transport fault: the request executed but
                    # its acknowledgement is lost — the client must
                    # retry with the same idempotency key.
                    writer.transport.abort()
                    return
                writer.write(_encode_response(
                    status, response, keep_alive=keep_alive, extra_headers=extra
                ))
                await writer.drain()
                if not keep_alive:
                    break
        except (ConnectionError, asyncio.IncompleteReadError):
            pass
        finally:
            writer.close()
            try:
                await writer.wait_closed()
            except (ConnectionError, OSError):
                pass

    async def _dispatch(
        self, method: str, path: str, body: bytes
    ) -> "tuple[int, dict[str, object], tuple, bool]":
        """Route one request; returns (status, body, extra headers, drop?)."""
        if path == "/health":
            if method != "GET":
                return 405, {"ok": False, "error": "health is GET-only"}, (), False
            return 200, {
                "ok": not self.core.failed,
                "failed": self.core.failed,
                "seq": self.core.next_seq,
            }, (), False
        if path == "/stats":
            if method != "GET":
                return 405, {"ok": False, "error": "stats is GET-only"}, (), False
            stats = await self._stats()
            stats.update(self.queue_stats())
            return 200, stats, (), False
        if path in ("/offer", "/release"):
            if method != "POST":
                return 405, {"ok": False, "error": f"{path} is POST-only"}, (), False
            return await self._decide(path.lstrip("/"), body)
        return 404, {"ok": False, "error": f"unknown path {path!r}"}, (), False

    async def _stats(self) -> "dict[str, object]":
        """Collect backend stats through each shard's own writer thread.

        Running a shard's ``stats()`` on its writer serializes the read
        against that shard's mutations without blocking other shards.
        """
        loop = asyncio.get_running_loop()
        if not self._sharded:
            return await loop.run_in_executor(
                self._workers[0].executor, self.core.stats
            )
        from repro.serve.shard import merge_shard_stats

        parts = []
        for worker in self._workers:
            parts.append(await loop.run_in_executor(
                worker.executor, worker.core.stats
            ))
        merged = merge_shard_stats(parts)
        merged["restore"] = dict(self.core.restore_info)
        return merged

    def queue_stats(self) -> "dict[str, object]":
        """Admission-queue counters (merged into ``/stats``)."""
        stats: "dict[str, object]" = {
            "pending": self._pending,
            "shed": self._shed,
            "served": self._served,
            "mean_latency": self._mean_latency(),
            "queue_depths": [w.depth() for w in self._workers],
            "shard_seqs": [w.core.next_seq for w in self._workers],
        }
        return stats

    def batch_histogram(self) -> "dict[str, int]":
        """Merged group-commit batch-size histogram across all workers."""
        merged: "dict[str, int]" = {}
        for worker in self._workers:
            for size, count in worker.core.batch_sizes.items():
                key = str(size)
                merged[key] = merged.get(key, 0) + count
        return {k: merged[k] for k in sorted(merged, key=int)}

    def _mean_latency(self) -> float:
        """Rolling mean decision latency (seconds; 0 before any sample)."""
        if not self._latencies:
            return 0.0
        return sum(self._latencies) / len(self._latencies)

    def _should_shed(self) -> bool:
        """Overload predicate: queue too deep, or estimated wait too long."""
        if self._pending >= self.config.max_pending:
            return True
        estimated = self._pending * self._mean_latency()
        # Group commit retires the queue in batches, so the expected
        # wait shrinks accordingly — without this, a deep-but-fast
        # batched queue would shed load it could trivially serve.
        return estimated / max(1, self.config.commit_batch) > self.config.max_wait

    async def _decide(
        self, op: str, body: bytes
    ) -> "tuple[int, dict[str, object], tuple, bool]":
        """Queue one offer/release on its shard's single-writer worker."""
        try:
            payload = json.loads(body.decode() or "{}")
        except (UnicodeDecodeError, json.JSONDecodeError) as exc:
            return 400, {"ok": False, "error": f"bad JSON body: {exc}"}, (), False
        if not isinstance(payload, dict) or "stream" not in payload:
            return 400, {"ok": False, "error": 'body needs a "stream" field'}, (), False
        stream = payload["stream"]
        if not isinstance(stream, (str, int)):
            return 400, {"ok": False, "error": "stream must be an id or index"}, (), False
        key = payload.get("key")
        if key is not None and not isinstance(key, str):
            return 400, {"ok": False, "error": "key must be a string"}, (), False
        if self._should_shed():
            self._shed += 1
            retry_after = self.config.retry_after
            return 503, {
                "ok": False,
                "error": "overloaded",
                "shed": True,
                "retry_after": retry_after,
            }, (("Retry-After", f"{retry_after:g}"),), False
        try:
            shard = self.core.route(stream) if self._sharded else 0
        except ValidationError as exc:
            return 400, {"ok": False, "error": str(exc)}, (), False
        loop = asyncio.get_running_loop()
        self._pending += 1
        started = time.perf_counter()
        try:
            response = await self._workers[shard].submit(loop, op, stream, key)
        except ValidationError as exc:
            return 400, {"ok": False, "error": str(exc)}, (), False
        except ServeFailure as exc:
            return 500, {"ok": False, "error": str(exc)}, (), False
        finally:
            self._pending -= 1
            self._latencies.append(time.perf_counter() - started)
            self._served += 1
        drop = False
        plan = getattr(self.core, "fault_plan", None)
        if plan is not None and plan.on_response() == "drop":
            drop = True
        return 200, response, (), drop
