"""The durable admission state machine behind the HTTP front door.

:class:`AdmissionCore` wraps one
:class:`~repro.core.allocate.OnlineAllocator` with the write-ahead
discipline that makes every acknowledged decision crash-safe:

1. execute the decision on the in-memory allocator;
2. durably append one WAL record describing it (op, stream index,
   receiver indices, optional idempotency key);
3. only then acknowledge, cache the response under its idempotency
   key, and — every ``snapshot_every`` records — commit an atomic
   snapshot.

If step 2 fails (injected or organic: torn write, fsync error,
process death) the in-memory state is *ahead* of the log by exactly
one unacknowledged operation.  The core then enters a **failed**
state and refuses further work; :meth:`AdmissionCore.restore` rebuilds
from disk (snapshot + WAL tail), which rolls that operation back, and
the client's idempotent retry re-executes it — so the WAL, the
allocator, and every acknowledgement stay mutually consistent through
arbitrary crash points (the chaos suite fuzzes exactly this).

The core is strictly single-writer: the HTTP layer funnels all
state-changing requests through one worker.  Reads (``stats``,
``health``) are safe from anywhere.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, replace
from pathlib import Path

from repro.config import (
    resolve_commit_batch,
    resolve_commit_linger_ms,
    resolve_durability,
)
from repro.core.allocate import OnlineAllocator
from repro.exceptions import ReproError, ValidationError
from repro.serve.faults import FaultPlan, FaultySink, InjectedCrash, InjectedFault
from repro.serve.snapshot import (
    INSTANCE_NAME,
    MANIFEST_NAME,
    WAL_NAME,
    load_snapshot,
    read_instance,
    read_root_manifest,
    write_instance,
    write_root_manifest,
    write_snapshot,
)
from repro.serve.wal import DecisionWal, FileSink, repair_wal


class ServeFailure(ReproError):
    """The service lost its durability guarantee and went read-only.

    Raised when a WAL append fails (the in-memory allocator is ahead of
    the durable log) and on every subsequent state-changing call until
    the owner restores from disk.
    """


@dataclass(frozen=True)
class ServeConfig:
    """Tunables of the admission service (all validated loudly).

    Attributes
    ----------
    snapshot_every:
        WAL records between atomic state snapshots (restore-time bound).
    keep_snapshots:
        Snapshot directories retained after each commit.
    durability:
        WAL durability level — ``"fsync"`` (default, survives power
        loss) or ``"flush"`` (survives process death only).
    max_pending:
        Admission-queue depth beyond which new state-changing requests
        are shed with 503 + ``Retry-After`` instead of queued.
    max_wait:
        Estimated queueing delay (seconds; depth × rolling mean decision
        latency) beyond which requests are shed even under the depth cap.
    retry_after:
        ``Retry-After`` hint (seconds) attached to shed responses.
    commit_batch:
        Maximum decisions group-committed per WAL fsync.  1 (the
        default) degenerates to the original one-fsync-per-decision
        service; larger batches amortize the durability round trip
        without weakening it (no decision is acknowledged before its
        batch's shared fsync returns).
    commit_linger_ms:
        Milliseconds a drain with a shallow queue waits for company
        before committing (0 = commit whatever is pending immediately).
    """

    snapshot_every: int = 1024
    keep_snapshots: int = 2
    durability: str = "fsync"
    max_pending: int = 64
    max_wait: float = 0.5
    retry_after: float = 0.25
    commit_batch: int = 1
    commit_linger_ms: float = 0.0

    def validated(self) -> "ServeConfig":
        """Return ``self`` after loud validation of every field."""
        if int(self.snapshot_every) < 1:
            raise ValidationError(
                f"snapshot_every must be >= 1, got {self.snapshot_every}"
            )
        if int(self.keep_snapshots) < 1:
            raise ValidationError(
                f"keep_snapshots must be >= 1, got {self.keep_snapshots}"
            )
        if int(self.max_pending) < 1:
            raise ValidationError(f"max_pending must be >= 1, got {self.max_pending}")
        if not self.max_wait > 0:
            raise ValidationError(f"max_wait must be > 0, got {self.max_wait}")
        if not self.retry_after > 0:
            raise ValidationError(f"retry_after must be > 0, got {self.retry_after}")
        return replace(
            self,
            snapshot_every=int(self.snapshot_every),
            keep_snapshots=int(self.keep_snapshots),
            durability=resolve_durability(self.durability),
            max_pending=int(self.max_pending),
            max_wait=float(self.max_wait),
            retry_after=float(self.retry_after),
            commit_batch=resolve_commit_batch(self.commit_batch),
            commit_linger_ms=resolve_commit_linger_ms(self.commit_linger_ms),
        )


class _BatchAlias:
    """Placeholder linking a repeated in-batch idempotency key to its first use."""

    __slots__ = ("slot",)

    def __init__(self, slot: int) -> None:
        self.slot = slot


class AdmissionCore:
    """Crash-safe offer/release service state over one allocator.

    Construct via :meth:`create` (fresh directory), :meth:`restore`
    (existing directory, after any crash) or the constructor itself,
    which opens-or-creates.  All state-changing calls must come from a
    single thread.
    """

    def __init__(
        self,
        root: "str | Path",
        *,
        instance=None,
        mu: "float | None" = None,
        config: "ServeConfig | None" = None,
        fault_plan: "FaultPlan | None" = None,
        must_exist: "bool | None" = None,
    ) -> None:
        self.root = Path(root)
        self.config = (config or ServeConfig()).validated()
        self.fault_plan = fault_plan
        self.failed = False
        self.started_at = time.time()
        exists = (self.root / MANIFEST_NAME).exists()
        if must_exist is True and not exists:
            raise ValidationError(
                f"{str(self.root)!r} is not a serve directory (no {MANIFEST_NAME}); "
                "create the service first"
            )
        if must_exist is False and exists:
            raise ValidationError(
                f"{str(self.root)!r} is already a serve directory; "
                "restore it instead of creating over it"
            )
        if exists:
            self._restore_from_disk(instance, mu)
        else:
            if instance is None:
                raise ValidationError(
                    "creating a new serve directory requires an instance"
                )
            self._create_fresh(instance, mu)

    # ------------------------------------------------------------------
    # Construction
    # ------------------------------------------------------------------

    @classmethod
    def create(
        cls,
        instance,
        root: "str | Path",
        *,
        mu: "float | None" = None,
        config: "ServeConfig | None" = None,
        fault_plan: "FaultPlan | None" = None,
    ) -> "AdmissionCore":
        """Initialize a fresh service directory (loud if one exists)."""
        return cls(
            root,
            instance=instance,
            mu=mu,
            config=config,
            fault_plan=fault_plan,
            must_exist=False,
        )

    @classmethod
    def restore(
        cls,
        root: "str | Path",
        *,
        config: "ServeConfig | None" = None,
        fault_plan: "FaultPlan | None" = None,
    ) -> "AdmissionCore":
        """Recover a service from its directory after a stop or crash.

        Repairs any torn WAL tail, loads the newest snapshot, replays
        the WAL records past it (verifying each replayed decision
        against the recorded one), and reopens for appends.  The
        result is bit-identical (``state_digest``) to the uninterrupted
        service at the same WAL sequence.
        """
        return cls(root, config=config, fault_plan=fault_plan, must_exist=True)

    def _create_fresh(self, instance, mu: "float | None") -> None:
        """Create-path initialization: persist instance, µ, empty WAL."""
        self.root.mkdir(parents=True, exist_ok=True)
        self.instance = instance
        self.allocator = OnlineAllocator(instance, mu=mu)
        write_instance(self.root, instance)
        write_root_manifest(
            self.root, wal_seq=0, snapshot=None, mu=self.allocator.mu
        )
        self._idempotency: "dict[str, dict[str, object]]" = {}
        self._snap_seq = 0
        self.batch_sizes: "dict[int, int]" = {}
        self.restore_info: "dict[str, object]" = {"created": True}
        self.wal = self._open_wal(next_seq=0)

    def _restore_from_disk(self, instance, mu: "float | None") -> None:
        """Restore-path initialization: snapshot + verified WAL-tail replay."""
        manifest = read_root_manifest(self.root)
        stored = read_instance(self.root)
        if instance is not None and instance.to_json() != stored.to_json():
            raise ValidationError(
                f"instance mismatch: {str(self.root)!r} was created for a "
                "different instance than the one provided"
            )
        stored_mu = float(manifest["mu"])
        if mu is not None and float(mu) != stored_mu:
            raise ValidationError(
                f"service was created with mu={stored_mu!r} but restore "
                f"asked for mu={mu!r}"
            )
        self.instance = stored
        self.allocator = OnlineAllocator(stored, mu=stored_mu)
        records, repaired_bytes = repair_wal(self.root / WAL_NAME)
        snap_name = manifest.get("snapshot")
        self._idempotency = {}
        self.batch_sizes = {}
        snap_seq = 0
        if snap_name is not None:
            snap_seq, state, self._idempotency = load_snapshot(self.root, snap_name)
            if snap_seq > len(records):
                raise ValidationError(
                    f"snapshot {snap_name!r} covers {snap_seq} WAL records but "
                    f"only {len(records)} survive; snapshots always sync the "
                    "WAL first, so this directory is corrupt"
                )
            self.allocator.load_state(state)
        self._snap_seq = snap_seq
        for record in records[snap_seq:]:
            self._replay_record(record)
        self.restore_info = {
            "created": False,
            "snapshot": snap_name,
            "snapshot_seq": snap_seq,
            "replayed": len(records) - snap_seq,
            "repaired_bytes": repaired_bytes,
        }
        self.wal = self._open_wal(next_seq=len(records))

    def _open_wal(self, *, next_seq: int) -> DecisionWal:
        """Open the WAL for appends, wrapping the sink when faults are on."""
        path = self.root / WAL_NAME
        sink = FileSink(path, durability=self.config.durability)
        if self.fault_plan is not None:
            sink = FaultySink(sink, self.fault_plan)
        return DecisionWal(path, next_seq=next_seq, sink=sink)

    def _replay_record(self, record: "dict[str, object]") -> None:
        """Re-execute one WAL record, verifying the decision matches."""
        op = record.get("op")
        k = int(record["k"])
        if op == "offer":
            users = [int(u) for u in self.allocator.offer_indexed(k)]
            recorded = [int(u) for u in record["users"]]
            if users != recorded:
                raise ValidationError(
                    f"WAL replay divergence at seq {record.get('seq')}: "
                    f"recorded receivers {recorded} but replay chose {users}; "
                    "the directory mixes state from different instances or builds"
                )
        elif op == "release":
            self.allocator.release_indexed(k)
        else:
            raise ValidationError(
                f"unknown WAL op {op!r} at seq {record.get('seq')}"
            )
        key = record.get("key")
        if key is not None:
            self._idempotency[str(key)] = self._response(record)

    # ------------------------------------------------------------------
    # State-changing operations
    # ------------------------------------------------------------------

    def offer(self, stream: "str | int", *, key: "str | None" = None) -> "dict[str, object]":
        """Offer a stream; returns the decision (``admitted`` + receivers).

        Rejections are decisions too — they mutate the allocator's
        rejection bookkeeping and are WAL-logged like admissions.  A
        repeated ``key`` returns the cached first response without
        re-executing (at-most-once semantics under client retries).
        """
        return self._execute("offer", stream, key)

    def release(self, stream: "str | int", *, key: "str | None" = None) -> "dict[str, object]":
        """Release an active stream (returns its load to the pool)."""
        return self._execute("release", stream, key)

    def _execute(
        self, op: str, stream: "str | int", key: "str | None"
    ) -> "dict[str, object]":
        """Shared execute-log-acknowledge path for offer/release.

        A batch of one through :meth:`execute_batch`: byte-identical WAL
        output and semantics to the original per-record path.
        """
        outcome = self.execute_batch([(op, stream, key)])[0]
        if isinstance(outcome, ValidationError):
            raise outcome
        return dict(outcome)

    def execute_batch(
        self, ops: "list[tuple[str, str | int, str | None]]"
    ) -> "list[dict[str, object] | ValidationError]":
        """Group-commit a batch of ``(op, stream, key)`` decisions.

        Executes every operation on the allocator **in list order**,
        appends all their WAL records as one contiguous write, issues
        **one** fsync for the whole batch, and only then builds the
        acknowledgements — so the durability contract is unchanged (no
        decision is acknowledged before its record is durable) while the
        fsync cost is shared ``len(ops)`` ways.

        Per-operation :class:`~repro.exceptions.ValidationError`\\ s
        (unknown stream, double offer, release of an inactive stream)
        are *returned in place* rather than raised: they fire before the
        allocator mutates, so the rest of the batch proceeds untouched.
        Idempotency keys dedupe against the cache *and* within the
        batch; a repeated key never executes twice.  A WAL failure
        poisons the whole core exactly as in the single-record path —
        nothing in the batch was acknowledged, and restore rolls the
        un-logged executions back.
        """
        self._check_alive()
        results: "list[object]" = [None] * len(ops)
        bodies: "list[dict[str, object]]" = []
        slots: "list[int]" = []
        in_batch: "dict[str, int]" = {}
        for i, (op, stream, key) in enumerate(ops):
            if key is not None:
                cached = self._idempotency.get(key)
                if cached is not None:
                    results[i] = dict(cached)
                    continue
                first = in_batch.get(key)
                if first is not None:
                    # Same key earlier in this very batch: alias the
                    # outcome after the shared commit resolves it.
                    results[i] = _BatchAlias(first)
                    continue
            try:
                k = self._resolve(stream)
                if op == "offer":
                    users = self.allocator.offer_indexed(k).tolist()
                    body: "dict[str, object]" = {"op": "offer", "k": k,
                                                 "users": users}
                elif op == "release":
                    self.allocator.release_indexed(k)
                    body = {"op": "release", "k": k}
                else:
                    raise ValidationError(
                        f"unknown service op {op!r}; pick 'offer' or 'release'"
                    )
            except ValidationError as exc:
                results[i] = exc
                continue
            if key is not None:
                body["key"] = key
                in_batch[key] = i
            bodies.append(body)
            slots.append(i)
        if bodies:
            records = self._append_many(bodies)
            for slot, record in zip(slots, records):
                response = self._response(record)
                key = record.get("key")
                if key is not None:
                    self._idempotency[str(key)] = response
                results[slot] = response
            self.batch_sizes[len(bodies)] = (
                self.batch_sizes.get(len(bodies), 0) + 1
            )
            self.maybe_snapshot()
        for i, outcome in enumerate(results):
            if isinstance(outcome, _BatchAlias):
                aliased = results[outcome.slot]
                results[i] = dict(aliased) if isinstance(aliased, dict) else aliased
        return results

    def _append_many(
        self, bodies: "list[dict[str, object]]"
    ) -> "list[dict[str, object]]":
        """Durably log a batch of executed decisions; fail closed on any error."""
        try:
            return self.wal.append_many(bodies)
        except InjectedCrash:
            # Simulated process death: nothing to clean up, the harness
            # restores from disk exactly as a real restart would.
            self.failed = True
            raise
        except (InjectedFault, OSError) as exc:
            self.failed = True
            raise ServeFailure(
                f"WAL append failed at seq {self.wal.next_seq}: {exc}; "
                "the in-memory state is ahead of the durable log — "
                "service is now read-only, restore from disk"
            ) from exc

    def _check_alive(self) -> None:
        """Refuse state changes after a durability failure."""
        if self.failed:
            raise ServeFailure(
                "service is in failed state after a durability fault; "
                "restore from disk to resume"
            )

    def _resolve(self, stream: "str | int") -> int:
        """Stream id or index → validated stream index (loud)."""
        if isinstance(stream, str):
            k = self.allocator._idx.stream_index.get(stream)
            if k is None:
                self.instance.stream(stream)  # canonical unknown-stream error
            return int(k)
        return self.allocator._check_stream_index(int(stream))

    def _response(self, record: "dict[str, object]") -> "dict[str, object]":
        """Build the acknowledgement for a WAL record (live or replayed)."""
        k = int(record["k"])
        stream_id = self.allocator._idx.stream_ids[k]
        response: "dict[str, object]" = {
            "ok": True,
            "op": record["op"],
            "stream": stream_id,
            "seq": int(record["seq"]),
        }
        if record["op"] == "offer":
            users = [int(u) for u in record["users"]]
            response["admitted"] = bool(users)
            response["user_index"] = users
            response["users"] = [
                self.allocator._idx.user_ids[u] for u in users
            ]
        return response

    # ------------------------------------------------------------------
    # Snapshots, introspection, lifecycle
    # ------------------------------------------------------------------

    def maybe_snapshot(self, *, force: bool = False) -> "str | None":
        """Commit a snapshot when one is due (or ``force``); returns its name.

        Never snapshots a failed core: after a durability fault the
        in-memory allocator holds an un-logged mutation, and persisting
        it would make the rollback-on-restore contract unsound.
        """
        if self.failed:
            return None
        due = self.wal.next_seq - self._snap_seq >= self.config.snapshot_every
        if not (force or due):
            return None
        # Invariant: a snapshot's WAL prefix is durable before the
        # snapshot commits, so a loaded snapshot can never be ahead of
        # the log (checked loudly on restore).
        self.wal.sync()
        name = write_snapshot(
            self.root,
            wal_seq=self.wal.next_seq,
            state=self.allocator.state_dict(),
            idempotency=self._idempotency,
            keep=self.config.keep_snapshots,
        )
        self._snap_seq = self.wal.next_seq
        return name

    @property
    def next_seq(self) -> int:
        """Sequence number the next WAL record will get."""
        return self.wal.next_seq

    @property
    def wal_path(self) -> Path:
        """Path of the decision WAL file."""
        return self.root / WAL_NAME

    def decisions(self) -> "list[dict[str, object]]":
        """Every committed WAL record, oldest first (reads from disk)."""
        from repro.serve.wal import read_wal

        return read_wal(self.wal_path)[0]

    def state_digest(self) -> str:
        """Bit-identity fingerprint of the wrapped allocator's state."""
        return self.allocator.state_digest()

    def stats(self) -> "dict[str, object]":
        """JSON-safe operational summary (the ``/stats`` endpoint body)."""
        state = self.allocator.state_dict()
        return {
            "ok": True,
            "seq": self.wal.next_seq,
            "active_streams": len(state["active_pairs"]),
            "rejected_count": int(state["rejected_count"]),
            "max_server_load": float(max(state["server_load"], default=0.0)),
            "snapshot_seq": self._snap_seq,
            "failed": self.failed,
            "uptime": time.time() - self.started_at,
            "restore": dict(self.restore_info),
            "batch_sizes": {str(k): v for k, v in sorted(self.batch_sizes.items())},
        }

    def close(self) -> None:
        """Close the WAL (idempotent); the directory stays restorable."""
        self.wal.close()

    def __enter__(self) -> "AdmissionCore":
        """Context-manager entry (returns self)."""
        return self

    def __exit__(self, *exc_info) -> None:
        """Context-manager exit: close the WAL."""
        self.close()


# Re-exported for import convenience in tests and the CLI.
__all__ = [
    "AdmissionCore",
    "ServeConfig",
    "ServeFailure",
    "INSTANCE_NAME",
    "MANIFEST_NAME",
    "WAL_NAME",
]
