"""Sharded admission workers behind one routing front door.

Scaling stage two (group commit being stage one): partition the
allocator **by stream** across ``N`` workers, each owning a full,
self-contained service directory — its own
:class:`~repro.serve.service.AdmissionCore`, WAL and snapshots — so the
per-shard fsync pipelines proceed independently.  The layout follows
the controller-routes-to-replicas shape of scalable VoD distribution
systems: a thin router hashes every offer/release to the shard that
owns its stream, and only that shard's single writer ever touches the
stream's state.

Because a stream's whole lifetime lands on one shard, each shard's
decision sequence is exactly what an unsharded
:class:`~repro.serve.service.AdmissionCore` would produce given the
same operation subsequence — the per-shard WALs replay onto fresh
allocators bit-identically (the chaos suite asserts this digest-for-
digest).  What sharding changes is *capacity semantics*: each shard
admits against its own copy of the budgets, which is the standard
replica model (a shard = a replica group serving a catalog partition),
not a distributed single-budget allocator.

Layout under the sharded service root::

    shard-manifest.json     # checksummed root pointer + barrier seqs
    shard-000/              # a complete repro-serve directory
    shard-001/
    ...

**Barrier snapshots:** :meth:`ShardedAdmissionCore.barrier_snapshot`
quiesces (callers stop the writers first — the HTTP layer drains its
worker threads), syncs **all** WALs, snapshots **all** shards, and only
then moves the root manifest with the per-shard barrier sequences.  A
crash at any instant leaves every shard independently restorable, and
restore checks each shard recovered at least its barrier prefix.
"""

from __future__ import annotations

import hashlib
import zlib
from pathlib import Path

from repro.exceptions import ValidationError
from repro.serve.service import AdmissionCore, ServeConfig
from repro.serve.snapshot import (
    MANIFEST_NAME,
    SHARD_MANIFEST_NAME,
    read_shard_manifest,
    shard_dir_name,
    write_shard_manifest,
)


def route_stream_id(stream_id: str, shards: int) -> int:
    """Deterministic shard for a stream id: CRC32 of its UTF-8 bytes.

    A pure function of ``(stream_id, shards)`` — stable across runs,
    processes and machines, so a restored or rebuilt router always
    sends a stream to the shard that holds its history.
    """
    return zlib.crc32(str(stream_id).encode("utf-8")) % int(shards)


def merged_digest(digests: "list[str]") -> str:
    """One fingerprint over the per-shard state digests (order-sensitive)."""
    return hashlib.sha256("\n".join(digests).encode()).hexdigest()


def merge_shard_stats(
    per_shard: "list[dict[str, object]]",
) -> "dict[str, object]":
    """Aggregate per-shard ``AdmissionCore.stats()`` dicts into one summary.

    Counters sum, loads max, and the group-commit batch-size histograms
    merge key-wise.  Shared by :meth:`ShardedAdmissionCore.stats` and
    the HTTP layer (which gathers each shard's stats on that shard's
    own writer thread before merging).
    """
    if not per_shard:
        raise ValidationError("cannot merge stats over zero shards")
    batch_sizes: "dict[str, int]" = {}
    for shard_stats in per_shard:
        for size, count in shard_stats["batch_sizes"].items():
            batch_sizes[size] = batch_sizes.get(size, 0) + count
    failed = any(s["failed"] for s in per_shard)
    return {
        "ok": not failed,
        "failed": failed,
        "shards": len(per_shard),
        "seq": sum(s["seq"] for s in per_shard),
        "shard_seqs": [s["seq"] for s in per_shard],
        "active_streams": sum(s["active_streams"] for s in per_shard),
        "rejected_count": sum(s["rejected_count"] for s in per_shard),
        "max_server_load": max(s["max_server_load"] for s in per_shard),
        "batch_sizes": {k: batch_sizes[k] for k in sorted(batch_sizes, key=int)},
    }


class ShardedAdmissionCore:
    """N admission workers, one router: the sharded service state machine.

    Construct via :meth:`create` (fresh directory) or :meth:`restore`
    (existing directory, after any crash).  Routing is synchronous and
    stateless; per-shard state-changing calls must each come from a
    single thread (one writer per shard — the HTTP layer runs one
    worker thread per shard).
    """

    def __init__(
        self,
        root: "str | Path",
        *,
        instance=None,
        mu: "float | None" = None,
        shards: "int | None" = None,
        config: "ServeConfig | None" = None,
        fault_plans: "dict[int, object] | None" = None,
        must_exist: "bool | None" = None,
    ) -> None:
        self.root = Path(root)
        self.config = (config or ServeConfig()).validated()
        fault_plans = dict(fault_plans or {})
        exists = (self.root / SHARD_MANIFEST_NAME).exists()
        if must_exist is True and not exists:
            raise ValidationError(
                f"{str(self.root)!r} is not a sharded serve directory "
                f"(no {SHARD_MANIFEST_NAME}); create the service first"
            )
        if must_exist is False and exists:
            raise ValidationError(
                f"{str(self.root)!r} is already a sharded serve directory; "
                "restore it instead of creating over it"
            )
        if exists:
            manifest = read_shard_manifest(self.root)
            self.shard_count = int(manifest["shards"])
            barrier = manifest.get("barrier_seqs")
            self.cores = [
                AdmissionCore.restore(
                    self.root / shard_dir_name(s),
                    config=self.config,
                    fault_plan=fault_plans.get(s),
                )
                for s in range(self.shard_count)
            ]
            if barrier is not None:
                for s, (core, floor) in enumerate(zip(self.cores, barrier)):
                    if core.next_seq < int(floor):
                        raise ValidationError(
                            f"shard {s} restored only {core.next_seq} WAL "
                            f"records but the barrier manifest promises "
                            f"{floor}; barriers sync every WAL before the "
                            "manifest moves, so this directory is corrupt"
                        )
            self.restore_info = {
                "created": False,
                "shards": self.shard_count,
                "barrier_seqs": barrier,
                "per_shard": [dict(c.restore_info) for c in self.cores],
            }
        else:
            if instance is None:
                raise ValidationError(
                    "creating a new sharded serve directory requires an instance"
                )
            count = int(shards) if shards is not None else 1
            if count < 1:
                raise ValidationError(f"shard count must be >= 1, got {count}")
            self.root.mkdir(parents=True, exist_ok=True)
            self.cores = [
                AdmissionCore.create(
                    instance,
                    self.root / shard_dir_name(s),
                    mu=mu,
                    config=self.config,
                    fault_plan=fault_plans.get(s),
                )
                for s in range(count)
            ]
            self.shard_count = count
            write_shard_manifest(
                self.root,
                shards=count,
                mu=self.cores[0].allocator.mu,
                barrier_seqs=None,
            )
            self.restore_info = {"created": True, "shards": count}
        self.instance = self.cores[0].instance
        self._idx = self.cores[0].allocator._idx

    # ------------------------------------------------------------------
    # Construction
    # ------------------------------------------------------------------

    @classmethod
    def create(
        cls,
        instance,
        root: "str | Path",
        *,
        shards: int,
        mu: "float | None" = None,
        config: "ServeConfig | None" = None,
        fault_plans: "dict[int, object] | None" = None,
    ) -> "ShardedAdmissionCore":
        """Initialize a fresh sharded service directory (loud if one exists)."""
        return cls(
            root,
            instance=instance,
            mu=mu,
            shards=shards,
            config=config,
            fault_plans=fault_plans,
            must_exist=False,
        )

    @classmethod
    def restore(
        cls,
        root: "str | Path",
        *,
        config: "ServeConfig | None" = None,
        fault_plans: "dict[int, object] | None" = None,
    ) -> "ShardedAdmissionCore":
        """Recover a sharded service from its directory after a stop or crash.

        Every shard restores independently (torn tail repaired, newest
        snapshot loaded, WAL tail replayed with per-record verification)
        and the result is checked against the barrier manifest: each
        shard must hold at least the WAL prefix the last barrier synced.
        """
        return cls(root, config=config, fault_plans=fault_plans, must_exist=True)

    # ------------------------------------------------------------------
    # Routing
    # ------------------------------------------------------------------

    def route(self, stream: "str | int") -> int:
        """Shard index owning ``stream`` (id or stream index; loud if unknown)."""
        if isinstance(stream, str):
            if stream not in self._idx.stream_index:
                self.instance.stream(stream)  # canonical unknown-stream error
            stream_id = stream
        else:
            k = int(stream)
            if not 0 <= k < len(self._idx.stream_ids):
                raise ValidationError(
                    f"unknown stream index {k}; instance has "
                    f"{len(self._idx.stream_ids)} streams"
                )
            stream_id = self._idx.stream_ids[k]
        return route_stream_id(stream_id, self.shard_count)

    # ------------------------------------------------------------------
    # State-changing operations (routed)
    # ------------------------------------------------------------------

    def offer(self, stream: "str | int", *, key: "str | None" = None) -> "dict[str, object]":
        """Offer a stream on the shard that owns it."""
        return self.cores[self.route(stream)].offer(stream, key=key)

    def release(self, stream: "str | int", *, key: "str | None" = None) -> "dict[str, object]":
        """Release a stream on the shard that owns it."""
        return self.cores[self.route(stream)].release(stream, key=key)

    # ------------------------------------------------------------------
    # Barrier snapshots, introspection, lifecycle
    # ------------------------------------------------------------------

    def barrier_snapshot(self) -> "list[str] | None":
        """Quiesced cross-shard snapshot: sync all WALs, then snapshot all.

        The caller guarantees quiescence (no writer mid-operation).
        Protocol: every shard's WAL is made durable first, then every
        shard commits an atomic snapshot, and only then does the root
        manifest advance with the per-shard barrier sequences — so a
        crash anywhere in the protocol leaves each shard independently
        restorable and the manifest never promises more than the WALs
        hold.  Returns the per-shard snapshot names (``None`` if any
        shard is failed: snapshotting un-logged state is unsound).
        """
        if self.failed:
            return None
        for core in self.cores:
            core.wal.sync()
        names = [core.maybe_snapshot(force=True) for core in self.cores]
        write_shard_manifest(
            self.root,
            shards=self.shard_count,
            mu=self.cores[0].allocator.mu,
            barrier_seqs=[core.next_seq for core in self.cores],
        )
        return names

    @property
    def failed(self) -> bool:
        """True when any shard lost its durability guarantee."""
        return any(core.failed for core in self.cores)

    @property
    def next_seq(self) -> int:
        """Total WAL records across all shards."""
        return sum(core.next_seq for core in self.cores)

    def next_seqs(self) -> "list[int]":
        """Per-shard WAL record counts (the shard decision counters)."""
        return [core.next_seq for core in self.cores]

    def decisions_by_shard(self) -> "list[list[dict[str, object]]]":
        """Every committed WAL record per shard (reads from disk)."""
        return [core.decisions() for core in self.cores]

    def state_digest(self) -> str:
        """Merged bit-identity fingerprint over the per-shard digests."""
        return merged_digest([core.state_digest() for core in self.cores])

    def stats(self) -> "dict[str, object]":
        """JSON-safe operational summary aggregated across shards."""
        merged = merge_shard_stats([core.stats() for core in self.cores])
        merged["restore"] = dict(self.restore_info)
        return merged

    def close(self) -> None:
        """Close every shard's WAL (idempotent); the directory stays restorable."""
        for core in self.cores:
            core.close()

    def __enter__(self) -> "ShardedAdmissionCore":
        """Context-manager entry (returns self)."""
        return self

    def __exit__(self, *exc_info) -> None:
        """Context-manager exit: close every shard."""
        self.close()


def open_service(
    root: "str | Path",
    *,
    config: "ServeConfig | None" = None,
) -> "AdmissionCore | ShardedAdmissionCore":
    """Restore whichever service layout lives at ``root`` (loud otherwise).

    A sharded directory (``shard-manifest.json``) restores to a
    :class:`ShardedAdmissionCore`; a plain one (``serve-manifest.json``)
    to an :class:`~repro.serve.service.AdmissionCore`.
    """
    root = Path(root)
    if (root / SHARD_MANIFEST_NAME).exists():
        return ShardedAdmissionCore.restore(root, config=config)
    if (root / MANIFEST_NAME).exists():
        return AdmissionCore.restore(root, config=config)
    raise ValidationError(
        f"{str(root)!r} is not a serve directory (no {MANIFEST_NAME} "
        f"or {SHARD_MANIFEST_NAME}); create the service first"
    )
