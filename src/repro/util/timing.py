"""Wall-clock timing helpers for the runtime-scaling experiments (E3)."""

from __future__ import annotations

import time
from dataclasses import dataclass, field


@dataclass
class Timer:
    """Accumulating stopwatch.

    Use as a context manager; ``elapsed`` accumulates across entries so a
    single timer can measure a repeated inner section.

    >>> t = Timer()
    >>> with t:
    ...     _ = sum(range(100))
    >>> t.elapsed > 0
    True
    """

    elapsed: float = 0.0
    _start: float = field(default=0.0, repr=False)
    _running: bool = field(default=False, repr=False)

    def __enter__(self) -> "Timer":
        self.start()
        return self

    def __exit__(self, *exc_info: object) -> None:
        self.stop()

    def start(self) -> None:
        if self._running:
            raise RuntimeError("Timer already running")
        self._running = True
        self._start = time.perf_counter()

    def stop(self) -> float:
        """Stop and return the time of the last lap."""
        if not self._running:
            raise RuntimeError("Timer not running")
        lap = time.perf_counter() - self._start
        self.elapsed += lap
        self._running = False
        return lap

    def reset(self) -> None:
        self.elapsed = 0.0
        self._running = False


def fit_loglog_slope(sizes: "list[float]", times: "list[float]") -> float:
    """Least-squares slope of log(time) vs log(size).

    Used by the E3 runtime experiment to check the empirical exponent of
    the greedy algorithm against the paper's O(n^2) bound.
    """
    import numpy as np

    if len(sizes) != len(times) or len(sizes) < 2:
        raise ValueError("need at least two (size, time) pairs")
    xs = np.log(np.asarray(sizes, dtype=float))
    ys = np.log(np.asarray(times, dtype=float))
    slope, _intercept = np.polyfit(xs, ys, 1)
    return float(slope)
