"""ASCII / Markdown table rendering for benchmark and experiment output.

The benchmark harness prints the same rows it records in
``EXPERIMENTS.md``; this module renders them both as aligned plain-text
tables (for terminal output) and GitHub-flavoured markdown (for the
report file).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Iterable, Sequence


def _fmt_cell(value: Any) -> str:
    """Format a single table cell."""
    if isinstance(value, float):
        if value != value:  # NaN
            return "nan"
        if value == float("inf"):
            return "inf"
        if abs(value) >= 1000 or (value != 0 and abs(value) < 0.001):
            return f"{value:.3g}"
        return f"{value:.3f}".rstrip("0").rstrip(".") if "." in f"{value:.3f}" else f"{value:.3f}"
    return str(value)


@dataclass
class Table:
    """A simple column-oriented table.

    >>> t = Table(["algo", "ratio"])
    >>> t.add_row(["greedy", 1.234])
    >>> print(t.render())
    algo   | ratio
    -------+------
    greedy | 1.234
    """

    columns: Sequence[str]
    rows: "list[list[str]]" = field(default_factory=list)
    title: str = ""

    def add_row(self, values: Iterable[Any]) -> None:
        """Append a row; values are formatted immediately."""
        row = [_fmt_cell(v) for v in values]
        if len(row) != len(self.columns):
            raise ValueError(
                f"row has {len(row)} cells but table has {len(self.columns)} columns"
            )
        self.rows.append(row)

    def _widths(self) -> "list[int]":
        widths = [len(c) for c in self.columns]
        for row in self.rows:
            for i, cell in enumerate(row):
                widths[i] = max(widths[i], len(cell))
        return widths

    def render(self) -> str:
        """Render as an aligned plain-text table."""
        widths = self._widths()
        lines = []
        if self.title:
            lines.append(self.title)
        header = " | ".join(c.ljust(w) for c, w in zip(self.columns, widths))
        lines.append(header)
        lines.append("-+-".join("-" * w for w in widths))
        for row in self.rows:
            lines.append(" | ".join(cell.ljust(w) for cell, w in zip(row, widths)))
        return "\n".join(lines)

    def render_markdown(self) -> str:
        """Render as a GitHub-flavoured markdown table."""
        lines = []
        if self.title:
            lines.append(f"**{self.title}**")
            lines.append("")
        lines.append("| " + " | ".join(self.columns) + " |")
        lines.append("|" + "|".join("---" for _ in self.columns) + "|")
        for row in self.rows:
            lines.append("| " + " | ".join(row) + " |")
        return "\n".join(lines)


def format_markdown_table(columns: Sequence[str], rows: Iterable[Iterable[Any]], title: str = "") -> str:
    """One-shot markdown table from columns and row data."""
    table = Table(list(columns), title=title)
    for row in rows:
        table.add_row(row)
    return table.render_markdown()
