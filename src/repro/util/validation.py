"""Small argument-validation helpers.

These raise :class:`repro.exceptions.ValidationError` with uniform
messages, which keeps the data-model constructors short and the error
text consistent across the library.
"""

from __future__ import annotations

import math
from typing import Any

from repro.exceptions import ValidationError


def check_finite(name: str, value: float, *, allow_inf: bool = False) -> float:
    """Validate that ``value`` is a finite real number (or +inf if allowed)."""
    value = float(value)
    if math.isnan(value):
        raise ValidationError(f"{name} must not be NaN")
    if not allow_inf and math.isinf(value):
        raise ValidationError(f"{name} must be finite, got {value}")
    return value


def check_nonnegative(name: str, value: float, *, allow_inf: bool = False) -> float:
    """Validate that ``value`` is a nonnegative real number."""
    value = check_finite(name, value, allow_inf=allow_inf)
    if value < 0:
        raise ValidationError(f"{name} must be nonnegative, got {value}")
    return value


def check_positive(name: str, value: float, *, allow_inf: bool = False) -> float:
    """Validate that ``value`` is strictly positive."""
    value = check_finite(name, value, allow_inf=allow_inf)
    if value <= 0:
        raise ValidationError(f"{name} must be positive, got {value}")
    return value


def check_in_range(name: str, value: float, low: float, high: float) -> float:
    """Validate that ``low <= value <= high``."""
    value = check_finite(name, value)
    if not (low <= value <= high):
        raise ValidationError(f"{name} must be in [{low}, {high}], got {value}")
    return value


def check_unique(name: str, items: "list[Any]") -> None:
    """Validate that ``items`` contains no duplicates."""
    seen = set()
    for item in items:
        if item in seen:
            raise ValidationError(f"duplicate {name}: {item!r}")
        seen.add(item)
