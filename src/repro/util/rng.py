"""Random number generator plumbing.

All stochastic code in the library accepts a ``seed`` argument that may be
``None`` (non-deterministic), an integer, or an already constructed
:class:`numpy.random.Generator`.  Funneling everything through
:func:`ensure_rng` keeps experiments reproducible: every generator,
workload, and simulation records the seed it was built from.
"""

from __future__ import annotations

import numpy as np

SeedLike = "int | np.random.Generator | None"


def ensure_rng(seed: "int | np.random.Generator | None" = None) -> np.random.Generator:
    """Return a numpy :class:`~numpy.random.Generator` for ``seed``.

    Parameters
    ----------
    seed:
        ``None`` for OS entropy, an ``int`` seed, or an existing
        ``Generator`` (returned unchanged so callers can share state).
    """
    if isinstance(seed, np.random.Generator):
        return seed
    return np.random.default_rng(seed)


def derive_seed(base_seed: int, unit_index: int) -> int:
    """Deterministic per-unit seed for work unit ``unit_index`` of a grid.

    Mixes ``(base_seed, unit_index)`` through
    :class:`numpy.random.SeedSequence`, so the seed of a unit depends
    only on the base seed and the unit's position in the *full* grid —
    never on how many units ran before it.  Shard ``(i, n)`` of a sweep
    therefore draws exactly the per-unit seeds the unsharded run draws,
    which is what makes shard unions bit-identical to single-machine
    runs (see :mod:`repro.experiments`).

    Seeds are 64-bit: at the 32 bits ``generate_state`` defaults to,
    birthday collisions appear around 10⁴–10⁵ units (two cells silently
    drawing identical instances); at 64 bits a billion-unit grid stays
    collision-free in expectation.

    >>> derive_seed(0, 0) == derive_seed(0, 0)
    True
    >>> derive_seed(0, 1) != derive_seed(0, 2)
    True
    """
    if unit_index < 0:
        raise ValueError(f"unit_index must be nonnegative, got {unit_index}")
    entropy = (int(base_seed) % (1 << 64), int(unit_index))
    return int(np.random.SeedSequence(entropy).generate_state(1, dtype=np.uint64)[0])


def spawn_rngs(seed: "int | np.random.Generator | None", count: int) -> list[np.random.Generator]:
    """Derive ``count`` independent generators from a single seed.

    Uses :class:`numpy.random.SeedSequence` spawning so that streams are
    statistically independent, which matters when parallel experiment
    arms must not share randomness.
    """
    if count < 0:
        raise ValueError(f"count must be nonnegative, got {count}")
    if isinstance(seed, np.random.Generator):
        # Derive children by drawing seeds from the parent generator.
        return [np.random.default_rng(seed.integers(0, 2**63 - 1)) for _ in range(count)]
    seq = np.random.SeedSequence(seed)
    return [np.random.default_rng(child) for child in seq.spawn(count)]
