"""Random number generator plumbing.

All stochastic code in the library accepts a ``seed`` argument that may be
``None`` (non-deterministic), an integer, or an already constructed
:class:`numpy.random.Generator`.  Funneling everything through
:func:`ensure_rng` keeps experiments reproducible: every generator,
workload, and simulation records the seed it was built from.
"""

from __future__ import annotations

import numpy as np

SeedLike = "int | np.random.Generator | None"


def ensure_rng(seed: "int | np.random.Generator | None" = None) -> np.random.Generator:
    """Return a numpy :class:`~numpy.random.Generator` for ``seed``.

    Parameters
    ----------
    seed:
        ``None`` for OS entropy, an ``int`` seed, or an existing
        ``Generator`` (returned unchanged so callers can share state).
    """
    if isinstance(seed, np.random.Generator):
        return seed
    return np.random.default_rng(seed)


def spawn_rngs(seed: "int | np.random.Generator | None", count: int) -> list[np.random.Generator]:
    """Derive ``count`` independent generators from a single seed.

    Uses :class:`numpy.random.SeedSequence` spawning so that streams are
    statistically independent, which matters when parallel experiment
    arms must not share randomness.
    """
    if count < 0:
        raise ValueError(f"count must be nonnegative, got {count}")
    if isinstance(seed, np.random.Generator):
        # Derive children by drawing seeds from the parent generator.
        return [np.random.default_rng(seed.integers(0, 2**63 - 1)) for _ in range(count)]
    seq = np.random.SeedSequence(seed)
    return [np.random.default_rng(child) for child in seq.spawn(count)]
