"""Shared atomic-commit helpers for crash-safe on-disk state.

Two modules own durable state — the columnar trace store
(:mod:`repro.sim.store`) and the admission service's WAL + snapshots
(:mod:`repro.serve`) — and both follow the same discipline:

- **data bytes first, manifest last** — a JSON manifest naming the
  committed content is replaced *atomically* (sibling temp file +
  ``os.replace``) only after the bytes it points at are fully on disk,
  so a kill at any instant leaves either the old commit or the new one,
  never a half-written pointer;
- **checksummed footers** — the manifest body carries a CRC echo so a
  torn or tampered manifest is detected loudly instead of being
  half-trusted.

This module is the single implementation of that pattern; the store's
historical helpers delegate here.
"""

from __future__ import annotations

import json
import os
import zlib
from pathlib import Path

from repro.exceptions import ValidationError


def json_checksum(body: "dict[str, object]") -> str:
    """CRC32 (hex) of a dict's canonical JSON form.

    The canonical form is ``json.dumps(body, sort_keys=True)``, so two
    semantically equal bodies always produce the same checksum.
    """
    canonical = json.dumps(body, sort_keys=True).encode()
    return format(zlib.crc32(canonical), "08x")


def atomic_write_text(path: "str | Path", text: str, *, fsync: bool = False) -> None:
    """Replace ``path`` with ``text`` atomically (temp file + rename).

    A kill mid-write can never leave a half-written file: readers see
    either the previous content or the new one.  With ``fsync=True``
    the temp file's bytes are forced to disk before the rename, so the
    commit also survives power loss, not just process death.
    """
    path = Path(path)
    tmp = path.with_name(path.name + ".tmp")
    with tmp.open("w") as handle:
        handle.write(text)
        handle.flush()
        if fsync:
            os.fsync(handle.fileno())
    os.replace(tmp, path)


def atomic_write_bytes(path: "str | Path", data: bytes, *, fsync: bool = False) -> None:
    """Binary twin of :func:`atomic_write_text` (temp file + rename)."""
    path = Path(path)
    tmp = path.with_name(path.name + ".tmp")
    with tmp.open("wb") as handle:
        handle.write(data)
        handle.flush()
        if fsync:
            os.fsync(handle.fileno())
    os.replace(tmp, path)


def write_checked_manifest(
    path: "str | Path", body: "dict[str, object]", *, fsync: bool = False
) -> None:
    """Atomically write ``body`` + a checksummed footer as JSON.

    The footer echoes ``body["rows"]`` (when present) and the CRC of
    the body, which :func:`read_checked_manifest` verifies — the
    torn-write detector shared by the trace store and the serve layer.
    """
    manifest = dict(body)
    manifest["footer"] = {
        "rows": body.get("rows"),
        "check": json_checksum(body),
    }
    atomic_write_text(Path(path), json.dumps(manifest, sort_keys=True, indent=1) + "\n",
                      fsync=fsync)


def read_checked_manifest(path: "str | Path", what: str = "manifest") -> "dict[str, object]":
    """Read a footer-checksummed manifest, loudly rejecting torn ones.

    Returns the body (footer stripped).  Raises
    :class:`~repro.exceptions.ValidationError` when the file is missing,
    is not JSON, or its footer checksum does not match the body.
    """
    path = Path(path)
    if not path.exists():
        raise ValidationError(f"no {what} at {str(path)!r}")
    try:
        manifest = json.loads(path.read_text())
    except json.JSONDecodeError as exc:
        raise ValidationError(f"corrupt {what} {str(path)!r}: {exc}") from exc
    if not isinstance(manifest, dict):
        raise ValidationError(f"corrupt {what} {str(path)!r}: not a JSON object")
    footer = manifest.get("footer")
    body = {k: v for k, v in manifest.items() if k != "footer"}
    if (
        not isinstance(footer, dict)
        or footer.get("rows") != body.get("rows")
        or footer.get("check") != json_checksum(body)
    ):
        raise ValidationError(
            f"{what} {str(path)!r} has a torn or tampered footer"
        )
    return body
