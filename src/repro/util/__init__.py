"""Utility helpers shared across the repro library."""

from repro.util.rng import ensure_rng, spawn_rngs
from repro.util.tables import Table, format_markdown_table
from repro.util.timing import Timer
from repro.util.validation import (
    check_finite,
    check_in_range,
    check_nonnegative,
    check_positive,
)

__all__ = [
    "ensure_rng",
    "spawn_rngs",
    "Table",
    "format_markdown_table",
    "Timer",
    "check_finite",
    "check_in_range",
    "check_nonnegative",
    "check_positive",
]
