"""Command-line interface: ``python -m repro <command>``.

Commands
--------

``generate``
    Emit an instance (JSON) from a named family or workload.
``validate``
    Validate an instance file; ``--sanitize`` repairs utility entries
    that violate the paper's overload convention.
``info``
    Print an instance's parameters: shape, skews, theorem bounds.
``solve``
    Run the paper pipeline (and optionally the exact solver) on an
    instance file; print the solution summary.
``solve-many``
    Batch-solve a JSONL stream of instances — or a generated
    catalog × population × skew sweep — optionally over a process pool;
    emit one JSON result per line.
``simulate``
    Run the discrete-event simulator on a named workload under one or
    more policies and print the comparison table.

All commands read/write plain JSON (``generate --count`` and
``solve-many`` stream JSON Lines) so they compose with shell pipelines.
"""

from __future__ import annotations

import argparse
import json
import sys
from pathlib import Path

from repro.core.allocate import global_skew_parameters, small_streams_condition
from repro.core.instance import MMDInstance
from repro.core.optimal import lp_upper_bound, solve_exact_milp
from repro.core.solver import iter_solve_many, solve_mmd, theorem_1_1_bound
from repro.instances.generators import (
    random_mmd,
    random_smd,
    random_unit_skew_smd,
    small_streams_mmd,
    sweep_instances,
    tightness_instance,
)
from repro.instances.workloads import (
    cable_headend_workload,
    iptv_neighborhood_workload,
    small_streams_workload,
)
from repro.util.tables import Table

def _gen_engine(args: argparse.Namespace) -> "str | None":
    """The ``--gen-engine`` choice (None resolves via $REPRO_GEN_ENGINE)."""
    return getattr(args, "gen_engine", None)


#: Named generators reachable from ``generate --family``.
FAMILIES = {
    "unit-skew-smd": lambda args: random_unit_skew_smd(
        args.streams, args.users, seed=args.seed, engine=_gen_engine(args)
    ),
    "smd": lambda args: random_smd(
        args.streams, args.users, args.skew, seed=args.seed, engine=_gen_engine(args)
    ),
    "mmd": lambda args: random_mmd(
        args.streams, args.users, m=args.m, mc=args.mc, seed=args.seed,
        engine=_gen_engine(args),
    ),
    "small-streams": lambda args: small_streams_mmd(
        args.streams, args.users, m=args.m, mc=args.mc, seed=args.seed,
        engine=_gen_engine(args),
    ),
    "tightness": lambda args: tightness_instance(args.m, args.mc),
    "cable-headend": lambda args: cable_headend_workload(
        num_channels=args.streams, num_gateways=args.users, seed=args.seed
    ),
    "iptv": lambda args: iptv_neighborhood_workload(
        num_channels=args.streams, num_households=args.users, seed=args.seed
    ),
    "small-streams-workload": lambda args: small_streams_workload(
        num_channels=args.streams, num_households=args.users, seed=args.seed
    ),
}

WORKLOADS = {
    "iptv": iptv_neighborhood_workload,
    "cable-headend": cable_headend_workload,
    "small-streams": small_streams_workload,
}


def _load_instance(path: str) -> MMDInstance:
    text = Path(path).read_text() if path != "-" else sys.stdin.read()
    return MMDInstance.from_json(text)


def _write(text: str, output: "str | None") -> None:
    if output and output != "-":
        Path(output).write_text(text)
    else:
        print(text)


def _open_out(output: "str | None"):
    if output and output != "-":
        return Path(output).open("w")
    return sys.stdout


#: Families that take no seed: --count would emit identical copies.
DETERMINISTIC_FAMILIES = frozenset({"tightness"})


def cmd_generate(args: argparse.Namespace) -> int:
    if args.count is not None:
        # Streaming mode: emit `count` instances as JSON Lines, one per
        # seed, writing each line as soon as it is built (constant memory).
        if args.count < 1:
            print(f"--count must be >= 1, got {args.count}", file=sys.stderr)
            return 2
        if args.family in DETERMINISTIC_FAMILIES and args.count > 1:
            print(
                f"--count > 1 with the deterministic family {args.family!r} "
                "would emit identical instances",
                file=sys.stderr,
            )
            return 2
        out = _open_out(args.output)
        try:
            base_seed = args.seed
            for offset in range(args.count):
                args.seed = base_seed + offset
                out.write(FAMILIES[args.family](args).to_json())
                out.write("\n")
        finally:
            if out is not sys.stdout:
                out.close()
        return 0
    instance = FAMILIES[args.family](args)
    _write(instance.to_json(), args.output)
    return 0


def _loose_instance(data: dict) -> MMDInstance:
    """Rebuild an instance with the strict overload check disabled
    (everything else is still validated)."""
    import math as _math

    from repro.core.instance import Stream, User

    def num(x):
        return _math.inf if x == "inf" else float(x)

    streams = [
        Stream(s["stream_id"], tuple(s["costs"]), s.get("name", ""), s.get("attrs", {}))
        for s in data["streams"]
    ]
    users = [
        User(
            user_id=u["user_id"],
            utility_cap=num(u["utility_cap"]),
            capacities=tuple(num(k) for k in u["capacities"]),
            utilities={sid: float(w) for sid, w in u["utilities"].items()},
            loads={sid: tuple(vec) for sid, vec in u.get("loads", {}).items()},
            attrs=u.get("attrs", {}),
        )
        for u in data["users"]
    ]
    budgets = tuple(num(b) for b in data["budgets"])
    return MMDInstance(streams, users, budgets, name=data.get("name", ""), strict=False)


def cmd_validate(args: argparse.Namespace) -> int:
    """Validate an instance file; ``--sanitize`` repairs violations of the
    paper's convention that ``w_u(S) = 0`` when a single stream's load
    exceeds a capacity."""
    from repro.core.instance import sanitize_utilities
    from repro.exceptions import ValidationError

    text = Path(args.instance).read_text() if args.instance != "-" else sys.stdin.read()
    try:
        instance = MMDInstance.from_json(text)
    except (ValidationError, KeyError, TypeError, json.JSONDecodeError) as exc:
        if not args.sanitize:
            print(f"INVALID: {exc}", file=sys.stderr)
            return 1
        try:
            repaired = sanitize_utilities(_loose_instance(json.loads(text)))
        except (ValidationError, KeyError, json.JSONDecodeError) as inner:
            print(f"INVALID (unrepairable): {inner}", file=sys.stderr)
            return 1
        _write(repaired.to_json(), args.output)
        print(
            "REPAIRED (w_u(S) zeroed where a single stream overloads a capacity)",
            file=sys.stderr,
        )
        return 0
    print(f"OK: {instance}")
    return 0


def cmd_info(args: argparse.Namespace) -> int:
    instance = _load_instance(args.instance)
    gamma, mu, d = global_skew_parameters(instance)
    rows = [
        ["name", instance.name or "(unnamed)"],
        ["streams", instance.num_streams],
        ["users", instance.num_users],
        ["server budgets (m)", instance.m],
        ["capacity measures (m_c)", instance.mc],
        ["input length n", instance.input_length],
        ["local skew α", instance.local_skew()],
        ["global skew γ", gamma],
        ["µ = 2γD+2", mu],
        ["small-streams precondition", "yes" if small_streams_condition(instance) else "no"],
        ["Theorem 1.1 bound", theorem_1_1_bound(instance)],
        ["trivial utility upper bound", instance.max_total_utility()],
    ]
    table = Table(["property", "value"], title=f"Instance {args.instance}")
    for row in rows:
        table.add_row(row)
    print(table.render())
    return 0


def cmd_solve(args: argparse.Namespace) -> int:
    instance = _load_instance(args.instance)
    result = solve_mmd(instance, method=args.method)
    table = Table(["field", "value"], title="Solution")
    table.add_row(["method", result.method])
    table.add_row(["utility", result.utility])
    table.add_row(["feasible", str(result.assignment.is_feasible())])
    table.add_row(["worst-case guarantee", result.guarantee])
    table.add_row(["streams carried", len(result.assignment.assigned_streams())])
    if args.exact:
        opt = solve_exact_milp(instance).utility
        table.add_row(["exact optimum (MILP)", opt])
        table.add_row(["measured ratio", opt / max(result.utility, 1e-12)])
    elif args.bound:
        bound = lp_upper_bound(instance)
        table.add_row(["LP upper bound", bound])
        table.add_row(["ratio vs LP bound", bound / max(result.utility, 1e-12)])
    print(table.render())
    if args.output:
        payload = {
            "method": result.method,
            "utility": result.utility,
            "guarantee": result.guarantee,
            "assignment": {
                uid: sorted(streams)
                for uid, streams in result.assignment.as_dict().items()
            },
        }
        _write(json.dumps(payload, indent=2), args.output)
    return 0


def _int_list(text: str) -> "list[int]":
    return [int(part) for part in text.split(",") if part.strip()]


def _float_list(text: str) -> "list[float]":
    return [float(part) for part in text.split(",") if part.strip()]


def _iter_jsonl_instances(path: str):
    """Stream instances from a JSON Lines file (or stdin with ``-``)."""
    handle = sys.stdin if path == "-" else Path(path).open()
    try:
        for line in handle:
            line = line.strip()
            if line:
                yield MMDInstance.from_json(line)
    finally:
        if handle is not sys.stdin:
            handle.close()


def cmd_solve_many(args: argparse.Namespace) -> int:
    """Batch-solve instances from a JSONL file or a generated sweep."""
    if args.input is None and args.sweep_streams is None:
        print("solve-many needs --input FILE or --sweep-streams/--sweep-users",
              file=sys.stderr)
        return 2
    if args.input is not None:
        instances = _iter_jsonl_instances(args.input)
    else:
        if args.sweep_users is None:
            print("--sweep-streams requires --sweep-users", file=sys.stderr)
            return 2
        instances = sweep_instances(
            _int_list(args.sweep_streams),
            _int_list(args.sweep_users),
            _float_list(args.sweep_skews),
            seed=args.seed,
            density=args.density,
            engine=args.gen_engine,
        )
    results = iter_solve_many(
        instances,
        method=args.method,
        parallel=args.parallel,
        engine=args.engine,
    )
    # Stream: each result line is written (and flushed) as soon as the
    # instance finishes, so huge sweeps never accumulate in memory; the
    # small summary rows are retained only when a closing table will
    # actually be printed (file output).
    want_table = bool(args.output) and args.output != "-"
    summary_rows: "list[list[object]]" = []
    out = _open_out(args.output)
    try:
        for result in results:
            carried = len(result.assignment.assigned_streams())
            payload = {
                "name": result.assignment.instance.name,
                "streams": result.assignment.instance.num_streams,
                "users": result.assignment.instance.num_users,
                "method": result.method,
                "utility": result.utility,
                "guarantee": result.guarantee,
                "feasible": result.assignment.is_feasible(),
                "streams_carried": carried,
            }
            out.write(json.dumps(payload))
            out.write("\n")
            out.flush()
            if want_table:
                summary_rows.append(
                    [
                        result.assignment.instance.name or "(unnamed)",
                        result.method,
                        result.utility,
                        carried,
                    ]
                )
    finally:
        if out is not sys.stdout:
            out.close()
    if want_table:
        table = Table(
            ["instance", "method", "utility", "carried"],
            title=f"solve-many ({len(summary_rows)} instances, parallel={args.parallel})",
        )
        for row in summary_rows:
            table.add_row(row)
        print(table.render())
    return 0


def cmd_simulate(args: argparse.Namespace) -> int:
    from repro.analysis.ascii_plot import bar_chart
    from repro.sim.policies import (
        AllocatePolicy,
        DensityPolicy,
        RandomPolicy,
        ThresholdPolicy,
    )
    from repro.sim.simulation import ArrivalModel, compare_policies

    policy_factories = {
        "threshold": ThresholdPolicy,
        "allocate": AllocatePolicy,
        "density": DensityPolicy,
        "random": lambda: RandomPolicy(seed=args.seed),
    }
    unknown = [p for p in args.policies if p not in policy_factories]
    if unknown:
        print(f"unknown policies: {unknown}; pick from {sorted(policy_factories)}",
              file=sys.stderr)
        return 2
    instance = WORKLOADS[args.workload](seed=args.seed)
    model = ArrivalModel(
        rate=args.rate,
        mean_duration=args.duration,
        popularity_exponent=args.popularity,
    )
    reports = compare_policies(
        instance,
        [policy_factories[p]() for p in args.policies],
        horizon=args.horizon,
        model=model,
        seed=args.seed,
        engine=args.engine,
        parallel=args.parallel,
    )
    table = Table(
        ["policy", "utility·time", "accept", "peak load", "fairness"],
        title=f"{args.workload} | rate={args.rate} duration={args.duration} "
        f"horizon={args.horizon}",
    )
    for report in sorted(reports, key=lambda r: -r.utility_time):
        table.add_row(
            [
                report.policy_name,
                report.utility_time,
                report.acceptance_rate,
                max(report.peak_server_utilization.values(), default=0.0),
                report.jain_fairness,
            ]
        )
    print(table.render())
    print()
    print(
        bar_chart(
            [r.policy_name for r in reports],
            [r.utility_time for r in reports],
        )
    )
    return 0


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Video distribution under multiple constraints (ICDCS 2008) — "
        "solvers, generators, and simulator.",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    gen = sub.add_parser("generate", help="emit an instance as JSON")
    gen.add_argument("--family", choices=sorted(FAMILIES), default="unit-skew-smd")
    gen.add_argument("--streams", type=int, default=20)
    gen.add_argument("--users", type=int, default=8)
    gen.add_argument("--m", type=int, default=2)
    gen.add_argument("--mc", type=int, default=1)
    gen.add_argument("--skew", type=float, default=8.0)
    gen.add_argument("--seed", type=int, default=0)
    gen.add_argument("--count", type=int, default=None,
                     help="emit COUNT instances as JSON Lines (seeds seed..seed+COUNT-1), "
                     "streaming one line at a time")
    gen.add_argument("--gen-engine", choices=["vectorized", "loop"], default=None,
                     help="draw engine for the random families (default: loop for "
                     "seed-compatible output; vectorized draws whole instances "
                     "with batched numpy calls; $REPRO_GEN_ENGINE overrides)")
    gen.add_argument("--output", "-o", default="-")
    gen.set_defaults(func=cmd_generate)

    info = sub.add_parser("info", help="print instance parameters and bounds")
    info.add_argument("instance", help="instance JSON path (or - for stdin)")
    info.set_defaults(func=cmd_info)

    validate = sub.add_parser("validate", help="validate (optionally repair) an instance")
    validate.add_argument("instance", help="instance JSON path (or - for stdin)")
    validate.add_argument("--sanitize", action="store_true",
                          help="zero utilities whose single-stream load exceeds "
                          "a capacity (the paper's convention) and emit the repaired instance")
    validate.add_argument("--output", "-o", default="-")
    validate.set_defaults(func=cmd_validate)

    solve = sub.add_parser("solve", help="run the paper pipeline on an instance")
    solve.add_argument("instance", help="instance JSON path (or - for stdin)")
    solve.add_argument("--method", choices=["greedy", "enumeration"], default="greedy")
    solve.add_argument("--exact", action="store_true",
                       help="also solve exactly (MILP) and report the ratio")
    solve.add_argument("--bound", action="store_true",
                       help="also compute the LP upper bound")
    solve.add_argument("--output", "-o", default="",
                       help="write the assignment JSON here")
    solve.set_defaults(func=cmd_solve)

    many = sub.add_parser(
        "solve-many",
        help="batch-solve a JSONL instance stream or a generated sweep",
    )
    many.add_argument("--input", "-i", default=None,
                      help="JSONL file of instances (or - for stdin)")
    many.add_argument("--sweep-streams", default=None,
                      help="comma list of catalog sizes (generated sweep mode)")
    many.add_argument("--sweep-users", default=None,
                      help="comma list of population sizes")
    many.add_argument("--sweep-skews", default="1",
                      help="comma list of local skews (1 = unit skew)")
    many.add_argument("--density", type=float, default=0.05,
                      help="sweep interest density (streams per user fraction)")
    many.add_argument("--seed", type=int, default=0)
    many.add_argument("--method", choices=["greedy", "enumeration"], default="greedy")
    many.add_argument("--engine", choices=["indexed", "dict"], default=None,
                      help="hot-path implementation (default: indexed)")
    many.add_argument("--gen-engine", choices=["vectorized", "loop"], default=None,
                      help="sweep generation engine (default: vectorized — instances "
                      "stream as index-native arrays; loop reproduces the "
                      "seed-compatible dict generators)")
    many.add_argument("--parallel", "-j", type=int, default=1,
                      help="worker processes (1 = in-process)")
    many.add_argument("--output", "-o", default="-",
                      help="JSONL results path (- for stdout)")
    many.set_defaults(func=cmd_solve_many)

    sim = sub.add_parser("simulate", help="run the DES on a named workload")
    sim.add_argument("--workload", choices=sorted(WORKLOADS), default="iptv")
    sim.add_argument("--policies", nargs="+",
                     default=["threshold", "allocate", "density"])
    sim.add_argument("--rate", type=float, default=2.0)
    sim.add_argument("--duration", type=float, default=30.0)
    sim.add_argument("--horizon", type=float, default=300.0)
    sim.add_argument("--popularity", type=float, default=1.0,
                     help="Zipf exponent of stream popularity (0 = uniform)")
    sim.add_argument("--seed", type=int, default=0)
    sim.add_argument("--engine", choices=["indexed", "dict"], default=None,
                     help="simulation engine (default: indexed — array-native "
                     "trace draw and replay; dict keeps the original event "
                     "loop; $REPRO_SIM_ENGINE overrides)")
    sim.add_argument("--parallel", "-j", type=int, default=1,
                     help="worker processes, one policy replay each "
                     "(1 = in-process)")
    sim.set_defaults(func=cmd_simulate)
    return parser


def main(argv: "list[str] | None" = None) -> int:
    parser = build_parser()
    args = parser.parse_args(argv)
    return args.func(args)


if __name__ == "__main__":
    raise SystemExit(main())
