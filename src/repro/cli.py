"""Command-line interface: ``python -m repro <command>``.

Commands
--------

``generate``
    Emit an instance (JSON) from a named family or workload.
``validate``
    Validate an instance file; ``--sanitize`` repairs utility entries
    that violate the paper's overload convention.
``info``
    Print an instance's parameters: shape, skews, theorem bounds.
``solve``
    Run the paper pipeline (and optionally the exact solver) on an
    instance file; print the solution summary.
``solve-many``
    Batch-solve a JSONL stream of instances — or a generated
    catalog × population × skew sweep — optionally over a process pool;
    emit one JSON result per line.  (Delegates to the experiment
    runner; ``repro sweep`` is the full-featured door.)
``simulate``
    Run the discrete-event simulator on a named workload under one or
    more policies and print the comparison table.
``sweep``
    Run a declarative scenario spec (a file, or a shipped name such as
    ``e12-generation``) through the sharded resumable experiment
    runner: ``--shard i/n`` splits the grid across machines,
    ``--checkpoint``/``--resume`` survive kills, ``--merge`` folds
    shard checkpoints into one aggregate.
``simulate-many``
    The simulation counterpart: a workload × size × seed × policy grid
    through the same runner (specs of ``kind = "simulate"``, or an
    inline grid from flags).
``serve``
    The crash-safe live admission service: ``serve run`` starts (or
    restores) the HTTP/JSON front door over one online allocator —
    WAL + snapshots in ``--dir``, load shedding under overload;
    ``serve restore`` recovers a directory offline and prints what it
    took (torn bytes repaired, tail replayed, state digest).

All commands read/write plain JSON (``generate --count``,
``solve-many``, ``sweep`` and ``simulate-many`` stream JSON Lines) so
they compose with shell pipelines.
"""

from __future__ import annotations

import argparse
import json
import os
import sys
from pathlib import Path

from repro.core.allocate import global_skew_parameters, small_streams_condition
from repro.core.instance import MMDInstance
from repro.core.optimal import lp_upper_bound, solve_exact_milp
from repro.core.solver import solve_mmd, theorem_1_1_bound
from repro.config import ENGINE_SETTINGS
from repro.exceptions import ValidationError
from repro.experiments.spec import ScenarioSpec, SpecError
from repro.instances.generators import (
    random_mmd,
    random_smd,
    random_unit_skew_smd,
    small_streams_mmd,
    tightness_instance,
)
from repro.instances.workloads import (
    cable_headend_workload,
    iptv_neighborhood_workload,
    small_streams_workload,
)
from repro.util.tables import Table

def _gen_engine(args: argparse.Namespace) -> "str | None":
    """The ``--gen-engine`` choice (None resolves via $REPRO_GEN_ENGINE)."""
    return getattr(args, "gen_engine", None)


#: Named generators reachable from ``generate --family``.
FAMILIES = {
    "unit-skew-smd": lambda args: random_unit_skew_smd(
        args.streams, args.users, seed=args.seed, engine=_gen_engine(args)
    ),
    "smd": lambda args: random_smd(
        args.streams, args.users, args.skew, seed=args.seed, engine=_gen_engine(args)
    ),
    "mmd": lambda args: random_mmd(
        args.streams, args.users, m=args.m, mc=args.mc, seed=args.seed,
        engine=_gen_engine(args),
    ),
    "small-streams": lambda args: small_streams_mmd(
        args.streams, args.users, m=args.m, mc=args.mc, seed=args.seed,
        engine=_gen_engine(args),
    ),
    "tightness": lambda args: tightness_instance(args.m, args.mc),
    "cable-headend": lambda args: cable_headend_workload(
        num_channels=args.streams, num_gateways=args.users, seed=args.seed
    ),
    "iptv": lambda args: iptv_neighborhood_workload(
        num_channels=args.streams, num_households=args.users, seed=args.seed
    ),
    "small-streams-workload": lambda args: small_streams_workload(
        num_channels=args.streams, num_households=args.users, seed=args.seed
    ),
}

WORKLOADS = {
    "iptv": iptv_neighborhood_workload,
    "cable-headend": cable_headend_workload,
    "small-streams": small_streams_workload,
}


def _load_instance(path: str) -> MMDInstance:
    text = Path(path).read_text() if path != "-" else sys.stdin.read()
    return MMDInstance.from_json(text)


def _write(text: str, output: "str | None") -> None:
    if output and output != "-":
        Path(output).write_text(text)
    else:
        print(text)


def _open_out(output: "str | None"):
    if output and output != "-":
        return Path(output).open("w")
    return sys.stdout


#: Families that take no seed: --count would emit identical copies.
DETERMINISTIC_FAMILIES = frozenset({"tightness"})


def cmd_generate(args: argparse.Namespace) -> int:
    if args.count is not None:
        # Streaming mode: emit `count` instances as JSON Lines, one per
        # seed, writing each line as soon as it is built (constant memory).
        if args.count < 1:
            print(f"--count must be >= 1, got {args.count}", file=sys.stderr)
            return 2
        if args.family in DETERMINISTIC_FAMILIES and args.count > 1:
            print(
                f"--count > 1 with the deterministic family {args.family!r} "
                "would emit identical instances",
                file=sys.stderr,
            )
            return 2
        out = _open_out(args.output)
        try:
            base_seed = args.seed
            for offset in range(args.count):
                args.seed = base_seed + offset
                out.write(FAMILIES[args.family](args).to_json())
                out.write("\n")
        finally:
            if out is not sys.stdout:
                out.close()
        return 0
    instance = FAMILIES[args.family](args)
    _write(instance.to_json(), args.output)
    return 0


def _loose_instance(data: dict) -> MMDInstance:
    """Rebuild an instance with the strict overload check disabled
    (everything else is still validated)."""
    import math as _math

    from repro.core.instance import Stream, User

    def num(x):
        return _math.inf if x == "inf" else float(x)

    streams = [
        Stream(s["stream_id"], tuple(s["costs"]), s.get("name", ""), s.get("attrs", {}))
        for s in data["streams"]
    ]
    users = [
        User(
            user_id=u["user_id"],
            utility_cap=num(u["utility_cap"]),
            capacities=tuple(num(k) for k in u["capacities"]),
            utilities={sid: float(w) for sid, w in u["utilities"].items()},
            loads={sid: tuple(vec) for sid, vec in u.get("loads", {}).items()},
            attrs=u.get("attrs", {}),
        )
        for u in data["users"]
    ]
    budgets = tuple(num(b) for b in data["budgets"])
    return MMDInstance(streams, users, budgets, name=data.get("name", ""), strict=False)


def cmd_validate(args: argparse.Namespace) -> int:
    """Validate an instance file; ``--sanitize`` repairs violations of the
    paper's convention that ``w_u(S) = 0`` when a single stream's load
    exceeds a capacity."""
    from repro.core.instance import sanitize_utilities

    text = Path(args.instance).read_text() if args.instance != "-" else sys.stdin.read()
    try:
        instance = MMDInstance.from_json(text)
    except (ValidationError, KeyError, TypeError, json.JSONDecodeError) as exc:
        if not args.sanitize:
            print(f"INVALID: {exc}", file=sys.stderr)
            return 1
        try:
            repaired = sanitize_utilities(_loose_instance(json.loads(text)))
        except (ValidationError, KeyError, json.JSONDecodeError) as inner:
            print(f"INVALID (unrepairable): {inner}", file=sys.stderr)
            return 1
        _write(repaired.to_json(), args.output)
        print(
            "REPAIRED (w_u(S) zeroed where a single stream overloads a capacity)",
            file=sys.stderr,
        )
        return 0
    print(f"OK: {instance}")
    return 0


def cmd_info(args: argparse.Namespace) -> int:
    instance = _load_instance(args.instance)
    gamma, mu, d = global_skew_parameters(instance)
    rows = [
        ["name", instance.name or "(unnamed)"],
        ["streams", instance.num_streams],
        ["users", instance.num_users],
        ["server budgets (m)", instance.m],
        ["capacity measures (m_c)", instance.mc],
        ["input length n", instance.input_length],
        ["local skew α", instance.local_skew()],
        ["global skew γ", gamma],
        ["µ = 2γD+2", mu],
        ["small-streams precondition", "yes" if small_streams_condition(instance) else "no"],
        ["Theorem 1.1 bound", theorem_1_1_bound(instance)],
        ["trivial utility upper bound", instance.max_total_utility()],
    ]
    table = Table(["property", "value"], title=f"Instance {args.instance}")
    for row in rows:
        table.add_row(row)
    print(table.render())
    return 0


def cmd_solve(args: argparse.Namespace) -> int:
    instance = _load_instance(args.instance)
    result = solve_mmd(instance, method=args.method)
    table = Table(["field", "value"], title="Solution")
    table.add_row(["method", result.method])
    table.add_row(["utility", result.utility])
    table.add_row(["feasible", str(result.assignment.is_feasible())])
    table.add_row(["worst-case guarantee", result.guarantee])
    table.add_row(["streams carried", len(result.assignment.assigned_streams())])
    if args.exact:
        opt = solve_exact_milp(instance).utility
        table.add_row(["exact optimum (MILP)", opt])
        table.add_row(["measured ratio", opt / max(result.utility, 1e-12)])
    elif args.bound:
        bound = lp_upper_bound(instance)
        table.add_row(["LP upper bound", bound])
        table.add_row(["ratio vs LP bound", bound / max(result.utility, 1e-12)])
    print(table.render())
    if args.output:
        payload = {
            "method": result.method,
            "utility": result.utility,
            "guarantee": result.guarantee,
            "assignment": {
                uid: sorted(streams)
                for uid, streams in result.assignment.as_dict().items()
            },
        }
        _write(json.dumps(payload, indent=2), args.output)
    return 0


def _int_list(text: str) -> "list[int]":
    return [int(part) for part in text.split(",") if part.strip()]


def _float_list(text: str) -> "list[float]":
    return [float(part) for part in text.split(",") if part.strip()]


def _solve_many_spec(args: argparse.Namespace) -> ScenarioSpec:
    """Build the runner spec a ``solve-many`` invocation describes."""
    if args.input is not None:
        return ScenarioSpec(
            name="solve-many",
            kind="solve",
            family="jsonl",
            input=args.input,  # "-" streams stdin lazily, line by line
            method=args.method,
            engine=args.engine,
        ).validate()
    return ScenarioSpec(
        name="solve-many",
        kind="solve",
        family="sweep",
        streams=tuple(_int_list(args.sweep_streams)),
        users=tuple(_int_list(args.sweep_users)),
        skews=tuple(_float_list(args.sweep_skews)),
        base_seed=args.seed,
        method=args.method,
        engine=args.engine,
        gen_engine=args.gen_engine,
        params={"density": args.density},
    ).validate()


def cmd_solve_many(args: argparse.Namespace) -> int:
    """Batch-solve instances from a JSONL file or a generated sweep.

    A thin door over the experiment runner
    (:func:`repro.experiments.runner.iter_experiment`): the sweep mode
    is a ``family="sweep"`` spec, the ``--input`` mode a
    ``family="jsonl"`` spec, both streamed unit by unit.  ``repro
    sweep`` exposes the runner's sharding/checkpointing on top of the
    same pipeline.
    """
    from repro.experiments.runner import iter_experiment

    if args.input is None and args.sweep_streams is None:
        print("solve-many needs --input FILE or --sweep-streams/--sweep-users",
              file=sys.stderr)
        return 2
    if args.input is None and args.sweep_users is None:
        print("--sweep-streams requires --sweep-users", file=sys.stderr)
        return 2
    try:
        spec = _solve_many_spec(args)
    except SpecError as exc:
        print(f"bad sweep grid: {exc}", file=sys.stderr)
        return 2
    # Stream: each result line is written (and flushed) as soon as the
    # instance finishes, so huge sweeps never accumulate in memory; the
    # small summary rows are retained only when a closing table will
    # actually be printed (file output).
    want_table = bool(args.output) and args.output != "-"
    summary_rows: "list[list[object]]" = []
    out = _open_out(args.output)
    try:
        for row in iter_experiment(spec, workers=args.parallel):
            out.write(json.dumps(row, sort_keys=True))
            out.write("\n")
            out.flush()
            if want_table:
                summary_rows.append(
                    [
                        row["name"] or "(unnamed)",
                        row["method"],
                        row["utility"],
                        row["streams_carried"],
                    ]
                )
    finally:
        if out is not sys.stdout:
            out.close()
    if want_table:
        table = Table(
            ["instance", "method", "utility", "carried"],
            title=f"solve-many ({len(summary_rows)} instances, parallel={args.parallel})",
        )
        for row in summary_rows:
            table.add_row(row)
        print(table.render())
    return 0


def cmd_simulate(args: argparse.Namespace) -> int:
    """Run the DES on one workload and print the policy comparison.

    One-cell ``kind="simulate"`` spec through the experiment runner:
    the explicit ``seeds=(seed,)`` pins the workload build, the trace
    draw and the RandomPolicy stream exactly as the pre-runner code
    wired them, so tables are unchanged.
    """
    from repro.analysis.ascii_plot import bar_chart
    from repro.experiments.runner import run_experiment

    try:
        spec = ScenarioSpec(
            name=f"simulate-{args.workload}",
            kind="simulate",
            family=args.workload,
            seeds=(args.seed,),
            policies=tuple(args.policies),
            horizon=args.horizon,
            rate=args.rate,
            duration=args.duration,
            popularity=args.popularity,
            sim_engine=args.engine,
            trace_store=args.trace_store,
            store_window=args.window,
        ).validate()
    except SpecError as exc:
        print(str(exc), file=sys.stderr)
        return 2
    run = run_experiment(spec, workers=args.parallel)
    if args.trace_store is not None:
        title = f"{args.workload} | store={args.trace_store} horizon={args.horizon}"
    else:
        title = (
            f"{args.workload} | rate={args.rate} duration={args.duration} "
            f"horizon={args.horizon}"
        )
    # "violations" counts infeasible policy answers the simulator clipped
    # (SimulationReport.policy_violations): 0 for a well-behaved policy.
    table = Table(
        ["policy", "utility·time", "accept", "peak load", "violations", "fairness"],
        title=title,
    )
    for row in sorted(run.rows, key=lambda r: -r["utility_time"]):
        table.add_row(
            [
                row["policy"],
                row["utility_time"],
                row["acceptance"],
                row["peak_utilization"],
                row["violations"],
                row["jain"],
            ]
        )
    print(table.render())
    print()
    print(
        bar_chart(
            [row["policy"] for row in run.rows],
            [row["utility_time"] for row in run.rows],
        )
    )
    return 0


def _workload_instance(args: argparse.Namespace):
    """Build the named workload at the requested (or default) sizes."""
    import inspect

    factory = WORKLOADS[args.workload]
    sizes = list(inspect.signature(factory).parameters.values())
    num_streams = args.streams if args.streams is not None else sizes[0].default
    num_users = args.users if args.users is not None else sizes[1].default
    return factory(num_streams, num_users, seed=args.seed)


def cmd_trace_write(args: argparse.Namespace) -> int:
    """Write an arrival trace into an on-disk columnar store.

    Default mode draws a fresh Poisson/Zipf trace for the workload
    straight into the store in bounded chunks
    (:func:`repro.sim.store.draw_trace_to_store` — peak memory stays a
    few chunk-sized arrays however long the horizon).  ``--from-json``
    instead converts a saved ``SessionEvent`` JSON trace
    (:func:`repro.sim.trace.store_events`).
    """
    from repro.sim.simulation import ArrivalModel
    from repro.sim.store import draw_trace_to_store

    instance = _workload_instance(args)
    if args.from_json:
        from repro.sim.trace import load_trace, store_events

        store = store_events(
            instance,
            load_trace(args.from_json),
            args.path,
            chunk=args.chunk,
            meta={"workload": args.workload, "source": args.from_json},
        )
    else:
        store = draw_trace_to_store(
            instance,
            ArrivalModel(
                rate=args.rate,
                mean_duration=args.duration,
                popularity_exponent=args.popularity,
            ),
            args.horizon,
            args.path,
            seed=args.seed,
            chunk=args.chunk,
            meta={"workload": args.workload, "seed": args.seed},
        )
    print(_store_info_table(store).render())
    return 0


def _store_info_table(store) -> Table:
    """The ``repro trace info`` table for one opened store."""
    facts = store.info()
    table = Table(["field", "value"], title=f"trace store {facts['path']}")
    table.add_row(["rows", facts["rows"]])
    table.add_row(["sorted", facts["sorted"]])
    table.add_row(["repaired rows", facts["repaired_rows"]])
    table.add_row(["data bytes", facts["data_bytes"]])
    for name, column in sorted(facts["columns"].items()):
        table.add_row([f"column {name}", f"{column['dtype']} ({column['bytes']} B)"])
    for key, value in sorted(facts["meta"].items()):
        table.add_row([f"meta {key}", value])
    return table


def cmd_trace_info(args: argparse.Namespace) -> int:
    """Print a trace store's manifest and on-disk facts."""
    from repro.sim.store import TraceStore

    print(_store_info_table(TraceStore.open(args.path)).render())
    return 0


def _parse_shard(text: "str | None") -> "tuple[int, int] | None":
    """Parse ``--shard i/n`` (``None`` passes through)."""
    if text is None:
        return None
    try:
        i_text, n_text = text.split("/", 1)
        shard = (int(i_text), int(n_text))
    except ValueError:
        raise SpecError(f"bad --shard {text!r}: expected i/n, e.g. 0/4") from None
    if shard[1] < 1 or not 0 <= shard[0] < shard[1]:
        raise SpecError(f"bad --shard {text!r}: need 0 <= i < n")
    return shard


def _write_run_outputs(run, args: argparse.Namespace) -> None:
    """Emit an ExperimentRun: aggregate JSONL (stdout or file) + .npz."""
    if args.output and args.output != "-":
        run.to_jsonl(args.output)
    else:
        sys.stdout.write(run.to_jsonl())
    if getattr(args, "npz", None):
        run.to_npz(args.npz)


def _stream_experiment(spec, shard, args: argparse.Namespace):
    """Run a spec, streaming rows to --output as units complete.

    ``--emit aggregate`` (the default) streams deterministic rows
    (runtimes and provenance stripped, sorted keys) — units arrive in
    index order, so the streamed text is byte-identical to the closing
    :meth:`ExperimentRun.to_jsonl` aggregate, and ``repro sweep ... |
    head`` sees output while the grid is still running.  ``--emit
    checkpoint`` streams the *full* checkpoint rows instead — the
    worker protocol of the subprocess/ssh transports, whose parent
    reassembles exactly these lines.  Returns the aggregated
    :class:`ExperimentRun` (for the `.npz` and the summary).
    """
    import itertools

    from repro.experiments.runner import (
        ExperimentRun,
        iter_experiment,
        strip_row,
    )

    results = iter_experiment(
        spec,
        shard=shard,
        workers=args.workers,
        checkpoint=args.checkpoint,
        resume=args.resume,
        transport=getattr(args, "remote", None),
        hosts=getattr(args, "hosts", None),
    )
    full_rows = getattr(args, "emit", "aggregate") == "checkpoint"
    # Pull the first row before opening --output: the runner's up-front
    # refusals (e.g. an existing checkpoint without --resume) must not
    # truncate a previous run's output file.
    head = list(itertools.islice(results, 1))
    rows = []
    out = _open_out(args.output)
    try:
        for row in itertools.chain(head, results):
            rows.append(row)
            kept = row if full_rows else strip_row(row)
            out.write(json.dumps(kept, sort_keys=True))
            out.write("\n")
            out.flush()
    finally:
        if out is not sys.stdout:
            out.close()
    rows.sort(key=lambda r: int(r["unit"]))
    run = ExperimentRun(spec=spec, rows=rows, shard=shard)
    if getattr(args, "npz", None):
        run.to_npz(args.npz)
    return run


def _run_adaptive_cli(spec, args: argparse.Namespace) -> int:
    """The ``--rounds > 1`` path: adaptive refinement, then outputs."""
    from repro.experiments.adaptive import run_adaptive

    adaptive = run_adaptive(
        spec,
        rounds=args.rounds,
        top_k=args.refine_top,
        workers=args.workers,
        checkpoint=args.checkpoint,
        resume=args.resume,
        transport=getattr(args, "remote", None),
        hosts=getattr(args, "hosts", None),
    )
    if args.output and args.output != "-":
        adaptive.to_jsonl(args.output)
    else:
        sys.stdout.write(adaptive.to_jsonl())
    if getattr(args, "npz", None):
        adaptive.final.to_npz(args.npz)
    table = _sweep_summary(
        adaptive.final, None, f"sweep --rounds {args.rounds}"
    )
    table.add_row(["rounds executed", len(adaptive.rounds)])
    table.add_row(
        ["total units", sum(len(r.rows) for r in adaptive.rounds)]
    )
    print(table.render(), file=sys.stderr)
    return 0


def _sweep_summary(run, shard, title: str) -> Table:
    """The closing summary table of a runner invocation."""
    columns = run.columnar()
    table = Table(["field", "value"], title=title)
    table.add_row(["spec", run.spec.name])
    table.add_row(["kind", run.spec.kind])
    table.add_row(["units completed", len(run.rows)])
    table.add_row(["shard", f"{shard[0]}/{shard[1]}" if shard else "full grid"])
    if len(run.rows):
        table.add_row(["mean objective", float(columns["objective"].mean())])
        table.add_row(["mean Jain fairness", float(columns["jain"].mean())])
        table.add_row(["total runtime (s)", float(columns["runtime"].sum())])
    return table


def cmd_sweep(args: argparse.Namespace) -> int:
    """Run (or merge) a scenario spec through the experiment runner."""
    from repro.experiments.runner import merge_checkpoints
    from repro.experiments.spec import builtin_specs, resolve_spec

    if args.list:
        table = Table(["spec", "kind", "units"], title="shipped scenario specs")
        for name in sorted(builtin_specs()):
            spec = resolve_spec(name)
            table.add_row([name, spec.kind, spec.num_units()])
        print(table.render())
        return 0
    if args.spec is None:
        print("sweep needs a SPEC (file path or shipped name); see --list",
              file=sys.stderr)
        return 2
    try:
        if args.spec == "-":
            # The distributed worker protocol: the parent transport
            # pipes the spec's canonical JSON to our stdin, so worker
            # and parent hash (and number) the identical grid.
            from repro.experiments.spec import spec_from_dict

            try:
                data = json.loads(sys.stdin.read())
            except json.JSONDecodeError as exc:
                raise SpecError(f"stdin spec: invalid JSON: {exc}") from None
            spec = spec_from_dict(data, name=str(data.get("name", "stdin")))
        else:
            spec = resolve_spec(args.spec)
        shard = _parse_shard(args.shard)
    except SpecError as exc:
        print(f"bad spec: {exc}", file=sys.stderr)
        return 2
    if args.merge:
        try:
            run = merge_checkpoints(spec, args.merge)
        except ValidationError as exc:
            print(f"merge incomplete: {exc}", file=sys.stderr)
            return 1
        _write_run_outputs(run, args)
        print(_sweep_summary(run, None, "sweep --merge").render(), file=sys.stderr)
        return 0
    _graceful_runner_signals()
    try:
        if args.rounds > 1:
            return _run_adaptive_cli(spec, args)
        run = _stream_experiment(spec, shard, args)
    except ValidationError as exc:
        print(str(exc), file=sys.stderr)
        return 2
    except KeyboardInterrupt:
        print("interrupted: completed units are flushed to the checkpoint; "
              "rerun with --resume to continue", file=sys.stderr)
        return 130
    print(_sweep_summary(run, shard, "sweep").render(), file=sys.stderr)
    return 0


def cmd_simulate_many(args: argparse.Namespace) -> int:
    """Run a simulation grid (spec file/name, or an inline grid) sharded."""
    from repro.experiments.spec import resolve_spec

    try:
        if args.spec is not None:
            spec = resolve_spec(args.spec)
            if spec.kind != "simulate":
                print(f"spec {spec.name!r} has kind={spec.kind!r}; "
                      "simulate-many needs a simulate spec (use repro sweep)",
                      file=sys.stderr)
                return 2
        else:
            spec = ScenarioSpec(
                name=f"simulate-many-{args.workload}",
                kind="simulate",
                family=args.workload,
                streams=tuple(_int_list(args.streams)) if args.streams else None,
                users=tuple(_int_list(args.users)) if args.users else None,
                replicates=args.replicates,
                base_seed=args.seed,
                policies=tuple(args.policies),
                horizon=args.horizon,
                rate=args.rate,
                duration=args.duration,
                popularity=args.popularity,
                sim_engine=args.engine,
                trace_store=args.trace_store,
                store_window=args.window,
            ).validate()
        shard = _parse_shard(args.shard)
    except SpecError as exc:
        print(f"bad spec: {exc}", file=sys.stderr)
        return 2
    _graceful_runner_signals()
    try:
        if args.rounds > 1:
            return _run_adaptive_cli(spec, args)
        run = _stream_experiment(spec, shard, args)
    except ValidationError as exc:
        print(str(exc), file=sys.stderr)
        return 2
    except KeyboardInterrupt:
        print("interrupted: completed units are flushed to the checkpoint; "
              "rerun with --resume to continue", file=sys.stderr)
        return 130
    print(_sweep_summary(run, shard, "simulate-many").render(), file=sys.stderr)
    return 0


def cmd_serve_run(args: argparse.Namespace) -> int:
    """Start (or restore and start) the crash-safe admission service.

    A fresh ``--dir`` is initialized from the named workload (or
    ``--instance`` JSON); an existing one is restored — torn WAL tail
    repaired, newest snapshot loaded, tail replayed — before the HTTP
    front door binds.  One JSON line with the bound port is printed as
    soon as the service accepts requests (load generators and tests
    parse it).  SIGINT/SIGTERM stop gracefully: drain the writer,
    force a final snapshot, close the WAL.
    """
    import asyncio
    import signal

    from repro.config import (
        resolve_commit_batch,
        resolve_commit_linger_ms,
        resolve_durability,
        resolve_serve_shards,
    )
    from repro.serve.http import AdmissionHTTPService
    from repro.serve.service import MANIFEST_NAME, AdmissionCore, ServeConfig
    from repro.serve.shard import ShardedAdmissionCore, open_service
    from repro.serve.snapshot import SHARD_MANIFEST_NAME

    root = Path(args.dir)
    # Arg > env > default resolution happens here (the dataclass's own
    # defaults would shadow the environment otherwise); junk is loud.
    config = ServeConfig(
        snapshot_every=args.snapshot_every,
        durability=resolve_durability(args.durability),
        max_pending=args.max_pending,
        max_wait=args.max_wait,
        retry_after=args.retry_after,
        commit_batch=resolve_commit_batch(args.commit_batch),
        commit_linger_ms=resolve_commit_linger_ms(args.commit_linger_ms),
    )
    shards = resolve_serve_shards(args.shards)
    if (root / SHARD_MANIFEST_NAME).exists() or (root / MANIFEST_NAME).exists():
        core = open_service(root, config=config)
        actual = getattr(core, "shard_count", 1)
        if args.shards is not None and actual != shards:
            core.close()
            raise ValidationError(
                f"{str(root)!r} holds a {actual}-shard service but --shards "
                f"asked for {shards}; the shard count is fixed at creation"
            )
    else:
        instance = (
            _load_instance(args.instance) if args.instance
            else _workload_instance(args)
        )
        if shards > 1:
            core = ShardedAdmissionCore.create(
                instance, root, shards=shards, mu=args.mu, config=config
            )
        else:
            core = AdmissionCore.create(instance, root, mu=args.mu, config=config)
    shard_count = getattr(core, "shard_count", 1)
    server = AdmissionHTTPService(core)

    async def run() -> None:
        port = await server.start(args.host, args.port)
        queue = server.queue_stats()
        print(json.dumps({
            "serving": True,
            "host": args.host,
            "port": port,
            "pid": os.getpid(),
            "seq": core.next_seq,
            "shards": shard_count,
            "shard_seqs": queue["shard_seqs"],
            "queue_depths": queue["queue_depths"],
            "durability": config.durability,
            "commit_batch": config.commit_batch,
            "commit_linger_ms": config.commit_linger_ms,
            "restore": core.restore_info,
        }), flush=True)
        loop = asyncio.get_running_loop()
        stop = asyncio.Event()
        for sig in (signal.SIGINT, signal.SIGTERM):
            loop.add_signal_handler(sig, stop.set)
        forever = asyncio.create_task(server.serve_forever())
        await stop.wait()
        forever.cancel()
        try:
            await forever
        except asyncio.CancelledError:
            pass
        await server.stop()

    asyncio.run(run())
    queue = server.queue_stats()
    print(json.dumps({
        "serving": False,
        "seq": core.next_seq,
        "shards": shard_count,
        "shard_seqs": queue["shard_seqs"],
        "queue_depths": queue["queue_depths"],
        "served": queue["served"],
        "shed": queue["shed"],
        "batch_sizes": server.batch_histogram(),
    }), flush=True)
    return 0


def cmd_serve_restore(args: argparse.Namespace) -> int:
    """Recover a service directory offline and report what it took.

    Repairs any torn WAL tail, loads the newest snapshot, replays the
    WAL records past it with per-record verification, and prints the
    recovery summary plus the restored state digest — without starting
    the HTTP server.  Corruption beyond a torn tail fails loudly
    (exit 2) instead of serving a silently wrong allocator.
    """
    from repro.serve.shard import ShardedAdmissionCore, open_service

    core = open_service(args.dir)
    try:
        info = core.restore_info
        stats = core.stats()
        table = Table(["field", "value"], title=f"restored {args.dir}")
        if isinstance(core, ShardedAdmissionCore):
            table.add_row(["shards", core.shard_count])
            table.add_row(["wal records (total)", core.next_seq])
            table.add_row(["per-shard records", core.next_seqs()])
            table.add_row(["barrier seqs", info["barrier_seqs"] or "(none)"])
            table.add_row(["tail replayed",
                           sum(s["replayed"] for s in info["per_shard"])])
            table.add_row(["torn bytes repaired",
                           sum(s["repaired_bytes"] for s in info["per_shard"])])
        else:
            table.add_row(["wal records", core.next_seq])
            table.add_row(["snapshot", info["snapshot"] or "(none)"])
            table.add_row(["snapshot seq", info["snapshot_seq"]])
            table.add_row(["tail replayed", info["replayed"]])
            table.add_row(["torn bytes repaired", info["repaired_bytes"]])
        table.add_row(["active streams", stats["active_streams"]])
        table.add_row(["rejected count", stats["rejected_count"]])
        table.add_row(["state digest", core.state_digest()])
        print(table.render())
    finally:
        core.close()
    return 0


def _graceful_runner_signals() -> None:
    """Make SIGTERM interrupt a runner exactly like Ctrl-C (SIGINT).

    One shared implementation
    (:func:`repro.experiments.transport.base.graceful_runner_signals`)
    covers direct CLI runs *and* the worker processes the
    subprocess/ssh transports spawn — a terminated worker flushes its
    checkpoint and exits 130 through exactly this path.
    """
    from repro.experiments.transport.base import graceful_runner_signals

    graceful_runner_signals()


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Video distribution under multiple constraints (ICDCS 2008) — "
        "solvers, generators, and simulator.",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    gen = sub.add_parser("generate", help="emit an instance as JSON")
    gen.add_argument("--family", choices=sorted(FAMILIES), default="unit-skew-smd")
    gen.add_argument("--streams", type=int, default=20)
    gen.add_argument("--users", type=int, default=8)
    gen.add_argument("--m", type=int, default=2)
    gen.add_argument("--mc", type=int, default=1)
    gen.add_argument("--skew", type=float, default=8.0)
    gen.add_argument("--seed", type=int, default=0)
    gen.add_argument("--count", type=int, default=None,
                     help="emit COUNT instances as JSON Lines (seeds seed..seed+COUNT-1), "
                     "streaming one line at a time")
    gen.add_argument("--gen-engine", choices=ENGINE_SETTINGS["generation"].choices,
                     default=None,
                     help="draw engine for the random families (default: loop for "
                     "seed-compatible output; vectorized draws whole instances "
                     "with batched numpy calls; $REPRO_GEN_ENGINE overrides)")
    gen.add_argument("--output", "-o", default="-")
    gen.set_defaults(func=cmd_generate)

    info = sub.add_parser("info", help="print instance parameters and bounds")
    info.add_argument("instance", help="instance JSON path (or - for stdin)")
    info.set_defaults(func=cmd_info)

    validate = sub.add_parser("validate", help="validate (optionally repair) an instance")
    validate.add_argument("instance", help="instance JSON path (or - for stdin)")
    validate.add_argument("--sanitize", action="store_true",
                          help="zero utilities whose single-stream load exceeds "
                          "a capacity (the paper's convention) and emit the repaired instance")
    validate.add_argument("--output", "-o", default="-")
    validate.set_defaults(func=cmd_validate)

    solve = sub.add_parser("solve", help="run the paper pipeline on an instance")
    solve.add_argument("instance", help="instance JSON path (or - for stdin)")
    solve.add_argument("--method", choices=["greedy", "enumeration"], default="greedy")
    solve.add_argument("--exact", action="store_true",
                       help="also solve exactly (MILP) and report the ratio")
    solve.add_argument("--bound", action="store_true",
                       help="also compute the LP upper bound")
    solve.add_argument("--output", "-o", default="",
                       help="write the assignment JSON here")
    solve.set_defaults(func=cmd_solve)

    many = sub.add_parser(
        "solve-many",
        help="batch-solve a JSONL instance stream or a generated sweep",
    )
    many.add_argument("--input", "-i", default=None,
                      help="JSONL file of instances (or - for stdin)")
    many.add_argument("--sweep-streams", default=None,
                      help="comma list of catalog sizes (generated sweep mode)")
    many.add_argument("--sweep-users", default=None,
                      help="comma list of population sizes")
    many.add_argument("--sweep-skews", default="1",
                      help="comma list of local skews (1 = unit skew)")
    many.add_argument("--density", type=float, default=0.05,
                      help="sweep interest density (streams per user fraction)")
    many.add_argument("--seed", type=int, default=0)
    many.add_argument("--method", choices=["greedy", "enumeration"], default="greedy")
    many.add_argument("--engine", choices=ENGINE_SETTINGS["solver"].choices,
                      default=None,
                      help="hot-path implementation (default: indexed)")
    many.add_argument("--gen-engine", choices=ENGINE_SETTINGS["generation"].choices,
                      default=None,
                      help="sweep generation engine (default: vectorized — instances "
                      "stream as index-native arrays; loop reproduces the "
                      "seed-compatible dict generators)")
    many.add_argument("--parallel", "-j", type=int, default=1,
                      help="worker processes (1 = in-process)")
    many.add_argument("--output", "-o", default="-",
                      help="JSONL results path (- for stdout)")
    many.set_defaults(func=cmd_solve_many)

    sim = sub.add_parser("simulate", help="run the DES on a named workload")
    sim.add_argument("--workload", choices=sorted(WORKLOADS), default="iptv")
    sim.add_argument("--policies", nargs="+",
                     default=["threshold", "allocate", "density"])
    sim.add_argument("--rate", type=float, default=2.0)
    sim.add_argument("--duration", type=float, default=30.0)
    sim.add_argument("--horizon", type=float, default=300.0)
    sim.add_argument("--popularity", type=float, default=1.0,
                     help="Zipf exponent of stream popularity (0 = uniform)")
    sim.add_argument("--seed", type=int, default=0)
    sim.add_argument("--engine", choices=ENGINE_SETTINGS["simulation"].choices,
                     default=None,
                     help="simulation engine (default: indexed — array-native "
                     "trace draw and replay; chunked skips no-decision event "
                     "runs for very long traces; dict keeps the original "
                     "event loop; $REPRO_SIM_ENGINE overrides)")
    sim.add_argument("--parallel", "-j", type=int, default=1,
                     help="worker processes, one policy replay each "
                     "(1 = in-process)")
    sim.add_argument("--trace-store", default=None, metavar="DIR",
                     help="replay this on-disk columnar trace store (made by "
                     "'repro trace write') instead of drawing a trace; "
                     "incompatible with --rate/--duration/--popularity")
    sim.add_argument("--window", type=float, default=None,
                     help="stream the store in time windows of this width "
                     "(bounded memory; float-identical to monolithic replay; "
                     "$REPRO_STORE_WINDOW overrides; needs --trace-store)")
    sim.set_defaults(func=cmd_simulate)

    trace = sub.add_parser(
        "trace",
        help="write / inspect on-disk columnar trace stores",
    )
    trace_sub = trace.add_subparsers(dest="trace_command", required=True)
    trace_write = trace_sub.add_parser(
        "write",
        help="draw (or convert) an arrival trace into a columnar store",
    )
    trace_write.add_argument("path", help="store directory to create")
    trace_write.add_argument("--workload", choices=sorted(WORKLOADS),
                             default="iptv")
    trace_write.add_argument("--streams", type=int, default=None,
                             help="catalog size (default: the workload's own)")
    trace_write.add_argument("--users", type=int, default=None,
                             help="population size (default: the workload's own)")
    trace_write.add_argument("--rate", type=float, default=2.0)
    trace_write.add_argument("--duration", type=float, default=30.0)
    trace_write.add_argument("--horizon", type=float, default=300.0)
    trace_write.add_argument("--popularity", type=float, default=1.0,
                             help="Zipf exponent of stream popularity "
                             "(0 = uniform)")
    trace_write.add_argument("--seed", type=int, default=0)
    trace_write.add_argument("--chunk", type=int, default=None,
                             help="draw/append chunk size in events — part of "
                             "the determinism contract ($REPRO_STORE_CHUNK "
                             "overrides)")
    trace_write.add_argument("--from-json", default=None, metavar="FILE",
                             help="convert a saved SessionEvent JSON trace "
                             "instead of drawing one")
    trace_write.set_defaults(func=cmd_trace_write)
    trace_info = trace_sub.add_parser(
        "info",
        help="print a store's manifest and on-disk facts",
    )
    trace_info.add_argument("path", help="store directory")
    trace_info.set_defaults(func=cmd_trace_info)

    def add_runner_flags(sub_parser: argparse.ArgumentParser) -> None:
        sub_parser.add_argument("--shard", default=None, metavar="I/N",
                                help="run only units with index %% N == I "
                                "(N machines split one spec; seeds/results "
                                "identical to the unsharded run)")
        sub_parser.add_argument("--workers", "-j", type=int, default=1,
                                help="worker processes (1 = in-process)")
        sub_parser.add_argument("--checkpoint", default=None,
                                help="JSONL checkpoint: one row appended per "
                                "completed unit")
        sub_parser.add_argument("--resume", action="store_true",
                                help="skip units already in --checkpoint")
        sub_parser.add_argument("--output", "-o", default="-",
                                help="aggregate JSONL path (- for stdout; "
                                "deterministic: runtimes stripped)")
        sub_parser.add_argument("--npz", default=None,
                                help="also write columnar .npz (objective, "
                                "runtime, Jain fairness per unit)")
        sub_parser.add_argument("--remote", default=None, metavar="TRANSPORT",
                                help="execution transport: local, subprocess "
                                "(--workers processes streaming rows over "
                                "pipes), or ssh (one worker per --hosts "
                                "entry); default $REPRO_SWEEP_TRANSPORT, "
                                "then local — aggregates are byte-identical "
                                "either way")
        sub_parser.add_argument("--hosts", default=None, metavar="A,B,C",
                                help="ssh transport worker hosts "
                                "(default $REPRO_SWEEP_HOSTS)")
        sub_parser.add_argument("--rounds", type=int, default=1,
                                help="adaptive refinement rounds (1 = plain "
                                "sweep; each round subdivides the top "
                                "--refine-top cells' axis neighborhoods)")
        sub_parser.add_argument("--refine-top", type=int, default=1,
                                metavar="K",
                                help="grid cells refined per adaptive round "
                                "(scored by the spec's refine_metric)")
        sub_parser.add_argument("--emit", choices=("aggregate", "checkpoint"),
                                default="aggregate",
                                help="what --output streams: deterministic "
                                "aggregate rows, or full checkpoint rows "
                                "(the distributed worker protocol)")

    sweep = sub.add_parser(
        "sweep",
        help="run a scenario spec through the sharded resumable runner",
    )
    sweep.add_argument("spec", nargs="?", default=None,
                       help="spec file (.json/.toml) or shipped name "
                       "(see --list)")
    sweep.add_argument("--list", action="store_true",
                       help="list the shipped scenario specs and exit")
    sweep.add_argument("--merge", nargs="+", default=None, metavar="CKPT",
                       help="aggregate shard checkpoint files instead of "
                       "running (errors if the union misses units)")
    add_runner_flags(sweep)
    sweep.set_defaults(func=cmd_sweep)

    sim_many = sub.add_parser(
        "simulate-many",
        help="run a workload × size × seed × policy grid through the runner",
    )
    sim_many.add_argument("spec", nargs="?", default=None,
                          help="simulate-kind spec file or shipped name "
                          "(omit to build a grid from the flags below)")
    sim_many.add_argument("--workload", choices=sorted(WORKLOADS), default="iptv")
    sim_many.add_argument("--streams", default=None,
                          help="comma list of catalog sizes (default: the "
                          "workload's own)")
    sim_many.add_argument("--users", default=None,
                          help="comma list of population sizes")
    sim_many.add_argument("--replicates", type=int, default=1,
                          help="seed replicates per grid cell")
    sim_many.add_argument("--seed", type=int, default=0,
                          help="base seed (per-cell seeds are derived from "
                          "(seed, cell index))")
    sim_many.add_argument("--policies", nargs="+",
                          default=["threshold", "allocate", "density"])
    sim_many.add_argument("--rate", type=float, default=2.0)
    sim_many.add_argument("--duration", type=float, default=30.0)
    sim_many.add_argument("--horizon", type=float, default=300.0)
    sim_many.add_argument("--popularity", type=float, default=1.0)
    sim_many.add_argument("--engine",
                          choices=ENGINE_SETTINGS["simulation"].choices,
                          default=None,
                          help="simulation engine ($REPRO_SIM_ENGINE overrides)")
    sim_many.add_argument("--trace-store", default=None, metavar="DIR",
                          help="shard one shared on-disk trace store across "
                          "the grid instead of drawing per-cell traces")
    sim_many.add_argument("--window", type=float, default=None,
                          help="stream the store in time windows of this "
                          "width (needs --trace-store)")
    add_runner_flags(sim_many)
    sim_many.set_defaults(func=cmd_simulate_many)

    serve = sub.add_parser(
        "serve",
        help="crash-safe live admission service (HTTP/JSON over one allocator)",
    )
    serve_sub = serve.add_subparsers(dest="serve_command", required=True)
    serve_run = serve_sub.add_parser(
        "run",
        help="start the service (fresh directory, or restored after a crash)",
    )
    serve_run.add_argument("--dir", required=True,
                           help="service directory (WAL + snapshots + instance)")
    serve_run.add_argument("--instance", default=None,
                           help="instance JSON file (fresh directories only; "
                           "default: build --workload)")
    serve_run.add_argument("--workload", choices=sorted(WORKLOADS), default="iptv")
    serve_run.add_argument("--streams", type=int, default=None,
                           help="workload catalog size (default: the workload's own)")
    serve_run.add_argument("--users", type=int, default=None,
                           help="workload population size")
    serve_run.add_argument("--seed", type=int, default=0,
                           help="workload generation seed")
    serve_run.add_argument("--mu", type=float, default=None,
                           help="charge base µ (default: the paper's 4γd)")
    serve_run.add_argument("--host", default="127.0.0.1")
    serve_run.add_argument("--port", type=int, default=0,
                           help="TCP port (0 = ephemeral; the bound port is "
                           "printed as JSON on startup)")
    serve_run.add_argument("--snapshot-every", type=int, default=1024,
                           help="WAL records between atomic state snapshots")
    serve_run.add_argument("--durability", default=None,
                           help="WAL durability: fsync survives power loss, "
                           "flush survives process death only (default: "
                           "$REPRO_SERVE_DURABILITY, then fsync)")
    serve_run.add_argument("--commit-batch", type=int, default=None,
                           help="max decisions group-committed per WAL fsync "
                           "(default: $REPRO_COMMIT_BATCH, then 1)")
    serve_run.add_argument("--commit-linger-ms", type=float, default=None,
                           help="ms a shallow commit queue waits for company "
                           "(default: $REPRO_COMMIT_LINGER_MS, then 0)")
    serve_run.add_argument("--shards", type=int, default=None,
                           help="admission workers to partition streams "
                           "across (fresh directories only; default: "
                           "$REPRO_SERVE_SHARDS, then 1)")
    serve_run.add_argument("--max-pending", type=int, default=64,
                           help="admission-queue depth before load shedding")
    serve_run.add_argument("--max-wait", type=float, default=0.5,
                           help="estimated queue wait (s) before load shedding")
    serve_run.add_argument("--retry-after", type=float, default=0.25,
                           help="Retry-After hint (s) on shed responses")
    serve_run.set_defaults(func=cmd_serve_run)
    serve_restore = serve_sub.add_parser(
        "restore",
        help="recover a service directory offline and print the summary",
    )
    serve_restore.add_argument("--dir", required=True,
                               help="service directory to recover")
    serve_restore.set_defaults(func=cmd_serve_restore)
    return parser


def main(argv: "list[str] | None" = None) -> int:
    parser = build_parser()
    args = parser.parse_args(argv)
    try:
        return args.func(args)
    except ValidationError as error:
        # Bad input — including an invalid $REPRO_*_ENGINE smuggled in
        # through the environment — is a usage error (exit code 2, like
        # argparse), not a traceback.
        print(f"error: {error}", file=sys.stderr)
        return 2


if __name__ == "__main__":
    raise SystemExit(main())
