"""E11 — compiled indexed layer vs. the seed dict engine.

Measures the two headline hot paths on a 10 000-user × 1 000-stream
instance:

- Algorithm Greedy (§2.1): vectorized residual maintenance over CSR
  rows vs. the string-keyed incremental state;
- the full ``solve_mmd`` pipeline (classify-and-select + fills +
  candidate accounting) under both engines.

Both engines are bit-identical (see ``tests/test_indexed_parity.py``),
so besides the timings this bench asserts *exact* utility parity, and a
speedup of at least 5× on each path.

The dict engine needs minutes at full scale (that is the point); set
``REPRO_E11_SCALE=small`` for a quick smoke at 1/10 the population.
"""

from __future__ import annotations

import os

from repro.core.greedy import greedy
from repro.core.indexed import index_instance
from repro.core.solver import solve_mmd
from repro.instances.generators import random_smd, random_unit_skew_smd
from repro.util.timing import Timer

from benchmarks.common import run_once, stage_section

FULL_SCALE = os.environ.get("REPRO_E11_SCALE", "full") != "small"
NUM_USERS = 10_000 if FULL_SCALE else 1_000
NUM_STREAMS = 1_000 if FULL_SCALE else 200
MIN_SPEEDUP = 5.0


def _timed(fn) -> "tuple[float, object]":
    timer = Timer()
    with timer:
        result = fn()
    return timer.elapsed, result


def bench_e11_indexed_vs_dict(benchmark):
    def experiment():
        # Greedy: dense-interest §2 instance; the dict engine pays per-pair
        # dict updates in the residual maintenance.
        greedy_inst = random_unit_skew_smd(
            NUM_STREAMS, NUM_USERS, seed=42, density=0.05
        )
        index_instance(greedy_inst)  # build the cached lowering up front
        t_greedy_idx, trace_idx = _timed(lambda: greedy(greedy_inst, engine="indexed"))
        t_greedy_dict, trace_dict = _timed(lambda: greedy(greedy_inst, engine="dict"))
        u_idx = trace_idx.assignment.utility()
        u_dict = trace_dict.assignment.utility()

        # solve_mmd: sparse-interest skewed SMD; the dict engine pays the
        # full-population scans of greedy_fill and best-single-stream.
        solve_inst = random_smd(
            NUM_STREAMS, NUM_USERS, 4.0, seed=7, density=0.005, budget_fraction=0.03
        )
        index_instance(solve_inst)
        t_solve_idx, result_idx = _timed(
            lambda: solve_mmd(solve_inst, engine="indexed", try_allocate=False)
        )
        t_solve_dict, result_dict = _timed(
            lambda: solve_mmd(solve_inst, engine="dict", try_allocate=False)
        )
        return {
            "greedy": (t_greedy_dict, t_greedy_idx, u_dict, u_idx),
            "solve_mmd": (t_solve_dict, t_solve_idx, result_dict.utility, result_idx.utility),
        }

    data = run_once(benchmark, experiment)
    rows = []
    speedups = {}
    for path, (t_dict, t_idx, u_dict, u_idx) in data.items():
        assert u_idx == u_dict, f"{path}: engines diverged ({u_idx} != {u_dict})"
        speedup = t_dict / max(t_idx, 1e-9)
        speedups[path] = speedup
        rows.append(
            [
                path,
                f"{t_dict:.2f} s",
                f"{t_idx:.2f} s",
                f"{speedup:.1f}x",
                f"{u_idx:.6g} (exact match)",
            ]
        )
    stage_section(
        "E11",
        f"Compiled indexed layer vs dict engine "
        f"({NUM_USERS} users × {NUM_STREAMS} streams)",
        "The repro.core.indexed lowering runs Greedy and the solve_mmd "
        "pipeline on numpy CSR arrays while reproducing the dict engine's "
        "float accumulation order exactly — identical utilities, large "
        "constant-factor speedups.",
        ["path", "dict engine", "indexed engine", "speedup", "utility"],
        rows,
        notes="Lowering is cached per instance (built once, O(nnz)); both "
        "engines solve the identical instance and return bit-identical "
        "assignments.",
    )
    for path, speedup in speedups.items():
        assert speedup >= MIN_SPEEDUP, (
            f"{path}: indexed engine only {speedup:.1f}x faster (need ≥ {MIN_SPEEDUP}x)"
        )
