"""E7 — §5 online Allocate on small streams (Lemma 5.1, Theorem 5.4).

Paper claims: when every stream costs at most a ``1/log₂ µ`` fraction of
every budget, Algorithm Allocate (run online, any arrival order, no
revocations) violates no budget and is ``(1 + 2·log₂ µ)``-competitive.
"""

from __future__ import annotations

from repro.core.allocate import OnlineAllocator, allocate, small_streams_condition
from repro.core.optimal import solve_exact_milp
from repro.instances.generators import small_streams_mmd

from benchmarks.common import run_once, stage_section

CONFIGS = [
    {"num_streams": 15, "num_users": 4, "m": 1, "mc": 1},
    {"num_streams": 20, "num_users": 5, "m": 1, "mc": 1},
    {"num_streams": 15, "num_users": 4, "m": 2, "mc": 1},
    {"num_streams": 12, "num_users": 4, "m": 2, "mc": 2},
]
ORDERS = ["forward", "reverse", "by-utility"]


def _order(inst, kind):
    if kind == "forward":
        return inst.stream_ids()
    if kind == "reverse":
        return list(reversed(inst.stream_ids()))
    return sorted(inst.stream_ids(), key=lambda s: inst.total_utility(s))


def bench_e7_allocate(benchmark):
    def experiment():
        results = []
        for idx, cfg in enumerate(CONFIGS):
            inst = small_streams_mmd(seed=60_000 + idx, **cfg)
            assert small_streams_condition(inst)
            opt = solve_exact_milp(inst).utility
            worst_ratio = 1.0
            bound = 0.0
            mu = 0.0
            gamma = 0.0
            violations = 0
            for kind in ORDERS:
                # Feasibility is checked with the hard guard OFF: the
                # exponential costs alone must protect the budgets.
                allocator = OnlineAllocator(inst, enforce_budgets=False)
                for sid in _order(inst, kind):
                    allocator.offer(sid)
                if not allocator.assignment.is_feasible():
                    violations += 1
                achieved = allocator.assignment.utility()
                if opt > 0:
                    worst_ratio = max(worst_ratio, opt / max(achieved, 1e-12))
                bound = allocator.competitive_bound
                mu = allocator.mu
                gamma = allocator.gamma
            results.append(
                {
                    "config": f"|S|={cfg['num_streams']} m={cfg['m']} mc={cfg['mc']}",
                    "gamma": gamma,
                    "mu": mu,
                    "bound": bound,
                    "worst_ratio": worst_ratio,
                    "violations": violations,
                }
            )
        return results

    results = run_once(benchmark, experiment)
    rows = [
        [r["config"], r["gamma"], r["mu"], r["worst_ratio"], r["bound"],
         r["violations"],
         "yes" if r["worst_ratio"] <= r["bound"] + 1e-9 and r["violations"] == 0 else "NO"]
        for r in results
    ]
    stage_section(
        "E7",
        "Online Allocate on small streams (Lemma 5.1, Theorem 5.4)",
        "With c_i(S) ≤ B_i/log₂ µ in every measure, Allocate never violates a "
        "budget (Lemma 5.1 — hard guard disabled in this measurement) and is "
        "(1+2·log₂ µ)-competitive (Theorem 5.4). Worst ratio is over three "
        "adversarial arrival orders per instance, vs. the offline MILP optimum.",
        ["instance", "global skew γ", "µ", "worst ratio (3 orders)",
         "competitive bound", "budget violations", "within bound"],
        rows,
    )
    for r in results:
        assert r["violations"] == 0
        assert r["worst_ratio"] <= r["bound"] + 1e-9
