"""A2 — bracketing the guaranteed pipeline with unguaranteed heuristics.

The paper's pipeline trades practical utility for a worst-case bound.
This ablation brackets it between two deployment-grade heuristics with
no guarantees — LP randomized rounding and swap local search — and the
exact optimum, on instances small enough to solve exactly.
"""

from __future__ import annotations

import statistics

from repro.core.localsearch import local_search
from repro.core.optimal import solve_exact_milp
from repro.core.rounding import lp_rounding
from repro.core.solver import solve_mmd
from repro.instances.generators import random_mmd, random_smd

from benchmarks.common import run_once, stage_section


def _families():
    return {
        "SMD skew 8": [
            random_smd(9 + i, 4, skew=8.0, seed=95_000 + i) for i in range(5)
        ],
        "MMD 2x2": [
            random_mmd(7 + i, 3, m=2, mc=2, seed=96_000 + i) for i in range(5)
        ],
    }


def bench_a2_heuristic_bracket(benchmark):
    def experiment():
        rows = []
        for family, instances in _families().items():
            fractions: dict[str, list[float]] = {
                "paper pipeline": [],
                "LP rounding": [],
                "local search": [],
            }
            feasible = True
            for inst in instances:
                opt = solve_exact_milp(inst).utility
                if opt == 0:
                    continue
                solutions = {
                    "paper pipeline": solve_mmd(inst).assignment,
                    "LP rounding": lp_rounding(inst, seed=1, trials=5),
                    "local search": local_search(inst, max_iterations=60),
                }
                for name, a in solutions.items():
                    feasible = feasible and a.is_feasible()
                    fractions[name].append(a.utility() / opt)
            for name, values in fractions.items():
                rows.append(
                    {
                        "family": family,
                        "algorithm": name,
                        "mean_frac": statistics.mean(values),
                        "min_frac": min(values),
                        "feasible": feasible,
                    }
                )
        return rows

    data = run_once(benchmark, experiment)
    rows = [
        [r["family"], r["algorithm"], f"{100 * r['mean_frac']:.1f}%",
         f"{100 * r['min_frac']:.1f}%", "yes" if r["feasible"] else "NO"]
        for r in data
    ]
    stage_section(
        "A2",
        "Ablation — guaranteed pipeline vs. unguaranteed heuristics",
        "LP randomized rounding (with alteration + fill) and 1-swap local "
        "search have no worst-case bounds for MMD; the paper pipeline does. "
        "Fractions of the exact optimum achieved, 5 instances per family.",
        ["family", "algorithm", "mean % of OPT", "worst % of OPT", "all feasible"],
        rows,
        notes="The pipeline's guarantee costs little on random instances: all "
        "three methods land in the same band, and only the pipeline keeps a "
        "proof when an adversary designs the input (cf. E6, E8).",
    )
    for r in data:
        assert r["feasible"]
        assert r["min_frac"] > 0.2  # nothing collapses on random inputs
