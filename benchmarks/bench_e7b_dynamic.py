"""E7b — §5 footnote 1: Allocate with finite-duration streams.

Paper claim: Algorithm Allocate "can also be extended to scenarios where
streams have dynamic resource requirements, so long as their
requirements are known when they arrive.  This includes, for example,
streams of finite duration."  The time-expanded allocator must keep
every (budget, slot) feasible, and overlapping demand — not total demand
— is what limits admission.
"""

from __future__ import annotations

from repro.core.dynamic import TimedAllocator
from repro.instances.generators import small_streams_mmd
from repro.util.rng import ensure_rng

from benchmarks.common import run_once, stage_section


def bench_e7b_timed_allocate(benchmark):
    def experiment():
        results = []
        for overlap_label, spread in [("heavy overlap", 5.0), ("spread out", 40.0)]:
            inst = small_streams_mmd(num_streams=16, num_users=4, seed=97_001)
            rng = ensure_rng(97_002)
            horizon = 60.0
            alloc = TimedAllocator(inst, horizon=horizon, enforce_budgets=False)
            granted = 0
            offered = 0
            for sid in inst.stream_ids():
                start = float(rng.uniform(0.0, spread))
                duration = float(rng.uniform(4.0, 10.0))
                duration = min(duration, horizon - start)
                offered += 1
                if alloc.offer(sid, start=start, duration=duration):
                    granted += 1
            results.append(
                {
                    "scenario": overlap_label,
                    "offered": offered,
                    "granted": granted,
                    "utility_time": alloc.total_utility_time(),
                    "peak_load": alloc.peak_load(),
                    "feasible": alloc.is_feasible(),
                    "bound": alloc.competitive_bound,
                }
            )
        return results

    results = run_once(benchmark, experiment)
    rows = [
        [r["scenario"], f"{r['granted']}/{r['offered']}", r["utility_time"],
         r["peak_load"], r["bound"], "yes" if r["feasible"] else "NO"]
        for r in results
    ]
    stage_section(
        "E7b",
        "Finite-duration streams (§5, footnote 1)",
        "The time-expanded allocator treats each (budget, slot) pair as a "
        "virtual budget. With identical session statistics, spreading arrivals "
        "over time admits at least as much as forcing them to overlap — "
        "capacity is about *concurrent* demand — and no slot ever exceeds "
        "its budget (hard guard disabled).",
        ["scenario", "granted", "utility·time", "peak slot load",
         "competitive bound", "feasible"],
        rows,
    )
    for r in results:
        assert r["feasible"]
        assert r["peak_load"] <= 1.0 + 1e-9
    spread, heavy = results[1], results[0]
    assert spread["granted"] >= heavy["granted"]
