"""E20 — distributed sweep transports: byte-identity and speedup.

The transport layer's acceptance contract, measured: for one CPU-bound
solve grid,

- **byte-identity** (always asserted): the ``subprocess`` transport's
  aggregate (`to_jsonl`) is byte-identical to the local run's — the
  distributed sweep changes *where* units execute, never a single
  output byte;
- **speedup** (asserted on machines with ≥ 4 cores): 4 subprocess
  workers finish the grid in ≤ half the 1-worker wall-clock (the ≥ 2×
  floor of the distributed-sweep issue).  On narrower machines the
  floor check is skipped loudly — the workers would just time-slice
  one core — while byte-identity still gates.

Set ``REPRO_E20_SCALE=small`` for the CI smoke grid.
"""

from __future__ import annotations

import os

from repro.experiments import ScenarioSpec, run_experiment
from repro.util.timing import Timer

from benchmarks.common import run_once, stage_json, stage_section

FULL_SCALE = os.environ.get("REPRO_E20_SCALE", "full") != "small"
NUM_USERS = 4_000 if FULL_SCALE else 1_200
NUM_STREAMS = 200 if FULL_SCALE else 120
REPLICATES = 8
WORKERS = 4
#: Wall-clock speedup floor at 4 subprocess workers (checked when the
#: machine actually has 4 cores to run them on).
MIN_SPEEDUP = 2.0

SPEC = ScenarioSpec(
    name="e20-remote",
    kind="solve",
    family="sweep",
    streams=(NUM_STREAMS,),
    users=(NUM_USERS,),
    skews=(1.0, 4.0),
    replicates=REPLICATES,
    base_seed=0,
    params={"density": 0.01},
)


def _timed(fn):
    timer = Timer()
    with timer:
        result = fn()
    return timer.elapsed, result


def bench_e20_remote_transport(benchmark):
    enough_cores = (os.cpu_count() or 1) >= WORKERS

    def experiment():
        t_local, local = _timed(lambda: run_experiment(SPEC))
        t_remote, remote = _timed(
            lambda: run_experiment(
                SPEC, transport="subprocess", workers=WORKERS
            )
        )
        return {
            "t_local": t_local,
            "t_remote": t_remote,
            "units": len(local.rows),
            "identical": remote.to_jsonl() == local.to_jsonl(),
        }

    data = run_once(benchmark, experiment)
    assert data["identical"], (
        "subprocess-transport aggregate diverged from the local run"
    )
    speedup = data["t_local"] / max(data["t_remote"], 1e-9)
    if enough_cores:
        assert speedup >= MIN_SPEEDUP, (
            f"4-worker subprocess sweep only {speedup:.2f}× faster than "
            f"1-worker local (local {data['t_local']:.3f}s, remote "
            f"{data['t_remote']:.3f}s); the floor is {MIN_SPEEDUP:.1f}×"
        )
        floor_note = f"≥ {MIN_SPEEDUP:.1f}× floor asserted"
    else:
        floor_note = (
            f"floor SKIPPED: only {os.cpu_count()} core(s) — "
            f"{WORKERS} workers would time-slice"
        )
        print(f"\nE20: speedup {floor_note}")
    rows = [
        ["local, 1 worker", f"{data['t_local']:.3f} s", "baseline"],
        [f"subprocess, {WORKERS} workers", f"{data['t_remote']:.3f} s",
         f"{speedup:.2f}× ({floor_note})"],
        ["aggregate bytes", "identical", "to_jsonl equality asserted"],
    ]
    stage_section(
        "E20",
        f"Distributed sweep transport ({data['units']} units of "
        f"{NUM_STREAMS} streams × {NUM_USERS} users)",
        "The subprocess transport fans one spec across worker processes "
        "streaming checkpoint rows back over pipes; the merged aggregate "
        "is byte-identical to a local run, and on a multi-core machine "
        f"{WORKERS} workers clear the {MIN_SPEEDUP:.1f}× wall-clock floor.",
        ["path", "wall-clock", "notes"],
        rows,
        notes="Workers run `repro sweep - --shard i/n --emit checkpoint` "
        "with the spec JSON on stdin; the parent reorders the racing "
        "streams into unit order, so distribution never changes a byte "
        "of output.",
    )
    stage_json("E20", {
        "t_local_s": data["t_local"],
        "t_remote_s": data["t_remote"],
        "workers": WORKERS,
        "units": data["units"],
        "speedup": speedup,
        "speedup_floor": MIN_SPEEDUP,
        "floor_checked": enough_cores,
        "byte_identical": data["identical"],
    })
