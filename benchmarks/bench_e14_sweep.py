"""E14 — experiment-runner overhead and shard scaling.

The orchestration layer (`repro.experiments`) must be free lunch: a
spec-driven `run_experiment` over a sweep grid does exactly the work of
the direct `solve_many(sweep_instances(...))` loop — same derived
per-unit seeds, same instances, same solves — plus spec expansion, row
building and (optional) checkpointing.  This bench asserts:

- **overhead**: `run_experiment` wall-clock stays within 10% of the
  direct path (plus a small absolute slack for timer jitter on the
  CI-sized grid), with per-unit utilities *identical*;
- **shard union**: `--shard 0/2` + `--shard 1/2` cover exactly the full
  grid's unit ids and their merged aggregate is byte-identical to the
  unsharded run's; the per-shard times are reported (ideal scaling:
  each shard ≈ half the full run).

Set ``REPRO_E14_SCALE=small`` for the CI smoke grid.
"""

from __future__ import annotations

import os

from repro.core.solver import solve_many
from repro.experiments import ScenarioSpec, merge_checkpoints, run_experiment
from repro.instances.generators import sweep_instances
from repro.util.timing import Timer

from benchmarks.common import run_once, stage_section

FULL_SCALE = os.environ.get("REPRO_E14_SCALE", "full") != "small"
NUM_USERS = 5_000 if FULL_SCALE else 1_000
NUM_STREAMS = 200
SKEWS = (1.0, 4.0)
DENSITY = 0.01
#: Relative overhead ceiling (plus absolute slack for timer jitter).
MAX_OVERHEAD = 0.10
SLACK_SECONDS = 0.05

SPEC = ScenarioSpec(
    name="e14-sweep",
    kind="solve",
    family="sweep",
    streams=(NUM_STREAMS,),
    users=(NUM_USERS,),
    skews=SKEWS,
    base_seed=0,
    params={"density": DENSITY},
)


def _timed(fn):
    timer = Timer()
    with timer:
        result = fn()
    return timer.elapsed, result


def bench_e14_sweep_runner(benchmark, tmp_path_factory):
    ckpt_dir = tmp_path_factory.mktemp("e14")

    def experiment():
        t_direct, direct = _timed(
            lambda: solve_many(
                sweep_instances(
                    [NUM_STREAMS], [NUM_USERS], SKEWS, seed=0, density=DENSITY
                )
            )
        )
        t_runner, run = _timed(lambda: run_experiment(SPEC))
        shard_times = []
        checkpoints = []
        for i in range(2):
            path = ckpt_dir / f"shard{i}.jsonl"
            t_shard, _ = _timed(
                lambda p=path, i=i: run_experiment(SPEC, shard=(i, 2), checkpoint=p)
            )
            shard_times.append(t_shard)
            checkpoints.append(path)
        merged = merge_checkpoints(SPEC, checkpoints)
        return {
            "t_direct": t_direct,
            "t_runner": t_runner,
            "shard_times": shard_times,
            "direct_utilities": [r.utility for r in direct],
            "runner_utilities": [r["utility"] for r in run.rows],
            "merged_identical": merged.to_jsonl() == run.to_jsonl(),
        }

    data = run_once(benchmark, experiment)
    assert data["runner_utilities"] == data["direct_utilities"], (
        "runner diverged from the direct solve_many path"
    )
    assert data["merged_identical"], "shard union is not byte-identical"
    overhead = data["t_runner"] / max(data["t_direct"], 1e-9) - 1.0
    assert data["t_runner"] <= (1.0 + MAX_OVERHEAD) * data["t_direct"] + SLACK_SECONDS, (
        f"runner overhead {overhead:+.1%} exceeds {MAX_OVERHEAD:.0%} "
        f"(direct {data['t_direct']:.3f}s, runner {data['t_runner']:.3f}s)"
    )
    slowest_shard = max(data["shard_times"])
    rows = [
        ["direct solve_many", f"{data['t_direct']:.3f} s", "—"],
        ["run_experiment (full grid)", f"{data['t_runner']:.3f} s",
         f"{overhead:+.1%} overhead"],
        ["shard 0/2", f"{data['shard_times'][0]:.3f} s", "checkpointed"],
        ["shard 1/2", f"{data['shard_times'][1]:.3f} s", "checkpointed"],
        ["slowest shard vs full", f"{slowest_shard:.3f} s",
         f"{slowest_shard / max(data['t_runner'], 1e-9):.2f}× of full "
         "(ideal 0.50×)"],
    ]
    stage_section(
        "E14",
        f"Experiment runner overhead and shard scaling "
        f"({NUM_USERS} users × {NUM_STREAMS} streams × skews {list(SKEWS)})",
        "run_experiment drives the same per-unit seeds and solves as the "
        "direct solve_many path (identical utilities asserted), within "
        f"{MAX_OVERHEAD:.0%} wall-clock; two shard runs cover the grid and "
        "merge byte-identically.",
        ["path", "wall-clock", "notes"],
        rows,
        notes="Per-unit seeds derive from (base_seed, unit_index), so "
        "shards never re-draw or skip randomness; checkpoint rows are "
        "appended per completed unit.",
    )
