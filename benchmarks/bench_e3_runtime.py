"""E3 — §2.1 complexity: greedy runs in O(|S|·n) ⊆ O(n²).

The paper's implementation analysis gives O(n²); the measured log–log
slope of runtime vs. input length must not meaningfully exceed 2.
"""

from __future__ import annotations

from repro.core.greedy import greedy, greedy_lazy
from repro.instances.generators import random_unit_skew_smd
from repro.util.timing import Timer, fit_loglog_slope

from benchmarks.common import run_once, stage_section

SIZES = [40, 80, 160, 320]


def _time_algorithm(algorithm, sizes):
    points = []
    for num_streams in sizes:
        inst = random_unit_skew_smd(
            num_streams,
            num_users=max(8, num_streams // 8),
            seed=30_000 + num_streams,
            density=0.4,
        )
        timer = Timer()
        with timer:
            algorithm(inst)
        points.append((inst.input_length, timer.elapsed))
    return points


def bench_e3_runtime_scaling(benchmark):
    def experiment():
        return {
            "greedy (scan)": _time_algorithm(greedy, SIZES),
            "greedy (lazy heap)": _time_algorithm(greedy_lazy, SIZES),
        }

    data = run_once(benchmark, experiment)
    rows = []
    slopes = {}
    for name, points in data.items():
        ns = [n for n, _ in points]
        ts = [max(t, 1e-6) for _, t in points]
        slope = fit_loglog_slope(ns, ts)
        slopes[name] = slope
        for (n, t) in points:
            rows.append([name, n, f"{t * 1000:.1f} ms", "", ""])
        rows.append([name, "slope", "", f"{slope:.2f}", "<= ~2"])
    stage_section(
        "E3",
        "Greedy runtime scaling (§2.1 complexity analysis)",
        "The paper implements Algorithm Greedy in O(|S|·n) = O(n²) via "
        "incremental residual maintenance. The fitted log–log slope of runtime "
        "vs. input length n should be at most about 2.",
        ["algorithm", "n (input length)", "time", "fitted slope", "bound"],
        rows,
        notes="Slopes well under 2 are expected: the incremental update cost "
        "depends on instance density, and constant factors dominate at these sizes.",
    )
    for name, slope in slopes.items():
        assert slope <= 2.6, f"{name} scaling slope {slope} suspiciously high"
