"""E5 — §4 multi-budget pipeline across (m, m_c) (Theorem 4.4 / 1.1).

Paper claim: MMD is approximated within
``O(m·m_c·log(2αm_c))`` — explicitly
``(2m-1)(2m_c-1) · 2t · 3e/(e-1)`` in this implementation's constants.
"""

from __future__ import annotations

from repro.core.optimal import solve_exact_milp
from repro.core.solver import solve_mmd, theorem_1_1_bound
from repro.instances.generators import random_mmd

from benchmarks.common import run_once, stage_section

GRID = [(1, 1), (2, 1), (2, 2), (3, 2), (4, 2), (3, 3)]
INSTANCES_PER_CELL = 5


def bench_e5_mmd_grid(benchmark):
    def experiment():
        results = []
        for m, mc in GRID:
            worst = 1.0
            mean_acc = 0.0
            count = 0
            bound = 1.0
            for i in range(INSTANCES_PER_CELL):
                inst = random_mmd(
                    num_streams=7 + i,
                    num_users=3 + i % 2,
                    m=m,
                    mc=mc,
                    seed=50_000 + m * 1000 + mc * 100 + i,
                )
                opt = solve_exact_milp(inst).utility
                if opt == 0:
                    continue
                result = solve_mmd(inst)
                assert result.assignment.is_feasible()
                ratio = opt / max(result.utility, 1e-12)
                worst = max(worst, ratio)
                mean_acc += ratio
                count += 1
                bound = max(bound, theorem_1_1_bound(inst))
            results.append(
                {
                    "m": m,
                    "mc": mc,
                    "mean": mean_acc / max(count, 1),
                    "worst": worst,
                    "bound": bound,
                }
            )
        return results

    results = run_once(benchmark, experiment)
    rows = [
        [r["m"], r["mc"], INSTANCES_PER_CELL, r["mean"], r["worst"], r["bound"],
         "yes" if r["worst"] <= r["bound"] + 1e-9 else "NO"]
        for r in results
    ]
    stage_section(
        "E5",
        "Full MMD pipeline across (m, m_c) (Theorems 4.4 and 1.1)",
        "The reduction + classification + greedy pipeline approximates MMD "
        "within (2m-1)(2m_c-1)·2t·3e/(e-1) — the explicit form of the paper's "
        "O(m·m_c·log(2αm_c)). Worst measured OPT/ALG per grid cell must stay "
        "below the per-instance bound.",
        ["m", "m_c", "instances", "mean ratio", "worst ratio", "Thm 1.1 bound", "within bound"],
        rows,
        notes="Measured ratios are near 1–3 while bounds grow into the "
        "hundreds: the pipeline's practical performance is far better than its "
        "worst-case guarantee, as §4.2's explicit family (E6) is needed to "
        "exhibit real degradation.",
    )
    for r in results:
        assert r["worst"] <= r["bound"] + 1e-9
