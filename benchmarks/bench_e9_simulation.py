"""E9 — the Fig. 1 system, animated: online policies in a dynamic DES.

The ICDCS deployment story: stream sessions arrive and depart at a
gateway with a bounded egress link; the admission policy decides what to
carry and deliver.  Same arrival trace for every policy (common random
numbers); the metric is time-integrated utility.
"""

from __future__ import annotations

import statistics

from repro.instances.workloads import iptv_neighborhood_workload
from repro.sim.policies import (
    AllocatePolicy,
    DensityPolicy,
    RandomPolicy,
    ThresholdPolicy,
)
from repro.sim.simulation import ArrivalModel, compare_policies

from benchmarks.common import run_once, stage_section

SEEDS = [11, 22, 33]
HORIZON = 400.0
MODEL = ArrivalModel(rate=2.0, mean_duration=40.0, popularity_exponent=1.0)


def _policies():
    return [
        ThresholdPolicy(margin=1.0),
        AllocatePolicy(),
        DensityPolicy(quantile=0.5),
        RandomPolicy(p=0.5, seed=7),
    ]


def bench_e9_dynamic_policies(benchmark):
    def experiment():
        per_policy: dict[str, list] = {}
        for seed in SEEDS:
            inst = iptv_neighborhood_workload(
                num_channels=30, num_households=10, seed=seed
            )
            reports = compare_policies(
                inst, _policies(), horizon=HORIZON, model=MODEL, seed=seed
            )
            for report in reports:
                key = report.policy_name.split("(")[0]
                per_policy.setdefault(key, []).append(report)
        return per_policy

    per_policy = run_once(benchmark, experiment)
    rows = []
    means = {}
    for name, reports in per_policy.items():
        utilities = [r.utility_time for r in reports]
        mean_utility = statistics.mean(utilities)
        means[name] = mean_utility
        rows.append(
            [
                name,
                mean_utility,
                statistics.stdev(utilities) if len(utilities) > 1 else 0.0,
                statistics.mean([r.acceptance_rate for r in reports]),
                max(
                    max(r.peak_server_utilization.values(), default=0.0)
                    for r in reports
                ),
            ]
        )
    rows.sort(key=lambda row: -row[1])
    stage_section(
        "E9",
        "Dynamic admission control in the Fig. 1 system (DES)",
        "Poisson session arrivals (rate 2, mean lifetime 40, Zipf-1 stream "
        "popularity) at an IPTV gateway over 3 seeds × 400 time units; all "
        "policies replay identical traces. Peak utilization must never exceed "
        "1.0 (hard feasibility).",
        ["policy", "mean utility·time", "std", "acceptance rate", "peak link utilization"],
        rows,
        notes="Threshold admits everything that fits (high acceptance); the "
        "exponential-cost policy is selective under load. Which wins depends "
        "on load and utility skew — see E8 for the static gap and the "
        "ablation bench (A1) for the load sweep.",
    )
    for row in rows:
        assert row[-1] <= 1.0 + 1e-9
    assert means  # at least one policy ran
