"""E16 — batched decision core: multi-pick greedy + batched replay.

Two decision-rate hot paths from earlier PRs still pay one Python-level
iteration per *decision*:

1. The single-pick greedy kernel (``repro.core.indexed.greedy_kernel``)
   recomputes the effectiveness key and takes one exact argmax per
   accepted stream — O(streams) numpy work per pick, ~1 000 picks on a
   catalog-scale instance.  The multi-pick kernel
   (``repro.core.batched.greedy_kernel_batched``, ``engine="batched"``)
   selects a whole round by ``argpartition``, proves the round
   non-interacting against residual budgets, and commits it with one
   vectorized residual update — falling back to single picks only for
   the conflicting tail.
2. The chunked replay kernel (``engine="chunked"``) already skips
   no-decision runs, but answers each surviving decision with one
   ``on_offer_indexed`` call.  ``BatchedVideoSim`` (``engine="batched"``)
   groups consecutive decision arrivals between departures and answers
   the group through one vectorized ``on_offer_batch``.

Both comparisons assert *float-identical* outputs — the batched paths
reproduce the sequential engines' IEEE accumulation order exactly (the
contract fuzzed in ``tests/test_indexed_parity.py`` and
``tests/test_sim_indexed.py``).

Asserted floors at the reference scale (10 000 users × 1 000 streams for
the solver; ~10⁶ events for replay): ≥ 10× for the batched greedy
kernel and ≥ 3× for batched replay under a rejection-heavy threshold
workload (tight budget ⇒ long all-reject runs ⇒ large groups).  Set
``REPRO_E16_SCALE=small`` for the CI smoke, where fixed numpy costs
dominate and the floors drop accordingly.
"""

from __future__ import annotations

import os

import numpy as np

from repro.core.batched import greedy_kernel_batched
from repro.core.indexed import greedy_kernel
from repro.instances.vectorized import generate_unit_skew_smd
from repro.sim.indexed import draw_trace_arrays
from repro.sim.kernel import BatchedVideoSim, ChunkedVideoSim
from repro.sim.policies import ThresholdPolicy
from repro.sim.simulation import ArrivalModel
from repro.util.timing import Timer

from benchmarks.common import run_once, stage_json, stage_section

FULL_SCALE = os.environ.get("REPRO_E16_SCALE", "full") != "small"

#: Solver scenario: catalog-scale greedy with rare pick interactions
#: (sparse interest, generous caps) so rounds stay large.
G_STREAMS = 1_000 if FULL_SCALE else 200
G_USERS = 10_000 if FULL_SCALE else 1_000
G_DENSITY = 0.001 if FULL_SCALE else 0.005
G_BUDGET_FRACTION = 0.6
#: Generous utility caps keep pick interactions rare (a user's cap
#: absorbs all its interests), the regime where rounds stay large.
G_CAP_FRACTION = 2.0

#: Replay scenario: tight budget under a threshold policy — the server
#: saturates early and long all-reject arrival runs form large groups.
R_STREAMS = 200 if FULL_SCALE else 100
R_USERS = 10_000 if FULL_SCALE else 1_000
R_EVENTS = 1_000_000 if FULL_SCALE else 50_000
R_RATE = 100.0
R_HORIZON = R_EVENTS / R_RATE
R_MODEL = ArrivalModel(rate=R_RATE, mean_duration=R_HORIZON / 2.0,
                       popularity_exponent=1.0)

#: Reference-scale floors from the ISSUE; the small CI smoke runs at a
#: fraction of the volume where constant numpy costs weigh more.
MIN_GREEDY_SPEEDUP = 10.0 if FULL_SCALE else 2.0
MIN_REPLAY_SPEEDUP = 3.0 if FULL_SCALE else 2.0


def _timed(fn) -> "tuple[float, object]":
    timer = Timer()
    with timer:
        result = fn()
    return timer.elapsed, result


def _timed_best(fn, rounds: int = 3) -> "tuple[float, object]":
    """Best-of-N wall time for cheap, deterministic kernels (the greedy
    pair runs in tens of ms, where scheduler noise would dominate a
    single-shot measurement)."""
    best, result = _timed(fn)
    for _ in range(rounds - 1):
        elapsed, result = _timed(fn)
        best = min(best, elapsed)
    return best, result


def _traces_identical(first, second) -> bool:
    """Float-identical greedy kernel outputs (order, receivers, cost)."""
    order_a, rejected_a, cost_a = first
    order_b, rejected_b, cost_b = second
    return (
        cost_a == cost_b
        and rejected_a == rejected_b
        and [k for k, _ in order_a] == [k for k, _ in order_b]
        and all(
            np.array_equal(ra, rb)
            for (_, ra), (_, rb) in zip(order_a, order_b)
        )
    )


def _reports_identical(first, second) -> bool:
    """Float-identical SimulationReports (the cross-engine contract)."""
    return (
        first.utility_time == second.utility_time
        and first.offered == second.offered
        and first.admitted == second.admitted
        and first.deliveries == second.deliveries
        and first.policy_violations == second.policy_violations
        and first.per_user_utility == second.per_user_utility
        and first.server_utilization == second.server_utilization
        and first.peak_server_utilization == second.peak_server_utilization
    )


def bench_e16_batched(benchmark):
    def experiment():
        # -- multi-pick greedy ------------------------------------------
        idx = generate_unit_skew_smd(
            G_STREAMS, G_USERS, seed=42, density=G_DENSITY,
            budget_fraction=G_BUDGET_FRACTION, cap_fraction=G_CAP_FRACTION,
        )
        cap = float(idx.budgets[0])
        t_single, single = _timed_best(lambda: greedy_kernel(idx, cap, []))
        t_multi, multi = _timed_best(lambda: greedy_kernel_batched(idx, cap, []))
        greedy_res = {
            "t_single": t_single,
            "t_multi": t_multi,
            "picks": len(single[0]),
            "rejected": len(single[1]),
            "parity": _traces_identical(single, multi),
        }

        # -- batched replay ---------------------------------------------
        sim_idx = generate_unit_skew_smd(
            R_STREAMS, R_USERS, seed=43, density=0.01, budget_fraction=0.02
        )
        trace = draw_trace_arrays(sim_idx, R_MODEL, R_HORIZON, seed=7)
        chunked_sim = ChunkedVideoSim(sim_idx, ThresholdPolicy())
        batched_sim = BatchedVideoSim(sim_idx, ThresholdPolicy())
        t_chunked, chunked_report = _timed(
            lambda: chunked_sim.run_trace(trace, R_HORIZON)
        )
        t_batched, batched_report = _timed(
            lambda: batched_sim.run_trace(trace, R_HORIZON)
        )
        replay_res = {
            "t_chunked": t_chunked,
            "t_batched": t_batched,
            "events": len(trace),
            "offered": chunked_report.offered,
            "admitted": chunked_report.admitted,
            "parity": _reports_identical(chunked_report, batched_report),
        }
        return {"greedy": greedy_res, "replay": replay_res}

    data = run_once(benchmark, experiment)
    g, r = data["greedy"], data["replay"]
    g_speedup = g["t_single"] / max(g["t_multi"], 1e-9)
    r_speedup = r["t_chunked"] / max(r["t_batched"], 1e-9)

    stage_section(
        "E16",
        f"Batched decision core: multi-pick greedy "
        f"({G_USERS:,} users × {G_STREAMS:,} streams) and batched replay "
        f"(~{R_EVENTS:,} events)",
        "repro.core.batched selects whole greedy rounds by argpartition, "
        "verifies non-interaction against residual budgets per round and "
        "commits accepted picks with one vectorized residual update, "
        "falling back to exact single picks only for the conflicting "
        "tail.  BatchedVideoSim groups consecutive decision arrivals "
        "between departures and answers each group through one "
        "vectorized on_offer_batch instead of per-decision policy calls.",
        ["path", "sequential", "batched", "speedup", "work"],
        [
            [
                "greedy kernel",
                f"{g['t_single'] * 1e3:.0f} ms",
                f"{g['t_multi'] * 1e3:.0f} ms",
                f"{g_speedup:.1f}x",
                f"{g['picks']:,} picks, {g['rejected']:,} rejected",
            ],
            [
                "threshold replay",
                f"{r['t_chunked']:.2f} s",
                f"{r['t_batched']:.2f} s",
                f"{r_speedup:.1f}x",
                f"{r['offered']:,} decisions of {r['events']:,} events",
            ],
        ],
        notes="Outputs are float-identical to the single-pick kernel and "
        "the chunked engine (asserted here; fuzzed in "
        "tests/test_indexed_parity.py and tests/test_sim_indexed.py).  "
        "The greedy win grows with round size (rare pick interactions); "
        "the replay win grows with the length of decision runs between "
        "departures — rejection-heavy workloads batch best.",
    )
    stage_json(
        "e16",
        {
            "greedy": {
                "streams": G_STREAMS,
                "users": G_USERS,
                "t_single_s": g["t_single"],
                "t_multi_s": g["t_multi"],
                "speedup": g_speedup,
                "picks": g["picks"],
            },
            "replay": {
                "events": r["events"],
                "offered": r["offered"],
                "admitted": r["admitted"],
                "t_chunked_s": r["t_chunked"],
                "t_batched_s": r["t_batched"],
                "speedup": r_speedup,
            },
            "scale": "full" if FULL_SCALE else "small",
        },
    )

    assert g["parity"], "batched greedy kernel diverged from single-pick"
    assert g["picks"] > 0, "degenerate greedy run: nothing accepted"
    assert g_speedup >= MIN_GREEDY_SPEEDUP, (
        f"batched greedy only {g_speedup:.1f}x faster than single-pick "
        f"(need ≥ {MIN_GREEDY_SPEEDUP}x)"
    )
    assert r["parity"], "batched replay diverged from chunked"
    assert r["admitted"] > 0, "degenerate replay: nothing admitted"
    assert r_speedup >= MIN_REPLAY_SPEEDUP, (
        f"batched replay only {r_speedup:.1f}x faster than chunked "
        f"(need ≥ {MIN_REPLAY_SPEEDUP}x)"
    )
