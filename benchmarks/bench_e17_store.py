"""E17 — out-of-core trace store: windowed replay of a 10⁷-event store.

The columnar store (``repro.sim.store``) keeps a trace on disk — one
``.npy`` per column behind a torn-tail-safe manifest — and replays it
through the chunked kernel in time windows, handing live sessions
across window edges as resident state so the stitched report is
*float-identical* to a monolithic in-RAM replay.  This bench draws a
~10⁷-event trace straight to disk in bounded chunks
(:func:`~repro.sim.store.draw_trace_to_store`), then replays it twice:

- **in-RAM** — columns copied into ordinary arrays, monolithic
  ``run_trace`` (the footprint a full-trace replay pays);
- **windowed** — zero-copy mmap open, ``run_store`` streaming
  fixed-width time windows.

Asserts report parity with ``==``, a windowed-vs-in-RAM throughput
floor (≥ 1× at the reference scale: streaming must not cost replay
speed), and — via tracemalloc, which sees the per-window numpy
allocations but not the untraced mmap pages, exactly the resident
footprint in question — a peak traced memory well below the bytes the
three full columns would occupy in RAM.

Set ``REPRO_E17_SCALE=small`` for a CI smoke at 10⁵ events, where the
fixed per-window numpy costs weigh more and the throughput floor drops
accordingly (the ≥ 1× claim is asserted at the reference scale).
"""

from __future__ import annotations

import os
import tempfile
import tracemalloc
from pathlib import Path

import numpy as np

from repro.instances.vectorized import generate_unit_skew_smd
from repro.sim.indexed import IndexedTrace
from repro.sim.kernel import ChunkedVideoSim
from repro.sim.policies import ThresholdPolicy
from repro.sim.simulation import ArrivalModel
from repro.sim.store import TraceStore, draw_trace_to_store
from repro.util.timing import Timer

from benchmarks.common import run_once, stage_json, stage_section

FULL_SCALE = os.environ.get("REPRO_E17_SCALE", "full") != "small"
NUM_EVENTS = 10_000_000 if FULL_SCALE else 100_000
NUM_USERS = 2_000 if FULL_SCALE else 500
NUM_STREAMS = 200 if FULL_SCALE else 100
RATE = 100.0
#: 1% horizon padding keeps the Poisson draw above NUM_EVENTS (σ ≈
#: 3.2k events at the reference scale — the pad is ~30σ of margin).
HORIZON = 1.01 * NUM_EVENTS / RATE
#: Long sessions against a modest catalog: the mostly-no-decision
#: regime the chunked kernel targets (same shape as E15).
MODEL = ArrivalModel(rate=RATE, mean_duration=HORIZON / 2.0, popularity_exponent=1.0)
#: 256 windows across the horizon — each window holds ~NUM_EVENTS/256
#: events, so resident numpy state stays a small fraction of the trace.
WINDOW = HORIZON / 256.0
#: Windowed replay must not cost throughput at the reference scale; the
#: small smoke amortizes per-window setup over 100× fewer events.
MIN_RATIO = 1.0 if FULL_SCALE else 0.25
#: Peak traced bytes must stay well under the in-RAM column footprint.
MAX_PEAK_FRACTION = 0.25


def _timed(fn) -> "tuple[float, object]":
    timer = Timer()
    with timer:
        result = fn()
    return timer.elapsed, result


def _reports_identical(first, second) -> bool:
    """Float-identical SimulationReports (the stitching contract)."""
    return (
        first.utility_time == second.utility_time
        and first.offered == second.offered
        and first.admitted == second.admitted
        and first.deliveries == second.deliveries
        and first.policy_violations == second.policy_violations
        and first.per_user_utility == second.per_user_utility
        and first.server_utilization == second.server_utilization
        and first.peak_server_utilization == second.peak_server_utilization
    )


def bench_e17_store(benchmark):
    def experiment():
        instance = generate_unit_skew_smd(
            NUM_STREAMS, NUM_USERS, seed=42, density=0.01, budget_fraction=3.0
        )
        with tempfile.TemporaryDirectory(prefix="repro-e17-") as tmp:
            path = Path(tmp) / "store"
            t_draw, store = _timed(
                lambda: draw_trace_to_store(
                    instance, MODEL, HORIZON, path, seed=7
                )
            )
            rows = len(store)
            store_bytes = store.info()["data_bytes"]

            # In-RAM baseline: copy the columns off the mmap and replay
            # monolithically — the footprint the store exists to avoid.
            ram_trace = IndexedTrace(
                times=np.array(store.times),
                streams=np.array(store.streams),
                durations=np.array(store.durations),
            )
            t_ram, report_ram = _timed(
                lambda: ChunkedVideoSim(instance, ThresholdPolicy()).run_trace(
                    ram_trace, HORIZON
                )
            )
            del ram_trace

            t_win, report_win = _timed(
                lambda: ChunkedVideoSim(instance, ThresholdPolicy()).run_store(
                    store, HORIZON, window=WINDOW
                )
            )

            # Traced pass: tracemalloc sees per-window numpy allocations
            # (not mmap pages), i.e. the resident replay state.
            fresh = TraceStore.open(path)
            tracemalloc.start()
            try:
                tracemalloc.reset_peak()
                report_traced = ChunkedVideoSim(
                    instance, ThresholdPolicy()
                ).run_store(fresh, HORIZON, window=WINDOW)
                _, peak = tracemalloc.get_traced_memory()
            finally:
                tracemalloc.stop()

        return {
            "rows": rows,
            "store_bytes": store_bytes,
            "t_draw": t_draw,
            "t_ram": t_ram,
            "t_win": t_win,
            "peak_traced": peak,
            "offered": report_win.offered,
            "admitted": report_win.admitted,
            "parity": _reports_identical(report_ram, report_win)
            and _reports_identical(report_ram, report_traced),
        }

    data = run_once(benchmark, experiment)

    full_bytes = data["rows"] * 8 * 3
    ratio = data["t_ram"] / max(data["t_win"], 1e-9)
    rows = [
        [
            f"{data['rows']:,}",
            f"{data['store_bytes'] / 1e6:,.0f} MB",
            f"{data['t_draw']:.1f} s",
            f"{data['t_ram']:.2f} s",
            f"{data['t_win']:.2f} s ({ratio:.2f}x)",
            f"{data['peak_traced'] / 1e6:,.1f} MB of {full_bytes / 1e6:,.0f} MB "
            f"({data['peak_traced'] / max(full_bytes, 1):.1%})",
        ]
    ]
    stage_section(
        "E17",
        f"Out-of-core columnar trace store: windowed replay of a "
        f"~{NUM_EVENTS:,}-event on-disk trace "
        f"({NUM_USERS} users × {NUM_STREAMS} streams)",
        "repro.sim.store draws the trace straight to disk in bounded "
        "chunks (one .npy per column, torn-tail-safe manifest), reopens "
        "it zero-copy via mmap, and streams it through the chunked "
        "kernel in fixed-width time windows; live sessions crossing a "
        "window edge are handed off as resident state (occupied budgets "
        "+ scheduled departures), so the stitched report equals the "
        "monolithic in-RAM replay float-for-float.",
        ["events", "store on disk", "draw-to-store", "in-RAM replay",
         "windowed replay (vs in-RAM)", "peak traced memory (vs in-RAM columns)"],
        rows,
        notes="Peak memory is tracemalloc over the windowed replay: it "
        "counts the per-window numpy working set but not the mmap-backed "
        "column pages the OS streams and evicts — i.e. exactly the "
        "resident footprint the store bounds.  Parity is asserted with "
        "== on every report field; tests/test_store.py fuzzes the same "
        "contract across all four engines and crafted boundary traces.",
    )
    stage_json(
        "E17",
        {
            "scale": "full" if FULL_SCALE else "small",
            "events": data["rows"],
            "store_bytes": data["store_bytes"],
            "window": WINDOW,
            "draw_seconds": data["t_draw"],
            "in_ram_seconds": data["t_ram"],
            "windowed_seconds": data["t_win"],
            "throughput_ratio": ratio,
            "peak_traced_bytes": data["peak_traced"],
            "in_ram_column_bytes": full_bytes,
            "parity": data["parity"],
        },
    )
    assert data["parity"], "windowed store replay diverged from in-RAM replay"
    assert data["admitted"] > 0, "degenerate run: nothing admitted"
    assert data["rows"] >= (NUM_EVENTS if FULL_SCALE else NUM_EVENTS * 0.9), (
        "draw produced too few events"
    )
    assert data["peak_traced"] < full_bytes * MAX_PEAK_FRACTION, (
        f"windowed replay peak {data['peak_traced']:,} B is not bounded "
        f"below the in-RAM column footprint {full_bytes:,} B"
    )
    assert ratio >= MIN_RATIO, (
        f"windowed replay only {ratio:.2f}x of in-RAM throughput "
        f"(need ≥ {MIN_RATIO}x)"
    )
