"""E2 — §2.3 partial enumeration vs. exact optimum.

Paper claims (Theorems 2.9/2.10): partial enumeration achieves
``e/(e-1) ≈ 1.582`` semi-feasibly and ``2e/(e-1) ≈ 3.164`` feasibly.
The depth sweep also shows the quality/time trade (depth 3 is the proved
setting; 1–2 are cheaper heuristics).
"""

from __future__ import annotations

import math

from repro.analysis.ratios import RatioStats
from repro.core.enumeration import partial_enumeration, partial_enumeration_feasible
from repro.core.optimal import solve_exact_milp
from repro.instances.generators import random_unit_skew_smd

from benchmarks.common import run_once, stage_section

E_FACTOR = math.e / (math.e - 1.0)
FEASIBLE_BOUND = 2.0 * math.e / (math.e - 1.0)


def _ensemble():
    return [
        random_unit_skew_smd(
            num_streams=7 + i % 3,
            num_users=3 + i % 3,
            seed=20_000 + i,
            budget_fraction=0.25 + 0.05 * (i % 3),
        )
        for i in range(8)
    ]


def bench_e2_enumeration(benchmark):
    def experiment():
        instances = _ensemble()
        results: dict[str, RatioStats] = {}
        for depth in (1, 2, 3):
            semi = RatioStats(f"semi-feasible d={depth}")
            feas = RatioStats(f"feasible d={depth}")
            for inst in instances:
                opt = solve_exact_milp(inst).utility
                semi_sol = partial_enumeration(inst, depth=depth).assignment
                feas_sol = partial_enumeration_feasible(inst, depth=depth)
                semi.record(opt, semi_sol.utility(), semi_sol.is_server_feasible())
                feas.record(opt, feas_sol.utility(), feas_sol.is_feasible())
            results[f"semi{depth}"] = semi
            results[f"feas{depth}"] = feas
        return results

    results = run_once(benchmark, experiment)
    rows = []
    for depth in (1, 2, 3):
        semi = results[f"semi{depth}"]
        feas = results[f"feas{depth}"]
        semi_bound = E_FACTOR if depth >= 3 else float("inf")
        rows.append(
            [semi.algorithm, semi.count, semi.mean, semi.worst,
             semi_bound if depth >= 3 else "(d<3: none)",
             "yes" if semi.worst <= (semi_bound if depth >= 3 else math.inf) + 1e-9 else "NO"]
        )
        feas_bound = FEASIBLE_BOUND if depth >= 3 else float("inf")
        rows.append(
            [feas.algorithm, feas.count, feas.mean, feas.worst,
             feas_bound if depth >= 3 else "(d<3: none)",
             "yes" if feas.worst <= (feas_bound if depth >= 3 else math.inf) + 1e-9 else "NO"]
        )
    stage_section(
        "E2",
        "Partial enumeration (Theorems 2.9/2.10)",
        "Depth-3 enumeration achieves e/(e-1) ≈ 1.582 semi-feasibly and "
        "2e/(e-1) ≈ 3.164 with the feasible split. Measured over 8 random "
        "unit-skew instances against the exact MILP optimum.",
        ["algorithm", "instances", "mean ratio", "worst ratio", "paper bound", "within bound"],
        rows,
    )
    assert results["semi3"].worst <= E_FACTOR + 1e-9
    assert results["feas3"].worst <= FEASIBLE_BOUND + 1e-9
    assert results["feas3"].infeasible_count == 0
