"""Assembles EXPERIMENTS.md from all staged benchmark sections.

Runs last (alphabetical collection order) so every bench in this session
has already staged its section; stale sections from earlier sessions are
kept, so partial re-runs refresh only what they ran.
"""

from __future__ import annotations

from repro.analysis.reporting import write_experiments_md

from benchmarks.common import REPO_ROOT, RESULTS_DIR, run_once

#: Machine-readable artifacts the bench suite stages (one per bench
#: that calls ``stage_json``); a full run should leave exactly these
#: under ``benchmarks/results/`` for CI to archive.
EXPECTED_ARTIFACTS = (
    "BENCH_E16.json",  # batched decision core
    "BENCH_E17.json",  # out-of-core trace store
    "BENCH_E18.json",  # admission service over HTTP
    "BENCH_E19.json",  # group-commit batching + sharded workers
    "BENCH_E20.json",  # distributed sweep transports
)

HEADER = """\
# EXPERIMENTS — paper claims vs. measured results

Reproduction of **"Video Distribution Under Multiple Constraints"**
(Patt-Shamir & Rawitz, ICDCS 2008; TCS 412(2011) 3717-3730).

The paper is analytic — it proves worst-case approximation and
competitive ratios and contains **no experimental tables**; its figures
are a system schematic (Fig. 1), a notation glossary (Fig. 2) and an
illustration of the interval decomposition (Fig. 3).  The reproduction
therefore regenerates an *empirical validation of every theorem* plus
the paper's motivating system-level claim, as indexed in DESIGN.md §4.
Every section below is emitted by one bench target under `benchmarks/`
(run `pytest benchmarks/ --benchmark-only -s` to regenerate); "paper
bound" columns are the proved worst-case constants evaluated at each
instance's own parameters, and measured ratios must stay below them.

Reading guide: measured ratios far below the bounds are the expected
outcome — the paper proves *worst-case* guarantees, and only the §4.2
adversarial family (E6) is designed to make the machinery actually pay
its full price.
"""


def bench_z_assemble_report(benchmark):
    def assemble():
        return write_experiments_md(
            str(RESULTS_DIR), str(REPO_ROOT / "EXPERIMENTS.md"), HEADER
        )

    document = run_once(benchmark, assemble)
    assert "## E1" in document
    print(f"\nEXPERIMENTS.md written ({len(document)} chars, "
          f"{document.count('## ')} sections)")
    artifacts = sorted(RESULTS_DIR.glob("BENCH_*.json"))
    if artifacts:
        print(f"raw artifacts staged ({len(artifacts)}):")
        for path in artifacts:
            print(f"  {path.relative_to(REPO_ROOT)}")
    staged = {path.name for path in artifacts}
    missing = [name for name in EXPECTED_ARTIFACTS if name not in staged]
    if missing:
        # Partial re-runs legitimately skip benches; say what's absent
        # instead of letting a silently missing artifact look complete.
        print(f"expected artifacts not staged this run: {', '.join(missing)}")
