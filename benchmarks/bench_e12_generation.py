"""E12 — vectorized instance generation vs. the per-pair loop engine.

PR 1 made *solving* fast; this experiment measures the other half of a
sweep's wall-clock: building the instances.  The loop generators draw
each (user, stream) pair through a Python RNG call; the vectorized
layer (``repro.instances.vectorized``) draws whole instances with a
handful of batched numpy calls and assembles the
``IndexedInstance`` CSR arrays directly — no dict model is built at
all.

Measured at 10 000 users × 1 000 streams (the E11 scale) for the two
sweep families (§2 unit-skew and bounded-skew SMD).  Asserts:

- ≥ 10× generation throughput per family, and
- solution parity — the array-native instance solves to exactly the
  utility of its ``lift()``-ed dict counterpart re-built from JSON.

Set ``REPRO_E12_SCALE=small`` for a quick smoke at 1/10 the population.
"""

from __future__ import annotations

import os

from repro.core.instance import MMDInstance
from repro.core.solver import solve_mmd
from repro.instances.generators import random_smd, random_unit_skew_smd
from repro.instances.vectorized import generate_smd, generate_unit_skew_smd
from repro.util.timing import Timer

from benchmarks.common import run_once, stage_section

FULL_SCALE = os.environ.get("REPRO_E12_SCALE", "full") != "small"
NUM_USERS = 10_000 if FULL_SCALE else 1_000
NUM_STREAMS = 1_000 if FULL_SCALE else 200
DENSITY = 0.05
MIN_SPEEDUP = 10.0


def _timed(fn) -> "tuple[float, object]":
    timer = Timer()
    with timer:
        result = fn()
    return timer.elapsed, result


def bench_e12_generation(benchmark):
    def experiment():
        data = {}
        for family, loop_fn, vec_fn in [
            (
                "unit-skew-smd",
                lambda: random_unit_skew_smd(
                    NUM_STREAMS, NUM_USERS, seed=42, density=DENSITY, engine="loop"
                ),
                lambda: generate_unit_skew_smd(
                    NUM_STREAMS, NUM_USERS, seed=42, density=DENSITY
                ),
            ),
            (
                "smd-skew4",
                lambda: random_smd(
                    NUM_STREAMS, NUM_USERS, 4.0, seed=7, density=DENSITY, engine="loop"
                ),
                lambda: generate_smd(
                    NUM_STREAMS, NUM_USERS, 4.0, seed=7, density=DENSITY
                ),
            ),
        ]:
            t_loop, _ = _timed(loop_fn)
            t_vec, idx = _timed(vec_fn)
            data[family] = (t_loop, t_vec, idx.nnz)

        # Parity: the array-native instance solves to exactly the same
        # utility as its lifted dict counterpart re-built from JSON.
        idx = generate_smd(200, 1_000, 4.0, seed=11, density=DENSITY)
        u_native = solve_mmd(idx, try_allocate=False).utility
        rebuilt = MMDInstance.from_json(idx.to_json())
        u_rebuilt = solve_mmd(rebuilt, try_allocate=False).utility
        return data, (u_native, u_rebuilt)

    data, (u_native, u_rebuilt) = run_once(benchmark, experiment)
    assert u_native == u_rebuilt, f"parity broke: {u_native} != {u_rebuilt}"

    rows = []
    speedups = {}
    for family, (t_loop, t_vec, nnz) in data.items():
        speedup = t_loop / max(t_vec, 1e-9)
        speedups[family] = speedup
        rows.append(
            [
                family,
                f"{t_loop:.2f} s",
                f"{t_vec * 1e3:.0f} ms",
                f"{speedup:.0f}x",
                f"{nnz / max(t_vec, 1e-9):,.0f} pairs/s",
            ]
        )
    stage_section(
        "E12",
        f"Vectorized instance generation vs the loop engine "
        f"({NUM_USERS} users × {NUM_STREAMS} streams, density {DENSITY})",
        "repro.instances.vectorized draws whole instances with batched "
        "numpy calls — one sparsity mask, one utility draw, one cost draw "
        "— and builds the IndexedInstance CSR arrays directly, removing "
        "the last per-(user, stream) Python loop from the sweep path.",
        ["family", "loop engine", "vectorized", "speedup", "throughput"],
        rows,
        notes="Array-native instances feed solve_many without building the "
        "dict model; lift() materializes it lazily and solves to the exact "
        "same utility (asserted here and in tests/test_vectorized.py).",
    )
    for family, speedup in speedups.items():
        assert speedup >= MIN_SPEEDUP, (
            f"{family}: vectorized only {speedup:.1f}x faster (need ≥ {MIN_SPEEDUP}x)"
        )
