"""E13 — array-native simulation engine vs. the dict event loop.

PR 1 compiled the solvers, PR 2 the generators; this experiment measures
the third wall-clock sink of a large dynamic study: drawing a Poisson
session trace and replaying it under an online admission policy (the E9
setting).  The dict engine pays an O(S) ``rng.choice`` per arrival, heap
churn per event and per-user Python loops per admission; the indexed
engine (``repro.sim.indexed``) draws the whole trace with batched numpy
calls and replays it as CSR-row scatter updates over one pre-sorted
event array.

Measured end-to-end (trace draw + replay, threshold policy) at
10 000 users × 1 000 streams × ~10 000 events.  Asserts:

- ≥ 10× end-to-end speedup, and
- report parity — on a *common* trace the two engines produce identical
  reports (utility·time, admits, violations, per-user utilities), the
  same contract ``tests/test_sim_indexed.py`` fuzzes.

Set ``REPRO_E13_SCALE=small`` for a quick smoke at 1/10 the scale (a
4× floor there — fixed per-event overhead dominates at small
populations; the 10× claim is asserted at the reference scale).
"""

from __future__ import annotations

import os

from repro.instances.vectorized import generate_unit_skew_smd
from repro.sim.indexed import IndexedVideoSim, draw_trace_arrays
from repro.sim.policies import ThresholdPolicy
from repro.sim.simulation import (
    ArrivalModel,
    VideoDistributionSim,
    draw_trace,
    simulate_trace,
)
from repro.util.timing import Timer

from benchmarks.common import run_once, stage_section

FULL_SCALE = os.environ.get("REPRO_E13_SCALE", "full") != "small"
NUM_USERS = 10_000 if FULL_SCALE else 1_000
NUM_STREAMS = 1_000 if FULL_SCALE else 200
NUM_EVENTS = 10_000 if FULL_SCALE else 1_000
DENSITY = 0.05
RATE = 10.0
HORIZON = NUM_EVENTS / RATE
MODEL = ArrivalModel(rate=RATE, mean_duration=HORIZON / 20.0, popularity_exponent=1.0)
#: ≥10× at the full reference scale (measured ~65×); the small smoke runs
#: at 1/10 the population where fixed per-event overhead dominates, so it
#: keeps a smaller floor.
MIN_SPEEDUP = 10.0 if FULL_SCALE else 4.0


def _timed(fn) -> "tuple[float, object]":
    timer = Timer()
    with timer:
        result = fn()
    return timer.elapsed, result


def bench_e13_simulation(benchmark):
    def experiment():
        instance = generate_unit_skew_smd(
            NUM_STREAMS, NUM_USERS, seed=42, density=DENSITY
        )
        instance.lift()  # build the dict model up front: both engines replay warm

        def run_dict():
            trace = draw_trace(instance, MODEL, HORIZON, seed=7, engine="dict")
            sim = VideoDistributionSim(instance, ThresholdPolicy())
            return trace, sim.run_trace(trace, HORIZON)

        def run_indexed():
            trace = draw_trace_arrays(instance, MODEL, HORIZON, seed=7)
            sim = IndexedVideoSim(instance, ThresholdPolicy())
            return trace, sim.run_trace(trace, HORIZON)

        t_dict, (trace_dict, report_dict) = _timed(run_dict)
        t_indexed, (trace_indexed, report_indexed) = _timed(run_indexed)

        # Parity on a *common* trace (the engines draw differently for the
        # same seed, so replay the dict-drawn trace under both engines).
        common = trace_dict[: min(len(trace_dict), 2_000)]
        parity_horizon = HORIZON
        first = simulate_trace(
            instance, ThresholdPolicy(), common, parity_horizon, engine="dict"
        )
        second = simulate_trace(
            instance, ThresholdPolicy(), common, parity_horizon, engine="indexed"
        )
        parity = (
            first.utility_time == second.utility_time
            and first.admitted == second.admitted
            and first.policy_violations == second.policy_violations
            and first.per_user_utility == second.per_user_utility
        )
        return {
            "t_dict": t_dict,
            "t_indexed": t_indexed,
            "events_dict": len(trace_dict),
            "events_indexed": len(trace_indexed),
            "admitted_dict": report_dict.admitted,
            "admitted_indexed": report_indexed.admitted,
            "parity": parity,
        }

    data = run_once(benchmark, experiment)
    assert data["parity"], "indexed engine diverged from the dict engine"

    speedup = data["t_dict"] / max(data["t_indexed"], 1e-9)
    rows = [
        [
            "threshold",
            f"{data['t_dict']:.2f} s ({data['events_dict']} events)",
            f"{data['t_indexed'] * 1e3:.0f} ms ({data['events_indexed']} events)",
            f"{speedup:.0f}x",
            f"{data['events_indexed'] / max(data['t_indexed'], 1e-9):,.0f} events/s",
        ]
    ]
    stage_section(
        "E13",
        f"Array-native simulation vs the dict event loop "
        f"({NUM_USERS} users × {NUM_STREAMS} streams × ~{NUM_EVENTS} events)",
        "repro.sim.indexed draws the Poisson/Zipf trace with batched numpy "
        "calls (one searchsorted for all stream choices) and replays it "
        "calendar-light: one pre-sorted event array, CSR-row admission "
        "checks, scatter-add accounting and columnar per-user utility "
        "integration. End-to-end time includes the trace draw.",
        ["policy", "dict engine", "indexed engine", "speedup", "throughput"],
        rows,
        notes="Reports are float-identical across engines on a common trace "
        "(asserted here and fuzzed in tests/test_sim_indexed.py); the trace "
        "*draws* differ per seed because the engines consume randomness in "
        "different orders.",
    )
    assert data["admitted_indexed"] > 0, "degenerate run: nothing was admitted"
    assert speedup >= MIN_SPEEDUP, (
        f"indexed sim only {speedup:.1f}x faster (need ≥ {MIN_SPEEDUP}x)"
    )
