"""A1 — ablations of this implementation's design choices.

Three choices DESIGN.md calls out:

1. **greedy-fill post-augmentation** (solver refinement): how much of the
   practical utility comes from reclaiming deliveries the worst-case
   machinery discards?
2. **lazy-heap greedy**: same output value as the scan version, how much
   work saved?
3. **DES load sweep**: where does the exponential-cost policy's
   selectivity start paying off against threshold admission?
"""

from __future__ import annotations

from repro.core.greedy import greedy, greedy_lazy
from repro.core.skew import classify_and_select
from repro.core.solver import greedy_fill, solve_mmd
from repro.instances.generators import random_smd
from repro.instances.workloads import iptv_neighborhood_workload
from repro.sim.policies import AllocatePolicy, ThresholdPolicy
from repro.sim.simulation import ArrivalModel, compare_policies

from benchmarks.common import run_once, stage_section


def bench_a1_greedy_fill_ablation(benchmark):
    def experiment():
        rows = []
        for alpha in (4.0, 64.0):
            for seed in range(3):
                inst = random_smd(12, 5, skew=alpha, seed=90_000 + seed)
                pure = classify_and_select(inst)
                filled = greedy_fill(inst, pure)
                rows.append(
                    {
                        "alpha": alpha,
                        "seed": seed,
                        "pure": pure.utility(),
                        "filled": filled.utility(),
                    }
                )
        return rows

    data = run_once(benchmark, experiment)
    rows = [
        [r["alpha"], r["seed"], r["pure"], r["filled"],
         f"{r['filled'] / max(r['pure'], 1e-12):.2f}x"]
        for r in data
    ]
    stage_section(
        "A1a",
        "Ablation — greedy-fill post-augmentation",
        "Classify-and-select keeps one skew class; greedy-fill reclaims any "
        "delivery still individually feasible. Fill never hurts (monotone) and "
        "typically recovers the utility the classification discarded — it is "
        "why the pipeline dominates threshold admission in practice (E8).",
        ["skew α", "seed", "pure §3 utility", "with fill", "gain"],
        rows,
    )
    for r in data:
        assert r["filled"] >= r["pure"] - 1e-9


def bench_a1_lazy_vs_scan(benchmark):
    def experiment():
        from repro.instances.generators import random_unit_skew_smd
        from repro.util.timing import Timer

        rows = []
        for num_streams in (100, 300):
            inst = random_unit_skew_smd(
                num_streams, num_streams // 10, seed=91_000 + num_streams, density=0.3
            )
            t_scan, t_lazy = Timer(), Timer()
            with t_scan:
                scan_value = greedy(inst).assignment.utility()
            with t_lazy:
                lazy_value = greedy_lazy(inst).assignment.utility()
            rows.append(
                {
                    "n": num_streams,
                    "scan_ms": t_scan.elapsed * 1000,
                    "lazy_ms": t_lazy.elapsed * 1000,
                    "same_value": abs(scan_value - lazy_value) < 1e-9,
                }
            )
        return rows

    data = run_once(benchmark, experiment)
    rows = [
        [r["n"], f"{r['scan_ms']:.1f} ms", f"{r['lazy_ms']:.1f} ms",
         "yes" if r["same_value"] else "NO"]
        for r in data
    ]
    stage_section(
        "A1b",
        "Ablation — lazy-heap vs. scan greedy",
        "The lazy variant exploits monotone residual decrease (Lemma 2.1's "
        "submodularity); it must produce the same utility.",
        ["streams", "scan time", "lazy time", "same utility"],
        rows,
    )
    for r in data:
        assert r["same_value"]


def bench_a1_load_sweep(benchmark):
    def experiment():
        inst = iptv_neighborhood_workload(num_channels=30, num_households=10, seed=42)
        rows = []
        for rate in (0.5, 2.0, 6.0):
            reports = compare_policies(
                inst,
                [ThresholdPolicy(), AllocatePolicy()],
                horizon=300.0,
                model=ArrivalModel(rate=rate, mean_duration=40.0),
                seed=17,
            )
            rows.append(
                {
                    "rate": rate,
                    "threshold": reports[0].utility_time,
                    "allocate": reports[1].utility_time,
                }
            )
        return rows

    data = run_once(benchmark, experiment)
    rows = [
        [r["rate"], r["threshold"], r["allocate"],
         f"{r['allocate'] / max(r['threshold'], 1e-12):.2f}x"]
        for r in data
    ]
    stage_section(
        "A1c",
        "Ablation — DES arrival-rate sweep (threshold vs. Allocate)",
        "At low load everything fits and blind admission is fine; as load "
        "grows, selectivity matters. The sweep locates the crossover.",
        ["arrival rate", "threshold utility·time", "allocate utility·time", "allocate/threshold"],
        rows,
    )
    assert data
