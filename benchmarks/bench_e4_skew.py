"""E4 — §3 classify-and-select across local skew α (Theorem 3.1).

Paper claim: arbitrary-skew SMD is solved within a factor
``2·t·ρ`` where ``t = 1+⌊log₂ α⌋`` skew classes and ``ρ = 3e/(e-1)`` is
the per-class greedy factor — i.e. the loss grows logarithmically in α.
"""

from __future__ import annotations

from repro.core.greedy import FEASIBLE_FACTOR
from repro.core.optimal import solve_exact_milp
from repro.core.skew import classify_and_select, num_skew_classes
from repro.core.solver import solve_smd
from repro.instances.generators import random_smd

from benchmarks.common import run_once, stage_section

ALPHAS = [1.0, 4.0, 16.0, 64.0, 256.0]
INSTANCES_PER_ALPHA = 6


def bench_e4_skew_classes(benchmark):
    def experiment():
        results = []
        for alpha in ALPHAS:
            worst_pure = 1.0
            worst_solver = 1.0
            measured_alpha = 1.0
            classes_seen = 0
            for i in range(INSTANCES_PER_ALPHA):
                inst = random_smd(
                    num_streams=8 + i,
                    num_users=3 + i % 3,
                    skew=alpha,
                    seed=40_000 + int(alpha) * 100 + i,
                )
                opt = solve_exact_milp(inst).utility
                if opt == 0:
                    continue
                pure = classify_and_select(inst).utility()
                solver = solve_smd(inst).utility
                worst_pure = max(worst_pure, opt / max(pure, 1e-12))
                worst_solver = max(worst_solver, opt / max(solver, 1e-12))
                measured_alpha = max(measured_alpha, inst.local_skew())
                classes_seen = max(
                    classes_seen,
                    num_skew_classes(max(inst.local_skew(), 1.0))
                    + (1 if inst.has_free_pairs() else 0),
                )
            bound = 2.0 * max(classes_seen, 1) * FEASIBLE_FACTOR
            results.append(
                {
                    "alpha": alpha,
                    "measured_alpha": measured_alpha,
                    "classes": classes_seen,
                    "worst_pure": worst_pure,
                    "worst_solver": worst_solver,
                    "bound": bound,
                }
            )
        return results

    results = run_once(benchmark, experiment)
    rows = [
        [
            r["alpha"],
            r["measured_alpha"],
            r["classes"],
            r["worst_pure"],
            r["worst_solver"],
            r["bound"],
            "yes" if r["worst_pure"] <= r["bound"] + 1e-9 else "NO",
        ]
        for r in results
    ]
    stage_section(
        "E4",
        "Classify-and-select across local skew (Theorem 3.1)",
        "An O(log 2α)-factor loss: the bound is 2·t·(3e/(e-1)) with "
        "t = 1+⌊log₂ α⌋ classes (+1 free class when zero-load pairs exist). "
        "'pure §3' is classify-and-select alone; 'solver' adds the monotone "
        "greedy-fill refinement.",
        ["target α", "measured α", "classes t", "worst ratio (pure §3)",
         "worst ratio (solver)", "paper bound", "within bound"],
        rows,
        notes="The bound grows with log α while measured ratios stay nearly "
        "flat — the classification loss is a worst-case artifact on random "
        "instances, exactly what the theory predicts (bounds, not typical case).",
    )
    for r in results:
        assert r["worst_pure"] <= r["bound"] + 1e-9
        assert r["worst_solver"] <= r["worst_pure"] + 1e-9
