"""E15 — chunked event-dispatch kernel vs. the per-event indexed engine.

PR 3's indexed engine removed the per-event *numpy* inner loops, but its
driver still pays one Python dispatch per event — two million for a
million-session trace, although in a production-shaped workload (a
modest catalog under a large proposal volume, sessions spanning many
inter-arrival times) the overwhelming majority of those events decide
nothing: the proposed stream is already multicast, or the departing
proposal was never admitted.  The chunked kernel
(``repro.sim.kernel.ChunkedVideoSim``, ``engine="chunked"``) skips the
no-decision runs wholesale and touches Python only at policy decisions
and live departures.

Measured on replay alone (both engines replay the *same* pre-drawn
array trace; simulators constructed outside the timer) at
10 000 users × 200 streams × ~10⁶ events.  Asserts:

- ≥ 5× replay speedup for the threshold policy (the ISSUE-5 floor;
  measured ~6–7×),
- ≥ 3× for Allocate, whose per-offer work is heavier but whose
  exponential charges are now maintained incrementally
  (``repro.core.allocate``), and
- report parity — the kernel's ``SimulationReport`` equals the indexed
  engine's float-for-float on the common trace, the contract
  ``tests/test_sim_indexed.py`` fuzzes across all three engines.

Set ``REPRO_E15_SCALE=small`` for a CI smoke at ~5 · 10⁴ events, where
fixed numpy costs dominate and the floors drop accordingly (the 5×
claim is asserted at the reference scale).
"""

from __future__ import annotations

import os

from repro.instances.vectorized import generate_unit_skew_smd
from repro.sim.indexed import IndexedVideoSim, draw_trace_arrays
from repro.sim.kernel import ChunkedVideoSim
from repro.sim.policies import AllocatePolicy, ThresholdPolicy
from repro.sim.simulation import ArrivalModel
from repro.util.timing import Timer

from benchmarks.common import run_once, stage_section

FULL_SCALE = os.environ.get("REPRO_E15_SCALE", "full") != "small"
NUM_USERS = 10_000 if FULL_SCALE else 1_000
NUM_STREAMS = 200 if FULL_SCALE else 100
NUM_EVENTS = 1_000_000 if FULL_SCALE else 50_000
DENSITY = 0.01 if FULL_SCALE else 0.02
RATE = 100.0
HORIZON = NUM_EVENTS / RATE
#: Sessions span many per-stream inter-arrival gaps, so most proposals
#: land on an already-carried stream — the regime the kernel targets.
MODEL = ArrivalModel(rate=RATE, mean_duration=HORIZON / 2.0, popularity_exponent=1.0)
#: Per-policy speedup floors (full scale measured ~6–7× / ~4.5×; the
#: small CI smoke runs at 1/20 the trace volume where the one-off numpy
#: grouping pass weighs more, so it keeps smaller floors).
MIN_SPEEDUP = {
    "threshold": 5.0 if FULL_SCALE else 1.5,
    "allocate": 3.0 if FULL_SCALE else 1.2,
}


def _timed(fn) -> "tuple[float, object]":
    timer = Timer()
    with timer:
        result = fn()
    return timer.elapsed, result


def _reports_identical(first, second) -> bool:
    """Float-identical SimulationReports (the cross-engine contract)."""
    return (
        first.utility_time == second.utility_time
        and first.offered == second.offered
        and first.admitted == second.admitted
        and first.deliveries == second.deliveries
        and first.policy_violations == second.policy_violations
        and first.per_user_utility == second.per_user_utility
        and first.server_utilization == second.server_utilization
        and first.peak_server_utilization == second.peak_server_utilization
    )


def bench_e15_kernel(benchmark):
    def experiment():
        instance = generate_unit_skew_smd(
            NUM_STREAMS, NUM_USERS, seed=42, density=DENSITY, budget_fraction=3.0
        )
        trace = draw_trace_arrays(instance, MODEL, HORIZON, seed=7)
        results = {}
        for name, factory in (
            ("threshold", ThresholdPolicy),
            ("allocate", AllocatePolicy),
        ):
            chunked_sim = ChunkedVideoSim(instance, factory())
            indexed_sim = IndexedVideoSim(instance, factory())
            t_chunked, chunked_report = _timed(
                lambda: chunked_sim.run_trace(trace, HORIZON)
            )
            t_indexed, indexed_report = _timed(
                lambda: indexed_sim.run_trace(trace, HORIZON)
            )
            results[name] = {
                "t_chunked": t_chunked,
                "t_indexed": t_indexed,
                "offered": chunked_report.offered,
                "admitted": chunked_report.admitted,
                "parity": _reports_identical(chunked_report, indexed_report),
            }
        return {"events": len(trace), "policies": results}

    data = run_once(benchmark, experiment)

    rows = []
    for name, r in data["policies"].items():
        speedup = r["t_indexed"] / max(r["t_chunked"], 1e-9)
        rows.append(
            [
                name,
                f"{r['t_indexed']:.2f} s",
                f"{r['t_chunked'] * 1e3:.0f} ms",
                f"{speedup:.1f}x",
                f"{r['offered']:,} ({r['offered'] / max(data['events'], 1):.2%})",
                f"{data['events'] / max(r['t_chunked'], 1e-9):,.0f} events/s",
            ]
        )
    stage_section(
        "E15",
        f"Chunked event-dispatch kernel vs the per-event indexed engine "
        f"({NUM_USERS} users × {NUM_STREAMS} streams × ~{NUM_EVENTS:,} events)",
        "repro.sim.kernel replays the same pre-drawn array trace touching "
        "Python only at policy decisions and live departures: per-stream "
        "arrival groups plus a heap of next-interesting (time, kind, "
        "position) keys skip every no-decision run wholesale, and Allocate's "
        "exponential charges update incrementally on commit/release instead "
        "of re-exponentiating the interested row per offer.  Replay time "
        "only (the trace is drawn once and shared).",
        ["policy", "indexed engine", "chunked kernel", "speedup",
         "decisions (of events)", "throughput"],
        rows,
        notes="Reports are float-identical across engines on the common "
        "trace (asserted here and fuzzed across dict/indexed/chunked in "
        "tests/test_sim_indexed.py).  The kernel's win scales with the "
        "no-decision fraction; rejection-heavy or tiny-session workloads "
        "degrade gracefully toward indexed-engine cost.",
    )
    for name, r in data["policies"].items():
        assert r["parity"], f"chunked kernel diverged from indexed ({name})"
        assert r["admitted"] > 0, f"degenerate run: nothing admitted ({name})"
        speedup = r["t_indexed"] / max(r["t_chunked"], 1e-9)
        assert speedup >= MIN_SPEEDUP[name], (
            f"chunked kernel only {speedup:.1f}x faster than indexed for "
            f"{name} (need ≥ {MIN_SPEEDUP[name]}x)"
        )
