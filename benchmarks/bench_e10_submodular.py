"""E10 — §4.1's closing remark: submodular maximization under m knapsacks.

Paper claim: the normalize-and-sum reduction plus Sviridenko's algorithm
maximizes any nonnegative nondecreasing submodular function under m
budget constraints with an O(m) loss — explicitly (2m-1)·e/(e-1) in this
implementation.
"""

from __future__ import annotations

import itertools
import math

import numpy as np

from repro.core.submodular import multi_budget_submodular
from repro.util.rng import ensure_rng

from benchmarks.common import run_once, stage_section

E_FACTOR = math.e / (math.e - 1.0)


def _random_coverage(rng, num_items=8, num_elements=14):
    items = {}
    for i in range(num_items):
        size = int(rng.integers(1, 5))
        items[f"x{i}"] = set(
            int(e) for e in rng.choice(num_elements, size=size, replace=False)
        )

    def fn(selected: frozenset) -> float:
        covered = set()
        for item in selected:
            covered |= items[item]
        return float(len(covered))

    return items, fn


def _exhaustive_optimum(fn, ground, vectors, budgets):
    best = 0.0
    for r in range(len(ground) + 1):
        for combo in itertools.combinations(ground, r):
            if all(
                sum(vectors[i][j] for i in combo) <= budgets[j] + 1e-12
                for j in range(len(budgets))
            ):
                best = max(best, fn(frozenset(combo)))
    return best


def bench_e10_multi_budget_submodular(benchmark):
    def experiment():
        results = []
        for m in (1, 2, 3):
            worst = 1.0
            for trial in range(5):
                rng = ensure_rng(70_000 + m * 100 + trial)
                items, fn = _random_coverage(rng)
                ground = sorted(items)
                vectors = {
                    item: tuple(float(rng.uniform(0.5, 3.0)) for _ in range(m))
                    for item in ground
                }
                budgets = tuple(
                    max(
                        max(vectors[item][j] for item in ground),
                        0.4 * sum(vectors[item][j] for item in ground),
                    )
                    for j in range(m)
                )
                opt = _exhaustive_optimum(fn, ground, vectors, budgets)
                if opt == 0:
                    continue
                chosen = multi_budget_submodular(fn, ground, vectors, budgets, depth=2)
                for j in range(m):
                    used = sum(vectors[item][j] for item in chosen)
                    assert used <= budgets[j] * (1 + 1e-9)
                worst = max(worst, opt / max(fn(chosen), 1e-12))
            bound = (2 * m - 1) * E_FACTOR
            results.append({"m": m, "worst": worst, "bound": bound})
        return results

    results = run_once(benchmark, experiment)
    rows = [
        [r["m"], 5, r["worst"], r["bound"],
         "yes" if r["worst"] <= r["bound"] + 1e-9 else "NO"]
        for r in results
    ]
    stage_section(
        "E10",
        "Submodular maximization under m knapsacks (§4.1 remark)",
        "Reduce m budgets to one (normalize and sum), run the partial-"
        "enumeration greedy, split by the Fig. 3 decomposition, keep the best "
        "group: an O(m)-approximation — explicitly (2m-1)·e/(e-1). Measured on "
        "random weighted-coverage functions vs. exhaustive optima.",
        ["m", "trials", "worst ratio", "bound (2m-1)·e/(e-1)", "within bound"],
        rows,
    )
    for r in results:
        assert r["worst"] <= r["bound"] + 1e-9
