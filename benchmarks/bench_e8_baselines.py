"""E8 — §1 motivation: utility-aware selection vs. threshold admission.

Paper claim (introduction): deployed threshold-based admission control
"ignores the possibly very different utilities of different streams" —
the main difficulty the paper tackles.  This experiment quantifies the
gap on realistic Zipf-utility workloads, and exhibits the unbounded
adversarial gap.
"""

from __future__ import annotations

from repro.core.baselines import (
    density_greedy,
    random_admission,
    threshold_admission,
    utility_greedy,
)
from repro.core.instance import unit_skew_instance
from repro.core.optimal import lp_upper_bound, solve_exact_milp
from repro.core.solver import solve_mmd
from repro.instances.workloads import iptv_neighborhood_workload

from benchmarks.common import run_once, stage_section

SEEDS = [0, 1, 2, 3, 4]


def bench_e8_baselines(benchmark):
    def experiment():
        totals: dict[str, float] = {}
        bound_total = 0.0
        for seed in SEEDS:
            inst = iptv_neighborhood_workload(
                num_channels=25, num_households=12, seed=seed
            )
            bound_total += lp_upper_bound(inst)
            values = {
                "paper pipeline (solve_mmd)": solve_mmd(inst).utility,
                "threshold admission (deployed)": threshold_admission(inst).utility(),
                "utility-greedy": utility_greedy(inst).utility(),
                "density-greedy (static)": density_greedy(inst).utility(),
                "random admission": random_admission(inst, seed=seed).utility(),
            }
            for name, value in values.items():
                totals[name] = totals.get(name, 0.0) + value
        # Adversarial gap: junk stream arrives first and blocks the gem.
        adversarial = unit_skew_instance(
            {"junk": 9.0, "gem": 9.0},
            budget=10.0,
            utilities={"u": {"junk": 1.0, "gem": 1000.0}},
            utility_caps={"u": 2000.0},
        )
        adv_threshold = threshold_admission(adversarial, order=["junk", "gem"]).utility()
        adv_opt = solve_exact_milp(adversarial).utility
        return {
            "totals": totals,
            "lp_bound": bound_total,
            "adv_gap": adv_opt / max(adv_threshold, 1e-12),
        }

    data = run_once(benchmark, experiment)
    totals = data["totals"]
    ours = totals["paper pipeline (solve_mmd)"]
    rows = []
    for name, value in sorted(totals.items(), key=lambda kv: -kv[1]):
        rows.append(
            [name, value, f"{100 * value / data['lp_bound']:.1f}%",
             f"{ours / max(value, 1e-12):.2f}x"]
        )
    stage_section(
        "E8",
        "Utility-aware selection vs. threshold admission (§1 motivation)",
        "The paper argues deployed threshold admission is naïve because it is "
        "utility-blind. Totals over 5 Zipf-utility IPTV workloads (25 channels, "
        "12 households, tight egress budget); '% of LP bound' normalizes by the "
        "fractional upper bound. The adversarial instance shows the gap is "
        "unbounded in the worst case.",
        ["policy", "total utility", "% of LP bound", "pipeline advantage"],
        rows,
        notes=f"Adversarial threshold gap (junk-blocks-gem instance): "
        f"**{data['adv_gap']:.0f}x** — matching the paper's point that no "
        "threshold rule bounds the loss.",
    )
    assert ours >= totals["threshold admission (deployed)"] - 1e-9
    assert data["adv_gap"] >= 100.0


def bench_e8_margin_sweep(benchmark):
    """Secondary: threshold's best safety margin still loses."""

    def experiment():
        inst = iptv_neighborhood_workload(num_channels=25, num_households=12, seed=9)
        ours = solve_mmd(inst).utility
        margins = {}
        for margin in (0.5, 0.7, 0.9, 1.0):
            margins[margin] = threshold_admission(inst, margin=margin).utility()
        return {"ours": ours, "margins": margins}

    data = run_once(benchmark, experiment)
    rows = [
        [f"threshold margin={m:g}", v, f"{data['ours'] / max(v, 1e-12):.2f}x"]
        for m, v in data["margins"].items()
    ]
    rows.append(["paper pipeline", data["ours"], "1.00x"])
    stage_section(
        "E8b",
        "Threshold margin sweep (§1, refs [4,5])",
        "The choice of safety margin can be sophisticated; the paper's point "
        "is that no margin fixes utility-blindness. Best margin vs. pipeline.",
        ["policy", "utility", "pipeline advantage"],
        rows,
    )
    best_margin = max(data["margins"].values())
    assert data["ours"] >= best_margin - 1e-9
