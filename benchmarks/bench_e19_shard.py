"""E19 — group-commit WAL batching and sharded admission workers.

Measures the two scaling stages this service grew on top of E18's
one-fsync-per-decision baseline, directly against the commit pipeline
(:meth:`~repro.serve.service.AdmissionCore.execute_batch` — the HTTP
transport would only add per-request overhead that batching cannot
amortize on a single core):

- **group commit** — the identical decision sequence is committed at
  batch sizes 1 (the E18 discipline), 16 and 64; every batch is one
  contiguous WAL write and **one** fsync, acknowledgements strictly
  after the shared sync.  The batch-size scaling curve is reported, the
  fsync counts are asserted against the histogram, and the run fails if
  the best batched throughput is under **3×** the fsync'd baseline;
- **sharded workers** — the same load partitioned by stream hash
  across 4 :class:`~repro.serve.shard.ShardedAdmissionCore` workers,
  each a thread owning its own core + WAL + snapshots, committing its
  shard's subsequence in batches.  On a multi-core box the independent
  fsync pipelines stack on top of group commit; on the single-core CI
  container the phase still proves the partitioned layout loses nothing
  (throughput is asserted ≥ the batched single-writer only when more
  than one CPU is visible);
- **restore fidelity** — the batched directory restores bit-identically
  (digest equality against the batch=1 run: same decision sequence,
  same state), and the sharded directory barrier-snapshots and restores
  to its own merged digest.

Set ``REPRO_E19_SCALE=small`` for a CI smoke at ~8× fewer decisions
(same assertions, including the 3× floor — fsync amortization does not
need volume to show).
"""

from __future__ import annotations

import os
import tempfile
import threading
from pathlib import Path

from repro.instances.workloads import small_streams_workload
from repro.serve.service import AdmissionCore, ServeConfig
from repro.serve.shard import ShardedAdmissionCore
from repro.util.timing import Timer

from benchmarks.common import run_once, stage_json, stage_section

FULL_SCALE = os.environ.get("REPRO_E19_SCALE", "full") != "small"
#: Offer/release pairs per phase (every phase replays the same ops).
NUM_PAIRS = 4_000 if FULL_SCALE else 500
#: Group-commit batch sizes swept (1 = the E18 baseline discipline).
BATCH_SIZES = (1, 16, 64)
#: Workers in the sharded phase.
NUM_SHARDS = 4
#: Catalog/population of the served workload.
NUM_STREAMS, NUM_USERS = (64, 32) if FULL_SCALE else (32, 16)
#: CI perf floor: best batched throughput over the batch=1 baseline.
MIN_BATCH_SPEEDUP = 3.0
#: Snapshots stay out of the measured window.
SNAPSHOT_EVERY = 1_000_000


def _ops() -> "list[tuple[str, int, None]]":
    """The shared decision sequence: offer/release pairs over the catalog.

    Deterministic and state-independent (releases of rejected offers
    come back as in-batch ``ValidationError`` results without touching
    the allocator), so every phase executes the identical sequence and
    the batch=1 / batch=N digests must match exactly.
    """
    ops: "list[tuple[str, int, None]]" = []
    for i in range(NUM_PAIRS):
        k = i % NUM_STREAMS
        ops.append(("offer", k, None))
        ops.append(("release", k, None))
    return ops


def _drive(core, ops, batch: int) -> None:
    """Commit ``ops`` through ``core`` in group-commit batches of ``batch``."""
    for start in range(0, len(ops), batch):
        core.execute_batch(ops[start : start + batch])


def _sync_count(core: AdmissionCore) -> int:
    """Fsyncs the core's WAL sink has issued."""
    return core.wal.sink.sync_count


def _batched_phase(
    instance, root: Path, ops, batch: int
) -> "dict[str, object]":
    """One single-writer run at a given batch size; returns its numbers."""
    config = ServeConfig(snapshot_every=SNAPSHOT_EVERY, commit_batch=batch)
    core = AdmissionCore.create(instance, root, config=config)
    timer = Timer()
    with timer:
        _drive(core, ops, batch)
    result = {
        "batch": batch,
        "records": core.next_seq,
        "elapsed": timer.elapsed,
        "throughput": core.next_seq / max(timer.elapsed, 1e-9),
        "fsyncs": _sync_count(core),
        "digest": core.state_digest(),
    }
    core.close()
    return result


def _sharded_phase(instance, root: Path, ops, batch: int) -> "dict[str, object]":
    """The 4-shard run: one thread per shard, each batching its subsequence."""
    config = ServeConfig(snapshot_every=SNAPSHOT_EVERY, commit_batch=batch)
    core = ShardedAdmissionCore.create(
        instance, root, shards=NUM_SHARDS, config=config
    )
    by_shard: "list[list]" = [[] for _ in range(NUM_SHARDS)]
    for op in ops:
        by_shard[core.route(op[1])].append(op)
    threads = [
        threading.Thread(target=_drive, args=(core.cores[s], by_shard[s], batch))
        for s in range(NUM_SHARDS)
    ]
    timer = Timer()
    with timer:
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
    core.barrier_snapshot()
    result = {
        "shards": NUM_SHARDS,
        "records": core.next_seq,
        "shard_records": core.next_seqs(),
        "elapsed": timer.elapsed,
        "throughput": core.next_seq / max(timer.elapsed, 1e-9),
        "digest": core.state_digest(),
    }
    core.close()
    restored = ShardedAdmissionCore.restore(root)
    result["restore_digest_ok"] = restored.state_digest() == result["digest"]
    restored.close()
    return result


def bench_e19_shard(benchmark):
    def experiment():
        instance = small_streams_workload(
            num_channels=NUM_STREAMS, num_households=NUM_USERS, seed=7
        )
        ops = _ops()
        with tempfile.TemporaryDirectory(prefix="repro-e19-") as tmp:
            tmp = Path(tmp)
            curve = [
                _batched_phase(instance, tmp / f"b{batch:03d}", ops, batch)
                for batch in BATCH_SIZES
            ]
            # Restore fidelity of the batched directory: group commit
            # changes WAL *timing*, never WAL *content*.
            restored = AdmissionCore.restore(tmp / f"b{BATCH_SIZES[-1]:03d}")
            batched_restore_ok = restored.state_digest() == curve[-1]["digest"]
            restored.close()
            sharded = _sharded_phase(instance, tmp / "shards", ops, BATCH_SIZES[-1])
        return {"curve": curve, "sharded": sharded,
                "batched_restore_ok": batched_restore_ok,
                "cpus": os.cpu_count() or 1}

    data = run_once(benchmark, experiment)
    curve = data["curve"]
    baseline = curve[0]
    best = max(curve[1:], key=lambda r: r["throughput"])

    # Same decision sequence ⇒ bit-identical state at every batch size.
    assert all(r["digest"] == baseline["digest"] for r in curve), (
        "group commit changed the decision state"
    )
    assert all(r["records"] == baseline["records"] for r in curve)
    assert data["batched_restore_ok"], "batched directory restored differently"
    assert data["sharded"]["restore_digest_ok"], (
        "sharded barrier restore diverged from the live merged digest"
    )
    # One fsync per decision at batch=1; one per batch afterwards.
    assert baseline["fsyncs"] == baseline["records"]
    for r in curve[1:]:
        ceiling = -(-r["records"] // r["batch"])  # ceil division
        assert r["fsyncs"] <= ceiling, (
            f"batch={r['batch']} issued {r['fsyncs']} fsyncs for "
            f"{r['records']} records (expected <= {ceiling})"
        )

    speedup = best["throughput"] / max(baseline["throughput"], 1e-9)
    assert speedup >= MIN_BATCH_SPEEDUP, (
        f"group commit at batch={best['batch']} reached only "
        f"{speedup:.2f}x the fsync'd baseline "
        f"({best['throughput']:,.0f}/s vs {baseline['throughput']:,.0f}/s); "
        f"the floor is {MIN_BATCH_SPEEDUP}x"
    )
    if data["cpus"] > 1:
        assert data["sharded"]["throughput"] >= best["throughput"], (
            f"{NUM_SHARDS} shards ({data['sharded']['throughput']:,.0f}/s) "
            f"fell below the single-writer batched rate "
            f"({best['throughput']:,.0f}/s) despite {data['cpus']} CPUs"
        )

    rows = [
        [f"batch={r['batch']}", f"{r['records']:,}", f"{r['fsyncs']:,}",
         f"{r['throughput']:,.0f}/s",
         f"{r['throughput'] / baseline['throughput']:.2f}x"]
        for r in curve
    ]
    rows.append([
        f"{NUM_SHARDS} shards (batch={BATCH_SIZES[-1]})",
        f"{data['sharded']['records']:,}",
        "-",
        f"{data['sharded']['throughput']:,.0f}/s",
        f"{data['sharded']['throughput'] / baseline['throughput']:.2f}x",
    ])
    stage_section(
        "E19",
        f"Group commit + sharding: {baseline['records']:,} fsync'd "
        f"decisions, batch curve {list(BATCH_SIZES)} and "
        f"{NUM_SHARDS}-shard fan-out",
        "The E18 service commits one WAL fsync per decision; E19 drains "
        "batches through one contiguous write + one shared fsync "
        "(acknowledgements strictly after the sync), then partitions "
        "the allocator by stream hash across shard workers that each "
        "own a core + WAL + snapshots behind a routing front door with "
        "cross-shard barrier snapshots.  Digests are asserted "
        "bit-identical across every batch size and across restore.",
        ["configuration", "records", "fsyncs", "throughput",
         "vs batch=1"],
        rows,
        notes=f"Perf floor (CI-gated): best batched throughput >= "
        f"{MIN_BATCH_SPEEDUP}x the batch=1 baseline — measured "
        f"{speedup:.2f}x at batch={best['batch']} on this run.  The "
        f"sharded row ran on {data['cpus']} visible CPU(s); with one "
        "core the independent fsync pipelines serialize, so the "
        "shards>=batched assertion is gated on cpu_count()>1.  The "
        "chaos suite (tests/test_serve_chaos.py) covers kill-mid-batch "
        "prefix durability and sharded digest equality vs unsharded "
        "replay.",
    )
    stage_json(
        "E19",
        {
            "scale": "full" if FULL_SCALE else "small",
            "curve": [
                {k: r[k] for k in
                 ("batch", "records", "fsyncs", "elapsed", "throughput")}
                for r in curve
            ],
            "best_batch": best["batch"],
            "batched_speedup": speedup,
            "sharded": {k: data["sharded"][k] for k in
                        ("shards", "records", "shard_records", "elapsed",
                         "throughput", "restore_digest_ok")},
            "cpus": data["cpus"],
        },
    )
