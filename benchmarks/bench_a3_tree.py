"""A3 — how much does the paper's two-level model give away on deep trees?

The paper constrains the server egress and each access link — exactly a
two-level distribution tree.  Real plants have interior links (fiber
nodes, service groups).  This ablation solves the *projected* two-level
MMD and checks the solution against the real tree: violated interior
links measure the modeling gap; the tree-aware greedy shows what
respecting them costs in utility.
"""

from __future__ import annotations

import math

from repro.core.instance import MMDInstance, Stream, User
from repro.core.solver import solve_mmd
from repro.network.admission import tree_greedy, tree_threshold
from repro.network.multicast import (
    assignment_is_tree_feasible,
    link_loads,
    project_to_mmd,
)
from repro.network.topology import build_plant
from repro.util.rng import ensure_rng

from benchmarks.common import run_once, stage_section


def _setup(seed: int):
    tree = build_plant(3, 2, 4, seed=seed, server_capacity=400.0)
    rng = ensure_rng(seed + 1)
    streams = []
    for i in range(20):
        rate = float(rng.choice([2.5, 8.0, 16.0], p=[0.4, 0.5, 0.1]))
        streams.append(Stream(f"ch{i:02d}", (rate,), attrs={"bitrate": rate}))
    utilities = {}
    for idx, uid in enumerate(tree.leaves):
        prefs = {}
        for i in range(20):
            if rng.random() < 0.5:
                prefs[f"ch{i:02d}"] = float(rng.uniform(1.0, 10.0) / (1 + i * 0.2))
        utilities[uid] = prefs
    return tree, streams, utilities


def bench_a3_tree_vs_projection(benchmark):
    def experiment():
        results = []
        for seed in (201, 202, 203):
            tree, streams, utilities = _setup(seed)
            projected = project_to_mmd(tree, streams, utilities)
            mmd_solution = solve_mmd(projected).assignment
            tree_ok = assignment_is_tree_feasible(tree, projected, mmd_solution)
            overloaded = 0
            loads = link_loads(tree, projected, mmd_solution)
            for edge, load in loads.items():
                capacity = tree.capacity(edge)
                if not math.isinf(capacity) and load > capacity * (1 + 1e-9):
                    overloaded += 1
            greedy_tree = tree_greedy(tree, projected)
            threshold_tree = tree_threshold(tree, projected)
            results.append(
                {
                    "seed": seed,
                    "mmd_utility": mmd_solution.utility(),
                    "tree_feasible": tree_ok,
                    "overloaded_links": overloaded,
                    "tree_greedy": greedy_tree.utility(),
                    "tree_threshold": threshold_tree.utility(),
                }
            )
        return results

    results = run_once(benchmark, experiment)
    rows = [
        [
            r["seed"],
            r["mmd_utility"],
            "yes" if r["tree_feasible"] else "NO",
            r["overloaded_links"],
            r["tree_greedy"],
            r["tree_threshold"],
        ]
        for r in results
    ]
    stage_section(
        "A3",
        "Ablation — two-level model vs. real distribution trees",
        "The paper's MMD model is the depth-2 special case of a capacitated "
        "multicast tree (root edge = server budget, access edge = user "
        "capacity). Solving the two-level projection of a depth-4 HFC plant "
        "and replaying the answer on the real tree shows whether interior "
        "links (fiber nodes, service groups) get overloaded; the tree-aware "
        "greedy respects them by construction.",
        ["seed", "two-level MMD utility", "tree-feasible?",
         "overloaded interior links", "tree-greedy utility", "tree-threshold utility"],
        rows,
        notes="Tree-greedy's utility is directly comparable to the two-level "
        "solution only when the latter is tree-feasible; otherwise the "
        "two-level number is an over-promise the plant cannot deliver.",
    )
    for r in results:
        # Tree-aware algorithms are feasible by construction.
        assert r["tree_greedy"] >= 0
    assert results
