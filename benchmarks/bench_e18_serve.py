"""E18 — live admission service: throughput, recovery, overload shedding.

Benchmarks the crash-safe serving layer (``repro.serve``) end to end,
against a real ``repro serve run`` subprocess speaking HTTP:

- **sustained decision throughput** — a pool of persistent
  :class:`~repro.serve.client.ServeClient` connections drives
  offer/release pairs through the single-writer core (every decision
  WAL-appended and fsync'd before its acknowledgement); reports
  offers/sec plus p50/p99 acknowledged-decision latency;
- **kill-and-restore recovery** — the loaded server is SIGKILL'd dead
  and :meth:`~repro.serve.service.AdmissionCore.restore` is timed
  rebuilding the exact allocator state (torn WAL tail repaired,
  snapshot loaded, tail replayed, digest verified against an
  independent replay of the surviving records);
- **graceful overload degradation** — a second server with a small
  admission queue is offered ~4× its measured closed-loop capacity;
  the shed path (immediate 503 + Retry-After once queue depth or
  estimated wait crosses the limit) must engage while the p99 latency
  of the requests actually *served* stays bounded by queue depth, not
  by the offered load.

Set ``REPRO_E18_SCALE=small`` for a CI smoke at ~10× fewer decisions
(same assertions, looser latency ceiling).
"""

from __future__ import annotations

import asyncio
import json
import os
import signal
import subprocess
import sys
import tempfile
import time
from pathlib import Path

from repro.core.allocate import OnlineAllocator
from repro.exceptions import ValidationError
from repro.serve.client import BackoffPolicy, ServeClient
from repro.serve.service import AdmissionCore, ServeFailure
from repro.util.timing import Timer

from benchmarks.common import run_once, stage_json, stage_section

FULL_SCALE = os.environ.get("REPRO_E18_SCALE", "full") != "small"
#: Offer/release pairs driven through the WAL in the throughput phase.
NUM_PAIRS = 2_000 if FULL_SCALE else 200
#: Persistent client connections in the throughput phase.
WORKERS = 4
#: Client connections hammering the overload phase (vs max_pending=4
#: server-side: far more arrivals than the queue admits).
OVERLOAD_WORKERS = 16
#: Offer/release pairs attempted per overload worker.
OVERLOAD_PAIRS = 60 if FULL_SCALE else 20
#: Catalog/population of the served workload.
NUM_STREAMS, NUM_USERS = (64, 32) if FULL_SCALE else (32, 16)
#: Served-request p99 ceiling in the overload phase (seconds): queue
#: depth (4) × a generous per-decision budget, NOT a function of the
#: offered load — that boundedness is the shedding claim.
P99_CEILING = 1.0 if FULL_SCALE else 3.0
SNAPSHOT_EVERY = 512


def _percentile(samples: "list[float]", q: float) -> float:
    """Nearest-rank percentile (samples need not be sorted)."""
    ordered = sorted(samples)
    if not ordered:
        return 0.0
    rank = min(len(ordered) - 1, int(round(q * (len(ordered) - 1))))
    return ordered[rank]


def _spawn_server(root: Path, *extra: str) -> "tuple[subprocess.Popen, int]":
    """Start ``repro serve run`` on an ephemeral port; returns (proc, port)."""
    env = dict(os.environ)
    env["PYTHONPATH"] = str(Path(__file__).resolve().parent.parent / "src")
    proc = subprocess.Popen(
        [sys.executable, "-m", "repro", "serve", "run",
         "--dir", str(root),
         "--workload", "small-streams",
         "--streams", str(NUM_STREAMS), "--users", str(NUM_USERS),
         "--seed", "7", "--snapshot-every", str(SNAPSHOT_EVERY),
         *extra],
        stdout=subprocess.PIPE, env=env, text=True,
    )
    started = json.loads(proc.stdout.readline())
    return proc, int(started["port"])


async def _drive_pairs(
    port: int, worker: int, pairs: int, stride: int, latencies: "list[float]"
) -> int:
    """One closed-loop worker: offer/release pairs over its own streams."""
    client = ServeClient("127.0.0.1", port, seed=worker)
    done = 0
    try:
        for i in range(pairs):
            k = worker + stride * (i % (NUM_STREAMS // stride))
            t0 = time.perf_counter()
            response = await client.offer(k)
            latencies.append(time.perf_counter() - t0)
            if response["admitted"]:
                t0 = time.perf_counter()
                await client.release(k)
                latencies.append(time.perf_counter() - t0)
            done += 1
    finally:
        await client.close()
    return done


async def _overload_worker(
    port: int, worker: int, served: "list[float]", counts: "dict[str, int]"
) -> None:
    """A no-retry worker: every 503 is counted as shed, not retried."""
    client = ServeClient(
        "127.0.0.1", port, seed=100 + worker,
        backoff=BackoffPolicy(retries=0),
    )
    active = False
    k = worker % NUM_STREAMS
    try:
        for _ in range(OVERLOAD_PAIRS * 2):
            t0 = time.perf_counter()
            try:
                if active:
                    await client.release(k)
                    active = False
                else:
                    response = await client.offer(k)
                    active = bool(response["admitted"])
                served.append(time.perf_counter() - t0)
                counts["served"] += 1
            except ServeFailure:
                counts["shed"] += 1
            except ValidationError:
                counts["rejected"] += 1
    finally:
        await client.close()


def _verify_restore(root: Path) -> "dict[str, object]":
    """Time a restore and check its digest against an independent replay."""
    timer = Timer()
    with timer:
        restored = AdmissionCore.restore(root)
    records = restored.decisions()
    reference = OnlineAllocator(restored.instance, mu=restored.allocator.mu)
    for record in records:
        if record["op"] == "offer":
            reference.offer_indexed(int(record["k"]))
        else:
            reference.release_indexed(int(record["k"]))
    digest_ok = restored.state_digest() == reference.state_digest()
    info = dict(restored.restore_info)
    restored.close()
    return {
        "recovery_seconds": timer.elapsed,
        "wal_records": len(records),
        "replayed": info["replayed"],
        "repaired_bytes": info["repaired_bytes"],
        "digest_ok": digest_ok,
    }


def bench_e18_serve(benchmark):
    def experiment():
        with tempfile.TemporaryDirectory(prefix="repro-e18-") as tmp:
            root = Path(tmp) / "svc"

            # Phase 1: sustained throughput over fsync'd decisions.
            proc, port = _spawn_server(root)
            latencies: "list[float]" = []
            per_worker = NUM_PAIRS // WORKERS
            timer = Timer()
            try:
                with timer:
                    totals = asyncio.run(_gather(
                        _drive_pairs(port, w, per_worker, WORKERS, latencies)
                        for w in range(WORKERS)
                    ))
            finally:
                # Phase 2 *is* the kill: no graceful shutdown, no final
                # snapshot — restore gets a WAL tail to replay.
                proc.kill()
                proc.wait()
            decisions = len(latencies)
            throughput = decisions / max(timer.elapsed, 1e-9)
            recovery = _verify_restore(root)

            # Phase 3: overload a small-queue restart of the same
            # directory with ~4x its closed-loop client count.
            proc, port = _spawn_server(
                root, "--max-pending", "4", "--max-wait", "0.05",
            )
            served: "list[float]" = []
            counts = {"served": 0, "shed": 0, "rejected": 0}
            try:
                asyncio.run(_gather(
                    _overload_worker(port, w, served, counts)
                    for w in range(OVERLOAD_WORKERS)
                ))
                proc.send_signal(signal.SIGTERM)
                graceful = proc.wait(timeout=60)
            finally:
                proc.kill()
                proc.wait()

        return {
            "pairs_done": sum(totals),
            "decisions": decisions,
            "elapsed": timer.elapsed,
            "throughput": throughput,
            "p50": _percentile(latencies, 0.50),
            "p99": _percentile(latencies, 0.99),
            **recovery,
            "overload": counts,
            "overload_p99": _percentile(served, 0.99),
            "graceful_exit": graceful,
        }

    data = run_once(benchmark, experiment)

    # The serving claims, asserted at both scales.
    assert data["pairs_done"] == NUM_PAIRS
    assert data["digest_ok"], "restore digest diverged from WAL replay"
    assert data["overload"]["shed"] > 0, "overload never engaged the shed path"
    assert data["overload"]["served"] > 0
    assert data["overload_p99"] <= P99_CEILING, (
        f"served p99 {data['overload_p99']:.3f}s above {P99_CEILING}s ceiling"
    )
    assert data["graceful_exit"] == 0

    shed_share = data["overload"]["shed"] / max(
        data["overload"]["shed"] + data["overload"]["served"], 1
    )
    rows = [[
        f"{data['decisions']:,}",
        f"{data['throughput']:,.0f}/s",
        f"{data['p50'] * 1e3:.2f} ms / {data['p99'] * 1e3:.2f} ms",
        f"{data['recovery_seconds'] * 1e3:.0f} ms "
        f"({data['replayed']} replayed, {data['repaired_bytes']} B torn)",
        f"{shed_share:.0%} shed, served p99 {data['overload_p99'] * 1e3:.0f} ms",
    ]]
    stage_section(
        "E18",
        f"Crash-safe admission service: {data['decisions']:,} fsync'd "
        f"decisions over HTTP ({NUM_STREAMS} streams x {NUM_USERS} users)",
        "repro.serve wraps the online allocator in a single-writer "
        "HTTP service whose every decision is WAL-appended and fsync'd "
        "before its acknowledgement; the loaded server is then "
        "SIGKILL'd and restored (snapshot + verified WAL-tail replay, "
        "digest-checked against an independent replay of the surviving "
        "records), and finally a small-queue restart is offered ~4x "
        "its closed-loop capacity to engage 503 + Retry-After load "
        "shedding.",
        ["decisions", "throughput", "ack latency p50/p99",
         "kill-and-restore", "overload (16 clients vs queue of 4)"],
        rows,
        notes="Throughput is bounded by the fsync-per-decision "
        "durability contract, not the allocator (the decision kernel "
        "itself clears millions of offers/sec in E16).  The overload "
        "p99 covers *served* requests only: shedding keeps the queue — "
        "and so the tail — short, while 503s return immediately with a "
        "Retry-After hint.  tests/test_serve_chaos.py fuzzes the same "
        "restore contract across injected crash schedules.",
    )
    stage_json(
        "E18",
        {
            "scale": "full" if FULL_SCALE else "small",
            "decisions": data["decisions"],
            "throughput_per_sec": data["throughput"],
            "latency_p50_seconds": data["p50"],
            "latency_p99_seconds": data["p99"],
            "recovery_seconds": data["recovery_seconds"],
            "recovery_replayed": data["replayed"],
            "recovery_repaired_bytes": data["repaired_bytes"],
            "digest_ok": data["digest_ok"],
            "overload": data["overload"],
            "overload_served_p99_seconds": data["overload_p99"],
        },
    )


async def _gather(coros) -> "list":
    """asyncio.gather over an iterable of coroutines."""
    return await asyncio.gather(*coros)
