"""E1 — §2 greedy algorithms on unit-skew SMD vs. exact optimum.

Paper claims (Theorems 2.5/2.8, Lemma 2.6): the fixed greedy is a
``3e/(e-1) ≈ 4.746``-approximation with fully feasible output; the
greedy + best-stream combination achieves ``2e/(e-1) ≈ 3.164``
semi-feasibly (feasible under one-stream augmentation, Cor. 2.7).
"""

from __future__ import annotations

from repro.analysis.ratios import measure_ratios
from repro.core.greedy import (
    FEASIBLE_FACTOR,
    SEMI_FEASIBLE_FACTOR,
    greedy_feasible,
    greedy_with_best_stream,
)
from repro.instances.generators import random_unit_skew_smd

from benchmarks.common import run_once, stage_section


def _ensemble():
    return [
        random_unit_skew_smd(
            num_streams=8 + i % 6,
            num_users=3 + i % 5,
            seed=10_000 + i,
            budget_fraction=0.2 + 0.05 * (i % 5),
        )
        for i in range(16)
    ]


def bench_e1_greedy_ratios(benchmark):
    def experiment():
        instances = _ensemble()
        return measure_ratios(
            {
                "greedy_feasible (Thm 2.8)": greedy_feasible,
                "greedy+Amax (Lemma 2.6)": greedy_with_best_stream,
            },
            instances,
            reference="milp",
        )

    stats = run_once(benchmark, experiment)
    feasible_stats = stats["greedy_feasible (Thm 2.8)"]
    semi_stats = stats["greedy+Amax (Lemma 2.6)"]
    rows = [
        feasible_stats.row(FEASIBLE_FACTOR),
        [
            semi_stats.algorithm,
            semi_stats.count,
            semi_stats.mean,
            semi_stats.worst,
            SEMI_FEASIBLE_FACTOR,
            # Semi-feasible by design: only the ratio is checked here.
            "yes" if semi_stats.worst <= SEMI_FEASIBLE_FACTOR + 1e-9 else "NO",
        ],
    ]
    section = stage_section(
        "E1",
        "Greedy on unit-skew SMD (Theorems 2.5/2.8, Lemma 2.6)",
        "Feasible greedy is a 3e/(e-1) ≈ 4.746 approximation; greedy+best-stream "
        "achieves 2e/(e-1) ≈ 3.164 semi-feasibly. Measured worst-case OPT/ALG over "
        "16 random unit-skew instances (MILP reference) must stay below the bound.",
        ["algorithm", "instances", "mean ratio", "worst ratio", "paper bound", "within bound"],
        rows,
        notes="greedy+Amax may oversaturate each user by one final stream "
        "(semi-feasible — Cor. 2.7's augmentation statement); its 'within bound' "
        "column checks the ratio only.",
    )
    assert feasible_stats.worst <= FEASIBLE_FACTOR + 1e-9
    assert semi_stats.worst <= SEMI_FEASIBLE_FACTOR + 1e-9
    assert feasible_stats.infeasible_count == 0
    assert section
