"""Shared plumbing for the benchmark harness.

Every bench:

1. runs its experiment once inside ``benchmark.pedantic`` (so
   pytest-benchmark records wall-clock time without re-running expensive
   MILP solves);
2. prints its table (visible with ``pytest -s``);
3. stages the same table as a markdown section under
   ``benchmarks/results/`` — ``bench_z_report.py`` (alphabetically last)
   assembles all staged sections into ``EXPERIMENTS.md``.
"""

from __future__ import annotations

import json
import os
from pathlib import Path

from repro.analysis.reporting import STAGING_ENV, experiment_section

#: Where sections are staged (created on first use).
RESULTS_DIR = Path(__file__).resolve().parent / "results"
#: Repository root (EXPERIMENTS.md lives here).
REPO_ROOT = Path(__file__).resolve().parent.parent


def stage_section(*args, **kwargs) -> str:
    """experiment_section with the staging dir forced to benchmarks/results."""
    os.environ[STAGING_ENV] = str(RESULTS_DIR)
    section = experiment_section(*args, **kwargs)
    print()
    print(section)
    return section


def stage_json(experiment_id: str, payload: dict) -> Path:
    """Stage a machine-readable per-benchmark artifact.

    Writes ``benchmarks/results/BENCH_<ID>.json`` next to the markdown
    sections; ``bench_z_report.py`` lists the staged artifacts so CI can
    archive raw numbers alongside ``EXPERIMENTS.md``.
    """
    RESULTS_DIR.mkdir(parents=True, exist_ok=True)
    path = RESULTS_DIR / f"BENCH_{experiment_id.upper()}.json"
    path.write_text(json.dumps(payload, indent=2, sort_keys=True) + "\n")
    return path


def run_once(benchmark, fn):
    """Run ``fn`` exactly once under pytest-benchmark timing."""
    return benchmark.pedantic(fn, rounds=1, iterations=1)
