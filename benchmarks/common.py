"""Shared plumbing for the benchmark harness.

Every bench:

1. runs its experiment once inside ``benchmark.pedantic`` (so
   pytest-benchmark records wall-clock time without re-running expensive
   MILP solves);
2. prints its table (visible with ``pytest -s``);
3. stages the same table as a markdown section under
   ``benchmarks/results/`` — ``bench_z_report.py`` (alphabetically last)
   assembles all staged sections into ``EXPERIMENTS.md``.
"""

from __future__ import annotations

import os
from pathlib import Path

from repro.analysis.reporting import STAGING_ENV, experiment_section

#: Where sections are staged (created on first use).
RESULTS_DIR = Path(__file__).resolve().parent / "results"
#: Repository root (EXPERIMENTS.md lives here).
REPO_ROOT = Path(__file__).resolve().parent.parent


def stage_section(*args, **kwargs) -> str:
    """experiment_section with the staging dir forced to benchmarks/results."""
    os.environ[STAGING_ENV] = str(RESULTS_DIR)
    section = experiment_section(*args, **kwargs)
    print()
    print(section)
    return section


def run_once(benchmark, fn):
    """Run ``fn`` exactly once under pytest-benchmark timing."""
    return benchmark.pedantic(fn, rounds=1, iterations=1)
