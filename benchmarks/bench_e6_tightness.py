"""E6 — §4.2 tightness of the Theorem 4.3 decomposition.

Paper claim: the m·m_c loss of the output transformation is real — on
the explicit §4.2 family, the decomposition's candidate set contains a
candidate worth only ``OPT/(m·m_c)``.  (An implementation that picks the
best post-repair candidate — ours — escapes with OPT/m here, which the
table also shows.)
"""

from __future__ import annotations

import pytest

from repro.core.assignment import Assignment
from repro.core.optimal import solve_exact_milp
from repro.core.reduction import reduce_to_single_budget
from repro.core.solver import solve_mmd
from repro.instances.generators import tightness_instance

from benchmarks.common import run_once, stage_section

FAMILY = [(2, 2), (3, 2), (3, 3), (4, 3), (4, 4)]


def _adversarial_candidate_utility(inst, m, mc):
    """The §4.2 walk-through: decompose the full solution, restrict to the
    small-stream group, repair the user — one 1/m_c stream survives."""
    red = reduce_to_single_budget(inst)
    full = Assignment(red.reduced)
    for sid in red.reduced.stream_ids():
        full.add_stream_to_all(sid)
    small = [f"s{j:03d}" for j in range(m, m + mc)]
    restricted = full.on_instance(inst).restrict(small)
    repaired = red._repair_users(restricted)
    assert repaired.is_feasible()
    return repaired.utility()


def bench_e6_tightness(benchmark):
    def experiment():
        results = []
        for m, mc in FAMILY:
            inst = tightness_instance(m, mc)
            opt = solve_exact_milp(inst).utility
            pipeline = solve_mmd(inst, try_allocate=False)
            adversarial = _adversarial_candidate_utility(inst, m, mc)
            results.append(
                {
                    "m": m,
                    "mc": mc,
                    "opt": opt,
                    "pipeline": pipeline.utility,
                    "pipeline_ratio": opt / max(pipeline.utility, 1e-12),
                    "adversarial": adversarial,
                    "adversarial_ratio": opt / max(adversarial, 1e-12),
                }
            )
        return results

    results = run_once(benchmark, experiment)
    rows = [
        [
            r["m"], r["mc"], r["opt"], r["pipeline"], r["pipeline_ratio"],
            r["adversarial"], r["adversarial_ratio"], r["m"] * r["mc"],
        ]
        for r in results
    ]
    stage_section(
        "E6",
        "Tightness of the decomposition analysis (§4.2)",
        "On the explicit family, OPT = m; the §4 candidate set contains a "
        "candidate of utility OPT/(m·m_c) (the 'adversarial candidate' column "
        "realizes it, ratio = m·m_c exactly), demonstrating Theorem 4.3's "
        "analysis is tight. Our best-post-repair implementation achieves "
        "a ratio of about m on the same instances.",
        ["m", "m_c", "OPT", "pipeline utility", "pipeline ratio",
         "adversarial candidate", "adversarial ratio", "m·m_c (tightness)"],
        rows,
    )
    for r in results:
        assert r["opt"] == pytest.approx(r["m"])
        # The adversarial candidate realizes the full m·mc loss.
        assert r["adversarial_ratio"] == pytest.approx(r["m"] * r["mc"], rel=1e-6)
        # Our implementation does no worse than m on this family.
        assert r["pipeline_ratio"] <= r["m"] + 1e-6
